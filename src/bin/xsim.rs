//! `xsim` — command-line front end.
//!
//! Mirrors the usage surface the paper describes: failure schedules as
//! rank/time pairs "on the command line or via an environment variable"
//! (§IV-B), machine/model knobs, and the checkpoint/restart campaign
//! loop of §V.
//!
//! ```text
//! xsim heat  --ranks 4x4x4 --global 64x64x64 --iters 200 --ckpt 25 \
//!            [--mttf SECONDS] [--failures "r:t,r:t"] [--seed N]
//!            [--workers N] [--slowdown F] [--power] [--trace FILE.csv]
//! xsim ring  --ranks N [--laps N] [--payload BYTES]
//! ```
//!
//! The `XSIM_FAILURES` environment variable is honored as an additional
//! failure schedule.

use std::collections::HashMap;
use std::process::exit;
use xsim::apps::heat3d::{self, HeatConfig};
use xsim::apps::kernels;
use xsim::apps::ComputeMode;
use xsim::prelude::*;
use xsim_proc::PowerModel;

fn usage() -> ! {
    eprintln!(
        "usage:\n  xsim heat --ranks AxBxC --global XxYxZ --iters N --ckpt N \\\n    \
         [--halo N] [--mttf SECONDS] [--failures \"r:t,r:t\"] [--seed N] \\\n    \
         [--workers N] [--slowdown F] [--per-point-ns N] [--power] [--trace FILE]\n  \
         xsim ring --ranks N [--laps N] [--payload BYTES] [--workers N]\n\n\
         XSIM_FAILURES=\"rank:seconds,...\" adds failures (paper §IV-B)."
    );
    exit(2)
}

fn parse_triple(s: &str) -> Option<[usize; 3]> {
    let parts: Vec<usize> = s
        .split('x')
        .map(|p| p.parse().ok())
        .collect::<Option<_>>()?;
    (parts.len() == 3).then(|| [parts[0], parts[1], parts[2]])
}

fn parse_args(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument: {}", args[i]);
            usage()
        };
        if matches!(key, "power") {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let Some(val) = args.get(i + 1) else {
                eprintln!("--{key} needs a value");
                usage()
            };
            map.insert(key.to_string(), val.clone());
            i += 2;
        }
    }
    map
}

fn get<T: std::str::FromStr>(map: &HashMap<String, String>, key: &str, default: T) -> T {
    match map.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {v}");
            usage()
        }),
        None => default,
    }
}

fn gather_failures(map: &HashMap<String, String>) -> FailureSchedule {
    let mut schedule = match map.get("failures") {
        Some(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        }),
        None => FailureSchedule::new(),
    };
    match FailureSchedule::from_env() {
        Ok(Some(env)) => {
            for (r, t) in env.iter() {
                schedule.push(r, t);
            }
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("XSIM_FAILURES: {e}");
            usage()
        }
    }
    schedule
}

fn cmd_heat(map: HashMap<String, String>) {
    let ranks = map
        .get("ranks")
        .and_then(|s| parse_triple(s))
        .unwrap_or([2, 2, 2]);
    let global = map.get("global").and_then(|s| parse_triple(s)).unwrap_or([
        ranks[0] * 8,
        ranks[1] * 8,
        ranks[2] * 8,
    ]);
    let iters: u64 = get(&map, "iters", 100);
    let ckpt: u64 = get(&map, "ckpt", iters / 4);
    let halo: u64 = get(&map, "halo", ckpt);
    let seed: u64 = get(&map, "seed", 17);
    let workers: usize = get(&map, "workers", 1);
    let slowdown: f64 = get(&map, "slowdown", 1000.0);
    let per_point_ns: u64 = get(&map, "per-point-ns", 1280);
    let power = map.contains_key("power");

    let cfg = HeatConfig {
        global,
        ranks,
        iterations: iters,
        halo_interval: halo.max(1),
        ckpt_interval: ckpt.max(1),
        mode: ComputeMode::Modeled,
        per_point: SimTime::from_nanos(per_point_ns),
        prefix: "heat".into(),
        ckpt_mode: Default::default(),
    };
    if let Err(e) = cfg.validate() {
        eprintln!("invalid heat configuration: {e}");
        exit(2);
    }
    let n = cfg.n_ranks();
    let schedule = gather_failures(&map);

    let make_builder = || {
        let mut net = NetModel::paper_machine();
        net.topology = xsim::net::Topology::Torus3d { dims: cfg.ranks };
        let mut b = SimBuilder::new(n)
            .net(net)
            .proc(ProcModel::with_slowdown(slowdown))
            .workers(workers)
            .seed(seed);
        if power {
            b = b.power(PowerModel::typical_node());
        }
        b
    };

    // Baseline (E1).
    let baseline = make_builder()
        .inject_failures(schedule.iter())
        .run(heat3d::program(cfg.clone()))
        .unwrap_or_else(|e| {
            eprintln!("simulation failed: {e}");
            exit(1)
        });
    println!(
        "run: {:?} at {} ({} failures, {} events, wall {:.2?})",
        baseline.sim.exit,
        baseline.exit_time(),
        baseline.sim.failures.len(),
        baseline.sim.events_processed,
        baseline.sim.wall,
    );
    if let Some(p) = &baseline.power {
        println!(
            "energy: {:.1} kJ total ({:.1} kJ busy, {:.1} kJ idle, {:.3} kJ network), busy fraction {:.1}%",
            p.total_joules / 1e3,
            p.busy_joules / 1e3,
            p.idle_joules / 1e3,
            p.network_joules / 1e3,
            p.busy_fraction * 100.0
        );
    }

    // Optional MTTF-driven campaign.
    if let Some(mttf_s) = map.get("mttf") {
        let mttf = SimTime::from_secs_f64(mttf_s.parse().unwrap_or_else(|_| {
            eprintln!("invalid --mttf");
            usage()
        }));
        let store = FsStore::new();
        let orch = Orchestrator::new(
            FailureModel::UniformTwiceMttf { mttf },
            seed,
            CheckpointManager::new(&cfg.prefix),
        );
        let result = orch
            .run_to_completion(store, heat3d::program(cfg.clone()), n, make_builder)
            .unwrap_or_else(|e| {
                eprintln!("campaign failed: {e}");
                exit(1)
            });
        println!(
            "campaign (MTTF_s {mttf}): E2 = {}, F = {}, runs = {}, completed = {}",
            result.finish_time,
            result.failures,
            result.runs.len(),
            result.completed
        );
        if let Some(mttfa) = result.application_mttf() {
            println!("application MTTF (E2/(F+1)): {mttfa}");
        }
    }

    // Optional trace of the (failure-free) run.
    if let Some(path) = map.get("trace") {
        let traced = make_builder()
            .trace(true)
            .run(heat3d::program(cfg.clone()))
            .unwrap_or_else(|e| {
                eprintln!("trace run failed: {e}");
                exit(1)
            });
        let trace = traced.trace.expect("tracing enabled");
        std::fs::write(path, trace.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        });
        println!(
            "trace: {} events written to {path} (compute fraction {:.1}%)",
            trace.events.len(),
            trace.compute_fraction() * 100.0
        );
    }
}

fn cmd_ring(map: HashMap<String, String>) {
    let n: usize = get(&map, "ranks", 64);
    let laps: u32 = get(&map, "laps", 3);
    let payload: usize = get(&map, "payload", 1024);
    let workers: usize = get(&map, "workers", 1);
    let report = SimBuilder::new(n)
        .net(NetModel::small(n))
        .workers(workers)
        .inject_failures(gather_failures(&map).iter())
        .run(kernels::ring(laps, payload))
        .unwrap_or_else(|e| {
            eprintln!("simulation failed: {e}");
            exit(1)
        });
    println!(
        "ring({laps} laps, {payload} B, {n} ranks): {:?} at {}; {} sends, wall {:.2?}",
        report.sim.exit,
        report.exit_time(),
        report.mpi.sends,
        report.sim.wall
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("heat") => cmd_heat(parse_args(&args[1..])),
        Some("ring") => cmd_ring(parse_args(&args[1..])),
        _ => usage(),
    }
}
