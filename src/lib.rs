//! # xsim-rs
//!
//! A from-scratch Rust reproduction of the Extreme-scale Simulator
//! (xSim) resilience extensions described in Engelmann & Naughton,
//! *"Toward a Performance/Resilience Tool for Hardware/Software
//! Co-Design of High-Performance Computing Systems"*, ICPP 2013.
//!
//! The workspace is layered; this facade re-exports every component:
//!
//! * [`core`] — deterministic PDES engine with lightweight virtual
//!   processes (sequential + conservative parallel).
//! * [`proc`] — processor model (work → virtual time, slowdown factors).
//! * [`net`] — network model (torus/mesh/hypercube topologies,
//!   eager/rendezvous protocols, per-network failure-detection
//!   timeouts, fault-aware routing around dead/degraded links).
//! * [`fs`] — simulated parallel file system (shared across restarts,
//!   two-phase writes, I/O fault injection).
//! * [`mpi`] — simulated MPI layer (p2p, linear collectives, error
//!   handlers, failure injection/detection/notification, abort, ULFM,
//!   lossy transport with retransmission + backoff).
//! * [`fault`] — failure schedules, component-addressed network fault
//!   schedules (links/switches), MTTF-driven random injection, bit-flip
//!   campaigns, soft-error injection.
//! * [`ckpt`] — checksummed application-level checkpoint/restart and the
//!   run→abort→restart orchestrator with continuous virtual timing.
//! * [`obs`] — observability: metrics registry (counters, gauges,
//!   histograms) across every subsystem and Chrome/Perfetto trace
//!   export.
//! * [`apps`] — the paper's 3-D heat application and companions.
//!
//! ## Quickstart
//!
//! ```
//! use xsim::prelude::*;
//! use bytes::Bytes;
//!
//! let report = SimBuilder::new(4)
//!     .net(NetModel::small(4))
//!     .run_app(|mpi| async move {
//!         let w = mpi.world();
//!         if mpi.rank == 0 {
//!             mpi.send(w, 1, 0, Bytes::from_static(b"hello")).await?;
//!         } else if mpi.rank == 1 {
//!             let msg = mpi.recv(w, Some(0), Some(0)).await?;
//!             assert_eq!(&msg.data[..], b"hello");
//!         }
//!         mpi.finalize();
//!         Ok(())
//!     })
//!     .unwrap();
//! assert_eq!(report.sim.exit, ExitKind::Completed);
//! ```

pub use xsim_apps as apps;
pub use xsim_ckpt as ckpt;
pub use xsim_core as core;
pub use xsim_fault as fault;
pub use xsim_fs as fs;
pub use xsim_mpi as mpi;
pub use xsim_net as net;
pub use xsim_obs as obs;
pub use xsim_proc as proc;

/// The most commonly used items in one import.
pub mod prelude {
    pub use xsim_ckpt::{
        CampaignResult, Checkpoint, CheckpointManager, Orchestrator, ProtectionCampaign,
    };
    pub use xsim_core::{EngineKind, EngineProfile, ExitKind, Rank, SimError, SimReport, SimTime};
    pub use xsim_fault::{FailureModel, FailureSchedule, FaultSchedule, NetReliability};
    pub use xsim_fs::{FsModel, FsStore};
    pub use xsim_mpi::{
        Comm, Detector, ErrHandler, HeartbeatConfig, LossyTransport, MpiCtx, MpiError,
        ProtectionScheme, ReduceOp, ReplicaMap, Replicated, RunReport, SimBuilder,
    };
    pub use xsim_net::{
        Link, LinkFaultKind, LinkStateTable, NetClass, NetFault, NetModel, Topology,
    };
    pub use xsim_obs::{ids as metric_ids, ObsReport};
    pub use xsim_proc::{ProcModel, Work};
}
