//! The paper's experiment in miniature: the 3-D heat application with
//! checkpoint/restart under randomly injected MPI process failures
//! (paper §V), at a laptop-friendly scale.
//!
//! ```text
//! cargo run --release --example heat3d_checkpoint
//! ```

use xsim::apps::heat3d::{self, HeatConfig};
use xsim::apps::ComputeMode;
use xsim::prelude::*;

fn make_builder(n: usize) -> SimBuilder {
    SimBuilder::new(n)
        .net(NetModel::small(n))
        .proc(ProcModel::with_slowdown(1000.0))
}

fn main() {
    let mut cfg = HeatConfig::small();
    cfg.ranks = [2, 2, 2];
    cfg.global = [16, 16, 16];
    cfg.iterations = 200;
    cfg.ckpt_interval = 25;
    cfg.halo_interval = 25;
    cfg.mode = ComputeMode::Modeled;
    cfg.per_point = SimTime::from_micros(2);
    let n = cfg.n_ranks();

    // Baseline: failure-free execution time (Table II's E1).
    let e1 = make_builder(n)
        .run(heat3d::program(cfg.clone()))
        .expect("baseline run")
        .exit_time();
    println!("E1 (no failures): {e1}");

    // Failure/restart campaign with MTTF = E1/2 (several failures).
    let mttf = e1.scale(0.5);
    let store = FsStore::new();
    let orchestrator = Orchestrator::new(
        FailureModel::UniformTwiceMttf { mttf },
        0xBEEF,
        CheckpointManager::new(&cfg.prefix),
    );
    let result = orchestrator
        .run_to_completion(store, heat3d::program(cfg.clone()), n, || make_builder(n))
        .expect("campaign");

    println!("system MTTF: {mttf}");
    println!(
        "E2 (with failures and restarts): {} over {} run(s)",
        result.finish_time,
        result.runs.len()
    );
    println!("failures experienced (F): {}", result.failures);
    if let Some(mttfa) = result.application_mttf() {
        println!("application MTTF (E2 / (F+1)): {mttfa}");
    }
    for (i, run) in result.runs.iter().enumerate() {
        println!(
            "  run {i}: exit {:?} at {}, {} failure(s)",
            run.sim.exit,
            run.exit_time(),
            run.sim.failures.len()
        );
    }
}
