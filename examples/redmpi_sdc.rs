//! RedMPI-style silent-data-corruption study (paper §II-C): run a
//! redundant computation, inject a soft error (bit flip) into one
//! replica, and watch double redundancy *detect* it and triple
//! redundancy *correct* it.
//!
//! ```text
//! cargo run --example redmpi_sdc
//! ```

use xsim::fault::soft::{self, SoftErrorPlan};
use xsim::mpi::{Redundant, Verdict};
use xsim::prelude::*;

fn run(r: usize, logical: usize) {
    let n = logical * r;
    // Flip a bit in one replica of logical rank 1, 5 ms in.
    let victim_world_rank = r + (r - 1);
    let plan = SoftErrorPlan::new().with_flip(victim_world_rank, SimTime::from_millis(5), 999);

    println!(
        "== {r}x redundancy over {logical} logical ranks (victim: world rank {victim_world_rank})"
    );
    let report = SimBuilder::new(n)
        .net(NetModel::small(n))
        .setup_hook(plan.install_hook())
        .run_app(move |mpi| async move {
            let red = Redundant::split(&mpi, r).await?;

            // Every replica computes the same state...
            mpi.compute(Work::native_time(SimTime::from_millis(10)))
                .await;
            let mut state = 0x0123_4567_89AB_CDEFu64.to_le_bytes();
            // ...except the one hit by the injected soft error.
            for flip in soft::poll_flips() {
                soft::apply_flip(&mut state, flip);
            }
            let value = u64::from_le_bytes(state);

            // Verification point: compare across the replica team.
            let (corrected, verdict) = red.verify_u64(&mpi, value).await?;
            if red.replica == 0 {
                match verdict {
                    Verdict::Consistent => {}
                    Verdict::Corrected { outvoted } => println!(
                        "  logical rank {}: corruption corrected by majority vote \
                         ({outvoted} replica out-voted); value restored to {corrected:#x}",
                        red.logical_rank
                    ),
                    Verdict::Uncorrectable => println!(
                        "  logical rank {}: corruption DETECTED but not correctable \
                         with {}x redundancy",
                        red.logical_rank, r
                    ),
                }
            }
            mpi.finalize();
            Ok(())
        })
        .expect("simulation failed");
    println!(
        "  run exit: {:?}, virtual time {}",
        report.sim.exit, report.sim.timing.max
    );
}

fn main() {
    run(2, 4); // double redundancy: detection only
    run(3, 4); // triple redundancy: detection + correction
}
