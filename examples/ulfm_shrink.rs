//! ULFM-style recovery (the paper's future-work capability, §VI):
//! detect a process failure via `MPI_ERR_PROC_FAILED`, revoke the
//! communicator, shrink it to the survivors, and keep computing —
//! without checkpoint/restart.
//!
//! ```text
//! cargo run --example ulfm_shrink
//! ```

use xsim::prelude::*;

fn main() {
    let n = 8;
    let report = SimBuilder::new(n)
        .net(NetModel::small(n))
        .errhandler(ErrHandler::Return) // ULFM requires MPI_ERRORS_RETURN
        .inject_failure(3, SimTime::from_millis(50))
        .verbose(true)
        .run_app(|mpi| async move {
            let w = mpi.world();

            // Phase 1: everyone computes, then allreduces. Rank 3 dies
            // during the compute phase; the collective surfaces
            // MPI_ERR_PROC_FAILED at some rank(s).
            mpi.sleep(SimTime::from_millis(100)).await;
            let r = mpi.allreduce_f64(w, &[1.0], ReduceOp::Sum).await;
            let comm = match r {
                Ok(v) => {
                    // Possible for late-notified ranks; proceed until
                    // the revoke reaches them.
                    println!("rank {}: phase-1 sum {}", mpi.rank, v[0]);
                    w
                }
                Err(MpiError::ProcFailed { rank, .. }) => {
                    println!(
                        "rank {}: detected failure of rank {rank}, revoking",
                        mpi.rank
                    );
                    mpi.comm_revoke(w)?;
                    w
                }
                Err(MpiError::Revoked) => w,
                Err(e) => return Err(e),
            };

            // Phase 2: agree on survivors and continue on the shrunken
            // communicator.
            let shrunk = match mpi.comm_shrink(comm).await {
                Ok(c) => c,
                Err(MpiError::Revoked) => mpi.comm_shrink(comm).await?,
                Err(e) => return Err(e),
            };
            let size = mpi.comm_size(shrunk)?;
            let sum = mpi.allreduce_f64(shrunk, &[1.0], ReduceOp::Sum).await?;
            if mpi.comm_rank(shrunk)? == 0 {
                println!("survivors: {size}; phase-2 sum over survivors: {}", sum[0]);
                assert_eq!(sum[0] as usize, size);
            }
            mpi.finalize();
            Ok(())
        })
        .expect("simulation failed");

    println!(
        "run exit: {:?}; failures: {}; max virtual time {}",
        report.sim.exit,
        report.sim.failures.len(),
        report.sim.timing.max
    );
}
