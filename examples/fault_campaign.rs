//! A Finject-style bit-flip campaign against simulated victim processes
//! (paper Table I, §II-C): inject random bit flips until each victim
//! crashes, then report the injections-to-failure statistics.
//!
//! ```text
//! cargo run --example fault_campaign
//! ```

use xsim::fault::bitflip::{run_campaign, CampaignStats, VictimLayout};

fn main() {
    let layout = VictimLayout::default();
    println!(
        "victim memory image: {} KiB total, {:.2}% crash-sensitive (text+pointers)",
        layout.total_bytes() / 1024,
        layout.crash_probability() * 100.0
    );

    let counts = run_campaign(100, 1000, layout, 0x5EED);
    let stats = CampaignStats::from_counts(&counts).expect("non-empty campaign");

    println!("\nFault (bit flip) injection results (cf. paper Table I):");
    println!("{:<12} {:>10}  Description", "Field", "Value");
    println!(
        "{:<12} {:>10}  # of victim application instances",
        "Victims", stats.victims
    );
    println!(
        "{:<12} {:>10}  # of injected failures for all runs",
        "Injections", stats.injections
    );
    println!(
        "{:<12} {:>10}  # of injections to victim failure",
        "Minimum", stats.min
    );
    println!(
        "{:<12} {:>10}  # of injections to victim failure",
        "Maximum", stats.max
    );
    println!(
        "{:<12} {:>10.2}  # of injections to victim failure",
        "Mean", stats.mean
    );
    println!(
        "{:<12} {:>10}  # of injections to victim failure",
        "Median", stats.median
    );
    println!(
        "{:<12} {:>10}  # of injections to victim failure",
        "Mode", stats.mode
    );
    println!(
        "{:<12} {:>10.2}  # of injections to victim failure",
        "Std.Dev.", stats.stddev
    );
}
