//! Quickstart: run a small MPI program inside the simulator on the
//! paper's torus machine (scaled down) and look at the virtual timing.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use xsim::prelude::*;

fn main() {
    // A 4x4x4 wrapped torus, otherwise the paper's machine parameters
    // (1 µs links, 32 GB/s, 256 kB eager threshold).
    let mut net = NetModel::paper_machine();
    net.topology = Topology::Torus3d { dims: [4, 4, 4] };
    let n = 64;

    let report = SimBuilder::new(n)
        .net(net)
        .proc(ProcModel::with_slowdown(1000.0))
        .run_app(move |mpi| async move {
            let w = mpi.world();
            // Each rank "computes" one millisecond of reference-core
            // work — the processor model stretches it 1000x.
            mpi.compute(Work::native_time(SimTime::from_millis(1)))
                .await;

            // Neighbor exchange around a ring.
            let right = (mpi.rank + 1) % mpi.size;
            let left = (mpi.rank + mpi.size - 1) % mpi.size;
            let send = mpi
                .isend(w, right, 0, Bytes::from(vec![mpi.rank as u8; 1024]))
                .await?;
            let recv = mpi.irecv(w, Some(left), Some(0))?;
            mpi.wait(w, send).await?;
            let msg = mpi.wait(w, recv).await?.expect("payload");
            assert_eq!(msg.data[0] as usize, left);

            // A global reduction.
            let sum = mpi
                .allreduce_f64(w, &[mpi.rank as f64], ReduceOp::Sum)
                .await?;
            if mpi.rank == 0 {
                println!(
                    "rank sum = {} (expected {}), virtual time now {}",
                    sum[0],
                    n * (n - 1) / 2,
                    mpi.now()
                );
            }
            mpi.finalize();
            Ok(())
        })
        .expect("simulation failed");

    println!(
        "completed: {:?}; process times min {} / max {} / avg {}",
        report.sim.exit, report.sim.timing.min, report.sim.timing.max, report.sim.timing.avg
    );
    println!(
        "{} sends, {} receives, {} collective operations, {} events",
        report.mpi.sends, report.mpi.recvs, report.mpi.collectives, report.sim.events_processed
    );
}
