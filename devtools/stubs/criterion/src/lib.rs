//! Empty offline stub: targets that need the real criterion do not build in stub mode.
