//! Empty offline stub: targets that need the real crossbeam do not build in stub mode.
