//! Offline stub of `parking_lot`: the `Mutex` API xsim uses, backed by
//! `std::sync::Mutex` with poison recovery (parking_lot has no poisoning).

use std::ops::{Deref, DerefMut};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
