//! Offline stub of the `rand` crate surface xsim uses.
//!
//! `SmallRng` is implemented as xoshiro256++ — the same algorithm the
//! real rand 0.8 `SmallRng` uses on 64-bit targets — so stub-mode and
//! registry-mode builds draw from identical raw streams. `gen_range`
//! uses plain rejection sampling, which is unbiased but not
//! bit-compatible with rand's widening-multiply method; no test in this
//! repo asserts golden range-sampled values, only statistics.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    type Seed;
    fn from_seed(seed: Self::Seed) -> Self;
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: std::ops::RangeBounds<T>,
    {
        T::sample(self, &range)
    }
}

impl<T: RngCore> Rng for T {}

pub trait SampleUniform: Sized {
    fn sample<G: RngCore + ?Sized>(rng: &mut G, range: &impl std::ops::RangeBounds<Self>) -> Self;
}

fn u64_bounds(range: &impl std::ops::RangeBounds<u64>) -> (u64, u64) {
    use std::ops::Bound::*;
    let lo = match range.start_bound() {
        Included(&v) => v,
        Excluded(&v) => v + 1,
        Unbounded => 0,
    };
    let hi = match range.end_bound() {
        Included(&v) => v.checked_add(1).expect("inclusive u64::MAX range"),
        Excluded(&v) => v,
        Unbounded => u64::MAX,
    };
    assert!(lo < hi, "empty sample range");
    (lo, hi)
}

fn sample_u64<G: RngCore + ?Sized>(rng: &mut G, lo: u64, hi: u64) -> u64 {
    let span = hi - lo;
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection sampling: draw until the value falls inside the largest
    // multiple of `span`, so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return lo + v % span;
        }
    }
}

impl SampleUniform for u64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G, range: &impl std::ops::RangeBounds<u64>) -> u64 {
        let (lo, hi) = u64_bounds(range);
        sample_u64(rng, lo, hi)
    }
}

impl SampleUniform for usize {
    fn sample<G: RngCore + ?Sized>(
        rng: &mut G,
        range: &impl std::ops::RangeBounds<usize>,
    ) -> usize {
        use std::ops::Bound::*;
        let lo = match range.start_bound() {
            Included(&v) => v,
            Excluded(&v) => v + 1,
            Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Included(&v) => v + 1,
            Excluded(&v) => v,
            Unbounded => usize::MAX,
        };
        assert!(lo < hi, "empty sample range");
        sample_u64(rng, lo as u64, hi as u64) as usize
    }
}

impl SampleUniform for f64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G, range: &impl std::ops::RangeBounds<f64>) -> f64 {
        use std::ops::Bound::*;
        let lo = match range.start_bound() {
            Included(&v) | Excluded(&v) => v,
            Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Included(&v) | Excluded(&v) => v,
            Unbounded => 1.0,
        };
        // 53 uniform mantissa bits in [0, 1), scaled to the range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (public domain, Blackman & Vigna) — the algorithm
    /// behind rand 0.8's 64-bit `SmallRng`.
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // The all-zero state is the one invalid seed.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
