//! Empty offline stub: targets that need the real proptest do not build in stub mode.
