//! Offline stub of the `bytes` crate surface xsim uses: an immutable,
//! cheaply-clonable `Bytes`, a growable `BytesMut`, and the `BufMut`
//! writer methods the codecs call. Backed by `Arc<Vec<u8>>` / `Vec<u8>`
//! — no zero-copy slicing, which xsim never relies on.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes(Arc::new(b.to_vec()))
    }

    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes(Arc::new(b.to_vec()))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::new(s.into_bytes()))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Arc::new(s.as_bytes().to_vec()))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
