//! Offline stub of the `bytes` crate surface xsim uses: an immutable,
//! cheaply-clonable `Bytes` with zero-copy `slice`, a growable
//! `BytesMut`, and the `BufMut` writer methods the codecs call. Backed
//! by an `Arc<Vec<u8>>` plus a view range — same sharing semantics as
//! the real crate for everything the simulator relies on.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            buf: Arc::new(v),
            start: 0,
            end,
        }
    }

    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from_vec(b.to_vec())
    }

    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::from_vec(b.to_vec())
    }

    /// Zero-copy sub-view sharing the backing allocation (the real
    /// crate's `Bytes::slice`). Panics on an out-of-range or inverted
    /// range, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.end - self.start;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range for {len}"
        );
        Bytes {
            buf: self.buf.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (**self).cmp(&**other)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_vec(s.as_bytes().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
