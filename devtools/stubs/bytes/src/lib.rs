//! Offline stub of the `bytes` crate surface xsim uses: an immutable,
//! cheaply-clonable `Bytes` with zero-copy `slice`, a growable
//! `BytesMut`, and the `BufMut` writer methods the codecs call.
//!
//! Three representations sit behind the one 32-byte `Bytes` value:
//!
//! * **Inline** — payloads up to [`Bytes::INLINE_CAP`] (30) bytes live
//!   directly in the value. Small-message creation (control frames,
//!   redundancy envelopes, sub-eager payloads) allocates nothing; this
//!   is the zero-allocation small-message fast path the MPI layer rides.
//! * **Static** — `from_static` borrows the `'static` slice, no copy.
//! * **Shared** — an `Arc<Vec<u8>>` plus a view range, same refcounted
//!   sharing semantics as the real crate for large payloads.
//!
//! All equality/order/hash is by content, so the representations mix
//! freely.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    /// Payload stored in the value itself; no allocation.
    Inline { len: u8, buf: [u8; Bytes::INLINE_CAP] },
    /// Borrowed static slice; no allocation, no copy.
    Static(&'static [u8]),
    /// Refcounted heap buffer with a zero-copy view range.
    Shared {
        buf: Arc<Vec<u8>>,
        start: usize,
        end: usize,
    },
}

#[derive(Clone)]
pub struct Bytes(Repr);

impl Default for Bytes {
    fn default() -> Self {
        Bytes(Repr::Inline {
            len: 0,
            buf: [0; Bytes::INLINE_CAP],
        })
    }
}

impl Bytes {
    /// Largest payload stored inline (no heap allocation).
    pub const INLINE_CAP: usize = 30;

    pub fn new() -> Self {
        Bytes::default()
    }

    #[inline]
    fn inline_from(b: &[u8]) -> Self {
        debug_assert!(b.len() <= Bytes::INLINE_CAP);
        let mut buf = [0u8; Bytes::INLINE_CAP];
        buf[..b.len()].copy_from_slice(b);
        Bytes(Repr::Inline {
            len: b.len() as u8,
            buf,
        })
    }

    fn from_vec(v: Vec<u8>) -> Self {
        if v.len() <= Bytes::INLINE_CAP {
            return Bytes::inline_from(&v);
        }
        let end = v.len();
        Bytes(Repr::Shared {
            buf: Arc::new(v),
            start: 0,
            end,
        })
    }

    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes(Repr::Static(b))
    }

    pub fn copy_from_slice(b: &[u8]) -> Self {
        if b.len() <= Bytes::INLINE_CAP {
            Bytes::inline_from(b)
        } else {
            Bytes::from_vec(b.to_vec())
        }
    }

    /// Whether the payload is stored without a heap allocation (inline
    /// or static). Exposed for pool/bench accounting.
    pub fn is_inline(&self) -> bool {
        !matches!(self.0, Repr::Shared { .. })
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Static(s) => s,
            Repr::Shared { buf, start, end } => &buf[*start..*end],
        }
    }

    /// Zero-copy sub-view sharing the backing allocation (the real
    /// crate's `Bytes::slice`); inline payloads copy into a new inline
    /// value. Panics on an out-of-range or inverted range, like the
    /// real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.as_slice().len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range for {len}"
        );
        match &self.0 {
            Repr::Inline { buf, .. } => Bytes::inline_from(&buf[lo..hi]),
            Repr::Static(s) => Bytes(Repr::Static(&s[lo..hi])),
            Repr::Shared { buf, start, .. } => Bytes(Repr::Shared {
                buf: buf.clone(),
                start: start + lo,
                end: start + hi,
            }),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (**self).cmp(&**other)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_is_32_bytes_and_small_payloads_inline() {
        assert_eq!(std::mem::size_of::<Bytes>(), 32);
        assert!(Bytes::copy_from_slice(&[7u8; Bytes::INLINE_CAP]).is_inline());
        assert!(!Bytes::copy_from_slice(&[7u8; Bytes::INLINE_CAP + 1]).is_inline());
        assert!(Bytes::from_static(b"static data never allocates here").is_inline());
        assert!(Bytes::from(vec![1u8; 8]).is_inline());
        assert!(!Bytes::from(vec![1u8; 100]).is_inline());
    }

    #[test]
    fn representations_compare_by_content() {
        let data = b"hello world";
        let a = Bytes::copy_from_slice(data);
        let b = Bytes::from_static(data);
        let c = Bytes::from(data.to_vec().repeat(4)).slice(..data.len());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(&a[..], data);
    }

    #[test]
    fn slice_semantics_hold_across_representations() {
        let long = Bytes::from(vec![9u8; 64]);
        let view = long.slice(8..40);
        assert_eq!(view.len(), 32);
        assert!(!view.is_inline());
        let short = view.slice(..4);
        assert!(!short.is_inline(), "shared slices stay zero-copy views");
        assert_eq!(&short[..], &[9u8; 4]);
        let stat = Bytes::from_static(b"abcdef").slice(1..=3);
        assert_eq!(&stat[..], b"bcd");
        let inl = Bytes::copy_from_slice(b"0123456789").slice(2..5);
        assert_eq!(&inl[..], b"234");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::copy_from_slice(b"abc").slice(1..5);
    }

    #[test]
    fn freeze_round_trips() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(0xdeadbeef);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 6);
        assert!(b.is_inline());
    }
}
