#!/bin/sh
# Swap the workspace's external deps between the crates.io registry and
# the local offline stubs in devtools/stubs/. Only the root Cargo.toml's
# [workspace.dependencies] section changes; member crates inherit.
#
#   sh devtools/stubs/toggle.sh stubs   # offline: path deps on the stubs
#   sh devtools/stubs/toggle.sh real    # registry deps (before committing!)
#
# Both directions drop Cargo.lock so the next build resolves cleanly.
set -e
cd "$(dirname "$0")/../.."

case "$1" in
  stubs)
    sed -i \
      -e 's#^rand = .*#rand = { path = "devtools/stubs/rand", default-features = false, features = ["std", "std_rng", "small_rng"] }#' \
      -e 's#^proptest = .*#proptest = { path = "devtools/stubs/proptest" }#' \
      -e 's#^criterion = .*#criterion = { path = "devtools/stubs/criterion" }#' \
      -e 's#^crossbeam = .*#crossbeam = { path = "devtools/stubs/crossbeam" }#' \
      -e 's#^parking_lot = .*#parking_lot = { path = "devtools/stubs/parking_lot" }#' \
      -e 's#^bytes = .*#bytes = { path = "devtools/stubs/bytes" }#' \
      Cargo.toml
    ;;
  real)
    sed -i \
      -e 's#^rand = .*#rand = { version = "0.8", default-features = false, features = ["std", "std_rng", "small_rng"] }#' \
      -e 's#^proptest = .*#proptest = "1"#' \
      -e 's#^criterion = .*#criterion = "0.5"#' \
      -e 's#^crossbeam = .*#crossbeam = "0.8"#' \
      -e 's#^parking_lot = .*#parking_lot = "0.12"#' \
      -e 's#^bytes = .*#bytes = "1"#' \
      Cargo.toml
    ;;
  *)
    echo "usage: toggle.sh stubs|real" >&2
    exit 2
    ;;
esac
rm -f Cargo.lock
grep -E '^(rand|proptest|criterion|crossbeam|parking_lot|bytes) =' Cargo.toml
