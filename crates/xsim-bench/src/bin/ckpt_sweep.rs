//! Checkpoint-interval sweep vs. the Daly optimum.
//!
//! The paper's Table II varies the checkpoint interval at two MTTFs;
//! the natural follow-on experiment (and the purpose of the analytic
//! model the paper cites as \[31\]) is to sweep the interval, locate the
//! E2 minimum, and compare it with Daly's higher-order estimate. This
//! harness does exactly that with the heat application on a 512-rank
//! machine with a *charged* checkpoint cost (unlike Table II, the
//! optimum is undefined when checkpoints are free).
//!
//! ```text
//! cargo run --release -p xsim-bench --bin ckpt_sweep [--seed N] [--workers N]
//! ```

use xsim_apps::heat3d::{self, HeatConfig};
use xsim_apps::ComputeMode;
use xsim_bench::{paper_builder, parse_flags};
use xsim_ckpt::{daly_interval, expected_runtime, CheckpointManager, Orchestrator};
use xsim_core::SimTime;
use xsim_fault::FailureModel;
use xsim_fs::{FsModel, FsStore};

fn main() {
    let flags = parse_flags();
    // 512 ranks, 16³ points each → the paper's per-rank load, 1000
    // iterations, E1 ≈ 5243 s.
    let base = HeatConfig {
        global: [128, 128, 128],
        ranks: [8, 8, 8],
        iterations: 1000,
        halo_interval: 1000,
        ckpt_interval: 1000,
        mode: ComputeMode::Modeled,
        ckpt_mode: Default::default(),
        per_point: SimTime::from_nanos(1280),
        prefix: "sweep".into(),
    };
    let iter_time = SimTime(base.per_point.as_nanos() * base.points_per_rank()).scale(1000.0);
    // Checkpoint commit cost δ = 20 s (metadata-dominated PFS), system
    // MTTF = 3000 s.
    let delta = SimTime::from_secs(20);
    let mttf = SimTime::from_secs(3000);
    let fs = FsModel {
        meta_latency: delta,
        write_bw: f64::INFINITY,
        read_bw: f64::INFINITY,
        pfs: None,
    };

    let t_daly = daly_interval(delta, mttf);
    let c_daly = t_daly.as_nanos() / iter_time.as_nanos().max(1);
    println!(
        "heat, 512 ranks, 1000 iterations, iteration time {iter_time}, δ = {delta}, MTTF_s = {mttf}"
    );
    println!("Daly optimum: τ = {t_daly} ≈ every {c_daly} iterations\n");
    println!(
        "{:>6} {:>12} {:>14} {:>10} {:>14}",
        "C", "E1", "E2 (avg)", "F (avg)", "Daly E[T]"
    );

    let seeds: Vec<u64> = (0..6).map(|i| flags.seed ^ (0x9E37 * (i + 1))).collect();
    let mut best: Option<(u64, f64)> = None;
    for c in [16u64, 32, 64, 125, 250, 500] {
        let mut cfg = base.clone();
        cfg.ckpt_interval = c;
        cfg.halo_interval = c;

        let e1 = paper_builder(&cfg, flags.workers, flags.seed)
            .fs_model(fs)
            .run(heat3d::program(cfg.clone()))
            .expect("E1 run")
            .exit_time();

        let mut e2_sum = 0.0;
        let mut f_sum = 0u64;
        for &seed in &seeds {
            let store = FsStore::new();
            let orch = Orchestrator::new(
                FailureModel::UniformTwiceMttf { mttf },
                seed,
                CheckpointManager::new(&cfg.prefix),
            );
            let cfg2 = cfg.clone();
            let result = orch
                .run_to_completion(
                    store,
                    heat3d::program(cfg.clone()),
                    cfg.n_ranks(),
                    move || paper_builder(&cfg2, flags.workers, seed).fs_model(fs),
                )
                .expect("campaign");
            assert!(result.completed);
            e2_sum += result.finish_time.as_secs_f64();
            f_sum += result.failures;
        }
        let e2_avg = e2_sum / seeds.len() as f64;
        let f_avg = f_sum as f64 / seeds.len() as f64;
        // Analytic prediction for this interval.
        let tau = SimTime(iter_time.as_nanos() * c);
        let solve = SimTime(iter_time.as_nanos() * base.iterations);
        let predicted = expected_runtime(solve, tau, delta, SimTime::ZERO, mttf);
        println!(
            "{:>6} {:>12} {:>14} {:>10.1} {:>14}",
            c,
            format!("{:.0} s", e1.as_secs_f64()),
            format!("{e2_avg:.0} s"),
            f_avg,
            format!("{:.0} s", predicted.as_secs_f64()),
        );
        best = match best {
            Some((_, b)) if b <= e2_avg => best,
            _ => Some((c, e2_avg)),
        };
    }
    let (c_best, _) = best.expect("swept");
    println!(
        "\nempirical optimum: C = {c_best} iterations; Daly predicts ≈ {c_daly} \
         (same order — the sweep brackets the analytic optimum)"
    );
}
