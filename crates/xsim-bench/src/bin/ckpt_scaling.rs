//! Checkpoint-mode scaling sweep over the striped PFS model: the four
//! write strategies (`full`, `agg:G`, `buddy`, `incr:K`) on the paper's
//! heat application as the rank count grows against a fixed pool of
//! I/O nodes.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin ckpt_scaling [--quick] [--workers N] [--seed N]
//! ```
//!
//! Every configuration keeps the paper's per-rank load (16³ points,
//! 1.28 µs/point under the 1000× slowdown) and checkpoints 4 times over
//! 20 iterations, so the *simulated* checkpoint overhead — the run's
//! exit time minus the same run over the free (Table II) file system —
//! isolates exactly what each mode pays at the PFS. The contention
//! physics being measured:
//!
//! * `full` issues one write request per rank per generation, so the
//!   fixed per-request cost at the I/O nodes (50 µs each, FCFS) grows
//!   linearly with ranks while the node pool stays fixed.
//! * `agg:8` coalesces each 8-rank group into one container write —
//!   same bytes, 1/8th the requests.
//! * `buddy` keeps checkpoints in partner node memory and (at even rank
//!   counts) never touches the PFS.
//! * `incr:4` writes full bytes only every 4th generation and small
//!   block-diffs in between.
//!
//! Results go to `BENCH_ckpt.json`; the sweep exits non-zero if any
//! alternative mode stops beating `full` at ≥256 ranks (the regression
//! bar the differential suite's physics rests on). Simulated times are
//! deterministic per seed; only the `wall_us` fields depend on the host.

use std::fmt::Write as _;
use xsim_apps::heat3d::{self, HeatConfig};
use xsim_apps::ComputeMode;
use xsim_bench::{paper_builder, parse_flags, Scale};
use xsim_core::SimTime;
use xsim_fs::FsModel;
use xsim_mpi::CkptMode;

/// Fixed I/O-node pool every scale contends for.
const IO_NODES: u32 = 4;

fn config(dims: [usize; 3], mode: CkptMode) -> HeatConfig {
    HeatConfig {
        global: [dims[0] * 16, dims[1] * 16, dims[2] * 16],
        ranks: dims,
        iterations: 20,
        halo_interval: 5,
        ckpt_interval: 5,
        mode: ComputeMode::Modeled,
        ckpt_mode: mode,
        per_point: SimTime::from_nanos(1280),
        prefix: "heat".into(),
    }
}

/// Failure-free exit time of one configuration, plus host wall time.
fn run(cfg: &HeatConfig, fs: FsModel, workers: usize, seed: u64) -> (SimTime, u128) {
    let t = std::time::Instant::now();
    let report = paper_builder(cfg, workers, seed)
        .fs_model(fs)
        .run(heat3d::program(cfg.clone()))
        .expect("ckpt_scaling run");
    (report.exit_time(), t.elapsed().as_micros())
}

fn main() {
    let flags = parse_flags();
    let cpus = std::thread::available_parallelism().map_or(0, |p| p.get());
    let mut json = String::new();
    json.push_str("{\"schema\":\"xsim-bench-ckpt-v1\"");
    let _ = write!(
        json,
        ",\"workload\":\"heat3d(16^3 points/rank, 20 iters, ckpt every 5)\
         \",\"io_nodes\":{IO_NODES},\"host_cpus\":{cpus},\"workers\":{}",
        flags.workers
    );
    if cpus <= 1 && flags.workers > 1 {
        let warning = "host_cpus == 1: wall_us columns reflect a serialized host; \
                       simulated times are unaffected";
        eprintln!("WARNING: {warning}");
        let _ = write!(json, ",\"warning\":\"{warning}\"");
    }
    json.push_str(",\"results\":[");

    let mut scales: Vec<[usize; 3]> = vec![[4, 4, 4], [8, 8, 4]];
    if flags.scale == Scale::Paper {
        scales.push([8, 8, 8]);
    }
    let modes = [
        CkptMode::Full,
        CkptMode::Aggregated { group: 8 },
        CkptMode::Buddy,
        CkptMode::Incremental { full_every: 4 },
    ];

    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>12} {:>10}",
        "ranks", "mode", "E1", "overhead", "frac", "wall"
    );
    let mut first = true;
    let mut acceptance_ok = true;
    for dims in scales {
        let n = dims[0] * dims[1] * dims[2];
        // Baseline: the same run over the free (Table II) file system —
        // zero checkpoint I/O cost, identical compute and communication.
        let base_cfg = config(dims, CkptMode::Full);
        let (base, _) = run(&base_cfg, FsModel::free(), flags.workers, flags.seed);
        let mut full_overhead = f64::MAX;
        for mode in modes {
            let cfg = config(dims, mode);
            let (e1, wall_us) = run(&cfg, FsModel::striped(IO_NODES), flags.workers, flags.seed);
            let overhead = (e1 - base).as_secs_f64();
            let frac = overhead / base.as_secs_f64();
            let beats_full = if mode == CkptMode::Full {
                full_overhead = overhead;
                false
            } else {
                overhead < full_overhead
            };
            if n >= 256 && mode != CkptMode::Full && !beats_full {
                acceptance_ok = false;
            }
            println!(
                "{:>8} {:>8} {:>14} {:>12.2}ms {:>11.4}% {:>8}µs",
                n,
                mode.to_string(),
                e1,
                overhead * 1e3,
                frac * 1e2,
                wall_us
            );
            if !first {
                json.push(',');
            }
            first = false;
            let _ = write!(
                json,
                "{{\"ranks\":{n},\"mode\":\"{mode}\",\"e1_us\":{:.0},\"baseline_us\":{:.0},\
                 \"overhead_us\":{:.0},\"overhead_frac\":{frac:.6},\
                 \"beats_full\":{beats_full},\"wall_us\":{wall_us}}}",
                e1.as_secs_f64() * 1e6,
                base.as_secs_f64() * 1e6,
                overhead * 1e6,
            );
        }
    }
    let _ = write!(
        json,
        "],\"alternatives_beat_full_at_256\":{acceptance_ok}}}"
    );
    std::fs::write("BENCH_ckpt.json", &json).expect("write BENCH_ckpt.json");
    println!("\nwrote BENCH_ckpt.json");
    if !acceptance_ok {
        eprintln!("FAIL: an alternative mode no longer beats full at >=256 ranks");
        std::process::exit(1);
    }
}
