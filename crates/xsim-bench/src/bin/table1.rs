//! Regenerates the paper's **Table I**: "Fault (bit flip) injection
//! results" (§II-C, from the Finject study).
//!
//! 100 simulated victim processes are attacked with random bit flips
//! until they crash; the harness reports the distribution of
//! injections-to-failure next to the paper's published values.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin table1 [--seed N]
//! ```

use xsim_bench::parse_flags;
use xsim_fault::bitflip::{run_campaign, CampaignStats, VictimLayout};

struct PaperRow {
    field: &'static str,
    paper: &'static str,
    desc: &'static str,
}

const PAPER: &[PaperRow] = &[
    PaperRow {
        field: "Victims",
        paper: "100",
        desc: "# of victim application instances",
    },
    PaperRow {
        field: "Injections",
        paper: "2197",
        desc: "# of injected failures for all runs",
    },
    PaperRow {
        field: "Minimum",
        paper: "1",
        desc: "# of injections to victim failure",
    },
    PaperRow {
        field: "Maximum",
        paper: "98",
        desc: "# of injections to victim failure",
    },
    PaperRow {
        field: "Mean",
        paper: "21.97",
        desc: "# of injections to victim failure",
    },
    PaperRow {
        field: "Median",
        paper: "17",
        desc: "# of injections to victim failure",
    },
    PaperRow {
        field: "Mode",
        paper: "4",
        desc: "# of injections to victim failure",
    },
    PaperRow {
        field: "Std.Dev.",
        paper: "21.42",
        desc: "# of injections to victim failure",
    },
];

fn main() {
    let flags = parse_flags();
    let layout = VictimLayout::default();
    // The paper capped each victim at 100 injections; with the default
    // layout (p ≈ 1/21.3) a tiny fraction of victims survive the cap —
    // match the paper's protocol and report only crashed victims.
    let counts = run_campaign(100, 100, layout, flags.seed);
    let s = CampaignStats::from_counts(&counts).expect("campaign produced failures");

    println!("Table I — fault (bit flip) injection results");
    println!(
        "victim image: {} KiB, {:.2}% crash-sensitive; cap 100 injections; seed {}",
        layout.total_bytes() / 1024,
        layout.crash_probability() * 100.0,
        flags.seed
    );
    println!();
    println!(
        "{:<12} {:>10} {:>10}  Description",
        "Field", "Measured", "Paper"
    );
    let measured = [
        format!("{}", s.victims),
        format!("{}", s.injections),
        format!("{}", s.min),
        format!("{}", s.max),
        format!("{:.2}", s.mean),
        format!("{}", s.median),
        format!("{}", s.mode),
        format!("{:.2}", s.stddev),
    ];
    for (row, m) in PAPER.iter().zip(measured) {
        println!(
            "{:<12} {:>10} {:>10}  {}",
            row.field, m, row.paper, row.desc
        );
    }
}
