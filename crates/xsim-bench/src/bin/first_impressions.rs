//! Reproduces the paper's **§V-D "First Impressions"** narrative:
//! where in the computation → halo exchange → checkpoint → barrier
//! (→ delete previous checkpoint) cycle an injected failure lands, where
//! it is detected, and what it leaves behind on the checkpoint store
//! (incomplete/corrupted checkpoints, partially deleted old
//! checkpoints).
//!
//! The checkpoint write and delete phases are given a real I/O cost
//! (unlike Table II, which follows the paper in making checkpointing
//! free) so injections can land inside them.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin first_impressions [--quick] [--seed N]
//! ```

use xsim_apps::heat3d::{self, HeatConfig};
use xsim_bench::{
    apply_env_faults, messages_moved, paper_builder, parse_flags, per_message_wall, table2_config,
    write_profile, Scale,
};
use xsim_ckpt::CheckpointManager;
use xsim_core::{ExitKind, SimTime};
use xsim_fs::FsModel;

/// Run one injection; returns (activation, abort, surviving generation,
/// removed incomplete sets).
fn run_injection(
    cfg: &HeatConfig,
    fs_model: FsModel,
    workers: usize,
    seed: u64,
    at: SimTime,
) -> (SimTime, Option<SimTime>, Option<u64>, usize) {
    let builder = paper_builder(cfg, workers, seed).fs_model(fs_model);
    let store = builder.store();
    let report = builder
        .inject_failure(7, at)
        .run(heat3d::program(cfg.clone()))
        .expect("faulty run");
    let mgr = CheckpointManager::new(&cfg.prefix);
    let n = cfg.n_ranks() as u32;
    let latest = mgr.latest_complete(&store, n);
    let removed = mgr.cleanup_incomplete(&store, n).len();
    let act = report.sim.failures.first().expect("activated").actual;
    (act, report.sim.abort_time, latest, removed)
}

fn main() {
    let mut flags = parse_flags();
    if std::env::args().count() == 1 {
        flags.scale = Scale::Quick;
    }
    let mut cfg = table2_config(flags.scale, 250);
    cfg.iterations = 1000;
    let io = SimTime::from_secs(20);
    let fs_model = FsModel {
        meta_latency: io,
        write_bw: 1.0e9,
        read_bw: 2.0e9,
        pfs: None,
    };

    // The "clean" run honors XSIM_FAILURES / XSIM_NET_FAULTS so the
    // narrative can be perturbed from the environment.
    // Metrics stay on for the clean run so its per-message host cost can
    // be reported (deterministic counters don't perturb virtual time).
    let mut builder =
        apply_env_faults(paper_builder(&cfg, flags.workers, flags.seed).fs_model(fs_model))
            .metrics(true);
    if flags.profile.is_some() {
        builder = builder.trace(true);
    }
    let wall_t = std::time::Instant::now();
    let clean = builder
        .run(heat3d::program(cfg.clone()))
        .expect("clean run");
    let wall = wall_t.elapsed();
    assert_eq!(clean.sim.exit, ExitKind::Completed);
    if let Some(p) = &flags.profile {
        write_profile(&clean, p);
    }
    let compute =
        SimTime(cfg.per_point.as_nanos() * cfg.points_per_rank() * cfg.ckpt_interval).scale(1000.0);
    println!(
        "clean run: E1 = {}; per period: {} compute, then halo exchange, \
         then ~{io} checkpoint write, barrier, and ~{io} delete of the \
         previous checkpoint",
        clean.exit_time(),
        compute
    );
    if let Some(per_msg) = per_message_wall(&clean, wall) {
        println!(
            "    host cost: {} simulated messages in {wall:.2?} wall \
             ({:.2} µs mean per message)",
            messages_moved(&clean).unwrap_or(0),
            per_msg * 1e6
        );
    }
    println!();

    // Probe: a mid-compute failure in period 1 activates exactly at the
    // period's compute end (paper §IV-B) — this anchors the timeline.
    let (a1, ab1, latest1, rem1) = run_injection(
        &cfg,
        fs_model,
        flags.workers,
        flags.seed,
        compute.scale(0.5),
    );
    println!("failure during COMPUTATION (injected mid-compute of period 1):");
    println!(
        "    activated at {a1} = end of the compute phase; detected in the halo \
         exchange; abort at {}",
        ab1.expect("aborted")
    );
    println!(
        "    store afterwards: {} complete checkpoint(s); {} incomplete set(s) \
         cleaned (the interrupted period never finished its checkpoint)",
        latest1
            .map(|g| format!("iteration {g}"))
            .unwrap_or("no".into()),
        rem1
    );

    // Period 2 anchors: compute end of period 2 ≈ a1 + write + barrier +
    // compute. Probe again for exactness.
    let s2_guess = a1 + io + compute;
    let (a2, _, _, _) = run_injection(
        &cfg,
        fs_model,
        flags.workers,
        flags.seed,
        s2_guess - compute.scale(0.3),
    );
    // Failure inside the checkpoint WRITE of period 2.
    let (a3, ab3, latest3, rem3) = run_injection(
        &cfg,
        fs_model,
        flags.workers,
        flags.seed,
        a2 + SimTime::from_secs(5),
    );
    println!();
    println!("failure during CHECKPOINTING (injected 5 s into period 2's write):");
    println!(
        "    activated at {a3} = end of the interrupted I/O (compute ended at {a2}); \
         detected in the following barrier; abort at {}",
        ab3.expect("aborted")
    );
    println!(
        "    store afterwards: survives {}; {} incomplete/corrupted checkpoint \
         set(s) cleaned",
        latest3
            .map(|g| format!("iteration {g}"))
            .unwrap_or("none".into()),
        rem3
    );

    // Failure inside the DELETE of the previous checkpoint (after the
    // barrier of period 2): old generation ends up partially deleted.
    let (a4, ab4, latest4, rem4) = run_injection(
        &cfg,
        fs_model,
        flags.workers,
        flags.seed,
        a2 + io + SimTime::from_secs(5),
    );
    println!();
    println!("failure during the POST-BARRIER DELETE of the old checkpoint:");
    println!("    activated at {a4}; abort at {}", ab4.expect("aborted"));
    println!(
        "    store afterwards: survives {}; {} partially deleted old \
         generation(s) cleaned",
        latest4
            .map(|g| format!("iteration {g}"))
            .unwrap_or("none".into()),
        rem4
    );

    println!();
    println!(
        "paper narrative (§V-D): \"the application aborted during the halo \
         exchange and/or checkpoint phase, always resulting in an incomplete \
         or corrupted checkpoint, or during the barrier phase resulting in \
         only partially deleted old checkpoints.\""
    );
}
