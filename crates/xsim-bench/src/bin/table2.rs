//! Regenerates the paper's **Table II**: "Varying the checkpoint
//! interval and system MTTF" (§V-E).
//!
//! The heat application (512³ grid, 1,000 iterations, 32,768 simulated
//! ranks in 32³ cubes) runs on the simulated 32×32×32 torus machine;
//! the checkpoint (= halo exchange) interval C is varied over
//! {500, 250, 125} iterations and the system MTTF over {6,000 s,
//! 3,000 s}; the first row is the no-failure baseline with a single
//! result checkpoint (C = 1,000). Reported per row: the failure-free
//! time E1, the time with failures and restarts E2, the number of
//! activated failures F, and the application MTTF_a = E2/(F+1).
//!
//! ```text
//! cargo run --release -p xsim-bench --bin table2 [--quick] [--workers N] [--seed N]
//! ```

use xsim_bench::{parse_flags, run_heat_baseline, run_heat_campaign, table2_config, Scale};
use xsim_core::SimTime;
use xsim_fault::FailureModel;

fn fmt_s(t: SimTime) -> String {
    format!("{:.0} s", t.as_secs_f64())
}

fn main() {
    let flags = parse_flags();
    let iters = 1000u64;
    let intervals = [iters / 2, iters / 4, iters / 8]; // 500, 250, 125
    let mttfs = [SimTime::from_secs(6000), SimTime::from_secs(3000)];

    println!("Table II — varying the checkpoint interval and system MTTF");
    match flags.scale {
        Scale::Paper => println!(
            "scale: paper (32,768 ranks, 512^3 grid, 32^3 torus); seed {}",
            flags.seed
        ),
        Scale::Quick => println!(
            "scale: quick (4,096 ranks, 256^3 grid, 16^3 torus); seed {}",
            flags.seed
        ),
    }
    println!();
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>4} {:>10}",
        "MTTF_s", "C", "E1", "E2", "F", "MTTF_a"
    );

    // Baseline row: no failures, single checkpoint at the end.
    let base_cfg = table2_config(flags.scale, iters);
    let wall = std::time::Instant::now();
    let e1 = run_heat_baseline(&base_cfg, flags.workers, flags.seed).expect("baseline");
    eprintln!("[baseline C={iters} done in {:.1?}]", wall.elapsed());
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>4} {:>10}",
        "—",
        iters,
        fmt_s(e1),
        "—",
        0,
        "—"
    );

    // E1 depends only on C; compute once per interval.
    let mut e1_by_c = std::collections::HashMap::new();
    for &c in &intervals {
        let cfg = table2_config(flags.scale, c);
        let wall = std::time::Instant::now();
        let e1 = run_heat_baseline(&cfg, flags.workers, flags.seed).expect("E1");
        eprintln!("[E1 for C={c} done in {:.1?}]", wall.elapsed());
        e1_by_c.insert(c, e1);
    }

    for mttf in mttfs {
        for &c in &intervals {
            let cfg = table2_config(flags.scale, c);
            let wall = std::time::Instant::now();
            let e1 = e1_by_c[&c];
            let result = run_heat_campaign(
                &cfg,
                FailureModel::UniformTwiceMttf { mttf },
                flags.workers,
                // One draw stream per MTTF group: the initial failure
                // lands at the same virtual time for every checkpoint
                // interval, so the E2 differences across rows isolate
                // the lost-work effect of C (the paper's groups likewise
                // hold F constant across C).
                flags.seed ^ mttf.as_nanos(),
            )
            .expect("campaign");
            assert!(result.completed, "campaign exhausted its restart budget");
            let mttfa = result
                .application_mttf()
                .map(fmt_s)
                .unwrap_or_else(|| "—".into());
            println!(
                "{:>8} {:>6} {:>10} {:>10} {:>4} {:>10}",
                fmt_s(mttf),
                c,
                fmt_s(e1),
                fmt_s(result.finish_time),
                result.failures,
                mttfa
            );
            eprintln!(
                "[MTTF={} C={c}: {} run(s) in {:.1?}]",
                fmt_s(mttf),
                result.runs.len(),
                wall.elapsed()
            );
        }
    }

    println!();
    println!("paper reference (Table II):");
    println!("       —   1000     5248 s          —    0          —");
    println!("  6000 s    500     5258 s     7957 s    1     3978 s");
    println!("  6000 s    250     6377 s     7074 s    1     3537 s");
    println!("  6000 s    125     6601 s     6750 s    1     3375 s");
    println!("  3000 s    500     5258 s    10584 s    2     3528 s");
    println!("  3000 s    250     6377 s     8618 s    2     2872 s");
    println!("  3000 s    125     6601 s     7948 s    2     2649 s");
}
