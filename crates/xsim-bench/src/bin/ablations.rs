//! Design-choice ablations (DESIGN.md §4): each section prints
//! *simulated* (virtual-time) comparisons for one modeling choice the
//! reproduction makes, so its effect on the Table II regime is visible.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin ablations
//! ```

use bytes::Bytes;
use std::sync::Arc;
use xsim_apps::heat3d::{self, HeatConfig};
use xsim_bench::{apply_env_faults, paper_builder};
use xsim_core::vp::VpProgram;
use xsim_core::SimTime;
use xsim_fs::FsModel;
use xsim_mpi::{
    mpi_program, CollAlgo, Detector, ErrHandler, LossyTransport, MpiCtx, ReduceOp, SimBuilder,
};
use xsim_net::{LinkFaultKind, NetFault, NetModel, Topology};
use xsim_obs::ids;

fn run_virtual(n: usize, program: Arc<dyn VpProgram>) -> SimTime {
    apply_env_faults(SimBuilder::new(n).net(NetModel::small(n)))
        .run(program)
        .unwrap()
        .exit_time()
}

/// One metered collective run: returns the virtual time, simulated
/// message count and mean host wall-time per message (µs).
fn coll_run(n: usize, algo: CollAlgo, program: Arc<dyn VpProgram>) -> (SimTime, u64, f64) {
    let t = std::time::Instant::now();
    let report = apply_env_faults(
        SimBuilder::new(n)
            .net(NetModel::small(n))
            .collectives(algo)
            .metrics(true),
    )
    .run(program)
    .unwrap();
    let wall = t.elapsed();
    let msgs = xsim_bench::messages_moved(&report).unwrap_or(0);
    let per_us = xsim_bench::per_message_wall(&report, wall).map_or(0.0, |s| s * 1e6);
    (report.exit_time(), msgs, per_us)
}

fn section_collectives() {
    println!(
        "## Linear vs log-P collective schedules (one op: virtual time, simulated \
         messages, mean host µs/message)"
    );
    println!(
        "{:>14} {:>6} {:>14} {:>14} {:>7} {:>14} {:>16}",
        "op", "ranks", "linear vt", "tree vt", "vt x", "msgs lin>tree", "µs/msg lin>tree"
    );
    let ops: Vec<(&str, Arc<dyn VpProgram>)> = vec![
        (
            "barrier",
            mpi_program(|mpi: MpiCtx| async move {
                mpi.barrier(mpi.world()).await?;
                mpi.finalize();
                Ok(())
            }),
        ),
        (
            "bcast 64K",
            mpi_program(|mpi: MpiCtx| async move {
                mpi.bcast(mpi.world(), 0, Bytes::from(vec![0u8; 64 * 1024]))
                    .await?;
                mpi.finalize();
                Ok(())
            }),
        ),
        (
            "allreduce 64",
            mpi_program(|mpi: MpiCtx| async move {
                let data = vec![mpi.rank as f64; 64];
                mpi.allreduce_f64(mpi.world(), &data, ReduceOp::Sum).await?;
                mpi.finalize();
                Ok(())
            }),
        ),
        (
            "allgather 1K",
            mpi_program(|mpi: MpiCtx| async move {
                mpi.allgather(mpi.world(), Bytes::from(vec![0u8; 1024]))
                    .await?;
                mpi.finalize();
                Ok(())
            }),
        ),
    ];
    for (label, program) in ops {
        for n in [64usize, 512, 4096] {
            let (lin_vt, lin_msgs, lin_us) = coll_run(n, CollAlgo::Linear, program.clone());
            let (tree_vt, tree_msgs, tree_us) = coll_run(n, CollAlgo::Tree, program.clone());
            println!(
                "{label:>14} {n:>6} {lin_vt:>14} {tree_vt:>14} {:>6.1}x {:>14} {:>16}",
                lin_vt.as_secs_f64() / tree_vt.as_secs_f64().max(1e-12),
                format!("{lin_msgs}>{tree_msgs}"),
                format!("{lin_us:.1}>{tree_us:.1}"),
            );
        }
    }
    println!(
        "  (tree = binomial barrier/bcast/reduce/allreduce and ring allgather:\n   \
         O(log P) rounds — resp. O(P) pipelined — instead of a serialized\n   \
         root fan-out)"
    );
    println!();
}

fn section_eager_threshold() {
    println!("## Eager/rendezvous crossover (virtual round-trip, receiver posts late)");
    println!(
        "{:>12} {:>18} {:>18}",
        "payload", "sender blocked", "round trip"
    );
    for payload in [
        4usize << 10,
        64 << 10,
        256 << 10,
        257 << 10,
        1 << 20,
        4 << 20,
    ] {
        let program = mpi_program(move |mpi: MpiCtx| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let t0 = mpi.now();
                mpi.send(w, 1, 0, Bytes::from(vec![0u8; payload])).await?;
                let blocked = mpi.now() - t0;
                mpi.recv(w, Some(1), Some(1)).await?;
                println!(
                    "{:>12} {:>18} {:>18}",
                    format!("{} KiB", payload / 1024),
                    blocked,
                    mpi.now() - t0
                );
            } else {
                // Receiver posts 10 ms late: eager sends don't care,
                // rendezvous sends stall.
                mpi.sleep(SimTime::from_millis(10)).await;
                mpi.recv(w, Some(0), Some(0)).await?;
                mpi.send(w, 0, 1, Bytes::from_static(b"ack")).await?;
            }
            mpi.finalize();
            Ok(())
        });
        run_virtual(2, program);
    }
    println!();
}

fn section_detectors() {
    println!("## Failure detector ablation (detection latency after a failure at t=0.2 s)");
    for (label, det) in [
        ("timeout (paper §IV-C)", Detector::Timeout),
        (
            "monitor 100 ms",
            Detector::Monitor {
                latency: SimTime::from_millis(100),
            },
        ),
        (
            "monitor 1 ms",
            Detector::Monitor {
                latency: SimTime::from_millis(1),
            },
        ),
    ] {
        let report = SimBuilder::new(2)
            .net(NetModel::small(2))
            .detector(det)
            .errhandler(ErrHandler::Return)
            .inject_failure(1, SimTime::from_millis(200))
            .run_app(|mpi| async move {
                if mpi.rank == 0 {
                    let _ = mpi.recv(mpi.world(), Some(1), None).await;
                } else {
                    mpi.sleep(SimTime::from_millis(200)).await;
                }
                mpi.finalize();
                Ok(())
            })
            .unwrap();
        let detect = report.sim.final_clocks[0] - SimTime::from_millis(200);
        println!("  {label:<24} detection latency: {detect}");
    }
    println!();
}

fn section_engines() {
    println!("## Sequential vs conservative-parallel engine (identical results, wall time)");
    let cfg = HeatConfig {
        ranks: [8, 8, 8],
        global: [32, 32, 32],
        iterations: 100,
        halo_interval: 10,
        ckpt_interval: 50,
        mode: xsim_apps::ComputeMode::Modeled,
        ckpt_mode: Default::default(),
        per_point: SimTime::from_micros(1),
        prefix: "abl".into(),
    };
    let mut reference = None;
    for workers in [1usize, 2, 4, 8] {
        let t = std::time::Instant::now();
        let report = paper_builder(&cfg, workers, 17)
            .run(heat3d::program(cfg.clone()))
            .unwrap();
        let wall = t.elapsed();
        let vt = report.exit_time();
        match &reference {
            None => reference = Some(vt),
            Some(r) => assert_eq!(*r, vt, "engine results diverged"),
        }
        println!(
            "  workers {workers}: wall {wall:>10.2?}, virtual {vt} (identical across engines)"
        );
    }
    println!();
}

fn section_fs_cost() {
    println!(
        "## Checkpoint I/O cost ablation (E1 of heat, 512 ranks, C=25, 256 KiB/rank checkpoints)"
    );
    let cfg = HeatConfig {
        ranks: [8, 8, 8],
        global: [256, 256, 256],
        iterations: 100,
        halo_interval: 25,
        ckpt_interval: 25,
        mode: xsim_apps::ComputeMode::Modeled,
        ckpt_mode: Default::default(),
        per_point: SimTime::from_micros(1),
        prefix: "abl".into(),
    };
    let mut free_e1 = None;
    for (label, model) in [
        ("free (paper Table II)", FsModel::free()),
        ("typical PFS", FsModel::typical_pfs()),
        (
            "slow PFS (10 MB/s/rank)",
            FsModel {
                meta_latency: SimTime::from_millis(1),
                write_bw: 10.0e6,
                read_bw: 100.0e6,
                pfs: None,
            },
        ),
        (
            "overloaded PFS (256 KB/s/rank)",
            FsModel {
                meta_latency: SimTime::from_millis(10),
                write_bw: 256.0e3,
                read_bw: 2.56e6,
                pfs: None,
            },
        ),
    ] {
        let report = paper_builder(&cfg, 1, 17)
            .fs_model(model)
            .run(heat3d::program(cfg.clone()))
            .unwrap();
        let e1 = report.exit_time();
        let delta = match free_e1 {
            None => {
                free_e1 = Some(e1);
                SimTime::ZERO
            }
            Some(f) => e1 - f,
        };
        println!("  {label:<32} E1 = {e1}   (+{delta} checkpoint overhead)");
    }
    println!(
        "  (checkpoints here are 256 KiB/rank; the paper notes its checkpoint\n   \
         files are extremely small, which is why Table II charges no I/O)"
    );
    println!();
}

fn section_drain_contention() {
    println!("## Receiver drain contention (virtual time of one linear barrier)");
    for n in [64usize, 512, 4096] {
        let run = |serialize: bool| {
            let mut net = NetModel::small(n);
            net.serialize_recv = serialize;
            SimBuilder::new(n)
                .net(net)
                .run(mpi_program(|mpi: MpiCtx| async move {
                    mpi.barrier(mpi.world()).await?;
                    mpi.finalize();
                    Ok(())
                }))
                .unwrap()
                .exit_time()
        };
        let free = run(false);
        let contended = run(true);
        println!(
            "  {n:>6} ranks: no contention {free}, drain-serialized {contended} \
             ({:.1}x)",
            contended.as_secs_f64() / free.as_secs_f64().max(1e-12)
        );
    }
    println!(
        "  (the root of a linear collective drains P-1 completions; the \n   \
         contention model exposes that serialization)"
    );
    println!();
}

/// A neighbor exchange along x on a small torus, with metrics on; the
/// common workload of both `--net-faults` sub-sweeps.
fn torus_exchange(
    seed: u64,
    lossy: Option<LossyTransport>,
    faults: Vec<NetFault>,
) -> xsim_mpi::RunReport {
    let mut net = NetModel::paper_machine();
    net.topology = Topology::Torus3d { dims: [4, 4, 4] };
    let mut b = SimBuilder::new(64).net(net).seed(seed).metrics(true);
    if let Some(l) = lossy {
        b = b.lossy(l);
    }
    if !faults.is_empty() {
        b = b.net_faults(faults);
    }
    b.run_app(|mpi| async move {
        let w = mpi.world();
        for round in 0..4u32 {
            let dst = (mpi.rank + 1) % mpi.size;
            let src = (mpi.rank + mpi.size - 1) % mpi.size;
            mpi.sendrecv(
                w,
                dst,
                round,
                Bytes::from(vec![0u8; 4096]),
                Some(src),
                Some(round),
            )
            .await?;
        }
        mpi.finalize();
        Ok(())
    })
    .expect("net-fault run")
}

fn metric(report: &xsim_mpi::RunReport, id: usize) -> u64 {
    report.metrics.as_ref().expect("metrics on").set.value(id)
}

fn section_net_faults(seed: u64) {
    println!("## Lossy transport sweep (64-rank torus exchange, drop probability)");
    println!(
        "{:>8} {:>16} {:>8} {:>12} {:>14}",
        "drop", "virtual time", "drops", "retransmits", "backoff"
    );
    for drop in [0.0f64, 0.05, 0.2, 0.4] {
        let report = torus_exchange(
            seed,
            Some(LossyTransport {
                drop_prob: drop,
                corrupt_prob: drop / 10.0,
                ..LossyTransport::default()
            }),
            Vec::new(),
        );
        println!(
            "{drop:>8.2} {:>16} {:>8} {:>12} {:>14}",
            report.exit_time(),
            metric(&report, ids::NET_DROPS),
            metric(&report, ids::NET_RETRANSMITS),
            SimTime(metric(&report, ids::NET_BACKOFF_NS)),
        );
    }
    println!();

    println!("## Link/switch fault sweep (same exchange, 4x4x4 torus)");
    println!(
        "{:>28} {:>16} {:>14} {:>14}",
        "scenario", "virtual time", "rerouted hops", "degraded time"
    );
    let dead = |node: usize| NetFault {
        node,
        dir: Some(0),
        kind: LinkFaultKind::Down,
        from: SimTime::ZERO,
        until: None,
    };
    let degraded = |node: usize| NetFault {
        node,
        dir: Some(0),
        kind: LinkFaultKind::Degraded(0.25),
        from: SimTime::ZERO,
        until: None,
    };
    let scenarios: Vec<(&str, Vec<NetFault>)> = vec![
        ("healthy", Vec::new()),
        ("1 dead +x link", vec![dead(0)]),
        (
            "4 dead +x links",
            vec![dead(0), dead(5), dead(21), dead(42)],
        ),
        ("1 link at 25% bandwidth", vec![degraded(2)]),
        (
            "dead + degraded mix",
            vec![dead(0), degraded(2), degraded(33)],
        ),
    ];
    for (label, faults) in scenarios {
        let report = torus_exchange(seed, None, faults);
        println!(
            "{label:>28} {:>16} {:>14} {:>14}",
            report.exit_time(),
            metric(&report, ids::NET_REROUTED_HOPS),
            SimTime(metric(&report, ids::NET_DEGRADED_NS)),
        );
    }
    println!(
        "  (reroutes inflate hop counts around dead links; degraded links\n   \
         stretch transfers; a partitioning cut would escalate the peer into\n   \
         the process-failure path instead)"
    );
    println!();
}

fn main() {
    let flags = xsim_bench::parse_flags();
    if let Some(p) = &flags.profile {
        // Profile one representative configuration: a 64-rank barrier on
        // the small machine, traced and metered.
        let report = SimBuilder::new(64)
            .net(NetModel::small(64))
            .trace(true)
            .metrics(true)
            .run(mpi_program(|mpi: MpiCtx| async move {
                mpi.barrier(mpi.world()).await?;
                mpi.finalize();
                Ok(())
            }))
            .expect("profile run");
        xsim_bench::write_profile(&report, p);
    }
    if flags.net_faults {
        section_net_faults(flags.seed);
    }
    section_collectives();
    section_eager_threshold();
    section_detectors();
    section_engines();
    section_fs_cost();
    section_drain_contention();
}
