//! Design-choice ablations (DESIGN.md §4): each section prints
//! *simulated* (virtual-time) comparisons for one modeling choice the
//! reproduction makes, so its effect on the Table II regime is visible.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin ablations
//! ```

use bytes::Bytes;
use std::sync::Arc;
use xsim_apps::heat3d::{self, HeatConfig};
use xsim_bench::paper_builder;
use xsim_core::vp::VpProgram;
use xsim_core::SimTime;
use xsim_fs::FsModel;
use xsim_mpi::{mpi_program, Detector, ErrHandler, MpiCtx, SimBuilder};
use xsim_net::NetModel;

fn run_virtual(n: usize, program: Arc<dyn VpProgram>) -> SimTime {
    SimBuilder::new(n)
        .net(NetModel::small(n))
        .run(program)
        .unwrap()
        .exit_time()
}

fn section_collectives() {
    println!("## Linear vs binomial-tree collectives (virtual time of 1 op)");
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>16}",
        "ranks", "barrier linear", "barrier tree", "bcast64K linear", "bcast64K tree"
    );
    for n in [64usize, 512, 4096] {
        let b_lin = run_virtual(
            n,
            mpi_program(|mpi: MpiCtx| async move {
                mpi.barrier(mpi.world()).await?;
                mpi.finalize();
                Ok(())
            }),
        );
        let b_tree = run_virtual(
            n,
            mpi_program(|mpi: MpiCtx| async move {
                xsim_mpi::collective::barrier_tree(mpi.world().id).await?;
                mpi.finalize();
                Ok(())
            }),
        );
        let c_lin = run_virtual(
            n,
            mpi_program(|mpi: MpiCtx| async move {
                mpi.bcast(mpi.world(), 0, Bytes::from(vec![0u8; 64 * 1024]))
                    .await?;
                mpi.finalize();
                Ok(())
            }),
        );
        let c_tree = run_virtual(
            n,
            mpi_program(|mpi: MpiCtx| async move {
                xsim_mpi::collective::bcast_tree(
                    mpi.world().id,
                    0,
                    Bytes::from(vec![0u8; 64 * 1024]),
                )
                .await?;
                mpi.finalize();
                Ok(())
            }),
        );
        println!("{n:>8} {b_lin:>16} {b_tree:>16} {c_lin:>16} {c_tree:>16}");
    }
    println!();
}

fn section_eager_threshold() {
    println!("## Eager/rendezvous crossover (virtual round-trip, receiver posts late)");
    println!(
        "{:>12} {:>18} {:>18}",
        "payload", "sender blocked", "round trip"
    );
    for payload in [
        4usize << 10,
        64 << 10,
        256 << 10,
        257 << 10,
        1 << 20,
        4 << 20,
    ] {
        let program = mpi_program(move |mpi: MpiCtx| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let t0 = mpi.now();
                mpi.send(w, 1, 0, Bytes::from(vec![0u8; payload])).await?;
                let blocked = mpi.now() - t0;
                mpi.recv(w, Some(1), Some(1)).await?;
                println!(
                    "{:>12} {:>18} {:>18}",
                    format!("{} KiB", payload / 1024),
                    blocked,
                    mpi.now() - t0
                );
            } else {
                // Receiver posts 10 ms late: eager sends don't care,
                // rendezvous sends stall.
                mpi.sleep(SimTime::from_millis(10)).await;
                mpi.recv(w, Some(0), Some(0)).await?;
                mpi.send(w, 0, 1, Bytes::from_static(b"ack")).await?;
            }
            mpi.finalize();
            Ok(())
        });
        run_virtual(2, program);
    }
    println!();
}

fn section_detectors() {
    println!("## Failure detector ablation (detection latency after a failure at t=0.2 s)");
    for (label, det) in [
        ("timeout (paper §IV-C)", Detector::Timeout),
        (
            "monitor 100 ms",
            Detector::Monitor {
                latency: SimTime::from_millis(100),
            },
        ),
        (
            "monitor 1 ms",
            Detector::Monitor {
                latency: SimTime::from_millis(1),
            },
        ),
    ] {
        let report = SimBuilder::new(2)
            .net(NetModel::small(2))
            .detector(det)
            .errhandler(ErrHandler::Return)
            .inject_failure(1, SimTime::from_millis(200))
            .run_app(|mpi| async move {
                if mpi.rank == 0 {
                    let _ = mpi.recv(mpi.world(), Some(1), None).await;
                } else {
                    mpi.sleep(SimTime::from_millis(200)).await;
                }
                mpi.finalize();
                Ok(())
            })
            .unwrap();
        let detect = report.sim.final_clocks[0] - SimTime::from_millis(200);
        println!("  {label:<24} detection latency: {detect}");
    }
    println!();
}

fn section_engines() {
    println!("## Sequential vs conservative-parallel engine (identical results, wall time)");
    let cfg = HeatConfig {
        ranks: [8, 8, 8],
        global: [32, 32, 32],
        iterations: 100,
        halo_interval: 10,
        ckpt_interval: 50,
        mode: xsim_apps::ComputeMode::Modeled,
        per_point: SimTime::from_micros(1),
        prefix: "abl".into(),
    };
    let mut reference = None;
    for workers in [1usize, 2, 4, 8] {
        let t = std::time::Instant::now();
        let report = paper_builder(&cfg, workers, 17)
            .run(heat3d::program(cfg.clone()))
            .unwrap();
        let wall = t.elapsed();
        let vt = report.exit_time();
        match &reference {
            None => reference = Some(vt),
            Some(r) => assert_eq!(*r, vt, "engine results diverged"),
        }
        println!(
            "  workers {workers}: wall {wall:>10.2?}, virtual {vt} (identical across engines)"
        );
    }
    println!();
}

fn section_fs_cost() {
    println!(
        "## Checkpoint I/O cost ablation (E1 of heat, 512 ranks, C=25, 256 KiB/rank checkpoints)"
    );
    let cfg = HeatConfig {
        ranks: [8, 8, 8],
        global: [256, 256, 256],
        iterations: 100,
        halo_interval: 25,
        ckpt_interval: 25,
        mode: xsim_apps::ComputeMode::Modeled,
        per_point: SimTime::from_micros(1),
        prefix: "abl".into(),
    };
    let mut free_e1 = None;
    for (label, model) in [
        ("free (paper Table II)", FsModel::free()),
        ("typical PFS", FsModel::typical_pfs()),
        (
            "slow PFS (10 MB/s/rank)",
            FsModel {
                meta_latency: SimTime::from_millis(1),
                write_bw: 10.0e6,
                read_bw: 100.0e6,
            },
        ),
        (
            "overloaded PFS (256 KB/s/rank)",
            FsModel {
                meta_latency: SimTime::from_millis(10),
                write_bw: 256.0e3,
                read_bw: 2.56e6,
            },
        ),
    ] {
        let report = paper_builder(&cfg, 1, 17)
            .fs_model(model)
            .run(heat3d::program(cfg.clone()))
            .unwrap();
        let e1 = report.exit_time();
        let delta = match free_e1 {
            None => {
                free_e1 = Some(e1);
                SimTime::ZERO
            }
            Some(f) => e1 - f,
        };
        println!("  {label:<32} E1 = {e1}   (+{delta} checkpoint overhead)");
    }
    println!(
        "  (checkpoints here are 256 KiB/rank; the paper notes its checkpoint\n   \
         files are extremely small, which is why Table II charges no I/O)"
    );
    println!();
}

fn section_drain_contention() {
    println!("## Receiver drain contention (virtual time of one linear barrier)");
    for n in [64usize, 512, 4096] {
        let run = |serialize: bool| {
            let mut net = NetModel::small(n);
            net.serialize_recv = serialize;
            SimBuilder::new(n)
                .net(net)
                .run(mpi_program(|mpi: MpiCtx| async move {
                    mpi.barrier(mpi.world()).await?;
                    mpi.finalize();
                    Ok(())
                }))
                .unwrap()
                .exit_time()
        };
        let free = run(false);
        let contended = run(true);
        println!(
            "  {n:>6} ranks: no contention {free}, drain-serialized {contended} \
             ({:.1}x)",
            contended.as_secs_f64() / free.as_secs_f64().max(1e-12)
        );
    }
    println!(
        "  (the root of a linear collective drains P-1 completions; the \n   \
         contention model exposes that serialization)"
    );
    println!();
}

fn main() {
    let flags = xsim_bench::parse_flags();
    if let Some(p) = &flags.profile {
        // Profile one representative configuration: a 64-rank barrier on
        // the small machine, traced and metered.
        let report = SimBuilder::new(64)
            .net(NetModel::small(64))
            .trace(true)
            .metrics(true)
            .run(mpi_program(|mpi: MpiCtx| async move {
                mpi.barrier(mpi.world()).await?;
                mpi.finalize();
                Ok(())
            }))
            .expect("profile run");
        xsim_bench::write_profile(&report, p);
    }
    section_collectives();
    section_eager_threshold();
    section_detectors();
    section_engines();
    section_fs_cost();
    section_drain_contention();
}
