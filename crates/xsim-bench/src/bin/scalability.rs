//! Oversubscription/scalability sweep (paper §II-A): xSim's value
//! proposition is running millions of simulated MPI ranks on a small
//! host. This harness measures wall time, events/s and peak memory as
//! the simulated rank count grows geometrically, for a trivial program
//! and for a communicating ring.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin scalability [--workers N]
//! ```
//!
//! With `--bench-engine` it instead runs the parallel-engine worker
//! scaling sweep (4k and 64k VPs × 1/2/4/8 workers) and writes the
//! measured events/s and speedups to `BENCH_engine.json`.
//!
//! With `--bench-msgpath` it runs a fault-active point-to-point storm
//! on the paper's 32³ torus with the epoch-keyed route cache enabled
//! vs. disabled and writes the wall times, per-message means and
//! speedup to `BENCH_msgpath.json`.

use std::fmt::Write as _;
use xsim_apps::kernels;
use xsim_bench::{apply_env_faults, parse_flags, peak_rss_kib, write_profile};
use xsim_core::SimTime;
use xsim_mpi::SimBuilder;
use xsim_net::{LinkFaultKind, NetFault, NetModel, Topology};

fn torus_for(n: usize) -> Topology {
    // n is a power of two: split the exponent across three dimensions.
    let e = n.trailing_zeros() as usize;
    debug_assert_eq!(1usize << e, n);
    let a = e / 3;
    let b = (e - a) / 2;
    let c = e - a - b;
    Topology::Torus3d {
        dims: [1 << a, 1 << b, 1 << c],
    }
}

/// The `--bench-engine` sweep: a bulk-synchronous compute/allreduce
/// workload at 4k and 64k VPs across 1/2/4/8 workers, reported as
/// events/s and speedup relative to the 1-worker parallel engine. Every
/// number in the JSON is a live measurement from this host.
fn bench_engine() {
    let cpus = std::thread::available_parallelism().map_or(0, |p| p.get());
    let mut json = String::new();
    json.push_str("{\"schema\":\"xsim-bench-engine-v3\"");
    let _ = write!(
        json,
        ",\"workload\":\"compute_allreduce(rounds=4,elems=64,compute=1ms)\",\"host_cpus\":{cpus}",
    );
    if cpus <= 1 {
        // Make single-core results impossible to misread as a scaling
        // regression: every worker>1 row only adds synchronization cost
        // when there is one CPU to run on.
        let warning = "host_cpus == 1: worker speedups are meaningless on this host \
                       (no parallelism exists); regenerate on a multi-core machine";
        eprintln!("WARNING: {warning}");
        let _ = write!(json, ",\"warning\":\"{warning}\"");
    }
    json.push_str(",\"results\":[");
    let mut first = true;
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "vps", "workers", "wall", "events", "events/s", "speedup"
    );
    for n in [4096usize, 65536] {
        let mut net = NetModel::paper_machine();
        net.topology = torus_for(n);
        let mut base_evps = 0.0f64;
        for workers in [1usize, 2, 4, 8] {
            let t = std::time::Instant::now();
            let report = SimBuilder::new(n)
                .net(net.clone())
                .workers(workers)
                .engine(xsim_mpi::EngineKind::Parallel)
                .run(kernels::compute_allreduce(4, 64, SimTime::from_millis(1)))
                .expect("bench-engine run");
            let wall = t.elapsed();
            let evps = report.sim.events_processed as f64 / wall.as_secs_f64();
            if workers == 1 {
                base_evps = evps;
            }
            let speedup = evps / base_evps;
            println!(
                "{:>10} {:>8} {:>10.2?} {:>12} {:>12.0} {:>8.2}",
                n, workers, wall, report.sim.events_processed, evps, speedup
            );
            if !first {
                json.push(',');
            }
            first = false;
            let _ = write!(
                json,
                "{{\"vps\":{},\"workers\":{},\"events\":{},\"wall_us\":{},\
                 \"events_per_sec\":{:.0},\"speedup_vs_1\":{:.3}}}",
                n,
                workers,
                report.sim.events_processed,
                wall.as_micros(),
                evps,
                speedup
            );
        }
    }
    json.push(']');

    // Event-queue microbench: steady-state hold-model churn, calendar
    // vs. the retired binary-heap oracle, across pending-set sizes. The
    // calendar's O(1) pops are what the worker sweep above rides on.
    // The self-gating `queue_bench` bin runs the same tiers and fails CI
    // when the calendar drops below 1.0x at any of them. Measured
    // *before* the VP-scaling ladder: tens of gigabytes of churn leave
    // the allocator in a state that slows the calendar's bucket
    // management (the heap barely allocates), which would discolor the
    // comparison with a cost no fresh process pays.
    json.push_str(",\"queue_bench\":[");
    println!(
        "\n{:>10} {:>14} {:>14} {:>8}",
        "pending", "heap ns/op", "calendar ns/op", "speedup"
    );
    for (i, pending) in xsim_bench::QUEUE_TIERS.into_iter().enumerate() {
        let tier = xsim_bench::run_queue_tier(pending, 200_000);
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>7.2}x",
            tier.pending,
            tier.heap_ns_per_op,
            tier.calendar_ns_per_op,
            tier.speedup()
        );
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"pending\":{},\"ops\":{},\"heap_ns_per_op\":{:.1},\
             \"calendar_ns_per_op\":{:.1},\"speedup\":{:.3}}}",
            tier.pending,
            tier.ops,
            tier.heap_ns_per_op,
            tier.calendar_ns_per_op,
            tier.speedup()
        );
    }
    json.push(']');

    // The VP-scaling ladder (engine-level ring-of-wakes workload, see
    // the `vp_scaling` bin): raw event-core throughput, host cost per
    // event and peak RSS from 2^20 up to the paper's headline 2^27 VPs.
    // Ascending order keeps the monotone VmHWM readable as per-rung
    // peaks; the free-memory gate skips rungs that would not fit.
    json.push_str(",\"vp_scaling\":[");
    println!(
        "\n{:>12} {:>10} {:>14} {:>12} {:>14} {:>12}",
        "vps", "wall", "events", "events/s", "host µs/event", "peakRSS MiB"
    );
    let gate = xsim_bench::vp_mem_gate().unwrap_or(usize::MAX);
    let mut first = true;
    for exp in 20u32..=27 {
        let vps = 1usize << exp;
        if vps > gate {
            println!("{vps:>12}  skipped (above the memory gate)");
            continue;
        }
        let row = xsim_bench::run_vp_scaling_rung(vps, 1, 2);
        println!(
            "{:>12} {:>10.2?} {:>14} {:>12.0} {:>14.3} {:>12.1}",
            row.vps,
            row.wall,
            row.events,
            row.events_per_sec,
            row.host_us_per_event,
            row.peak_rss_kib as f64 / 1024.0
        );
        if !first {
            json.push(',');
        }
        first = false;
        let _ = write!(
            json,
            "{{\"vps\":{},\"workers\":{},\"rounds\":{},\"events\":{},\"wall_us\":{},\
             \"events_per_sec\":{:.0},\"host_us_per_event\":{:.3},\"peak_rss_kib\":{}}}",
            row.vps,
            row.workers,
            row.rounds,
            row.events,
            row.wall.as_micros(),
            row.events_per_sec,
            row.host_us_per_event,
            row.peak_rss_kib
        );
    }
    json.push(']');
    let _ = write!(json, ",\"peak_rss_kib\":{}}}", peak_rss_kib().unwrap_or(0));
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}

/// The `--bench-msgpath` sweep: a point-to-point storm on the paper's
/// 32³ torus with link faults active for the whole run, measured with
/// the epoch-keyed route cache enabled and disabled
/// (`XSIM_NET_ROUTE_CACHE=off` reproduces the pre-cache message path,
/// where every fault-window send recomputes its route). Writes the wall
/// times, per-message means and the speedup to `BENCH_msgpath.json`.
fn bench_msgpath(workers: usize) {
    let dims = [32usize, 32, 32];
    let topo = Topology::Torus3d { dims };
    // Faults active from t=0 for the whole run: two dead links (traffic
    // crossing them must BFS a detour) and one half-bandwidth link.
    let faults = vec![
        NetFault {
            node: topo.node_at([1, 0, 0]),
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        },
        NetFault {
            node: topo.node_at([7, 9, 11]),
            dir: Some(2),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        },
        NetFault {
            node: topo.node_at([16, 16, 16]),
            dir: Some(4),
            kind: LinkFaultKind::Degraded(0.5),
            from: SimTime::ZERO,
            until: None,
        },
    ];
    // Storm ranks occupy the first z-planes of the 32k-node torus
    // (rank→node is 1:1 on the paper machine); the strides put every
    // pair ~32 hops apart, so an uncached fault-window route pays a
    // near-full BFS over all 32768 nodes. Metrics stay off in the timed
    // runs (identical recording cost would dilute the routing contrast);
    // the deterministic message count is rounds × strides × ranks.
    let ranks = 4096usize;
    let (rounds, payload) = (32u32, 256usize);
    let strides = vec![16 + 16 * dims[0], 13 + 10 * dims[0]];
    let msgs = rounds as u64 * strides.len() as u64 * ranks as u64;
    let mut json = String::new();
    json.push_str("{\"schema\":\"xsim-bench-msgpath-v1\"");
    let _ = write!(
        json,
        ",\"workload\":\"p2p_storm(rounds={rounds},strides={strides:?},payload={payload}) \
         {ranks} ranks on the 32x32x32 torus, 3 live faults\",\"host_cpus\":{},\"workers\":{workers}",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    json.push_str(",\"results\":[");
    println!(
        "{:>16} {:>10} {:>12} {:>14} {:>10}",
        "route cache", "wall", "messages", "wall/msg", "speedup"
    );
    let mut base_wall = 0.0f64;
    let mut first = true;
    for (label, cache) in [("off", false), ("on", true)] {
        std::env::set_var("XSIM_NET_ROUTE_CACHE", if cache { "on" } else { "off" });
        let t = std::time::Instant::now();
        SimBuilder::new(ranks)
            .net({
                let mut net = NetModel::paper_machine();
                net.topology = topo.clone();
                net
            })
            .net_faults(faults.clone())
            .workers(workers)
            .run(kernels::p2p_storm(rounds, strides.clone(), payload))
            .expect("bench-msgpath run");
        let wall = t.elapsed();
        let per_msg = wall.as_secs_f64() / msgs as f64;
        if !cache {
            base_wall = wall.as_secs_f64();
        }
        let speedup = base_wall / wall.as_secs_f64();
        println!(
            "{:>16} {:>10.2?} {:>12} {:>12.2}µs {:>9.2}x",
            label,
            wall,
            msgs,
            per_msg * 1e6,
            speedup
        );
        if !first {
            json.push(',');
        }
        first = false;
        let _ = write!(
            json,
            "{{\"route_cache\":\"{label}\",\"wall_us\":{},\"messages\":{msgs},\
             \"wall_per_msg_ns\":{:.0},\"speedup_vs_uncached\":{speedup:.3}}}",
            wall.as_micros(),
            per_msg * 1e9
        );
    }
    std::env::remove_var("XSIM_NET_ROUTE_CACHE");
    json.push(']');
    let _ = write!(json, ",\"peak_rss_kib\":{}}}", peak_rss_kib().unwrap_or(0));
    std::fs::write("BENCH_msgpath.json", &json).expect("write BENCH_msgpath.json");
    println!("\nwrote BENCH_msgpath.json");
}

fn main() {
    let flags = parse_flags();
    if flags.bench_engine {
        bench_engine();
        return;
    }
    if flags.bench_msgpath {
        bench_msgpath(flags.workers);
        return;
    }
    // When profiling, trace+meter the smallest ring run (the larger ones
    // would produce multi-GB traces).
    let mut profile = flags.profile.clone();
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "ranks", "app", "wall", "events", "events/s", "peakRSS MiB"
    );
    for exp in [10u32, 12, 14, 16, 18, 20] {
        let n = 1usize << exp;
        let mut net = NetModel::paper_machine();
        net.topology = torus_for(n);
        // noop: raw VP spawn/teardown capacity.
        let t = std::time::Instant::now();
        let report = apply_env_faults(SimBuilder::new(n).net(net.clone()).workers(flags.workers))
            .run(kernels::noop(SimTime::from_millis(1)))
            .expect("noop run");
        let wall = t.elapsed();
        println!(
            "{:>10} {:>12} {:>10.2?} {:>12} {:>12.0} {:>12.1}",
            n,
            "noop",
            wall,
            report.sim.events_processed,
            report.sim.events_processed as f64 / wall.as_secs_f64(),
            peak_rss_kib().unwrap_or(0) as f64 / 1024.0
        );
        // ring: every rank communicates (one lap).
        if exp <= 18 {
            let prof = profile.take();
            let t = std::time::Instant::now();
            let mut builder = apply_env_faults(SimBuilder::new(n).net(net).workers(flags.workers));
            if prof.is_some() {
                builder = builder.trace(true).metrics(true);
            }
            let report = builder.run(kernels::ring(1, 64)).expect("ring run");
            let wall = t.elapsed();
            if let Some(p) = prof {
                write_profile(&report, &p);
            }
            println!(
                "{:>10} {:>12} {:>10.2?} {:>12} {:>12.0} {:>12.1}",
                n,
                "ring(1)",
                wall,
                report.sim.events_processed,
                report.sim.events_processed as f64 / wall.as_secs_f64(),
                peak_rss_kib().unwrap_or(0) as f64 / 1024.0
            );
        }
    }
    println!();
    println!(
        "paper context (§II-A): xSim executes up to 2^27 communicating MPI \
         ranks on a 960-core cluster; this single-host sweep demonstrates the \
         same lightweight-VP oversubscription principle."
    );
}
