//! FIT × protection-scheme ablation: checkpoint/restart vs. replication.
//!
//! The replication-viability question (Ferreira et al., and the PartRePer
//! partial-replication follow-ons): checkpoint/restart is cheap when
//! failures are rare — its only cost is the checkpoint cadence — but pays
//! lost rework and restart churn per failure, while replication pays a
//! constant factor in *nodes* (degree × the machine) and almost nothing
//! per failure, because replica teams absorb deaths via transparent
//! failover. Sweeping the per-node failure rate (FIT) across protection
//! schemes on the heat application exposes the crossover: in node-seconds
//! (completion time × machine size), C/R wins at low FIT and replication
//! wins once the system MTBF approaches the per-failure rework.
//!
//! Every scheme of a rung shares the failure schedule seed, and the
//! per-node draws are keyed by physical rank, so the ranks common to two
//! schemes fail at identical times — the comparison is apples-to-apples.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin protection [--quick] \
//!     [--seed N] [--workers N] [--protection SPEC] [--fit F]
//! ```
//!
//! `--protection` / `--fit` (or `XSIM_PROTECTION`) restrict the grid to
//! one scheme / one rung — the CI smoke runs
//! `--quick --protection replication --fit 2e9`, a cell whose replica
//! teams absorb ~70 failures with transparent failovers. Emits
//! `BENCH_protection.json`.

use std::collections::BTreeSet;
use xsim_apps::heat3d::{self, HeatConfig};
use xsim_apps::ComputeMode;
use xsim_bench::{
    env_protection, parse_flags, protection_builder, run_protection_cell, ProtectionCell, Scale,
};
use xsim_core::SimTime;
use xsim_fs::FsModel;
use xsim_mpi::ProtectionScheme;

/// Logical heat problem per scale: the paper's per-rank load (16³ points
/// per rank) on a machine small enough that a multi-restart campaign
/// grid stays tractable.
fn base_config(scale: Scale) -> HeatConfig {
    let (ranks, global, iterations) = match scale {
        Scale::Quick => ([4, 4, 2], [64, 64, 32], 120),
        Scale::Paper => ([8, 8, 4], [128, 128, 64], 400),
    };
    HeatConfig {
        global,
        ranks,
        iterations,
        halo_interval: 4,
        ckpt_interval: 12,
        mode: ComputeMode::Modeled,
        ckpt_mode: Default::default(),
        per_point: SimTime::from_nanos(1280),
        prefix: "prot".into(),
    }
}

/// The scheme axis: unprotected, C/R, full duplication, and partial
/// duplication of the first quarter of the logical ranks.
fn scheme_axis(logical: usize) -> Vec<ProtectionScheme> {
    let critical: BTreeSet<usize> = (0..logical / 4).collect();
    vec![
        ProtectionScheme::None,
        ProtectionScheme::CheckpointRestart {
            mode: Default::default(),
        },
        ProtectionScheme::Replication { degree: 2 },
        ProtectionScheme::Partial {
            degree: 2,
            critical,
        },
    ]
}

/// The FIT axis. 1700 FIT is a typical real node; the upper rungs model
/// the harsh regimes (scaled-up machines / near-threshold voltage) where
/// the replication literature places the crossover. On the quick grid
/// the system MTBF at 5×10⁹ FIT (~22 s for 32 nodes) sits below C/R's
/// per-failure rework, which is exactly where C/R efficiency collapses.
const FIT_AXIS: [f64; 5] = [1.0e6, 1.0e8, 1.0e9, 2.0e9, 5.0e9];

fn cell_json(c: &ProtectionCell) -> String {
    format!(
        "{{\"scheme\":\"{}\",\"fit\":{:.1},\"physical_ranks\":{},\"completed\":{},\
         \"runs\":{},\"failures\":{},\"failovers\":{},\"e2_secs\":{:.3},\
         \"node_seconds\":{:.1}}}",
        c.scheme,
        c.fit_per_node,
        c.physical_ranks,
        c.completed,
        c.runs,
        c.failures,
        c.failovers,
        c.finish_time.as_secs_f64(),
        c.node_seconds,
    )
}

fn main() {
    let flags = parse_flags();
    let heat = base_config(flags.scale);
    let logical = heat.n_ranks();

    // Failure-free reference of the unprotected solver: sizes the
    // schedule horizon so even a thrashing campaign stays covered.
    let mut bare = heat.clone();
    bare.ckpt_interval = bare.iterations;
    let e1 = protection_builder(logical, flags.workers, flags.seed)
        .fs_model(FsModel::typical_pfs())
        .run(heat3d::program(bare))
        .expect("failure-free baseline")
        .exit_time();
    let horizon = e1.scale(50.0);
    println!(
        "heat, {logical} logical ranks, {} iterations, E1 = {:.0} s",
        heat.iterations,
        e1.as_secs_f64()
    );

    let scheme_filter = flags.protection.clone().or_else(env_protection);
    let schemes: Vec<ProtectionScheme> = match &scheme_filter {
        Some(s) => vec![s.clone()],
        None => scheme_axis(logical),
    };
    let fits: Vec<f64> = match flags.fit {
        Some(f) => vec![f],
        None => FIT_AXIS.to_vec(),
    };

    println!(
        "\n{:>10} {:>16} {:>6} {:>5} {:>9} {:>10} {:>12} {:>16}",
        "FIT/node", "scheme", "nodes", "runs", "failures", "failovers", "E2", "node-seconds"
    );
    let mut cells: Vec<ProtectionCell> = Vec::new();
    for &fit in &fits {
        for scheme in &schemes {
            let cell =
                run_protection_cell(&heat, scheme, fit, horizon, 100, flags.workers, flags.seed)
                    .expect("protection cell");
            println!(
                "{:>10.0e} {:>16} {:>6} {:>5} {:>9} {:>10} {:>12} {:>16}",
                cell.fit_per_node,
                cell.scheme.to_string(),
                cell.physical_ranks,
                if cell.completed {
                    cell.runs.to_string()
                } else {
                    format!("{}*", cell.runs)
                },
                cell.failures,
                cell.failovers,
                format!("{:.0} s", cell.finish_time.as_secs_f64()),
                format!("{:.0}", cell.node_seconds),
            );
            cells.push(cell);
        }
    }

    // Crossover verdict: compare C/R and full replication in
    // node-seconds at the extreme rungs of the grid.
    let pick = |fit: f64, scheme: &str| {
        cells
            .iter()
            .find(|c| c.fit_per_node == fit && c.scheme.to_string() == scheme)
    };
    if fits.len() > 1 && scheme_filter.is_none() {
        let (lo, hi) = (fits[0], fits[fits.len() - 1]);
        if let (Some(cr_lo), Some(cr_hi), Some(rep_lo), Some(rep_hi)) = (
            pick(lo, "cr"),
            pick(hi, "cr"),
            pick(lo, "replication:2"),
            pick(hi, "replication:2"),
        ) {
            let low_ok = rep_lo.node_seconds > cr_lo.node_seconds;
            let high_ok = rep_hi.node_seconds < cr_hi.node_seconds || !cr_hi.completed;
            println!(
                "\nlow  FIT ({lo:.0e}): replication/CR node-seconds = {:.2} (expect > 1)",
                rep_lo.node_seconds / cr_lo.node_seconds
            );
            println!(
                "high FIT ({hi:.0e}): replication/CR node-seconds = {:.2} (expect < 1){}",
                rep_hi.node_seconds / cr_hi.node_seconds,
                if cr_hi.completed {
                    ""
                } else {
                    " [CR campaign gave up]"
                }
            );
            if low_ok && high_ok {
                println!("crossover observed: C/R wins at low FIT, replication at high FIT");
            } else {
                println!("crossover NOT observed at the grid extremes");
            }
        }
    }

    let rows: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        "{{\n  \"e1_secs\": {:.3},\n  \"logical_ranks\": {},\n  \"seed\": {},\n  \
         \"cells\": [\n    {}\n  ]\n}}\n",
        e1.as_secs_f64(),
        logical,
        flags.seed,
        rows.join(",\n    ")
    );
    std::fs::write("BENCH_protection.json", json).expect("write BENCH_protection.json");
    eprintln!("wrote BENCH_protection.json");
}
