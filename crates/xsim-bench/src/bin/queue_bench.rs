//! Self-gating event-queue churn benchmark: uniform hold-model churn at
//! the standard pending tiers (1k / 100k / 1M), calendar queue vs. the
//! binary-heap oracle.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin queue_bench [-- --quick | --ops N]
//! ```
//!
//! Exits non-zero if the calendar queue falls below 1.0× the heap at any
//! tier (the `ckpt_scaling` regression-gate pattern): ordered per-bucket
//! insertion is supposed to make the calendar strictly dominate, and CI
//! smokes this so a hot-path regression fails the build instead of only
//! discoloring `BENCH_engine.json`. `--quick` trims the timed span for
//! CI; the tiers and the gate stay the same.

use xsim_bench::{peak_rss_kib, run_queue_tier, QUEUE_TIERS};

fn main() {
    let mut ops = 200_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => ops = 50_000,
            "--ops" => {
                ops = args.next().and_then(|v| v.parse().ok()).expect("--ops N");
            }
            other => {
                eprintln!("unknown flag {other}; known: --quick --ops N");
                std::process::exit(2);
            }
        }
    }

    println!(
        "{:>10} {:>10} {:>14} {:>16} {:>8}",
        "pending", "ops", "heap ns/op", "calendar ns/op", "speedup"
    );
    let mut gate_ok = true;
    for pending in QUEUE_TIERS {
        let tier = run_queue_tier(pending, ops);
        let speedup = tier.speedup();
        let flag = if speedup >= 1.0 {
            ""
        } else {
            "  << below heap"
        };
        println!(
            "{:>10} {:>10} {:>14.1} {:>16.1} {:>7.2}x{flag}",
            tier.pending, tier.ops, tier.heap_ns_per_op, tier.calendar_ns_per_op, speedup
        );
        gate_ok &= speedup >= 1.0;
    }
    println!(
        "\npeak RSS: {:.1} MiB",
        peak_rss_kib().unwrap_or(0) as f64 / 1024.0
    );
    if !gate_ok {
        eprintln!("FAIL: calendar queue below 1.0x heap at a pending tier");
        std::process::exit(1);
    }
}
