//! Million-VP oversubscription smoke (paper §II-A): how many simulated
//! ranks the data-oriented event core sustains on one host, and at what
//! host cost per event. Runs directly on the core engine — timer sleeps
//! plus a ring of cross-rank wakes — so the number measures the event
//! core (calendar queue, inline call storage, SoA VP table, batched
//! exchange), not the MPI layer above it.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin million_vp -- \
//!     [--vps N] [--workers N] [--rounds N] [--quick]
//! ```
//!
//! Defaults: 2^20 VPs, 1 worker, 2 rounds. `--quick` drops to 2^16 VPs
//! for CI smokes.

use xsim_bench::{peak_rss_kib, run_million_vp};

fn main() {
    let mut vps = 1usize << 20;
    let mut workers = 1usize;
    let mut rounds = 2u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => vps = 1 << 16,
            "--vps" => {
                vps = args.next().and_then(|v| v.parse().ok()).expect("--vps N");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N");
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N");
            }
            other => {
                eprintln!("unknown flag {other}; known: --vps --workers --rounds --quick");
                std::process::exit(2);
            }
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    if workers > 1 && cpus == 1 {
        eprintln!("WARNING: host has 1 CPU; {workers} workers cannot speed anything up");
    }
    println!("million_vp: {vps} VPs, {workers} worker(s), {rounds} round(s), host_cpus={cpus}");

    let (report, wall) = run_million_vp(vps, workers, rounds);
    let events = report.events_processed;
    let evps = events as f64 / wall.as_secs_f64();
    let us_per_event = wall.as_secs_f64() * 1e6 / events as f64;
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "vps", "workers", "wall", "events", "events/s", "host µs/event", "peakRSS MiB"
    );
    println!(
        "{:>10} {:>8} {:>10.2?} {:>12} {:>12.0} {:>14.3} {:>12.1}",
        vps,
        workers,
        wall,
        events,
        evps,
        us_per_event,
        peak_rss_kib().unwrap_or(0) as f64 / 1024.0
    );
    let p = &report.profile;
    println!(
        "event core: {} window(s) ({} ingest-skipped), pool reuse {:.1}%, \
         bucket hwm {}, steal hwm {}",
        p.windows,
        p.ingest_skips,
        p.pool_reuse_ratio() * 100.0,
        p.queue_bucket_hwm,
        p.window_steal_hwm,
    );
    assert_eq!(
        report.exit,
        xsim_core::ExitKind::Completed,
        "million_vp workload must run to completion"
    );
}
