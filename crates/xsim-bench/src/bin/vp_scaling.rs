//! VP-scaling ladder (paper §II-A): the `million_vp` workload from 2²⁰
//! up to the paper's headline 2²⁷ simulated MPI processes, on one host.
//! Each rung reports events/s, host-µs/event and peak RSS — the three
//! numbers that say whether the event core's memory diet holds at scale.
//!
//! ```text
//! cargo run --release -p xsim-bench --bin vp_scaling -- \
//!     [--quick] [--workers N] [--rounds N] [--max-vps N]
//! ```
//!
//! Rungs run in ascending VP order so the monotone `VmHWM` reading after
//! each rung is that rung's own peak. A free-memory gate (80% of
//! `MemAvailable` over a deliberately pessimistic bytes/VP estimate)
//! skips rungs that would not fit; `--max-vps` caps the ladder
//! explicitly and composes with the gate (the smaller bound wins).
//! `--quick` runs the single 2¹⁶ rung for CI smokes.

use xsim_bench::{run_vp_scaling_rung, vp_mem_gate, VP_SCALING_BYTES_PER_VP};

fn main() {
    let mut quick = false;
    let mut workers = 1usize;
    let mut rounds = 2u32;
    let mut max_vps = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N");
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N");
            }
            "--max-vps" => {
                max_vps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-vps N");
            }
            other => {
                eprintln!(
                    "unknown flag {other}; known: --quick --workers N --rounds N --max-vps N"
                );
                std::process::exit(2);
            }
        }
    }

    let rungs: Vec<usize> = if quick {
        vec![1 << 16]
    } else {
        (20..=27).map(|e| 1usize << e).collect()
    };
    let gate = vp_mem_gate();
    let cap = gate.map_or(max_vps, |g| g.min(max_vps));
    println!(
        "vp_scaling: {} worker(s), {} round(s), memory gate {} VPs ({} B/VP estimate), cap {}",
        workers,
        rounds,
        gate.map_or_else(|| "unavailable".into(), |g| g.to_string()),
        VP_SCALING_BYTES_PER_VP,
        if cap == usize::MAX {
            "none".into()
        } else {
            cap.to_string()
        },
    );
    println!(
        "{:>12} {:>8} {:>10} {:>14} {:>12} {:>14} {:>12}",
        "vps", "workers", "wall", "events", "events/s", "host µs/event", "peakRSS MiB"
    );
    let mut ran = 0usize;
    for vps in rungs {
        if vps > cap {
            println!("{vps:>12}  skipped (above the memory gate / --max-vps cap)");
            continue;
        }
        let row = run_vp_scaling_rung(vps, workers, rounds);
        println!(
            "{:>12} {:>8} {:>10.2?} {:>14} {:>12.0} {:>14.3} {:>12.1}",
            row.vps,
            row.workers,
            row.wall,
            row.events,
            row.events_per_sec,
            row.host_us_per_event,
            row.peak_rss_kib as f64 / 1024.0
        );
        ran += 1;
    }
    if ran == 0 {
        eprintln!("FAIL: every rung was gated out; nothing was measured");
        std::process::exit(1);
    }
}
