//! # xsim-bench — evaluation harnesses
//!
//! One binary per paper artifact (see DESIGN.md §3):
//!
//! * `table1` — fault (bit-flip) injection campaign statistics.
//! * `table2` — varying the checkpoint interval and system MTTF with the
//!   heat application on the simulated 32,768-node torus.
//! * `first_impressions` — the failure-mode narrative of §V-D.
//! * `scalability` — VP capacity/oversubscription sweep (§II-A claims).
//! * `ablations` — design-choice sweeps from DESIGN.md §4 (engines,
//!   eager/rendezvous threshold, linear vs tree collectives, detectors).
//!
//! Criterion micro-benchmarks live under `benches/`.

use std::sync::Arc;
use xsim_apps::heat3d::{self, HeatConfig};
use xsim_apps::heat3d_rep::{self, RepHeatConfig};
use xsim_ckpt::{CampaignResult, CheckpointManager, Orchestrator, ProtectionCampaign};
use xsim_core::vp::VpProgram;
use xsim_core::{SimError, SimTime};
use xsim_fault::{
    Component, FailureModel, FailureSchedule, FaultSchedule, NodeReliability, SystemReliability,
};
use xsim_fs::{FsModel, FsStore};
use xsim_mpi::{HeartbeatConfig, ProtectionScheme, ReplicaMap, RunReport, SimBuilder};
use xsim_net::{NetFault, NetModel};
use xsim_proc::ProcModel;

/// Builder configured like the paper's simulated system (§V-C): 32³
/// wrapped torus (or a scaled-down torus), 1 µs / 32 GB/s links, 256 kB
/// eager threshold, 1000× node slowdown, free checkpoint I/O.
pub fn paper_builder(cfg: &HeatConfig, workers: usize, seed: u64) -> SimBuilder {
    let mut net = NetModel::paper_machine();
    net.topology = xsim_net::Topology::Torus3d {
        dims: [cfg.ranks[0], cfg.ranks[1], cfg.ranks[2]],
    };
    SimBuilder::new(cfg.n_ranks())
        .net(net)
        .proc(ProcModel::with_slowdown(1000.0))
        // "MPI collectives utilize linear algorithms" (§V-C) — pinned
        // here because the builder default is the tree schedules.
        .collectives(xsim_mpi::CollAlgo::Linear)
        .workers(workers)
        .seed(seed)
}

/// One Table II cell: run the heat application to completion under the
/// given failure model.
pub fn run_heat_campaign(
    cfg: &HeatConfig,
    model: FailureModel,
    workers: usize,
    seed: u64,
) -> Result<CampaignResult, SimError> {
    let store = FsStore::new();
    let mut orchestrator = Orchestrator::new(model, seed, CheckpointManager::new(&cfg.prefix));
    orchestrator.mode = cfg.ckpt_mode;
    let cfg2 = cfg.clone();
    orchestrator.run_to_completion(
        store,
        heat3d::program(cfg.clone()),
        cfg.n_ranks(),
        move || paper_builder(&cfg2, workers, seed),
    )
}

/// Failure-free execution time of a heat configuration (Table II's E1).
pub fn run_heat_baseline(cfg: &HeatConfig, workers: usize, seed: u64) -> Result<SimTime, SimError> {
    let report = paper_builder(cfg, workers, seed).run(heat3d::program(cfg.clone()))?;
    Ok(report.exit_time())
}

/// Scale description for the Table II harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full 32,768-rank configuration.
    Paper,
    /// A reduced 4,096-rank configuration for CI / quick runs (16³
    /// ranks, proportionally scaled problem).
    Quick,
}

/// Build the heat configuration for a Table II row at a scale.
pub fn table2_config(scale: Scale, ckpt_interval: u64) -> HeatConfig {
    match scale {
        Scale::Paper => HeatConfig::paper(ckpt_interval),
        Scale::Quick => {
            let mut cfg = HeatConfig::paper(ckpt_interval);
            cfg.ranks = [16, 16, 16];
            cfg.global = [256, 256, 256]; // keeps 16³ points per rank
            cfg
        }
    }
}

/// The environment-variable fault schedules every harness binary honors
/// (xSim's env-var injection path, paper §IV-B, extended to the network
/// fault surface): `XSIM_FAILURES` (`rank:seconds,...`) and
/// `XSIM_NET_FAULTS` (`rank:R:SECS`, `link:NODE:DIR:SECS[:kind]`,
/// `switch:NODE:SECS[:kind]`). Rank entries of `XSIM_NET_FAULTS` merge
/// into the process-failure half. `XSIM_PROTECTION` is validated here
/// too, so a malformed protection spec fails fast in every binary, not
/// just the ones that act on it. Exits with a diagnostic on a malformed
/// schedule.
pub fn env_fault_schedules() -> (FailureSchedule, Vec<NetFault>) {
    let _ = env_protection();
    let mut failures = match FailureSchedule::from_env() {
        Ok(s) => s.unwrap_or_default(),
        Err(e) => {
            eprintln!("XSIM_FAILURES: {e}");
            std::process::exit(2);
        }
    };
    let mut net = Vec::new();
    match FaultSchedule::from_env() {
        Ok(Some(s)) => {
            for (rank, at) in s.rank_failures().iter() {
                failures.push(rank, at);
            }
            net = s.net_faults();
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("XSIM_NET_FAULTS: {e}");
            std::process::exit(2);
        }
    }
    (failures, net)
}

/// Apply the environment fault schedules to a builder (no-op when
/// neither variable is set). Harness binaries pass every builder they
/// construct through this, so a user can perturb any table or sweep
/// without recompiling.
pub fn apply_env_faults(builder: SimBuilder) -> SimBuilder {
    let (failures, net) = env_fault_schedules();
    let mut b = builder;
    if !failures.is_empty() {
        b = b.inject_failures(failures.iter());
    }
    if !net.is_empty() {
        b = b.net_faults(net);
    }
    b
}

/// Read the protection scheme from `XSIM_PROTECTION`, if set —
/// the resilience counterpart of [`env_fault_schedules`]'s injection
/// variables. Format: `none`, `cr[:MODE]` with `MODE` one of `full`,
/// `agg[:G]`, `buddy`, `incr[:K]`, `replication[:DEGREE]`, or
/// `partial[:DEGREE[:SET]]` with `SET` a `+`-separated list of ranks
/// and `A-B` ranges (e.g. `partial:2:0-3+8`). Exits with a diagnostic
/// on a malformed spec.
pub fn env_protection() -> Option<ProtectionScheme> {
    match ProtectionScheme::from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("XSIM_PROTECTION: {e}");
            std::process::exit(2);
        }
    }
}

/// Builder for protection-ablation worlds: the link parameters, node
/// slowdown and linear collectives of [`paper_builder`], but a
/// fully-connected topology sized to the *physical* world. Replicated
/// layouts — partial ones especially — have ragged sizes no torus
/// hosts, and pinning the topology across schemes keeps the FIT ×
/// scheme comparison apples-to-apples.
pub fn protection_builder(physical_ranks: usize, workers: usize, seed: u64) -> SimBuilder {
    let mut net = NetModel::paper_machine();
    net.topology = xsim_net::Topology::FullyConnected {
        nodes: physical_ranks,
    };
    SimBuilder::new(physical_ranks)
        .net(net)
        .proc(ProcModel::with_slowdown(1000.0))
        .collectives(xsim_mpi::CollAlgo::Linear)
        .workers(workers)
        .seed(seed)
}

/// One cell of the FIT × protection-scheme ablation.
#[derive(Debug, Clone)]
pub struct ProtectionCell {
    /// Protection scheme the cell ran under.
    pub scheme: ProtectionScheme,
    /// Per-node failure rate in FIT (failures per 10⁹ device-hours).
    pub fit_per_node: f64,
    /// Physical world size (logical ranks × replication blow-up).
    pub physical_ranks: usize,
    /// Whether the campaign finished within its restart budget.
    pub completed: bool,
    /// Simulation runs the campaign needed (1 = no restart).
    pub runs: usize,
    /// Process failures experienced across all runs.
    pub failures: u64,
    /// Transparent leader failovers (replicated schemes; 0 otherwise).
    pub failovers: u64,
    /// Completion time on the continuous virtual timeline (Table II's
    /// E2 generalized to arbitrary schemes).
    pub finish_time: SimTime,
    /// E2 × physical ranks — the resource-fair cost that charges
    /// replication for the extra nodes it occupies.
    pub node_seconds: f64,
}

/// Run one FIT × scheme cell: generate the per-node exponential failure
/// schedule over `horizon` for the scheme's *physical* world, then drive
/// the matching heat variant through a [`ProtectionCampaign`] on a
/// charged parallel file system.
///
/// Schemes compose as the resilience literature assumes: `none` runs
/// checkpoint-free, `cr` checkpoints at the configured cadence, and the
/// replicated schemes checkpoint *and* replicate, so a whole-team death
/// resumes from the last generation instead of scratch.
pub fn run_protection_cell(
    heat: &HeatConfig,
    scheme: &ProtectionScheme,
    fit_per_node: f64,
    horizon: SimTime,
    max_restarts: usize,
    workers: usize,
    seed: u64,
) -> Result<ProtectionCell, SimError> {
    let logical = heat.n_ranks();
    let physical = ReplicaMap::from_scheme(scheme, logical)
        .map(|m| m.physical_size())
        .unwrap_or(logical);
    let schedule = if fit_per_node > 0.0 {
        let node = NodeReliability::new().with(Component::new("node", fit_per_node), 1);
        SystemReliability::new(node, physical).generate_schedule(horizon, seed)
    } else {
        FailureSchedule::new()
    };

    let hb = HeartbeatConfig::default();
    let (program, done_marker): (Arc<dyn VpProgram>, Option<String>) = match scheme {
        ProtectionScheme::None => {
            // Unprotected baseline: no mid-run checkpoints (the solver
            // still persists its final state, a negligible write), so a
            // failure restarts the whole solve.
            let mut cfg = heat.clone();
            cfg.ckpt_interval = cfg.iterations;
            (heat3d::program(cfg), None)
        }
        ProtectionScheme::CheckpointRestart { mode } => {
            let mut cfg = heat.clone();
            cfg.ckpt_mode = *mode;
            (heat3d::program(cfg), None)
        }
        _ => {
            let cfg = RepHeatConfig {
                heat: heat.clone(),
                scheme: scheme.clone(),
                hb,
                ckpt: true,
            };
            let marker = cfg.done_marker();
            (heat3d_rep::program(cfg), Some(marker))
        }
    };

    let campaign = ProtectionCampaign {
        schedule,
        max_restarts,
        manager: CheckpointManager::new(&heat.prefix),
        ckpt_ranks: logical as u32,
        mode: scheme.ckpt_mode(),
        done_marker,
    };
    let replicated = scheme.is_replicated();
    let result = campaign.run_to_completion(FsStore::new(), program, move || {
        let mut b = protection_builder(physical, workers, seed)
            .fs_model(FsModel::typical_pfs())
            .metrics(true);
        if replicated {
            // Align the MPI failure detector with the heartbeat
            // protocol, so pending-op errors and heartbeat detections
            // agree on when a death becomes visible.
            b = b.detector(hb.detector());
        }
        b
    })?;

    let failovers = result
        .runs
        .iter()
        .filter_map(|r| r.metrics.as_ref())
        .map(|m| m.set.value(xsim_obs::ids::REP_FAILOVERS))
        .sum();
    Ok(ProtectionCell {
        scheme: scheme.clone(),
        fit_per_node,
        physical_ranks: physical,
        completed: result.completed,
        runs: result.runs.len(),
        failures: result.failures,
        failovers,
        finish_time: result.finish_time,
        node_seconds: result.finish_time.as_secs_f64() * physical as f64,
    })
}

/// Parse common CLI flags of the harness binaries.
pub fn parse_flags() -> Flags {
    let mut flags = Flags::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => flags.scale = Scale::Quick,
            "--net-faults" => flags.net_faults = true,
            "--bench-engine" => flags.bench_engine = true,
            "--bench-msgpath" => flags.bench_msgpath = true,
            "--workers" => {
                flags.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N");
            }
            "--seed" => {
                flags.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N");
            }
            "--profile" => {
                flags.profile = Some(args.next().expect("--profile out.json"));
            }
            "--protection" => {
                let spec = args.next().expect("--protection SPEC");
                flags.protection = Some(spec.parse().unwrap_or_else(|e| {
                    eprintln!("--protection: {e}");
                    std::process::exit(2);
                }));
            }
            "--fit" => {
                let fit: f64 = args.next().and_then(|v| v.parse().ok()).expect("--fit F");
                if !fit.is_finite() || fit < 0.0 {
                    eprintln!("--fit: rate must be a non-negative finite FIT value");
                    std::process::exit(2);
                }
                flags.fit = Some(fit);
            }
            other => {
                eprintln!(
                    "unknown flag {other}; known: --quick --net-faults --bench-engine \
                     --bench-msgpath --workers N --seed N --profile out.json \
                     --protection SPEC --fit F"
                );
                std::process::exit(2);
            }
        }
    }
    flags
}

/// Parsed harness flags.
#[derive(Debug, Clone)]
pub struct Flags {
    /// Scale selection.
    pub scale: Scale,
    /// Run the network-fault sweep sections (`--net-faults`).
    pub net_faults: bool,
    /// Run the parallel-engine scaling sweep and emit
    /// `BENCH_engine.json` (`--bench-engine`, `scalability` bin only).
    pub bench_engine: bool,
    /// Run the message-path sweep (fault-active p2p storm, route cache
    /// on vs. off) and emit `BENCH_msgpath.json` (`--bench-msgpath`,
    /// `scalability` bin only).
    pub bench_msgpath: bool,
    /// Native worker threads.
    pub workers: usize,
    /// Master seed.
    pub seed: u64,
    /// Write a Chrome trace (plus `*.metrics.json` snapshot) of one
    /// representative run to this path.
    pub profile: Option<String>,
    /// Restrict the protection ablation to one scheme (`--protection`);
    /// `XSIM_PROTECTION` is the environment-variable equivalent.
    pub protection: Option<ProtectionScheme>,
    /// Restrict the protection ablation to one per-node FIT rung
    /// (`--fit`).
    pub fit: Option<f64>,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            scale: Scale::Paper,
            net_faults: false,
            bench_engine: false,
            bench_msgpath: false,
            workers: 1,
            // Default chosen so both MTTF groups of Table II experience
            // failures in their first run (any seed is valid; the runs
            // are deterministic per seed).
            seed: 17,
            profile: None,
            protection: None,
            fit: None,
        }
    }
}

/// Total simulated messages moved by a metered run (eager +
/// rendezvous), or `None` when metrics were off.
pub fn messages_moved(report: &RunReport) -> Option<u64> {
    let set = &report.metrics.as_ref()?.set;
    Some(set.value(xsim_obs::ids::NET_MSGS_EAGER) + set.value(xsim_obs::ids::NET_MSGS_RENDEZVOUS))
}

/// Mean host wall-time per simulated message: the headline number of the
/// message-pipeline optimization work. `None` when metrics were off or
/// the run moved no messages.
pub fn per_message_wall(report: &RunReport, wall: std::time::Duration) -> Option<f64> {
    let msgs = messages_moved(report)?;
    (msgs > 0).then(|| wall.as_secs_f64() / msgs as f64)
}

/// Write the profile of a traced+metered run: the merged Chrome trace to
/// `path` (load it in `chrome://tracing` or Perfetto) and the metrics
/// snapshot to a sibling `*.metrics.json`. Harness binaries call this
/// when `--profile` is given.
pub fn write_profile(report: &RunReport, path: &str) {
    if let Some(json) = report.chrome_trace_json() {
        std::fs::write(path, json).expect("write Chrome trace");
    }
    if let Some(json) = report.metrics_json() {
        let mpath = match path.strip_suffix(".json") {
            Some(stem) => format!("{stem}.metrics.json"),
            None => format!("{path}.metrics.json"),
        };
        std::fs::write(&mpath, json).expect("write metrics snapshot");
        eprintln!("profile: wrote {path} and {mpath}");
    }
}

/// Peak resident set size of this process in KiB (Linux), if readable.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

/// Convenience: an `Arc`ed heat program for repeated runs.
pub fn heat_program(cfg: &HeatConfig) -> Arc<dyn xsim_core::vp::VpProgram> {
    heat3d::program(cfg.clone())
}

/// The engine-level oversubscription workload (`million_vp` bin and the
/// 1M-VP row of `BENCH_engine.json`): each VP alternates timer sleeps
/// with a lookahead-respecting wake of its ring successor, exercising
/// the event core — calendar queue, inline `Call` storage, SoA VP table,
/// cross-shard exchange — without any MPI-layer machinery on top.
pub fn million_vp_program(n_ranks: usize, rounds: u32) -> Arc<dyn xsim_core::vp::VpProgram> {
    use xsim_core::vp::VpExit;
    use xsim_core::{ctx, Rank};
    Arc::new(move |rank: Rank| {
        let n = n_ranks;
        Box::pin(async move {
            for _ in 0..rounds {
                ctx::sleep(SimTime::from_micros(10)).await;
                let peer = Rank::new((rank.idx() + 1) % n);
                ctx::with_kernel(|k, me| {
                    let t = k.vp(me).clock() + SimTime::from_micros(2);
                    k.schedule_at(t, peer, xsim_core::event::Action::WakeMessage);
                });
            }
            VpExit::Finished
        }) as xsim_core::vp::VpFuture
    })
}

/// One timed `million_vp` leg on the core engine. Returns the report
/// and the end-to-end wall time (spawn scheduling and report assembly
/// included — this is a throughput number, not a profile).
pub fn run_million_vp(
    vps: usize,
    workers: usize,
    rounds: u32,
) -> (xsim_core::SimReport, std::time::Duration) {
    let cfg = xsim_core::CoreConfig {
        n_ranks: vps,
        workers,
        engine: if workers > 1 {
            xsim_core::EngineKind::Parallel
        } else {
            xsim_core::EngineKind::Auto
        },
        lookahead: SimTime::from_micros(1),
        ..Default::default()
    };
    let setup = |_: &mut xsim_core::Kernel| {};
    let t = std::time::Instant::now();
    let report = xsim_core::engine::run(cfg, million_vp_program(vps, rounds), &setup)
        .expect("million_vp run");
    (report, t.elapsed())
}

/// `MemAvailable` from `/proc/meminfo` in KiB (Linux), if readable.
pub fn mem_available_kib() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in meminfo.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

/// Conservative resident-cost estimate for one VP of the scaling-ladder
/// workload: ~34 B of SoA table columns, a boxed ring future plus its
/// allocator slack, and this VP's share of the in-flight 40-byte event
/// records. Deliberately pessimistic — the gate must fail *before* the
/// allocation does.
pub const VP_SCALING_BYTES_PER_VP: u64 = 512;

/// Largest VP count the free-memory gate admits for the scaling ladder
/// (80% of `MemAvailable` over [`VP_SCALING_BYTES_PER_VP`]), or `None`
/// when `/proc/meminfo` is unreadable and the gate cannot protect the
/// host.
pub fn vp_mem_gate() -> Option<usize> {
    let avail = mem_available_kib()? * 1024;
    Some((avail / 10 * 8 / VP_SCALING_BYTES_PER_VP) as usize)
}

/// One rung of the VP-scaling ladder (`vp_scaling` bin and the
/// `vp_scaling` section of `BENCH_engine.json` v3).
#[derive(Debug, Clone)]
pub struct VpScalingRow {
    /// Simulated VPs.
    pub vps: usize,
    /// Worker threads.
    pub workers: usize,
    /// Sleep/wake rounds per VP.
    pub rounds: u32,
    /// Events processed.
    pub events: u64,
    /// End-to-end wall time.
    pub wall: std::time::Duration,
    /// Event throughput.
    pub events_per_sec: f64,
    /// Host cost per simulated event.
    pub host_us_per_event: f64,
    /// `VmHWM` after the rung, KiB. The kernel's high-water mark is
    /// monotone across rungs, so run the ladder in ascending VP order:
    /// each rung then dominates everything before it and the value reads
    /// as that rung's own peak.
    pub peak_rss_kib: u64,
}

/// Run one ladder rung on the core engine (the `million_vp` workload at
/// an arbitrary scale).
pub fn run_vp_scaling_rung(vps: usize, workers: usize, rounds: u32) -> VpScalingRow {
    let (report, wall) = run_million_vp(vps, workers, rounds);
    let events = report.events_processed;
    let secs = wall.as_secs_f64();
    VpScalingRow {
        vps,
        workers,
        rounds,
        events,
        wall,
        events_per_sec: events as f64 / secs,
        host_us_per_event: secs * 1e6 / events as f64,
        peak_rss_kib: peak_rss_kib().unwrap_or(0),
    }
}

/// Pending-set tiers of the event-queue churn comparison (uniform hold
/// model, calendar vs. the binary-heap oracle).
pub const QUEUE_TIERS: [usize; 3] = [1_000, 100_000, 1_000_000];

/// One tier of the calendar-vs-heap churn comparison.
#[derive(Debug, Clone, Copy)]
pub struct QueueTier {
    /// Steady-state pending-event population.
    pub pending: usize,
    /// Churn operations timed.
    pub ops: usize,
    /// Binary-heap oracle cost.
    pub heap_ns_per_op: f64,
    /// Calendar-queue cost.
    pub calendar_ns_per_op: f64,
}

impl QueueTier {
    /// Calendar speedup over the heap oracle (>1 = calendar wins).
    pub fn speedup(&self) -> f64 {
        self.heap_ns_per_op / self.calendar_ns_per_op
    }
}

/// Trials per implementation per tier; the reported cost is the
/// minimum, which discards scheduler/cache noise (any single trial can
/// only be *slowed* by interference, never sped up).
pub const QUEUE_TRIALS: usize = 3;

/// Time one churn tier for both queue implementations, best-of-
/// [`QUEUE_TRIALS`], interleaving the two so ambient load perturbs them
/// evenly.
pub fn run_queue_tier(pending: usize, ops: usize) -> QueueTier {
    let mut heap_ns_per_op = f64::INFINITY;
    let mut calendar_ns_per_op = f64::INFINITY;
    for _ in 0..QUEUE_TRIALS {
        let mut heap = xsim_core::EventQueue::heap();
        heap_ns_per_op = heap_ns_per_op.min(queue_churn_ns_per_op(&mut heap, pending, ops));
        let mut cal = xsim_core::EventQueue::calendar();
        calendar_ns_per_op = calendar_ns_per_op.min(queue_churn_ns_per_op(&mut cal, pending, ops));
    }
    QueueTier {
        pending,
        ops,
        heap_ns_per_op,
        calendar_ns_per_op,
    }
}

/// Steady-state churn cost of an event queue in nanoseconds per
/// operation: prefill `pending` events, condition with `ops` untimed
/// hold operations, then time `ops` more (pop the minimum, push a
/// successor a pseudorandom distance into the future). Keys are unique,
/// as the engine guarantees.
///
/// The untimed conditioning pass matters for adaptive implementations:
/// the prefill distribution (uniform over 1 ms) is ~100× sparser than
/// the steady hold-model front, so the calendar queue re-fits its
/// bucket geometry during the first churn epoch. Those one-time O(n)
/// redistributions amortize to nothing over a real simulation run and
/// would otherwise dominate a short measured window; the gate asserts
/// the steady-state cost a long run actually pays.
pub fn queue_churn_ns_per_op(queue: &mut xsim_core::EventQueue, pending: usize, ops: usize) -> f64 {
    use xsim_core::event::{Action, EventKey, EventRec};
    use xsim_core::Rank;
    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }
    fn push_at(q: &mut xsim_core::EventQueue, rng: &mut u64, seq: &mut u64, time: u64) {
        let r = xorshift(rng);
        *seq += 1;
        q.push(EventRec {
            key: EventKey {
                time: SimTime(time),
                dst: Rank((r >> 8) as u32 & 0x3f),
                src: Rank((r >> 16) as u32 & 0x3f),
                seq: *seq,
            },
            action: Action::Spawn,
        });
    }
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut seq = 0u64;
    for _ in 0..pending {
        let t = xorshift(&mut rng) % 1_000_000;
        push_at(queue, &mut rng, &mut seq, t);
    }
    for _ in 0..ops {
        let ev = queue.pop().expect("hold-model queue never empties");
        let delta = 1 + xorshift(&mut rng) % 10_000;
        push_at(queue, &mut rng, &mut seq, ev.key.time.as_nanos() + delta);
    }
    let t0 = std::time::Instant::now();
    for _ in 0..ops {
        let ev = queue.pop().expect("hold-model queue never empties");
        let delta = 1 + xorshift(&mut rng) % 10_000;
        push_at(queue, &mut rng, &mut seq, ev.key.time.as_nanos() + delta);
    }
    let ns = t0.elapsed().as_nanos() as f64 / ops.max(1) as f64;
    while queue.pop().is_some() {}
    ns
}
