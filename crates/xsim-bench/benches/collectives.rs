//! Collective-algorithm benchmarks: the linear algorithms the paper's
//! simulated system configures (§V-C) against the binomial-tree
//! variants (ablation, DESIGN.md §4.3). Measured quantity is simulator
//! wall time; the printed virtual-time comparison lives in the
//! `ablations` harness binary.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xsim_core::vp::VpProgram;
use xsim_mpi::{mpi_program, MpiCtx, SimBuilder};
use xsim_net::NetModel;

fn run(n: usize, program: Arc<dyn VpProgram>) {
    SimBuilder::new(n)
        .net(NetModel::small(n))
        .run(program)
        .unwrap();
}

fn barrier_linear(rounds: u32) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        for _ in 0..rounds {
            mpi.barrier(mpi.world()).await?;
        }
        mpi.finalize();
        Ok(())
    })
}

fn barrier_tree(rounds: u32) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        for _ in 0..rounds {
            xsim_mpi::collective::barrier_tree(mpi.world().id).await?;
        }
        mpi.finalize();
        Ok(())
    })
}

fn bcast_linear(rounds: u32, bytes: usize) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        let data = Bytes::from(vec![0u8; bytes]);
        for _ in 0..rounds {
            mpi.bcast(mpi.world(), 0, data.clone()).await?;
        }
        mpi.finalize();
        Ok(())
    })
}

fn bcast_tree(rounds: u32, bytes: usize) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        let data = Bytes::from(vec![0u8; bytes]);
        for _ in 0..rounds {
            xsim_mpi::collective::bcast_tree(mpi.world().id, 0, data.clone()).await?;
        }
        mpi.finalize();
        Ok(())
    })
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives/barrier");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for n in [64usize, 512] {
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |b, &n| {
            b.iter(|| run(n, barrier_linear(5)));
        });
        g.bench_with_input(BenchmarkId::new("tree", n), &n, |b, &n| {
            b.iter(|| run(n, barrier_tree(5)));
        });
    }
    g.finish();
}

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives/bcast_64KiB");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for n in [64usize, 512] {
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |b, &n| {
            b.iter(|| run(n, bcast_linear(3, 64 * 1024)));
        });
        g.bench_with_input(BenchmarkId::new("tree", n), &n, |b, &n| {
            b.iter(|| run(n, bcast_tree(3, 64 * 1024)));
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives/allreduce_f64x64");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    let program = |rounds: u32| {
        mpi_program(move |mpi: MpiCtx| async move {
            let data = vec![1.0f64; 64];
            for _ in 0..rounds {
                mpi.allreduce_f64(mpi.world(), &data, xsim_mpi::ReduceOp::Sum)
                    .await?;
            }
            mpi.finalize();
            Ok(())
        })
    };
    for n in [64usize, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run(n, program(3)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_barrier, bench_bcast, bench_allreduce);
criterion_main!(benches);
