//! Event-queue micro-benchmarks: the calendar queue vs. the retired
//! binary-heap oracle under steady-state hold-model churn (pop the
//! minimum, push a successor a pseudorandom distance ahead) at small,
//! medium and large pending sets. The calendar's O(1) amortized pops
//! are the foundation of the data-oriented event core (DESIGN.md §2.1.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsim_bench::queue_churn_ns_per_op;
use xsim_core::EventQueue;

fn bench_queue_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue/churn");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for pending in [1_000usize, 100_000, 1_000_000] {
        // One batch of hold-model operations per iteration; prefill
        // happens inside the timed closure but is amortized over the
        // much larger op count the same way for both queues.
        let ops = 10_000usize;
        g.throughput(Throughput::Elements(ops as u64));
        g.bench_with_input(
            BenchmarkId::new("heap", pending),
            &pending,
            |b, &pending| {
                b.iter(|| {
                    let mut q = EventQueue::heap();
                    queue_churn_ns_per_op(&mut q, pending, ops)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("calendar", pending),
            &pending,
            |b, &pending| {
                b.iter(|| {
                    let mut q = EventQueue::calendar();
                    queue_churn_ns_per_op(&mut q, pending, ops)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_queue_churn);
criterion_main!(benches);
