//! Engine micro-benchmarks: raw event throughput, VP context-switch
//! rate, and the sequential vs. conservative-parallel engine ablation
//! (DESIGN.md §4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use xsim_core::vp::{VpExit, VpFuture};
use xsim_core::{ctx, engine, CoreConfig, Kernel, Rank, SimTime};

fn cfg(n: usize, workers: usize) -> CoreConfig {
    CoreConfig {
        n_ranks: n,
        workers,
        lookahead: SimTime::from_micros(1),
        ..Default::default()
    }
}

fn no_setup(_: &mut Kernel) {}

/// Each VP sleeps `slices` times: 2 events per slice (wake schedule +
/// resume), measuring the kernel's event path.
fn sleepy(slices: u32) -> impl Fn(Rank) -> VpFuture + Send + Sync {
    move |_rank| {
        Box::pin(async move {
            for _ in 0..slices {
                ctx::sleep(SimTime::from_micros(10)).await;
            }
            VpExit::Finished
        }) as VpFuture
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/event_throughput");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [256usize, 4096] {
        let slices = 20u32;
        let events = (n as u64) * (slices as u64 + 1);
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| engine::run(cfg(n, 1), Arc::new(sleepy(slices)), &no_setup).unwrap());
        });
    }
    g.finish();
}

fn bench_context_switches(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/context_switch");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    // One VP, many switches: isolates poll + TLS + waker overhead.
    let slices = 10_000u32;
    g.throughput(Throughput::Elements(slices as u64));
    g.bench_function("single_vp", |b| {
        b.iter(|| engine::run(cfg(1, 1), Arc::new(sleepy(slices)), &no_setup).unwrap());
    });
    g.finish();
}

fn bench_parallel_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/seq_vs_parallel");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    let n = 4096;
    let slices = 50u32;
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    engine::run(cfg(n, workers), Arc::new(sleepy(slices)), &no_setup).unwrap()
                });
            },
        );
    }
    g.finish();
}

/// Worker scaling at fixed problem sizes: events/sec for 1/2/4/8
/// workers at 4k and 64k VPs. The headline number for the parallel
/// engine overhaul; `scalability --bench-engine` emits the same sweep
/// as `BENCH_engine.json` for machine consumption.
fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/worker_scaling");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for n in [4096usize, 65536] {
        let slices = if n <= 4096 { 50u32 } else { 8 };
        let events = (n as u64) * (slices as u64 + 1);
        g.throughput(Throughput::Elements(events));
        for workers in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("{n}vp"), workers),
                &workers,
                |b, &workers| {
                    b.iter(|| {
                        engine::run(cfg(n, workers), Arc::new(sleepy(slices)), &no_setup).unwrap()
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_spawn_teardown(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/spawn_teardown");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for n in [1024usize, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| engine::run(cfg(n, 1), Arc::new(sleepy(1)), &no_setup).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_context_switches,
    bench_parallel_engine,
    bench_worker_scaling,
    bench_spawn_teardown
);
criterion_main!(benches);
