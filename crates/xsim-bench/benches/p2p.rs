//! Point-to-point benchmarks: message path cost across the eager /
//! rendezvous protocol boundary (the paper's 256 kB threshold, §V-C)
//! and the matching-queue hot path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsim_apps::kernels;
use xsim_core::{Rank, SimTime};
use xsim_mpi::msg::{Envelope, MatchQueues, PostedRecv, SrcSel, TagSel};
use xsim_mpi::{CommId, SimBuilder};
use xsim_net::NetModel;

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p/pingpong");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    // 4 KiB (eager) vs 1 MiB (rendezvous) — same round count.
    for (label, payload) in [("eager_4KiB", 4 * 1024), ("rendezvous_1MiB", 1 << 20)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                SimBuilder::new(2)
                    .net(NetModel::small(2))
                    .run(kernels::pingpong(50, payload))
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_message_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p/message_rate");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    let rounds = 200u32;
    g.throughput(Throughput::Elements(2 * rounds as u64));
    g.bench_function("pingpong_64B", |b| {
        b.iter(|| {
            SimBuilder::new(2)
                .net(NetModel::small(2))
                .run(kernels::pingpong(rounds, 64))
                .unwrap()
        });
    });
    g.finish();
}

fn env(src: u32, tag: u32, seq: u64) -> Envelope {
    Envelope {
        src: Rank(src),
        comm: CommId(0),
        tag,
        data: Bytes::new(),
        seq,
        header_arrival: SimTime(seq),
        payload_ready: Some(SimTime(seq)),
        send_req: None,
    }
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p/matching");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [1_000u32, 30_000] {
        g.throughput(Throughput::Elements(n as u64));
        // The linear-collective-root pattern: post n specific receives,
        // deliver n matching envelopes.
        g.bench_with_input(BenchmarkId::new("post_then_deliver", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = MatchQueues::default();
                for i in 0..n {
                    q.post(PostedRecv {
                        req: i as u64,
                        comm: CommId(0),
                        src: SrcSel::Of(Rank(i)),
                        tag: TagSel::Of(7),
                        posted_at: SimTime(0),
                        post_seq: 0,
                    });
                }
                for i in 0..n {
                    q.deliver(env(i, 7, i as u64)).unwrap();
                }
                q
            });
        });
        // The unexpected-queue pattern: deliver first, post later.
        g.bench_with_input(BenchmarkId::new("deliver_then_post", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = MatchQueues::default();
                for i in 0..n {
                    q.deliver(env(i, 7, i as u64));
                }
                for i in 0..n {
                    q.post(PostedRecv {
                        req: i as u64,
                        comm: CommId(0),
                        src: SrcSel::Of(Rank(i)),
                        tag: TagSel::Of(7),
                        posted_at: SimTime(0),
                        post_seq: 0,
                    })
                    .unwrap();
                }
                q
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pingpong, bench_message_rate, bench_matching);
criterion_main!(benches);
