//! Resilience-path benchmarks: cost of the failure notification
//! broadcast + request release machinery (paper §IV-B/C), the abort
//! cascade (§IV-D), and the Table I bit-flip campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xsim_apps::heat3d::{self, HeatConfig};
use xsim_apps::ComputeMode;
use xsim_core::SimTime;
use xsim_fault::bitflip::{run_campaign, VictimLayout};
use xsim_mpi::{ErrHandler, SimBuilder};
use xsim_net::NetModel;

fn heat_cfg(ranks: [usize; 3]) -> HeatConfig {
    HeatConfig {
        global: [ranks[0] * 4, ranks[1] * 4, ranks[2] * 4],
        ranks,
        iterations: 40,
        halo_interval: 10,
        ckpt_interval: 10,
        mode: ComputeMode::Modeled,
        ckpt_mode: Default::default(),
        per_point: SimTime::from_micros(1),
        prefix: "bench".into(),
    }
}

fn bench_failure_abort_cascade(c: &mut Criterion) {
    let mut g = c.benchmark_group("failures/abort_cascade");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for dims in [[4usize, 4, 4], [8, 8, 8]] {
        let cfg = heat_cfg(dims);
        let n = cfg.n_ranks();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                SimBuilder::new(cfg.n_ranks())
                    .net(NetModel::small(cfg.n_ranks()))
                    .inject_failure(1, SimTime::from_millis(100))
                    .run(heat3d::program(cfg.clone()))
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_failure_free_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("failures/failure_free_reference");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    let cfg = heat_cfg([4, 4, 4]);
    g.bench_function("heat_64_ranks", |b| {
        b.iter(|| {
            SimBuilder::new(cfg.n_ranks())
                .net(NetModel::small(cfg.n_ranks()))
                .run(heat3d::program(cfg.clone()))
                .unwrap()
        });
    });
    g.finish();
}

fn bench_errors_return_detection(c: &mut Criterion) {
    // Detection without the abort cascade: ERRORS_RETURN keeps the run
    // alive, isolating the release machinery.
    let mut g = c.benchmark_group("failures/errors_return_detection");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    let cfg = heat_cfg([4, 4, 4]);
    g.bench_function("heat_64_ranks", |b| {
        b.iter(|| {
            SimBuilder::new(cfg.n_ranks())
                .net(NetModel::small(cfg.n_ranks()))
                .errhandler(ErrHandler::Return)
                .inject_failure(9, SimTime::from_millis(50))
                .run(heat3d::program(cfg.clone()))
                .unwrap()
        });
    });
    g.finish();
}

fn bench_bitflip_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("failures/bitflip_campaign");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("table1_100_victims", |b| {
        b.iter(|| run_campaign(100, 100, VictimLayout::default(), 17));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_failure_abort_cascade,
    bench_failure_free_reference,
    bench_errors_return_detection,
    bench_bitflip_campaign
);
criterion_main!(benches);
