//! Message-pipeline benchmarks: the per-message cost of the simulated
//! network path (routing, protocol selection, matching) under live link
//! faults, with the epoch-keyed route cache on and off, and the linear
//! vs. log-P collective schedules.

use criterion::{criterion_group, criterion_main, Criterion};
use xsim_apps::kernels;
use xsim_core::SimTime;
use xsim_mpi::{CollAlgo, SimBuilder};
use xsim_net::{LinkFaultKind, NetFault, NetModel, Topology};

/// A live (windowed) fault schedule on the given torus: a few link
/// failures that activate and repair mid-run, plus one degraded link —
/// enough epochs that routing stays on the slow BFS path when the cache
/// is disabled.
fn storm_faults(topo: &Topology) -> Vec<NetFault> {
    let mut faults = Vec::new();
    for (i, coord) in [[1usize, 0, 0], [3, 2, 1], [5, 5, 5], [0, 4, 2]]
        .iter()
        .enumerate()
    {
        faults.push(NetFault {
            node: topo.node_at(*coord),
            dir: Some(i % 6),
            kind: LinkFaultKind::Down,
            from: SimTime::from_millis(i as u64 * 2),
            until: Some(SimTime::from_millis(20 + i as u64 * 5)),
        });
    }
    faults.push(NetFault {
        node: topo.node_at([2, 2, 2]),
        dir: Some(0),
        kind: LinkFaultKind::Degraded(0.5),
        from: SimTime::ZERO,
        until: None,
    });
    faults
}

fn storm_builder(dims: [usize; 3], cache: bool) -> SimBuilder {
    let topo = Topology::Torus3d { dims };
    let mut net = NetModel::paper_machine();
    net.topology = topo;
    // The cache switch is read when the fault table is constructed,
    // inside `run`, so toggling the env var here selects the mode for
    // the whole measurement.
    std::env::set_var("XSIM_NET_ROUTE_CACHE", if cache { "on" } else { "off" });
    SimBuilder::new(dims[0] * dims[1] * dims[2])
        .net(net)
        .net_faults(storm_faults(&Topology::Torus3d { dims }))
}

fn bench_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("msgpath/p2p_storm_faulty_torus");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    let dims = [8, 8, 8];
    for (label, cache) in [("route_cache_on", true), ("route_cache_off", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                // Strides put partners 3–8 hops away on the 8³ torus.
                storm_builder(dims, cache)
                    .run(kernels::p2p_storm(4, vec![36, 9, 18, 27], 512))
                    .unwrap()
            });
        });
    }
    std::env::remove_var("XSIM_NET_ROUTE_CACHE");
    g.finish();
}

fn bench_collective_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("msgpath/collective_schedules");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for (label, algo) in [("linear", CollAlgo::Linear), ("tree", CollAlgo::Tree)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                SimBuilder::new(256)
                    .net(NetModel::small(256))
                    .collectives(algo)
                    .run(kernels::compute_allreduce(5, 64, SimTime::from_micros(10)))
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_storm, bench_collective_schedules);
criterion_main!(benches);
