//! Integration tests for the PDES engines, exercising the public kernel
//! API the way upper layers (xsim-mpi et al.) do.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xsim_core::engine;
use xsim_core::event::Action;
use xsim_core::vp::{VpExit, VpFuture, WaitClass};
use xsim_core::{
    ctx, CoreConfig, EngineKind, ExitKind, Kernel, LookaheadProvider, Rank, SimError, SimTime,
};

fn cfg(n: usize, workers: usize) -> CoreConfig {
    CoreConfig {
        n_ranks: n,
        workers,
        lookahead: SimTime::from_micros(1),
        ..Default::default()
    }
}

fn no_setup(_: &mut Kernel) {}

/// Every VP sleeps an amount derived from its rank and finishes.
fn sleepy_program(rank: Rank) -> VpFuture {
    Box::pin(async move {
        ctx::sleep(SimTime::from_millis(1 + rank.idx() as u64)).await;
        ctx::sleep(SimTime::from_millis(2)).await;
        VpExit::Finished
    })
}

#[test]
fn sleeps_advance_clocks_deterministically() {
    let report = engine::run(cfg(8, 1), Arc::new(sleepy_program), &no_setup).unwrap();
    assert_eq!(report.exit, ExitKind::Completed);
    for r in 0..8 {
        assert_eq!(
            report.final_clocks[r],
            SimTime::from_millis(3 + r as u64),
            "rank {r}"
        );
    }
    assert_eq!(report.timing.min, SimTime::from_millis(3));
    assert_eq!(report.timing.max, SimTime::from_millis(10));
}

#[test]
fn start_time_offsets_all_clocks() {
    let mut c = cfg(4, 1);
    c.start_time = SimTime::from_secs(100);
    let report = engine::run(c, Arc::new(sleepy_program), &no_setup).unwrap();
    assert_eq!(
        report.final_clocks[0],
        SimTime::from_secs(100) + SimTime::from_millis(3)
    );
}

/// A relay chain: rank 0 wakes rank 1, which wakes rank 2, … Each hop adds
/// one hop-delay. Exercises cross-rank (and, with workers > 1,
/// cross-shard) event scheduling.
fn relay_program(n: usize) -> impl Fn(Rank) -> VpFuture + Send + Sync {
    move |rank: Rank| {
        let n = n;
        Box::pin(async move {
            let hop = SimTime::from_micros(5);
            if rank.idx() == 0 {
                ctx::with_kernel(|k, r| {
                    let t = k.vp(r).clock() + hop;
                    k.schedule_at(t, Rank::new(1), Action::WakeMessage);
                });
            } else {
                ctx::block(WaitClass::Message, "relay wait").await;
                if rank.idx() + 1 < n {
                    let next = Rank::new(rank.idx() + 1);
                    ctx::with_kernel(|k, r| {
                        let t = k.vp(r).clock() + hop;
                        k.schedule_at(t, next, Action::WakeMessage);
                    });
                }
            }
            VpExit::Finished
        }) as VpFuture
    }
}

#[test]
fn relay_chain_accumulates_hop_latency() {
    let n = 16;
    let report = engine::run(cfg(n, 1), Arc::new(relay_program(n)), &no_setup).unwrap();
    for r in 1..n {
        assert_eq!(
            report.final_clocks[r],
            SimTime::from_micros(5 * r as u64),
            "rank {r}"
        );
    }
}

#[test]
fn parallel_engine_matches_sequential() {
    let n = 32;
    let seq = engine::run(cfg(n, 1), Arc::new(relay_program(n)), &no_setup).unwrap();
    for workers in [2, 3, 7] {
        let par = engine::run(cfg(n, workers), Arc::new(relay_program(n)), &no_setup).unwrap();
        assert_eq!(par.final_clocks, seq.final_clocks, "workers={workers}");
        assert_eq!(par.exit, seq.exit);
    }
}

#[test]
fn forced_parallel_single_worker_matches_sequential() {
    // EngineKind::Parallel with workers=1 runs the full parallel code
    // path (windows, exchange batching) without concurrency — the
    // middle leg of every differential comparison.
    let n = 16;
    let seq = engine::run(cfg(n, 1), Arc::new(relay_program(n)), &no_setup).unwrap();
    let par = engine::run(
        CoreConfig {
            engine: EngineKind::Parallel,
            ..cfg(n, 1)
        },
        Arc::new(relay_program(n)),
        &no_setup,
    )
    .unwrap();
    assert_eq!(par.final_clocks, seq.final_clocks);
    assert_eq!(par.events_processed, seq.events_processed);
    assert_eq!(par.context_switches, seq.context_switches);
    assert_eq!(par.exit, seq.exit);
    assert!(par.profile.windows > 0, "parallel path actually ran");
    assert_eq!(seq.profile.windows, 0, "sequential profile is empty");
}

/// Every rank > 0 schedules two `Call` events to rank 0, all at the
/// *same* absolute virtual time, each appending its rank to a shared
/// log. The log order observed on rank 0 is therefore purely the
/// same-timestamp tie-break `(dst, src, seq)` — identical across
/// engines and shard counts or the exchange batching reordered ties.
fn collide_program(log: Arc<Mutex<Vec<u64>>>) -> impl Fn(Rank) -> VpFuture + Send + Sync {
    move |rank: Rank| {
        let log = log.clone();
        Box::pin(async move {
            assert_eq!(ctx::lookahead(), SimTime::from_micros(1));
            if rank.idx() > 0 {
                for _ in 0..2 {
                    let log = log.clone();
                    let r = rank.idx() as u64;
                    ctx::with_kernel(move |k, _| {
                        k.schedule_at(
                            SimTime::from_millis(1),
                            Rank::new(0),
                            Action::call(move |_k: &mut Kernel| {
                                log.lock().unwrap().push(r);
                            }),
                        );
                    });
                }
            }
            VpExit::Finished
        }) as VpFuture
    }
}

#[test]
fn colliding_timestamps_across_shards_keep_tie_order() {
    let n = 9;
    let expected: Vec<u64> = (1..n as u64).flat_map(|r| [r, r]).collect();
    for (workers, engine_kind) in [
        (1, EngineKind::Auto),
        (1, EngineKind::Parallel),
        (2, EngineKind::Auto),
        (4, EngineKind::Auto),
        (8, EngineKind::Auto),
    ] {
        let log = Arc::new(Mutex::new(Vec::new()));
        let c = CoreConfig {
            engine: engine_kind,
            ..cfg(n, workers)
        };
        let report = engine::run(c, Arc::new(collide_program(log.clone())), &no_setup).unwrap();
        assert_eq!(report.exit, ExitKind::Completed);
        assert_eq!(
            *log.lock().unwrap(),
            expected,
            "tie order broke at workers={workers} engine={engine_kind:?}"
        );
    }
}

#[test]
fn adaptive_lookahead_reduces_windows_preserving_results() {
    // sleepy_program's wakes are spread 1 ms apart; with the static 1 µs
    // lookahead every distinct wake time needs its own window, while a
    // 5 ms provider lets one window swallow several. Results must not
    // change — the provider only widens windows.
    let n = 8;
    let static_run = engine::run(cfg(n, 4), Arc::new(sleepy_program), &no_setup).unwrap();
    let adaptive = CoreConfig {
        lookahead_fn: Some(LookaheadProvider::constant(SimTime::from_millis(5))),
        ..cfg(n, 4)
    };
    let adaptive_run = engine::run(adaptive, Arc::new(sleepy_program), &no_setup).unwrap();
    assert_eq!(adaptive_run.final_clocks, static_run.final_clocks);
    assert_eq!(adaptive_run.events_processed, static_run.events_processed);
    assert!(adaptive_run.profile.windows > 0);
    assert!(
        adaptive_run.profile.windows < static_run.profile.windows,
        "wider windows must mean fewer synchronizations: {} >= {}",
        adaptive_run.profile.windows,
        static_run.profile.windows
    );
}

#[test]
fn adaptive_lookahead_handles_events_on_the_window_bound() {
    // Relay hop (5 µs) exactly equals the provided lookahead: every
    // cross-shard event lands precisely on the receiver's exclusive
    // window bound — the off-by-one edge of the conservative argument.
    let n = 16;
    let seq = engine::run(cfg(n, 1), Arc::new(relay_program(n)), &no_setup).unwrap();
    let c = CoreConfig {
        lookahead_fn: Some(LookaheadProvider::constant(SimTime::from_micros(5))),
        ..cfg(n, 4)
    };
    let par = engine::run(c, Arc::new(relay_program(n)), &no_setup).unwrap();
    assert_eq!(par.final_clocks, seq.final_clocks);
    assert_eq!(par.events_processed, seq.events_processed);
}

#[test]
fn blocked_vp_without_events_is_a_deadlock() {
    let program = |_rank: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::block(WaitClass::Message, "recv that never matches").await;
            VpExit::Finished
        })
    };
    let err = engine::run(cfg(2, 1), Arc::new(program), &no_setup).unwrap_err();
    match err {
        SimError::Deadlock(d) => {
            assert!(d.contains("recv that never matches"), "diagnosis: {d}");
            assert!(d.contains("2 of 2"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn failure_activates_at_next_clock_update() {
    // Rank 1 computes in 10 ms slices; a failure scheduled at t=25 ms must
    // activate at the *end* of the slice in progress, i.e. t=30 ms
    // (paper §IV-B: scheduled time is the earliest time of failure).
    let program = |rank: Rank| -> VpFuture {
        Box::pin(async move {
            for _ in 0..10 {
                ctx::sleep(SimTime::from_millis(10)).await;
            }
            let _ = rank;
            VpExit::Finished
        })
    };
    let setup = |k: &mut Kernel| {
        k.set_time_of_failure(Rank::new(1), SimTime::from_millis(25));
    };
    let report = engine::run(cfg(2, 1), Arc::new(program), &setup).unwrap();
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].rank, Rank::new(1));
    assert_eq!(report.failures[0].scheduled, SimTime::from_millis(25));
    assert_eq!(report.failures[0].actual, SimTime::from_millis(30));
    assert_eq!(report.final_clocks[1], SimTime::from_millis(30));
    // Rank 0 is unaffected (no MPI layer here to propagate anything).
    assert_eq!(report.final_clocks[0], SimTime::from_millis(100));
    assert_eq!(report.exit, ExitKind::FailedOnly);
}

#[test]
fn failure_at_time_zero_kills_at_spawn() {
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::sleep(SimTime::from_secs(1)).await;
            VpExit::Finished
        })
    };
    let setup = |k: &mut Kernel| {
        k.set_time_of_failure(Rank::new(0), SimTime::ZERO);
    };
    let report = engine::run(cfg(1, 1), Arc::new(program), &setup).unwrap();
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].actual, SimTime::ZERO);
}

#[test]
fn fail_now_terminates_the_caller() {
    let program = |rank: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::sleep(SimTime::from_millis(5)).await;
            if rank.idx() == 0 {
                ctx::fail_now().await
            }
            ctx::sleep(SimTime::from_millis(5)).await;
            VpExit::Finished
        })
    };
    let report = engine::run(cfg(2, 1), Arc::new(program), &no_setup).unwrap();
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].rank, Rank::new(0));
    assert_eq!(report.failures[0].actual, SimTime::from_millis(5));
    assert_eq!(report.final_clocks[1], SimTime::from_millis(10));
}

#[test]
fn fail_hooks_observe_failures() {
    let seen = Arc::new(AtomicU64::new(0));
    let program = |rank: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::sleep(SimTime::from_millis(rank.idx() as u64 + 1)).await;
            VpExit::Finished
        })
    };
    let seen2 = seen.clone();
    let setup = move |k: &mut Kernel| {
        let seen = seen2.clone();
        k.add_fail_hook(Arc::new(move |_k, rank, time| {
            seen.fetch_add(
                rank.idx() as u64 * 1_000_000 + time.as_nanos() / 1_000_000,
                Ordering::Relaxed,
            );
        }));
        k.set_time_of_failure(Rank::new(3), SimTime::from_millis(2));
    };
    let report = engine::run(cfg(4, 1), Arc::new(program), &setup).unwrap();
    assert_eq!(report.failures.len(), 1);
    // rank 3 fails at its first clock update, t = 4 ms.
    assert_eq!(seen.load(Ordering::Relaxed), 3_000_000 + 4);
}

#[test]
fn program_reported_failure_counts() {
    // Returning VpExit::Failed models "returning from main() without
    // having called MPI_Finalize()" (paper §IV-B).
    let program = |rank: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::sleep(SimTime::from_millis(1)).await;
            if rank.idx() == 1 {
                VpExit::Failed
            } else {
                VpExit::Finished
            }
        })
    };
    let report = engine::run(cfg(2, 1), Arc::new(program), &no_setup).unwrap();
    assert_eq!(report.exit, ExitKind::FailedOnly);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].rank, Rank::new(1));
}

#[test]
fn abort_activation_stops_computation() {
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            for _ in 0..100 {
                ctx::sleep(SimTime::from_millis(1)).await;
            }
            VpExit::Finished
        })
    };
    let setup = |k: &mut Kernel| {
        k.set_abort_at(Rank::new(0), SimTime::from_millis(10));
        k.set_abort_at(Rank::new(1), SimTime::from_millis(10));
    };
    let report = engine::run(cfg(2, 1), Arc::new(program), &setup).unwrap();
    assert_eq!(report.exit, ExitKind::Aborted);
    assert_eq!(report.final_clocks[0], SimTime::from_millis(10));
    assert_eq!(report.abort_time, Some(SimTime::from_millis(10)));
}

#[test]
fn event_budget_is_enforced() {
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            loop {
                ctx::sleep(SimTime::from_nanos(100)).await;
            }
        })
    };
    let mut c = cfg(1, 1);
    c.max_events = 1000;
    let err = engine::run(c, Arc::new(program), &no_setup).unwrap_err();
    assert!(matches!(err, SimError::EventBudgetExceeded { .. }));
}

#[test]
fn services_are_reachable_from_vps() {
    struct Tally(u64);
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::with_kernel(|k, _| k.service_mut::<Tally>().0 += 1);
            VpExit::Finished
        })
    };
    let out = Arc::new(AtomicU64::new(0));
    let out2 = out.clone();
    let setup = move |k: &mut Kernel| {
        k.install_service(Tally(0));
        let out = out2.clone();
        // Observe the tally at shutdown via a far-future event? Simpler:
        // VPs bump an Arc-backed counter through the service at exit.
        let _ = &out;
    };
    let _ = engine::run(cfg(4, 1), Arc::new(program), &setup).unwrap();
    // The run completing without panic proves service access worked; a
    // stronger cross-checking test lives in the MPI layer.
}

#[test]
fn resume_counts_are_reported() {
    let report = engine::run(cfg(4, 1), Arc::new(sleepy_program), &no_setup).unwrap();
    // Each VP: spawn + 2 sleep completions = 3 resumes.
    assert_eq!(report.context_switches, 12);
    assert!(report.events_processed >= 12);
}

#[test]
fn fail_blocked_mode_kills_blocked_vps() {
    // Strict paper semantics: a VP blocked on communication never
    // activates its failure (it would deadlock here). The eager
    // extension (`fail_blocked`) activates it at the scheduled time.
    let program = |rank: Rank| -> VpFuture {
        Box::pin(async move {
            if rank.idx() == 0 {
                ctx::block(WaitClass::Message, "recv that never matches").await;
            } else {
                ctx::sleep(SimTime::from_secs(1)).await;
            }
            VpExit::Finished
        })
    };
    // Strict mode: deadlock (rank 0 never dies, nobody wakes it).
    let mut strict = cfg(2, 1);
    strict.fail_blocked = false;
    let setup = |k: &mut Kernel| {
        k.set_time_of_failure(Rank::new(0), SimTime::from_millis(100));
    };
    let err = engine::run(strict, Arc::new(program), &setup).unwrap_err();
    assert!(matches!(err, SimError::Deadlock(_)));

    // Eager mode: the failure activates at its scheduled time even
    // though the VP is blocked.
    let mut eager = cfg(2, 1);
    eager.fail_blocked = true;
    let report = engine::run(eager, Arc::new(program), &setup).unwrap();
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].actual, SimTime::from_millis(100));
    assert_eq!(report.final_clocks[0], SimTime::from_millis(100));
}

#[test]
fn fail_blocked_does_not_interrupt_compute() {
    // Even in eager mode, a computing VP keeps the paper's activation
    // rule: the failure lands at the end of the compute slice.
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::sleep(SimTime::from_secs(10)).await;
            VpExit::Finished
        })
    };
    let mut c = cfg(1, 1);
    c.fail_blocked = true;
    let setup = |k: &mut Kernel| {
        k.set_time_of_failure(Rank::new(0), SimTime::from_secs(3));
    };
    let report = engine::run(c, Arc::new(program), &setup).unwrap();
    assert_eq!(report.failures[0].actual, SimTime::from_secs(10));
}

#[test]
fn yield_now_preserves_clock_and_interleaves() {
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            let before = ctx::now();
            ctx::yield_now().await;
            assert_eq!(ctx::now(), before, "yield must not advance the clock");
            ctx::sleep(SimTime::from_millis(1)).await;
            VpExit::Finished
        })
    };
    let report = engine::run(cfg(4, 1), Arc::new(program), &no_setup).unwrap();
    assert_eq!(report.exit, ExitKind::Completed);
}

#[test]
fn arm_wait_and_prearmed_block_round_trip() {
    // arm_wait + block_prearmed is the two-phase wait upper layers use
    // when they must schedule the wake before suspending.
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            let token = ctx::arm_wait(WaitClass::Compute, "two-phase");
            ctx::with_kernel(|k, me| {
                let at = k.vp(me).clock() + SimTime::from_millis(7);
                k.schedule_at(at, me, Action::WakeToken(token));
            });
            let woke_at = ctx::block_prearmed(token).await;
            assert_eq!(woke_at, SimTime::from_millis(7));
            VpExit::Finished
        })
    };
    let report = engine::run(cfg(1, 1), Arc::new(program), &no_setup).unwrap();
    assert_eq!(report.final_clocks[0], SimTime::from_millis(7));
}

#[test]
fn stale_wake_tokens_are_ignored() {
    // A wake scheduled for an old wait must not disturb a newer one.
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            // Arm a wait, schedule its wake far in the future, then
            // abandon it by re-arming (sleep creates a fresh token).
            let stale = ctx::arm_wait(WaitClass::Compute, "stale");
            ctx::with_kernel(|k, me| {
                k.schedule_at(SimTime::from_millis(1), me, Action::WakeToken(stale));
                // Un-block manually so we can continue (the test then
                // enters a real sleep whose token differs).
                k.vp_mut(me).set_state(xsim_core::vp::VpState::Running);
            });
            ctx::sleep(SimTime::from_millis(10)).await;
            // The stale wake at t=1ms must not have ended the 10ms sleep.
            assert_eq!(ctx::now(), SimTime::from_millis(10));
            VpExit::Finished
        })
    };
    let report = engine::run(cfg(1, 1), Arc::new(program), &no_setup).unwrap();
    assert_eq!(report.final_clocks[0], SimTime::from_millis(10));
}

#[test]
fn report_summary_mentions_key_facts() {
    let report = engine::run(cfg(2, 1), Arc::new(sleepy_program), &no_setup).unwrap();
    let s = report.summary();
    assert!(s.contains("Completed"), "{s}");
    assert!(s.contains("events"), "{s}");
}

#[test]
fn start_time_failure_schedule_interacts() {
    // A failure scheduled before the start time activates immediately at
    // spawn (clock already past it) — the restart-continuation edge.
    let program = |_r: Rank| -> VpFuture {
        Box::pin(async move {
            ctx::sleep(SimTime::from_secs(1)).await;
            VpExit::Finished
        })
    };
    let mut c = cfg(1, 1);
    c.start_time = SimTime::from_secs(100);
    let setup = |k: &mut Kernel| {
        k.set_time_of_failure(Rank::new(0), SimTime::from_secs(50));
    };
    let report = engine::run(c, Arc::new(program), &setup).unwrap();
    assert_eq!(report.failures[0].actual, SimTime::from_secs(100));
}
