//! Property-based tests for the PDES substrate: time arithmetic, the
//! event order, queue behaviour, and sequential/parallel engine
//! equivalence over randomized programs.

use proptest::prelude::*;
use std::sync::Arc;
use xsim_core::engine;
use xsim_core::event::{Action, EventKey, EventRec};
use xsim_core::queue::EventQueue;
use xsim_core::vp::{VpExit, VpFuture};
use xsim_core::{ctx, CoreConfig, EngineKind, Kernel, LookaheadProvider, Rank, SimTime};

proptest! {
    #[test]
    fn simtime_add_is_monotone(a: u64, b: u64) {
        let (ta, tb) = (SimTime(a), SimTime(b));
        prop_assert!(ta + tb >= ta);
        prop_assert!(ta + tb >= tb);
        prop_assert_eq!(ta + tb, tb + ta);
    }

    #[test]
    fn simtime_sub_then_add_round_trips_when_no_clamp(a: u64, b: u64) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((SimTime(hi) - SimTime(lo)) + SimTime(lo), SimTime(hi));
    }

    #[test]
    fn secs_f64_round_trip_is_close(s in 0.0f64..1e6) {
        let t = SimTime::from_secs_f64(s);
        prop_assert!((t.as_secs_f64() - s).abs() < 1e-6);
    }

    #[test]
    fn event_queue_pops_sorted(keys in proptest::collection::vec((any::<u64>(), 0u32..64, 0u32..64, any::<u64>()), 0..100)) {
        let mut q = EventQueue::new();
        for (t, dst, src, seq) in &keys {
            q.push(EventRec {
                key: EventKey { time: SimTime(*t), dst: Rank(*dst), src: Rank(*src), seq: *seq },
                action: Action::Spawn,
            });
        }
        let mut popped: Vec<EventKey> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e.key);
        }
        prop_assert_eq!(popped.len(), keys.len());
        for w in popped.windows(2) {
            prop_assert!(w[0] <= w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    /// The queue's pop order is a pure function of the key *set*: any
    /// push-order interleaving (here: identity, reversed, and an
    /// arbitrary rotation) yields the same total order. This is the
    /// property that makes batched cross-shard insertion safe — the
    /// parallel engine may deliver remote events in any slot order.
    #[test]
    fn event_queue_total_order_is_interleaving_independent(
        keys in proptest::collection::vec((any::<u64>(), 0u32..64, 0u32..64, any::<u64>()), 0..100),
        rot in any::<usize>(),
    ) {
        let pop_all = |order: &[usize]| -> Vec<EventKey> {
            let mut q = EventQueue::new();
            for &i in order {
                let (t, dst, src, seq) = keys[i];
                q.push(EventRec {
                    key: EventKey { time: SimTime(t), dst: Rank(dst), src: Rank(src), seq },
                    action: Action::Spawn,
                });
            }
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push(e.key);
            }
            popped
        };
        let n = keys.len();
        let identity: Vec<usize> = (0..n).collect();
        let reversed: Vec<usize> = (0..n).rev().collect();
        let rotated: Vec<usize> = if n == 0 {
            Vec::new()
        } else {
            (0..n).map(|i| (i + rot % n) % n).collect()
        };
        let reference = pop_all(&identity);
        prop_assert_eq!(&pop_all(&reversed), &reference);
        prop_assert_eq!(&pop_all(&rotated), &reference);
    }

    /// The calendar queue is byte-identical to the binary-heap oracle
    /// under arbitrary *interleaved* push/pop traffic — not just
    /// push-all-then-pop-all. Times are drawn from three bands: a small
    /// range where same-timestamp ties (broken by `(dst, src, seq)`)
    /// are common, a mid band that spreads events over many slices
    /// (ring growth, width re-fits, the settle scan's buffer
    /// recycling), and a far-future band exercising the overflow lane
    /// and its migration/re-fit path. Each push op optionally becomes a
    /// same-time *burst* whose size crosses the bounded-memmove cap, so
    /// both the in-order insertion and the append-and-sort-once
    /// fallback run against the oracle, interleaved with pops and
    /// geometry changes.
    #[test]
    fn calendar_queue_matches_heap_under_interleaved_ops(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..512, 0u32..16, 0u32..16, 0u8..3, 0u8..3),
            1..250,
        ),
    ) {
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::calendar();
        let mut seq = 0u64;
        for (push, t, dst, src, band, burst) in ops {
            if push || heap.is_empty() {
                // Unique keys, as the engine guarantees: the per-source
                // seq counter disambiguates colliding (time, dst, src).
                let time = match band {
                    0 => SimTime(t),
                    1 => SimTime(t.saturating_mul(1 << 12)),
                    _ => SimTime(t.saturating_mul(1 << 40)),
                };
                // A burst stacks same-(time, dst, src) events whose
                // order is decided by seq alone — deep enough to force
                // the memmove-capped path inside one bucket.
                let burst_len = 1 + 48 * burst as u64;
                for _ in 0..burst_len {
                    let key = EventKey { time, dst: Rank(dst), src: Rank(src), seq };
                    seq += 1;
                    heap.push(EventRec { key, action: Action::Spawn });
                    cal.push(EventRec { key, action: Action::Spawn });
                }
            } else {
                let h = heap.pop().map(|e| e.key);
                let c = cal.pop().map(|e| e.key);
                prop_assert_eq!(c, h, "pop diverged from the heap oracle");
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.next_time(), heap.next_time());
        }
        // Drain both to the end: the tails must agree too.
        loop {
            let h = heap.pop().map(|e| e.key);
            let c = cal.pop().map(|e| e.key);
            prop_assert_eq!(c, h, "drain diverged from the heap oracle");
            if h.is_none() {
                break;
            }
        }
    }
}

/// A randomized program: each rank performs a schedule of sleeps and
/// cross-rank wakes derived from the per-rank opcode list.
fn random_program(
    opcodes: Arc<Vec<Vec<u8>>>,
    n_ranks: usize,
) -> impl Fn(Rank) -> VpFuture + Send + Sync {
    random_program_with_delay(opcodes, n_ranks, 2)
}

/// Like [`random_program`] but with a configurable minimum cross-rank
/// wake delay, so lookahead-related properties can vary the true
/// delivery latency independently of the engine's window bound.
fn random_program_with_delay(
    opcodes: Arc<Vec<Vec<u8>>>,
    n_ranks: usize,
    wake_delay_us: u64,
) -> impl Fn(Rank) -> VpFuture + Send + Sync {
    move |rank: Rank| {
        let ops = opcodes[rank.idx() % opcodes.len()].clone();
        let n = n_ranks;
        let delay = SimTime::from_micros(wake_delay_us);
        Box::pin(async move {
            for op in ops {
                match op % 3 {
                    0 => ctx::sleep(SimTime::from_micros(1 + op as u64)).await,
                    1 => {
                        // Wake a derived peer after a lookahead-respecting
                        // delay.
                        let peer = Rank::new((rank.idx() + op as usize + 1) % n);
                        ctx::with_kernel(|k, me| {
                            let t = k.vp(me).clock() + delay;
                            k.schedule_at(t, peer, Action::WakeMessage);
                        });
                    }
                    _ => ctx::yield_now().await,
                }
            }
            VpExit::Finished
        }) as VpFuture
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_programs(
        opcodes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..6),
        n_ranks in 1usize..24,
    ) {
        let opcodes = Arc::new(opcodes);
        let run = |workers: usize, engine_kind: EngineKind| {
            let cfg = CoreConfig {
                n_ranks,
                workers,
                engine: engine_kind,
                lookahead: SimTime::from_micros(1),
                ..Default::default()
            };
            let setup = |_: &mut Kernel| {};
            engine::run(
                cfg,
                Arc::new(random_program(opcodes.clone(), n_ranks)),
                &setup,
            )
            .unwrap()
        };
        let seq = run(1, EngineKind::Auto);
        // The parallel path with one worker exercises the full window
        // machinery (shards, exchange slots, bounds) without
        // concurrency; it must agree on *everything*, including the
        // scalar counters.
        let par1 = run(1, EngineKind::Parallel);
        prop_assert_eq!(&par1.final_clocks, &seq.final_clocks, "parallel(1)");
        prop_assert_eq!(par1.events_processed, seq.events_processed, "parallel(1) events");
        prop_assert_eq!(par1.context_switches, seq.context_switches, "parallel(1) switches");
        for workers in [2usize, 5] {
            let par = run(workers, EngineKind::Auto);
            prop_assert_eq!(&par.final_clocks, &seq.final_clocks, "workers={}", workers);
            prop_assert_eq!(par.events_processed, seq.events_processed, "workers={}", workers);
            prop_assert_eq!(par.context_switches, seq.context_switches, "workers={}", workers);
        }
    }

    /// Window-bound safety: every static lookahead no larger than the
    /// minimum cross-rank delay (2µs in [`random_program`]) is a safe
    /// window bound — the parallel engine must reproduce the sequential
    /// oracle exactly for *any* such bound, not just the default.
    #[test]
    fn any_safe_static_lookahead_reproduces_the_oracle(
        opcodes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..10), 1..4),
        n_ranks in 2usize..16,
        la_us in 1u64..=2,
        workers in 2usize..6,
    ) {
        let opcodes = Arc::new(opcodes);
        let run = |workers: usize, engine_kind: EngineKind| {
            let cfg = CoreConfig {
                n_ranks,
                workers,
                engine: engine_kind,
                lookahead: SimTime::from_micros(la_us),
                ..Default::default()
            };
            let setup = |_: &mut Kernel| {};
            engine::run(
                cfg,
                Arc::new(random_program(opcodes.clone(), n_ranks)),
                &setup,
            )
            .unwrap()
        };
        let seq = run(1, EngineKind::Sequential);
        let par = run(workers, EngineKind::Parallel);
        prop_assert_eq!(&par.final_clocks, &seq.final_clocks);
        prop_assert_eq!(par.events_processed, seq.events_processed);
        prop_assert_eq!(par.context_switches, seq.context_switches);
    }

    /// Adaptive-lookahead conservativeness: with cross-rank wakes
    /// arriving after `delay_us`, any adaptive provider returning a
    /// value in `1..=delay_us` only *widens* windows relative to the
    /// 1µs static floor and must never change results vs the
    /// sequential oracle.
    #[test]
    fn adaptive_lookahead_is_conservative_vs_static_oracle(
        opcodes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..10), 1..4),
        n_ranks in 2usize..16,
        delay_us in 2u64..8,
        adaptive_frac in 1u64..=100,
        workers in 2usize..6,
    ) {
        let opcodes = Arc::new(opcodes);
        // Provider value in 1..=delay_us, derived deterministically.
        let adaptive_us = 1 + (adaptive_frac * delay_us.saturating_sub(1)) / 100;
        let run = |workers: usize, engine_kind: EngineKind, provider: Option<LookaheadProvider>| {
            let cfg = CoreConfig {
                n_ranks,
                workers,
                engine: engine_kind,
                lookahead: SimTime::from_micros(1),
                lookahead_fn: provider,
                ..Default::default()
            };
            let setup = |_: &mut Kernel| {};
            engine::run(
                cfg,
                Arc::new(random_program_with_delay(opcodes.clone(), n_ranks, delay_us)),
                &setup,
            )
            .unwrap()
        };
        let seq = run(1, EngineKind::Sequential, None);
        let adaptive = run(
            workers,
            EngineKind::Parallel,
            Some(LookaheadProvider::constant(SimTime::from_micros(adaptive_us))),
        );
        prop_assert_eq!(&adaptive.final_clocks, &seq.final_clocks,
            "delay={}us adaptive={}us", delay_us, adaptive_us);
        prop_assert_eq!(adaptive.events_processed, seq.events_processed);
        prop_assert_eq!(adaptive.context_switches, seq.context_switches);
    }
}
