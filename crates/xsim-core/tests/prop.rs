//! Property-based tests for the PDES substrate: time arithmetic, the
//! event order, queue behaviour, and sequential/parallel engine
//! equivalence over randomized programs.

use proptest::prelude::*;
use std::sync::Arc;
use xsim_core::engine;
use xsim_core::event::{Action, EventKey, EventRec};
use xsim_core::queue::EventQueue;
use xsim_core::vp::{VpExit, VpFuture};
use xsim_core::{ctx, CoreConfig, Kernel, Rank, SimTime};

proptest! {
    #[test]
    fn simtime_add_is_monotone(a: u64, b: u64) {
        let (ta, tb) = (SimTime(a), SimTime(b));
        prop_assert!(ta + tb >= ta);
        prop_assert!(ta + tb >= tb);
        prop_assert_eq!(ta + tb, tb + ta);
    }

    #[test]
    fn simtime_sub_then_add_round_trips_when_no_clamp(a: u64, b: u64) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((SimTime(hi) - SimTime(lo)) + SimTime(lo), SimTime(hi));
    }

    #[test]
    fn secs_f64_round_trip_is_close(s in 0.0f64..1e6) {
        let t = SimTime::from_secs_f64(s);
        prop_assert!((t.as_secs_f64() - s).abs() < 1e-6);
    }

    #[test]
    fn event_queue_pops_sorted(keys in proptest::collection::vec((any::<u64>(), 0u32..64, 0u32..64, any::<u64>()), 0..100)) {
        let mut q = EventQueue::new();
        for (t, dst, src, seq) in &keys {
            q.push(EventRec {
                key: EventKey { time: SimTime(*t), dst: Rank(*dst), src: Rank(*src), seq: *seq },
                action: Action::Spawn,
            });
        }
        let mut popped: Vec<EventKey> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e.key);
        }
        prop_assert_eq!(popped.len(), keys.len());
        for w in popped.windows(2) {
            prop_assert!(w[0] <= w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
    }
}

/// A randomized program: each rank performs a schedule of sleeps and
/// cross-rank wakes derived from the per-rank opcode list.
fn random_program(
    opcodes: Arc<Vec<Vec<u8>>>,
    n_ranks: usize,
) -> impl Fn(Rank) -> VpFuture + Send + Sync {
    move |rank: Rank| {
        let ops = opcodes[rank.idx() % opcodes.len()].clone();
        let n = n_ranks;
        Box::pin(async move {
            for op in ops {
                match op % 3 {
                    0 => ctx::sleep(SimTime::from_micros(1 + op as u64)).await,
                    1 => {
                        // Wake a derived peer after a lookahead-respecting
                        // delay.
                        let peer = Rank::new((rank.idx() + op as usize + 1) % n);
                        ctx::with_kernel(|k, me| {
                            let t = k.vp(me).clock + SimTime::from_micros(2);
                            k.schedule_at(t, peer, Action::WakeMessage);
                        });
                    }
                    _ => ctx::yield_now().await,
                }
            }
            VpExit::Finished
        }) as VpFuture
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_programs(
        opcodes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..6),
        n_ranks in 1usize..24,
    ) {
        let opcodes = Arc::new(opcodes);
        let run = |workers: usize| {
            let cfg = CoreConfig {
                n_ranks,
                workers,
                lookahead: SimTime::from_micros(1),
                ..Default::default()
            };
            let setup = |_: &mut Kernel| {};
            engine::run(
                cfg,
                Arc::new(random_program(opcodes.clone(), n_ranks)),
                &setup,
            )
            .unwrap()
        };
        let seq = run(1);
        for workers in [2usize, 5] {
            let par = run(workers);
            prop_assert_eq!(&par.final_clocks, &seq.final_clocks, "workers={}", workers);
        }
    }
}
