//! Execution context for VP coroutines.
//!
//! While the kernel polls a VP future, a scoped thread-local holds a
//! pointer to the kernel so the future's simulator calls (`now`, `sleep`,
//! MPI operations in upper layers) can reach it. This mirrors how xSim's
//! simulated processes trap into the simulator for every timing, MPI or
//! file system function (paper §IV-A).
//!
//! ## Safety
//!
//! The raw pointer is derived from the `&mut Kernel` the engine holds and
//! is only dereferenced *inside* the dynamic extent of the poll, one
//! access at a time ([`with_kernel`] is non-reentrant, enforced at
//! runtime). The engine does not touch the kernel while the poll runs, so
//! no two live mutable references exist.

use crate::kernel::Kernel;
use crate::rank::Rank;
use crate::time::SimTime;
use crate::vp::{WaitClass, WaitToken};
use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

thread_local! {
    static CURRENT: Cell<*mut Kernel> = const { Cell::new(std::ptr::null_mut()) };
    static BORROWED: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with the thread-local kernel pointer installed. Called by the
/// kernel around each VP poll.
pub(crate) fn enter<R>(k: &mut Kernel, f: impl FnOnce() -> R) -> R {
    struct Reset(*mut Kernel);
    impl Drop for Reset {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT.with(|c| c.replace(k as *mut Kernel));
    let _reset = Reset(prev);
    f()
}

/// Access the kernel and the rank currently being polled. Panics when
/// called outside a VP poll or reentrantly.
pub fn with_kernel<R>(f: impl FnOnce(&mut Kernel, Rank) -> R) -> R {
    let ptr = CURRENT.with(|c| c.get());
    assert!(
        !ptr.is_null(),
        "simulator call outside of a virtual process context"
    );
    BORROWED.with(|b| {
        assert!(!b.get(), "reentrant simulator call");
        b.set(true);
    });
    struct Unborrow;
    impl Drop for Unborrow {
        fn drop(&mut self) {
            BORROWED.with(|b| b.set(false));
        }
    }
    let _u = Unborrow;
    // SAFETY: `ptr` was installed by `enter` from a live `&mut Kernel`
    // for the duration of the poll; the runtime flag above guarantees no
    // overlapping reborrow.
    let k = unsafe { &mut *ptr };
    let rank = k.attributed_rank();
    f(k, rank)
}

/// The rank of the VP currently executing.
pub fn current_rank() -> Rank {
    with_kernel(|_, r| r)
}

/// The virtual clock of the VP currently executing. Corresponds to the
/// simulated `gettimeofday()` of the paper (§IV-A) — reading the clock is
/// free.
pub fn now() -> SimTime {
    with_kernel(|k, r| k.vp(r).clock())
}

/// The static lookahead floor of the current run: the minimum virtual
/// delay any cross-rank event must carry. Programs scheduling raw
/// cross-rank events (tests, custom services) can use this to stay
/// inside the parallel engine's conservative window contract. Note the
/// engine may *widen* windows beyond this floor per window (adaptive
/// lookahead) — delays of at least `max(lookahead, notify_delay)` as
/// configured by the machine layer are always safe.
pub fn lookahead() -> SimTime {
    with_kernel(|k, _| k.cfg.lookahead)
}

/// Block the current VP until the kernel wakes it. Returns the VP clock
/// at wake time. `class` controls which wakeups apply (see
/// [`WaitClass`]); `desc` labels the wait for deadlock diagnostics.
///
/// This is the *only* legitimate way for a VP future to return `Pending`.
/// Wakeups may be spurious (e.g. a message arrival while waiting for a
/// different request); callers re-check their predicate and re-block.
pub fn block(class: WaitClass, desc: &'static str) -> BlockFuture {
    BlockFuture {
        armed: false,
        class,
        desc,
    }
}

/// Future returned by [`block`].
pub struct BlockFuture {
    armed: bool,
    class: WaitClass,
    desc: &'static str,
}

impl Future for BlockFuture {
    type Output = SimTime;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<SimTime> {
        with_kernel(|k, rank| {
            let mut vp = k.vp_mut(rank);
            if !self.armed {
                self.armed = true;
                vp.begin_wait(self.class, self.desc);
                Poll::Pending
            } else if vp.take_woken() {
                Poll::Ready(vp.clock())
            } else {
                // Spurious poll (should not happen with the kernel's
                // wake-then-poll discipline, but harmless).
                vp.set_state(crate::vp::VpState::Blocked);
                Poll::Pending
            }
        })
    }
}

/// Register a wait and return its token *without* blocking yet; used by
/// upper layers that must schedule a wake event targeting this precise
/// wait before suspending. Pair with [`block_prearmed`].
pub fn arm_wait(class: WaitClass, desc: &'static str) -> WaitToken {
    with_kernel(|k, r| {
        // begin_wait asserts Running; arming happens mid-poll, so the VP
        // is Running.
        k.vp_mut(r).begin_wait(class, desc)
    })
}

/// Complete a wait armed with [`arm_wait`]: suspend until woken.
pub fn block_prearmed(token: WaitToken) -> PrearmedFuture {
    PrearmedFuture { token }
}

/// Future returned by [`block_prearmed`].
pub struct PrearmedFuture {
    token: WaitToken,
}

impl Future for PrearmedFuture {
    type Output = SimTime;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<SimTime> {
        with_kernel(|k, rank| {
            let mut vp = k.vp_mut(rank);
            debug_assert_eq!(vp.wait_token(), self.token, "wait token mismatch");
            if vp.take_woken() {
                Poll::Ready(vp.clock())
            } else {
                vp.set_state(crate::vp::VpState::Blocked);
                Poll::Pending
            }
        })
    }
}

/// Advance the current VP's clock by `d` while yielding to the simulator:
/// the direct analogue of a compute phase between MPI calls. The paper's
/// failure-activation rule applies at the end: if a failure (or abort)
/// was scheduled for a time the clock has now reached, the VP terminates
/// there (§IV-B).
pub async fn sleep(d: SimTime) {
    let (deadline, token) = with_kernel(|k, rank| {
        let deadline = k.vp(rank).clock() + d;
        let token = k.vp_mut(rank).begin_wait(WaitClass::Compute, "compute");
        k.schedule_at(deadline, rank, crate::event::Action::WakeToken(token));
        (deadline, token)
    });
    loop {
        let now = block_prearmed(token).await;
        if now >= deadline {
            return;
        }
        // Spurious wake (e.g. released by an upper layer); re-block on
        // the same token — the original wake event is still scheduled.
        with_kernel(|k, rank| {
            // Re-block on the same token: the scheduled wake stays valid.
            k.vp_mut(rank)
                .rearm_wait(WaitClass::Compute, "compute", token);
        });
    }
}

/// Yield control to the simulator without advancing the clock: schedules
/// an immediate wake and blocks once. Useful to let same-time events
/// interleave deterministically.
pub async fn yield_now() {
    let token = with_kernel(|k, rank| {
        let now = k.vp(rank).clock();
        let token = k.vp_mut(rank).begin_wait(WaitClass::Compute, "yield");
        k.schedule_at(now, rank, crate::event::Action::WakeToken(token));
        token
    });
    block_prearmed(token).await;
}

/// Inject an immediate process failure into the calling VP — the
/// "simulator-internal function \[to\] trigger a process failure …
/// immediately" of paper §IV-B. The VP never resumes.
pub async fn fail_now() -> ! {
    with_kernel(|k, rank| {
        let now = k.vp(rank).clock();
        k.vp_mut(rank).set_time_of_failure(now);
        k.schedule_at(
            now,
            rank,
            crate::event::Action::call(move |k: &mut Kernel| {
                let clock = k.vp(rank).clock();
                k.kill_failed(rank, now, clock);
            }),
        );
    });
    loop {
        block(WaitClass::Doomed, "failed").await;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic(expected = "outside of a virtual process context")]
    fn with_kernel_outside_poll_panics() {
        super::with_kernel(|_, _| ());
    }
}
