//! Engine-level error types.

use crate::rank::Rank;
use crate::time::SimTime;
use std::fmt;

/// Errors surfaced by the simulation engines.
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while one or more VPs were still blocked —
    /// the simulated application deadlocked. Carries a human-readable
    /// diagnosis produced by [`crate::deadlock`].
    Deadlock(String),
    /// The configured event budget was exceeded; guards against runaway
    /// models in tests and CI.
    EventBudgetExceeded { processed: u64 },
    /// Configuration was internally inconsistent (e.g. zero ranks, or a
    /// cross-rank event scheduled below the lookahead in parallel mode).
    Config(String),
    /// A worker thread of the parallel engine panicked.
    WorkerPanic(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "simulation deadlock detected:\n{d}"),
            SimError::EventBudgetExceeded { processed } => {
                write!(f, "event budget exceeded after {processed} events")
            }
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::WorkerPanic(msg) => write!(f, "parallel engine worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Why a VP ceased execution before returning from its program.
///
/// Mirrors the paper's distinction between an injected *process failure*
/// (§IV-B) and a simulated *MPI abort* (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The VP's program returned normally.
    Finished,
    /// An injected process failure activated at the given virtual time.
    Failed(SimTime),
    /// The VP aborted (locally or via a propagated abort) at the given time.
    Aborted(SimTime),
}

/// A record of one activated (i.e. actually experienced) process failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// The rank that failed.
    pub rank: Rank,
    /// The *scheduled* (earliest possible) time of failure.
    pub scheduled: SimTime,
    /// The *actual* activation time: the VP clock when the simulator
    /// regained control at or past the scheduled time (paper §IV-B).
    pub actual: SimTime,
}
