//! Deterministic, stream-splittable randomness.
//!
//! The paper stresses that "the experiments are repeatable as the
//! simulator and the application are deterministic" (§V-E). All randomness
//! in xsim-rs flows from one master seed through named streams, so a run
//! is a pure function of its configuration — regardless of worker count.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step — used to derive independent stream seeds from the
/// master seed. (Same mixer used to seed xoshiro-family generators.)
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG bound to a named stream of the master seed.
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Derive a stream from `(master_seed, stream_tag)`. Streams with
    /// different tags are statistically independent; the same
    /// `(seed, tag)` always yields the same sequence.
    pub fn stream(master_seed: u64, stream_tag: u64) -> Self {
        let mut s = master_seed ^ stream_tag.rotate_left(17);
        // Run the mixer a few times so correlated (seed, tag) pairs
        // decorrelate before seeding.
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        }
        DetRng {
            inner: SmallRng::from_seed(seed),
        }
    }

    /// Stream tags for well-known consumers.
    pub const STREAM_FAILURES: u64 = 0xFA11;
    /// Stream tag for application-visible randomness.
    pub const STREAM_APP: u64 = 0xA44;
    /// Stream tag for fault-campaign victims.
    pub const STREAM_CAMPAIGN: u64 = 0xCA3B;

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, bound)`. `bound` must be positive.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform in `[0, bound)` as usize.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Sample an exponential with the given mean (rate = 1/mean), via
    /// inverse transform. Used by the exponential failure-injection
    /// extension.
    pub fn gen_exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = 1.0 - self.gen_f64(); // in (0, 1]
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_is_reproducible() {
        let mut a = DetRng::stream(42, 7);
        let mut b = DetRng::stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_tags_differ() {
        let mut a = DetRng::stream(42, 1);
        let mut b = DetRng::stream(42, 2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::stream(1, 7);
        let mut b = DetRng::stream(2, 7);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = DetRng::stream(9, 9);
        for _ in 0..1000 {
            assert!(r.gen_range_u64(10) < 10);
            assert!(r.gen_index(3) < 3);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = DetRng::stream(3, 3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen_exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 5.0).abs() < 0.25,
            "empirical mean {mean} too far from 5.0"
        );
    }
}
