//! Per-shard service registry.
//!
//! Upper layers (the simulated MPI layer, machine models, fault
//! controllers) keep their per-rank state in *services* attached to each
//! kernel shard. Services are looked up by type, so layers stay decoupled:
//! xsim-core never names them.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A kernel-resident service: any `'static + Send` state container.
pub trait Service: Any + Send {}
impl<T: Any + Send> Service for T {}

/// Type-indexed map of services installed on one kernel shard.
#[derive(Default)]
pub struct ServiceMap {
    map: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl ServiceMap {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the service of type `T`.
    pub fn insert<T: Service>(&mut self, svc: T) {
        self.map.insert(TypeId::of::<T>(), Box::new(svc));
    }

    /// Shared access to the service of type `T`, if installed.
    pub fn get<T: Service>(&self) -> Option<&T> {
        self.map
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<T>())
    }

    /// Mutable access to the service of type `T`, if installed.
    pub fn get_mut<T: Service>(&mut self) -> Option<&mut T> {
        self.map
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }

    /// Remove and return the service of type `T` (used by hooks that need
    /// to call into the kernel while holding the service).
    pub fn take<T: Service>(&mut self) -> Option<Box<T>> {
        self.map
            .remove(&TypeId::of::<T>())
            .and_then(|b| b.downcast::<T>().ok())
    }

    /// Re-install a service previously [`take`](Self::take)n.
    pub fn put_back<T: Service>(&mut self, svc: Box<T>) {
        self.map.insert(TypeId::of::<T>(), svc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u32);

    #[test]
    fn insert_get_mutate() {
        let mut m = ServiceMap::new();
        assert!(m.get::<Counter>().is_none());
        m.insert(Counter(1));
        m.get_mut::<Counter>().unwrap().0 += 1;
        assert_eq!(m.get::<Counter>().unwrap().0, 2);
    }

    #[test]
    fn take_and_put_back() {
        let mut m = ServiceMap::new();
        m.insert(Counter(7));
        let c = m.take::<Counter>().unwrap();
        assert!(m.get::<Counter>().is_none());
        m.put_back(c);
        assert_eq!(m.get::<Counter>().unwrap().0, 7);
    }

    #[test]
    fn insert_replaces() {
        let mut m = ServiceMap::new();
        m.insert(Counter(1));
        m.insert(Counter(9));
        assert_eq!(m.get::<Counter>().unwrap().0, 9);
    }
}
