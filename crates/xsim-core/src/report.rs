//! End-of-run reporting.
//!
//! xSim prints per-process timing statistics (minimum, maximum, average)
//! during shutdown, for aborted and non-aborted executions alike (paper
//! §IV-D). [`SimReport`] captures the same data programmatically.

use crate::error::{FailureRecord, Termination};
use crate::time::SimTime;

/// How a whole simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// Every VP finished normally.
    Completed,
    /// At least one VP aborted (simulated `MPI_Abort`); the run terminated
    /// after all VPs aborted or finished.
    Aborted,
    /// Every VP that didn't finish was failed by injection and no abort
    /// was triggered (possible with non-fatal error handlers).
    FailedOnly,
}

/// Aggregate min/max/average of per-VP final clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpTimingStats {
    /// Smallest final VP clock.
    pub min: SimTime,
    /// Largest final VP clock — the "simulated time of the application
    /// exit" xSim persists for restart continuation (paper §IV-E).
    pub max: SimTime,
    /// Mean final VP clock.
    pub avg: SimTime,
}

impl VpTimingStats {
    /// Compute stats from final clocks. Returns zeros for an empty slice.
    pub fn from_clocks(clocks: &[SimTime]) -> Self {
        if clocks.is_empty() {
            return VpTimingStats {
                min: SimTime::ZERO,
                max: SimTime::ZERO,
                avg: SimTime::ZERO,
            };
        }
        let mut min = SimTime::MAX;
        let mut max = SimTime::ZERO;
        let mut total: u128 = 0;
        for &c in clocks {
            min = min.min(c);
            max = max.max(c);
            total += c.as_nanos() as u128;
        }
        VpTimingStats {
            min,
            max,
            avg: SimTime((total / clocks.len() as u128) as u64),
        }
    }
}

/// Per-shard engine counters, for attributing work and spotting load
/// imbalance between parallel workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard_id: usize,
    /// Events this shard processed.
    pub events_processed: u64,
    /// VP resumes this shard performed.
    pub context_switches: u64,
    /// High-water mark of this shard's pending-event queue.
    pub queue_depth_hwm: u64,
}

/// Parallel-engine execution profile: how the run was carved into
/// synchronization windows and how the work-stealing pool behaved.
///
/// All of these are *execution-shape* counters, not simulation results:
/// they vary with worker count, shard count and wall-clock scheduling
/// (barrier waits and steals are inherently timing-dependent), so they
/// are excluded from determinism comparisons. The sequential engine
/// reports all-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineProfile {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Shard window-tasks executed by a worker other than the shard's
    /// home worker (work-stealing pool activity).
    pub steals: u64,
    /// Total wall-clock nanoseconds all workers spent waiting at window
    /// barriers.
    pub barrier_wait_ns: u64,
    /// Cross-shard events delivered through the batched exchange.
    pub batched_events: u64,
    /// Largest single (src,dst) exchange batch observed.
    pub batch_max_events: u64,
    /// Windows whose ingest phase (and its barrier) was skipped because
    /// the previous window exchanged no cross-shard events.
    pub ingest_skips: u64,
    /// Largest number of stolen shard-tasks any single worker executed
    /// in one window (burstiness of the work-stealing pool).
    pub window_steal_hwm: u64,
    /// Longest single barrier wait by any worker, in nanoseconds.
    pub window_barrier_hwm_ns: u64,
    /// Events pushed into the pending-event queues (all shards).
    /// Filled from [`crate::queue::QueueStats`] at report assembly.
    pub pool_pushes: u64,
    /// Pushes served from already-reserved queue capacity — no
    /// allocation. `pool_reused / pool_pushes` is the steady-state
    /// pool reuse ratio.
    pub pool_reused: u64,
    /// Largest number of events resident in a single calendar-queue
    /// bucket across all shards (0 under the heap oracle).
    pub queue_bucket_hwm: u64,
}

impl EngineProfile {
    /// Fold another worker's profile into this one. Window counts are
    /// per-worker views of the same global window sequence, so they
    /// merge by max; the rest are true totals.
    pub fn merge(&mut self, other: &EngineProfile) {
        self.windows = self.windows.max(other.windows);
        self.steals += other.steals;
        self.barrier_wait_ns += other.barrier_wait_ns;
        self.batched_events += other.batched_events;
        self.batch_max_events = self.batch_max_events.max(other.batch_max_events);
        self.ingest_skips = self.ingest_skips.max(other.ingest_skips);
        self.window_steal_hwm = self.window_steal_hwm.max(other.window_steal_hwm);
        self.window_barrier_hwm_ns = self.window_barrier_hwm_ns.max(other.window_barrier_hwm_ns);
        self.pool_pushes += other.pool_pushes;
        self.pool_reused += other.pool_reused;
        self.queue_bucket_hwm = self.queue_bucket_hwm.max(other.queue_bucket_hwm);
    }

    /// Fraction of queue pushes served without allocating (0.0 when no
    /// events were pushed).
    pub fn pool_reuse_ratio(&self) -> f64 {
        if self.pool_pushes == 0 {
            0.0
        } else {
            self.pool_reused as f64 / self.pool_pushes as f64
        }
    }
}

/// The result of one simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// How the run ended.
    pub exit: ExitKind,
    /// Final virtual clock of each VP, indexed by rank.
    pub final_clocks: Vec<SimTime>,
    /// Per-VP termination cause, indexed by rank.
    pub terminations: Vec<Termination>,
    /// Min/max/avg of the final clocks.
    pub timing: VpTimingStats,
    /// Process failures that actually activated during the run, in
    /// activation order.
    pub failures: Vec<FailureRecord>,
    /// Virtual time of the first abort, if any.
    pub abort_time: Option<SimTime>,
    /// Total number of events processed.
    pub events_processed: u64,
    /// Total number of VP resumes (context switches into VPs).
    pub context_switches: u64,
    /// Per-shard engine counters (one entry for the sequential engine).
    pub shards: Vec<ShardStats>,
    /// Parallel-engine execution profile (all-zero for sequential runs).
    /// Execution-shape only — never part of determinism comparisons.
    pub profile: EngineProfile,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
}

impl SimReport {
    /// The maximum simulated MPI process time — what xSim writes out at
    /// application exit so a restart can continue the virtual timeline
    /// (paper §IV-E).
    pub fn exit_time(&self) -> SimTime {
        self.timing.max
    }

    /// Load imbalance across shards: the ratio of the busiest shard's
    /// event count to the mean. 1.0 means perfectly balanced; returns 1.0
    /// for single-shard runs or when no events were processed.
    pub fn load_imbalance(&self) -> f64 {
        if self.shards.len() < 2 || self.events_processed == 0 {
            return 1.0;
        }
        let max = self
            .shards
            .iter()
            .map(|s| s.events_processed)
            .max()
            .unwrap_or(0) as f64;
        let avg = self.events_processed as f64 / self.shards.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Largest per-shard pending-event-queue high-water mark.
    pub fn queue_depth_hwm(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.queue_depth_hwm)
            .max()
            .unwrap_or(0)
    }

    /// Render the shutdown summary xSim prints on the command line.
    pub fn summary(&self) -> String {
        format!(
            "xsim: {:?} after {} events, {} context switches \
             (queue hwm {}, {} shard(s), imbalance {:.2}); \
             process times min {} / max {} / avg {}; {} failure(s){}",
            self.exit,
            self.events_processed,
            self.context_switches,
            self.queue_depth_hwm(),
            self.shards.len(),
            self.load_imbalance(),
            self.timing.min,
            self.timing.max,
            self.timing.avg,
            self.failures.len(),
            match self.abort_time {
                Some(t) => format!("; aborted at {t}"),
                None => String::new(),
            }
        ) + &if self.profile.windows > 0 {
            format!(
                "; {} window(s) ({} ingest-skipped), {} steal(s)",
                self.profile.windows, self.profile.ingest_skips, self.profile.steals
            )
        } else {
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_clocks() {
        let clocks = [SimTime(10), SimTime(20), SimTime(60)];
        let s = VpTimingStats::from_clocks(&clocks);
        assert_eq!(s.min, SimTime(10));
        assert_eq!(s.max, SimTime(60));
        assert_eq!(s.avg, SimTime(30));
    }

    #[test]
    fn stats_empty() {
        let s = VpTimingStats::from_clocks(&[]);
        assert_eq!(s.min, SimTime::ZERO);
        assert_eq!(s.max, SimTime::ZERO);
        assert_eq!(s.avg, SimTime::ZERO);
    }

    #[test]
    fn profile_merge_semantics() {
        let mut a = EngineProfile {
            windows: 10,
            steals: 2,
            barrier_wait_ns: 100,
            batched_events: 7,
            batch_max_events: 4,
            ingest_skips: 3,
            window_steal_hwm: 2,
            window_barrier_hwm_ns: 40,
            pool_pushes: 100,
            pool_reused: 90,
            queue_bucket_hwm: 5,
        };
        let b = EngineProfile {
            windows: 10,
            steals: 1,
            barrier_wait_ns: 50,
            batched_events: 3,
            batch_max_events: 6,
            ingest_skips: 3,
            window_steal_hwm: 1,
            window_barrier_hwm_ns: 70,
            pool_pushes: 50,
            pool_reused: 10,
            queue_bucket_hwm: 9,
        };
        a.merge(&b);
        assert_eq!(a.windows, 10); // same global window sequence: max
        assert_eq!(a.steals, 3);
        assert_eq!(a.barrier_wait_ns, 150);
        assert_eq!(a.batched_events, 10);
        assert_eq!(a.batch_max_events, 6);
        assert_eq!(a.ingest_skips, 3); // same global sequence: max
        assert_eq!(a.window_steal_hwm, 2);
        assert_eq!(a.window_barrier_hwm_ns, 70);
        assert_eq!(a.pool_pushes, 150);
        assert_eq!(a.pool_reused, 100);
        assert_eq!(a.queue_bucket_hwm, 9);
        assert!((a.pool_reuse_ratio() - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn stats_single() {
        let s = VpTimingStats::from_clocks(&[SimTime(42)]);
        assert_eq!(s.min, SimTime(42));
        assert_eq!(s.max, SimTime(42));
        assert_eq!(s.avg, SimTime(42));
    }
}
