//! End-of-run reporting.
//!
//! xSim prints per-process timing statistics (minimum, maximum, average)
//! during shutdown, for aborted and non-aborted executions alike (paper
//! §IV-D). [`SimReport`] captures the same data programmatically.

use crate::error::{FailureRecord, Termination};
use crate::time::SimTime;

/// How a whole simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// Every VP finished normally.
    Completed,
    /// At least one VP aborted (simulated `MPI_Abort`); the run terminated
    /// after all VPs aborted or finished.
    Aborted,
    /// Every VP that didn't finish was failed by injection and no abort
    /// was triggered (possible with non-fatal error handlers).
    FailedOnly,
}

/// Aggregate min/max/average of per-VP final clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpTimingStats {
    /// Smallest final VP clock.
    pub min: SimTime,
    /// Largest final VP clock — the "simulated time of the application
    /// exit" xSim persists for restart continuation (paper §IV-E).
    pub max: SimTime,
    /// Mean final VP clock.
    pub avg: SimTime,
}

impl VpTimingStats {
    /// Compute stats from final clocks. Returns zeros for an empty slice.
    pub fn from_clocks(clocks: &[SimTime]) -> Self {
        if clocks.is_empty() {
            return VpTimingStats {
                min: SimTime::ZERO,
                max: SimTime::ZERO,
                avg: SimTime::ZERO,
            };
        }
        let mut min = SimTime::MAX;
        let mut max = SimTime::ZERO;
        let mut total: u128 = 0;
        for &c in clocks {
            min = min.min(c);
            max = max.max(c);
            total += c.as_nanos() as u128;
        }
        VpTimingStats {
            min,
            max,
            avg: SimTime((total / clocks.len() as u128) as u64),
        }
    }
}

/// Per-shard engine counters, for attributing work and spotting load
/// imbalance between parallel workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard_id: usize,
    /// Events this shard processed.
    pub events_processed: u64,
    /// VP resumes this shard performed.
    pub context_switches: u64,
    /// High-water mark of this shard's pending-event queue.
    pub queue_depth_hwm: u64,
}

/// The result of one simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// How the run ended.
    pub exit: ExitKind,
    /// Final virtual clock of each VP, indexed by rank.
    pub final_clocks: Vec<SimTime>,
    /// Per-VP termination cause, indexed by rank.
    pub terminations: Vec<Termination>,
    /// Min/max/avg of the final clocks.
    pub timing: VpTimingStats,
    /// Process failures that actually activated during the run, in
    /// activation order.
    pub failures: Vec<FailureRecord>,
    /// Virtual time of the first abort, if any.
    pub abort_time: Option<SimTime>,
    /// Total number of events processed.
    pub events_processed: u64,
    /// Total number of VP resumes (context switches into VPs).
    pub context_switches: u64,
    /// Per-shard engine counters (one entry for the sequential engine).
    pub shards: Vec<ShardStats>,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
}

impl SimReport {
    /// The maximum simulated MPI process time — what xSim writes out at
    /// application exit so a restart can continue the virtual timeline
    /// (paper §IV-E).
    pub fn exit_time(&self) -> SimTime {
        self.timing.max
    }

    /// Load imbalance across shards: the ratio of the busiest shard's
    /// event count to the mean. 1.0 means perfectly balanced; returns 1.0
    /// for single-shard runs or when no events were processed.
    pub fn load_imbalance(&self) -> f64 {
        if self.shards.len() < 2 || self.events_processed == 0 {
            return 1.0;
        }
        let max = self
            .shards
            .iter()
            .map(|s| s.events_processed)
            .max()
            .unwrap_or(0) as f64;
        let avg = self.events_processed as f64 / self.shards.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Largest per-shard pending-event-queue high-water mark.
    pub fn queue_depth_hwm(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.queue_depth_hwm)
            .max()
            .unwrap_or(0)
    }

    /// Render the shutdown summary xSim prints on the command line.
    pub fn summary(&self) -> String {
        format!(
            "xsim: {:?} after {} events, {} context switches \
             (queue hwm {}, {} shard(s), imbalance {:.2}); \
             process times min {} / max {} / avg {}; {} failure(s){}",
            self.exit,
            self.events_processed,
            self.context_switches,
            self.queue_depth_hwm(),
            self.shards.len(),
            self.load_imbalance(),
            self.timing.min,
            self.timing.max,
            self.timing.avg,
            self.failures.len(),
            match self.abort_time {
                Some(t) => format!("; aborted at {t}"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_clocks() {
        let clocks = [SimTime(10), SimTime(20), SimTime(60)];
        let s = VpTimingStats::from_clocks(&clocks);
        assert_eq!(s.min, SimTime(10));
        assert_eq!(s.max, SimTime(60));
        assert_eq!(s.avg, SimTime(30));
    }

    #[test]
    fn stats_empty() {
        let s = VpTimingStats::from_clocks(&[]);
        assert_eq!(s.min, SimTime::ZERO);
        assert_eq!(s.max, SimTime::ZERO);
        assert_eq!(s.avg, SimTime::ZERO);
    }

    #[test]
    fn stats_single() {
        let s = VpTimingStats::from_clocks(&[SimTime(42)]);
        assert_eq!(s.min, SimTime(42));
        assert_eq!(s.max, SimTime(42));
        assert_eq!(s.avg, SimTime(42));
    }
}
