//! Event records and their deterministic total order.
//!
//! The event payload ([`Action`]) is data-oriented: the dominant engine
//! kinds (spawn, timer fire, message wake) are plain enum variants, and
//! upper-layer closures ride in a [`CallFn`] that stores small closures
//! *inline* in the event record instead of behind a `Box` — steady-state
//! dispatch of the common event mix performs zero heap allocations.

use crate::kernel::Kernel;
use crate::rank::Rank;
use crate::time::SimTime;
use crate::vp::WaitToken;
use std::cmp::Ordering;
use std::fmt;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

/// The deterministic sort key of an event.
///
/// Events are processed in ascending `(time, dst, src, seq)` order. `src`
/// is the rank whose execution scheduled the event (or `dst` itself for
/// kernel-internal events) and `seq` a per-source counter; because every
/// rank executes an identical instruction stream in the sequential and the
/// parallel engine, this key yields bit-identical schedules in both.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Rank at which the event fires.
    pub dst: Rank,
    /// Rank whose execution scheduled the event.
    pub src: Rank,
    /// Per-source scheduling counter (monotonically increasing).
    pub seq: u64,
}

impl Ord for EventKey {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.dst.cmp(&other.dst))
            .then_with(|| self.src.cmp(&other.src))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for EventKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?} @{:?} from {:?}#{}]",
            self.time, self.dst, self.src, self.seq
        )
    }
}

/// Inline capacity of a [`CallFn`] in bytes. Sized so the MPI layer's
/// message-deliver closure (an `Envelope` plus the destination rank)
/// fits without spilling; closures larger than this fall back to one
/// `Box` allocation, preserving semantics.
pub const CALL_INLINE_BYTES: usize = 112;

const INLINE_WORDS: usize = CALL_INLINE_BYTES / 16;

type BoxedCall = Box<dyn FnOnce(&mut Kernel) + Send>;

/// An owned `FnOnce(&mut Kernel)` with small-closure optimization.
///
/// Closures whose size and alignment fit the inline buffer are stored
/// directly in the event record (no allocation); larger ones are boxed.
/// Either way the closure runs exactly once — on [`CallFn::invoke`] or,
/// if the event is dropped unfired (abort teardown), on `Drop`.
pub struct CallFn {
    /// Inline storage, 16-byte aligned via `u128`.
    data: MaybeUninit<[u128; INLINE_WORDS]>,
    /// Consumes the closure at `*data`: runs it when given a kernel,
    /// drops it in place otherwise.
    dispatch: unsafe fn(*mut u8, Option<&mut Kernel>),
    /// Whether the payload lives inline (false: a `BoxedCall` is stored
    /// in the buffer instead). Exposed for pool/bench accounting.
    inline: bool,
}

/// Monomorphic consume shim: `F` is either the user closure (inline
/// case) or a `BoxedCall` (spilled case) — both are `FnOnce(&mut Kernel)`.
unsafe fn dispatch_as<F: FnOnce(&mut Kernel)>(p: *mut u8, k: Option<&mut Kernel>) {
    let p = p as *mut F;
    match k {
        Some(k) => (p.read())(k),
        None => std::ptr::drop_in_place(p),
    }
}

impl CallFn {
    /// Wrap a closure, inlining it when it fits.
    pub fn new<F: FnOnce(&mut Kernel) + Send + 'static>(f: F) -> Self {
        let mut data = MaybeUninit::<[u128; INLINE_WORDS]>::uninit();
        if size_of::<F>() <= CALL_INLINE_BYTES && align_of::<F>() <= align_of::<u128>() {
            unsafe { (data.as_mut_ptr() as *mut F).write(f) };
            CallFn {
                data,
                dispatch: dispatch_as::<F>,
                inline: true,
            }
        } else {
            let boxed: BoxedCall = Box::new(f);
            unsafe { (data.as_mut_ptr() as *mut BoxedCall).write(boxed) };
            CallFn {
                data,
                dispatch: dispatch_as::<BoxedCall>,
                inline: false,
            }
        }
    }

    /// Whether the closure is stored inline (no heap allocation).
    #[inline]
    pub fn is_inline(&self) -> bool {
        self.inline
    }

    /// Run the closure, consuming the slot.
    #[inline]
    pub fn invoke(self, k: &mut Kernel) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `data` holds a live closure written by `new`; wrapping
        // in ManuallyDrop guarantees Drop does not run it a second time.
        unsafe { (this.dispatch)(this.data.as_mut_ptr() as *mut u8, Some(k)) }
    }
}

impl Drop for CallFn {
    fn drop(&mut self) {
        // SAFETY: only reachable when `invoke` never consumed the slot.
        unsafe { (self.dispatch)(self.data.as_mut_ptr() as *mut u8, None) }
    }
}

// SAFETY: `new` requires `F: Send` (and BoxedCall is Send); no shared
// interior mutability.
unsafe impl Send for CallFn {}

impl<F: FnOnce(&mut Kernel) + Send + 'static> From<F> for CallFn {
    fn from(f: F) -> Self {
        CallFn::new(f)
    }
}

/// What an event does when it fires.
pub enum Action {
    /// Spawn the destination VP (initial scheduling at simulation start).
    Spawn,
    /// Wake the destination VP if it is still blocked on the wait
    /// identified by `token` (guards against stale wakeups — e.g. a
    /// compute-completion racing an abort release).
    WakeToken(WaitToken),
    /// Wake the destination VP if it is blocked on any message-class wait.
    /// Used by upper layers after delivering data that may satisfy a wait.
    WakeMessage,
    /// Run an arbitrary simulator-internal action at the destination rank.
    /// This is how upper layers (MPI matching, failure notification,
    /// abort propagation, file system completions) hook into the engine.
    /// Construct with [`Action::call`] — small closures store inline.
    Call(CallFn),
}

impl Action {
    /// A `Call` action; the closure is stored inline when it fits.
    #[inline]
    pub fn call<F: FnOnce(&mut Kernel) + Send + 'static>(f: F) -> Self {
        Action::Call(CallFn::new(f))
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Spawn => write!(f, "Spawn"),
            Action::WakeToken(t) => write!(f, "WakeToken({t:?})"),
            Action::WakeMessage => write!(f, "WakeMessage"),
            Action::Call(c) => write!(
                f,
                "Call({})",
                if c.is_inline() { "inline" } else { "boxed" }
            ),
        }
    }
}

/// A scheduled event: key plus action.
#[derive(Debug)]
pub struct EventRec {
    /// Deterministic sort key.
    pub key: EventKey,
    /// Effect to apply when the event fires.
    pub action: Action,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};
    use std::sync::Arc;

    fn key(t: u64, dst: u32, src: u32, seq: u64) -> EventKey {
        EventKey {
            time: SimTime(t),
            dst: Rank(dst),
            src: Rank(src),
            seq,
        }
    }

    #[test]
    fn key_order_is_lexicographic() {
        assert!(key(1, 9, 9, 9) < key(2, 0, 0, 0));
        assert!(key(1, 0, 9, 9) < key(1, 1, 0, 0));
        assert!(key(1, 1, 0, 9) < key(1, 1, 1, 0));
        assert!(key(1, 1, 1, 0) < key(1, 1, 1, 1));
        assert_eq!(key(1, 1, 1, 1), key(1, 1, 1, 1));
    }

    #[test]
    fn small_closures_inline_large_ones_spill() {
        let small = CallFn::new(move |_k: &mut Kernel| {});
        assert!(small.is_inline());
        let payload = [1u8; CALL_INLINE_BYTES + 1];
        let large = CallFn::new(move |_k: &mut Kernel| {
            assert_eq!(payload[0], 1);
        });
        assert!(!large.is_inline());
    }

    #[test]
    fn dropping_an_unfired_call_releases_captures() {
        // Both the inline and the spilled path must run the capture's
        // destructor exactly once when the event is dropped unfired.
        let counter = Arc::new(AtomicU32::new(0));
        struct Bump(Arc<AtomicU32>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, AtomicOrdering::SeqCst);
            }
        }
        let b = Bump(counter.clone());
        let inline = CallFn::new(move |_k: &mut Kernel| {
            let _ = &b;
        });
        assert!(inline.is_inline());
        drop(inline);
        assert_eq!(counter.load(AtomicOrdering::SeqCst), 1);

        let b = Bump(counter.clone());
        let pad = [0u8; CALL_INLINE_BYTES + 1];
        let spilled = CallFn::new(move |_k: &mut Kernel| {
            let _ = (&b, &pad);
        });
        assert!(!spilled.is_inline());
        drop(spilled);
        assert_eq!(counter.load(AtomicOrdering::SeqCst), 2);
    }
}
