//! Event records and their deterministic total order.

use crate::kernel::Kernel;
use crate::rank::Rank;
use crate::time::SimTime;
use crate::vp::WaitToken;
use std::cmp::Ordering;
use std::fmt;

/// The deterministic sort key of an event.
///
/// Events are processed in ascending `(time, dst, src, seq)` order. `src`
/// is the rank whose execution scheduled the event (or `dst` itself for
/// kernel-internal events) and `seq` a per-source counter; because every
/// rank executes an identical instruction stream in the sequential and the
/// parallel engine, this key yields bit-identical schedules in both.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Rank at which the event fires.
    pub dst: Rank,
    /// Rank whose execution scheduled the event.
    pub src: Rank,
    /// Per-source scheduling counter (monotonically increasing).
    pub seq: u64,
}

impl Ord for EventKey {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.dst.cmp(&other.dst))
            .then_with(|| self.src.cmp(&other.src))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for EventKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?} @{:?} from {:?}#{}]",
            self.time, self.dst, self.src, self.seq
        )
    }
}

/// What an event does when it fires.
pub enum Action {
    /// Spawn the destination VP (initial scheduling at simulation start).
    Spawn,
    /// Wake the destination VP if it is still blocked on the wait
    /// identified by `token` (guards against stale wakeups — e.g. a
    /// compute-completion racing an abort release).
    WakeToken(WaitToken),
    /// Wake the destination VP if it is blocked on any message-class wait.
    /// Used by upper layers after delivering data that may satisfy a wait.
    WakeMessage,
    /// Run an arbitrary simulator-internal action at the destination rank.
    /// This is how upper layers (MPI matching, failure notification,
    /// abort propagation, file system completions) hook into the engine.
    Call(Box<dyn FnOnce(&mut Kernel) + Send>),
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Spawn => write!(f, "Spawn"),
            Action::WakeToken(t) => write!(f, "WakeToken({t:?})"),
            Action::WakeMessage => write!(f, "WakeMessage"),
            Action::Call(_) => write!(f, "Call(..)"),
        }
    }
}

/// A scheduled event: key plus action.
#[derive(Debug)]
pub struct EventRec {
    /// Deterministic sort key.
    pub key: EventKey,
    /// Effect to apply when the event fires.
    pub action: Action,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, dst: u32, src: u32, seq: u64) -> EventKey {
        EventKey {
            time: SimTime(t),
            dst: Rank(dst),
            src: Rank(src),
            seq,
        }
    }

    #[test]
    fn key_order_is_lexicographic() {
        assert!(key(1, 9, 9, 9) < key(2, 0, 0, 0));
        assert!(key(1, 0, 9, 9) < key(1, 1, 0, 0));
        assert!(key(1, 1, 0, 9) < key(1, 1, 1, 0));
        assert!(key(1, 1, 1, 0) < key(1, 1, 1, 1));
        assert_eq!(key(1, 1, 1, 1), key(1, 1, 1, 1));
    }
}
