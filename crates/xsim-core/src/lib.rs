//! # xsim-core — deterministic PDES microkernel
//!
//! This crate is the substrate of the xsim-rs toolkit: a deterministic
//! (optionally parallel, conservative) discrete event simulation engine that
//! executes large numbers of *virtual processes* (VPs) in a highly
//! oversubscribed fashion, exactly like the Extreme-scale Simulator (xSim)
//! described in Engelmann & Naughton, ICPP 2013.
//!
//! The design mirrors the published xSim execution model (§IV-A of the
//! paper):
//!
//! * Each simulated MPI rank is a VP with its own execution context and its
//!   own **virtual clock**. Here a VP context is a stackless coroutine (a
//!   boxed [`Future`](core::future::Future)) instead of a user-space thread
//!   with swapped CPU registers; the observable semantics — context switches
//!   happen only when the VP performs a simulator call — are identical.
//! * The simulator retains full control of the schedule. One VP executes at
//!   a time per native worker; the rest are suspended.
//! * VP clocks advance only when the VP performs a timed operation
//!   (compute/sleep, communication, file I/O) or when the kernel resumes it
//!   with a later-timestamped event.
//! * Failure injection follows the paper's activation rule: the scheduled
//!   time of failure is the *earliest* time of failure; a VP actually fails
//!   when the simulator regains control and observes the VP clock at or past
//!   the scheduled time (§IV-B).
//!
//! Layering: this crate knows nothing about MPI, networks, processors or
//! file systems. Upper layers (xsim-mpi, xsim-net, …) install per-worker
//! *services* into the kernel and schedule closure events that manipulate
//! them. This is the "simulator-internal function/message" mechanism of the
//! paper, generalized.
//!
//! ## Engines
//!
//! * [`engine::run_sequential`] — reference engine, processes events in
//!   global `(time, dst, src, seq)` order.
//! * [`engine::run`] — dispatches to the sequential engine or to a
//!   conservative windowed parallel engine (lookahead = minimum cross-rank
//!   event delay). Both produce bit-identical virtual-time results.

pub mod config;
pub mod ctx;
pub mod deadlock;
pub mod engine;
pub mod error;
pub mod event;
pub mod kernel;
pub mod queue;
pub mod rank;
pub mod report;
pub mod rng;
pub mod service;
pub mod time;
pub mod vp;

pub use config::{CoreConfig, EngineKind, LookaheadProvider};
pub use ctx::{block, current_rank, now, sleep, with_kernel, yield_now};
pub use error::SimError;
pub use event::{Action, CallFn, EventKey, EventRec};
pub use kernel::Kernel;
pub use queue::{EventQueue, QueueImpl, QueueStats};
pub use rank::Rank;
pub use report::{EngineProfile, ExitKind, ShardStats, SimReport, VpTimingStats};
pub use rng::DetRng;
pub use service::Service;
pub use time::SimTime;
pub use vp::{VpExit, VpMut, VpProgram, VpRef, VpState, VpTable, WaitClass, WaitToken};
