//! Virtual processes (VPs).
//!
//! A VP is the simulated counterpart of one MPI process: a coroutine with
//! its own virtual clock, suspended whenever it performs a simulator call
//! (paper §IV-A). The kernel owns a [`VpTable`] and drives each VP's
//! future.
//!
//! ## Data-oriented layout
//!
//! Per-VP state lives in parallel SoA `Vec`s indexed by *local* VP index
//! (`rank − shard base`), not in an array of structs behind options:
//!
//! * the hot wake/dispatch fields each occupy their own dense array, so
//!   the kernel's wake checks and the engines' end-of-run scans touch a
//!   few contiguous cache lines per shard instead of striding over
//!   pointer-sized `Option<Vp>` slots sized to the *whole* machine;
//! * run state, wait class, the pending-wake flag and the termination
//!   kind pack into one byte per VP (3+2+1+2 bits); the termination
//!   *time* is always the VP's final clock (pinned by a debug assert in
//!   [`VpMut::set_termination`]), so it is reconstructed from the clock
//!   column instead of stored;
//! * wait descriptions are interned: the column holds a one-byte index
//!   into a tiny per-table string table (the simulator has a handful of
//!   distinct wait sites, all `&'static str`);
//! * the failure/abort activation columns are *lazy* — empty until the
//!   first injection touches the shard, so a failure-free run pays zero
//!   bytes per VP for them;
//! * each shard's table is sized to the ranks it owns — per-shard memory
//!   is O(owned), not O(n_ranks).
//!
//! The resident footprint is what lets one host hold the paper's 2²⁷
//! VPs: 8 (clock) + 8 (wait token) + 1 (flags) + 1 (wait desc) + 16
//! (future slot) = 34 bytes per VP of table, ≈ 4.6 GiB at 2²⁷ before
//! the coroutines themselves.
//!
//! Code outside the kernel goes through the [`VpRef`]/[`VpMut`] handles
//! returned by `Kernel::vp` / `Kernel::vp_mut`.

use crate::error::Termination;
use crate::rank::Rank;
use crate::time::SimTime;
use std::fmt;
use std::future::Future;
use std::ops::Range;
use std::pin::Pin;

/// The outcome a VP program reports when it returns.
///
/// Upper layers map their own semantics onto this: the MPI layer returns
/// [`VpExit::Failed`] for a program that returns without having called
/// finalize (one of the paper's failure-injection methods, §IV-B) and
/// [`VpExit::Aborted`] when `MPI_Abort` semantics unwound the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpExit {
    /// Clean exit.
    Finished,
    /// The program itself is reporting a process failure.
    Failed,
    /// The program unwound due to (local or propagated) abort semantics.
    Aborted,
}

/// The future type a VP runs.
pub type VpFuture = Pin<Box<dyn Future<Output = VpExit> + Send>>;

/// Factory for VP programs: the engine calls [`VpProgram::spawn`] once per
/// rank at startup. Implementations are typically provided by the MPI
/// layer, wrapping a user application.
pub trait VpProgram: Send + Sync {
    /// Create the coroutine for `rank`. The returned future may only
    /// interact with the simulator through the [`crate::ctx`] functions
    /// (and APIs layered on them), and only while being polled by the
    /// engine.
    fn spawn(&self, rank: Rank) -> VpFuture;
}

impl<F> VpProgram for F
where
    F: Fn(Rank) -> VpFuture + Send + Sync,
{
    fn spawn(&self, rank: Rank) -> VpFuture {
        self(rank)
    }
}

/// Token identifying one particular `block()` call of a VP. Scheduled
/// wakeups carry the token of the wait they intend to satisfy, so stale
/// wakeups (e.g. a compute completion arriving after the VP was failed and
/// restarted into a different wait) are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaitToken(pub u64);

/// What kind of event can legitimately wake a blocked VP.
///
/// The distinction matters for failure semantics: xSim releases *message*
/// waits when a peer fails or the job aborts (paper §IV-C/D), but a VP in
/// the middle of a compute phase keeps computing and only observes the
/// failure/abort when the simulator regains control at the end of the
/// phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Blocked until a scheduled wakeup (compute/sleep completion). Only a
    /// [`crate::event::Action::WakeToken`] with the matching token wakes it.
    Compute,
    /// Blocked on simulated communication (or any simulator-internal
    /// message). Woken by `WakeMessage`, by a matching `WakeToken`, or by
    /// upper-layer `Call` actions (failure/abort releases).
    Message,
    /// Blocked on a simulated file system operation.
    FileIo,
    /// Blocked forever pending kernel-side termination (self-injected
    /// failure).
    Doomed,
}

/// Scheduling state of a VP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpState {
    /// Never yet polled (spawn event pending).
    Fresh,
    /// Currently being polled by a worker.
    Running,
    /// Suspended; `wait_class`/`wait_token` describe what it waits for.
    Blocked,
    /// Woken; will be polled promptly by the kernel.
    Runnable,
    /// Terminated (see `termination` for how).
    Done,
}

// --- packed per-VP flags byte -----------------------------------------
// bits 0..=2: VpState, bits 3..=4: WaitClass, bit 5: pending wake,
// bits 6..=7: termination kind (0 none, 1 finished, 2 failed, 3 aborted).

const STATE_MASK: u8 = 0b0000_0111;
const CLASS_SHIFT: u32 = 3;
const CLASS_MASK: u8 = 0b0001_1000;
const WOKEN_BIT: u8 = 0b0010_0000;
const TERM_SHIFT: u32 = 6;

#[inline]
fn enc_state(s: VpState) -> u8 {
    match s {
        VpState::Fresh => 0,
        VpState::Running => 1,
        VpState::Blocked => 2,
        VpState::Runnable => 3,
        VpState::Done => 4,
    }
}

#[inline]
fn dec_state(b: u8) -> VpState {
    match b & STATE_MASK {
        0 => VpState::Fresh,
        1 => VpState::Running,
        2 => VpState::Blocked,
        3 => VpState::Runnable,
        _ => VpState::Done,
    }
}

#[inline]
fn enc_class(c: WaitClass) -> u8 {
    match c {
        WaitClass::Compute => 0,
        WaitClass::Message => 1,
        WaitClass::FileIo => 2,
        WaitClass::Doomed => 3,
    }
}

#[inline]
fn dec_class(b: u8) -> WaitClass {
    match (b & CLASS_MASK) >> CLASS_SHIFT {
        0 => WaitClass::Compute,
        1 => WaitClass::Message,
        2 => WaitClass::FileIo,
        _ => WaitClass::Doomed,
    }
}

/// Sentinel for "no scheduled time" in the lazy activation columns.
const NO_TIME: u64 = u64::MAX;

/// SoA table of the VPs one shard owns, indexed by `rank − base`.
pub struct VpTable {
    /// Ranks this table covers (`base..base+len`).
    owned: Range<usize>,
    // --- hot: touched on every wake check / dispatch ---
    /// Virtual clocks. Advance only at simulator calls. Also the
    /// termination time once a VP is `Done` (clocks are final then).
    clock: Vec<SimTime>,
    /// Packed state/class/woken/termination byte — see module docs.
    flags: Vec<u8>,
    /// Token of the current wait; bumped by every `begin_wait`.
    wait_token: Vec<WaitToken>,
    // --- warm: failure/abort activation checks on resume. Lazy: empty
    // until the first injection touches this shard ---
    /// Scheduled (earliest) time of failure in ns; `NO_TIME` = never
    /// (the paper encodes this as time 0).
    time_of_failure: Vec<u64>,
    /// Earliest time (ns) at which the VP must observe a propagated
    /// abort; `NO_TIME` = none.
    abort_at: Vec<u64>,
    // --- cold: diagnostics and the coroutines themselves ---
    /// Interned wait descriptions for deadlock diagnostics: per-VP index
    /// into `descs` (static to keep the hot path allocation-free).
    wait_desc: Vec<u8>,
    /// The handful of distinct wait-site descriptions seen by this
    /// shard; `descs[0]` is the empty string.
    descs: Vec<&'static str>,
    /// The coroutines, while alive and not being polled. `Option` so the
    /// kernel can move one out while polling (avoiding aliasing the
    /// table) and drop it to force-terminate the VP.
    futures: Vec<Option<VpFuture>>,
}

impl VpTable {
    /// A table of fresh VPs for `owned`, clocks at `start`.
    pub fn new(owned: Range<usize>, start: SimTime) -> Self {
        let n = owned.len();
        VpTable {
            owned,
            clock: vec![start; n],
            // Fresh, WaitClass::Message, not woken, no termination.
            flags: vec![enc_class(WaitClass::Message) << CLASS_SHIFT; n],
            wait_token: vec![WaitToken(0); n],
            time_of_failure: Vec::new(),
            abort_at: Vec::new(),
            wait_desc: vec![0; n],
            descs: vec![""],
            futures: (0..n).map(|_| None).collect(),
        }
    }

    /// The ranks this table covers.
    pub fn owned_ranks(&self) -> Range<usize> {
        self.owned.clone()
    }

    /// Number of VPs in the table.
    pub fn len(&self) -> usize {
        self.clock.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.clock.is_empty()
    }

    /// Whether `rank` is in the table.
    #[inline]
    pub fn contains(&self, rank: Rank) -> bool {
        self.owned.contains(&rank.idx())
    }

    /// Shared handle to an owned VP. Panics if `rank` is foreign.
    #[inline]
    pub fn get(&self, rank: Rank) -> VpRef<'_> {
        assert!(self.contains(rank), "VP not owned by this shard");
        VpRef {
            t: self,
            i: rank.idx() - self.owned.start,
        }
    }

    /// Mutable handle to an owned VP. Panics if `rank` is foreign.
    #[inline]
    pub fn get_mut(&mut self, rank: Rank) -> VpMut<'_> {
        assert!(self.contains(rank), "VP not owned by this shard");
        let i = rank.idx() - self.owned.start;
        VpMut { t: self, i }
    }

    /// Iterate `(rank, handle)` over every VP in the table.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, VpRef<'_>)> {
        self.owned.clone().map(move |r| {
            (
                Rank::new(r),
                VpRef {
                    t: self,
                    i: r - self.owned.start,
                },
            )
        })
    }

    /// Intern a wait description, returning its column index. The
    /// simulator has a handful of distinct `&'static str` wait sites;
    /// pointer equality catches re-interning on the hot path.
    fn intern(&mut self, s: &'static str) -> u8 {
        if let Some(i) = self
            .descs
            .iter()
            .position(|d| std::ptr::eq(*d, s) || *d == s)
        {
            return i as u8;
        }
        assert!(self.descs.len() < 256, "too many distinct wait sites");
        self.descs.push(s);
        (self.descs.len() - 1) as u8
    }

    /// Materialize the lazy time-of-failure column.
    fn ensure_tof(&mut self) {
        if self.time_of_failure.is_empty() {
            self.time_of_failure = vec![NO_TIME; self.len()];
        }
    }

    /// Materialize the lazy abort-activation column.
    fn ensure_abort(&mut self) {
        if self.abort_at.is_empty() {
            self.abort_at = vec![NO_TIME; self.len()];
        }
    }
}

// `Debug` for the table prints occupancy, not a million rows.
impl fmt::Debug for VpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VpTable")
            .field("owned", &self.owned)
            .field(
                "done",
                &self
                    .flags
                    .iter()
                    .filter(|b| dec_state(**b) == VpState::Done)
                    .count(),
            )
            .finish()
    }
}

/// Shared view of one VP in a [`VpTable`].
#[derive(Clone, Copy)]
pub struct VpRef<'a> {
    t: &'a VpTable,
    i: usize,
}

macro_rules! vp_read_api {
    ($table:ident) => {
        /// This VP's rank.
        #[inline]
        pub fn rank(&self) -> Rank {
            Rank::new(self.$table.owned.start + self.i)
        }

        /// The VP's virtual clock. Advances only at simulator calls.
        #[inline]
        pub fn clock(&self) -> SimTime {
            self.$table.clock[self.i]
        }

        /// Scheduling state.
        #[inline]
        pub fn state(&self) -> VpState {
            dec_state(self.$table.flags[self.i])
        }

        /// What the VP is blocked on (valid when [`VpState::Blocked`]).
        #[inline]
        pub fn wait_class(&self) -> WaitClass {
            dec_class(self.$table.flags[self.i])
        }

        /// Token of the current wait.
        #[inline]
        pub fn wait_token(&self) -> WaitToken {
            self.$table.wait_token[self.i]
        }

        /// Description of the current wait, for diagnostics.
        #[inline]
        pub fn wait_desc(&self) -> &'static str {
            self.$table.descs[self.$table.wait_desc[self.i] as usize]
        }

        /// Scheduled (earliest) time of failure, if any.
        #[inline]
        pub fn time_of_failure(&self) -> Option<SimTime> {
            match self.$table.time_of_failure.get(self.i) {
                Some(&ns) if ns != NO_TIME => Some(SimTime(ns)),
                _ => None,
            }
        }

        /// Earliest propagated-abort activation time, if any.
        #[inline]
        pub fn abort_at(&self) -> Option<SimTime> {
            match self.$table.abort_at.get(self.i) {
                Some(&ns) if ns != NO_TIME => Some(SimTime(ns)),
                _ => None,
            }
        }

        /// How the VP terminated (valid when [`VpState::Done`]). The
        /// termination time is the VP's final clock — see
        /// [`VpMut::set_termination`].
        #[inline]
        pub fn termination(&self) -> Option<Termination> {
            match self.$table.flags[self.i] >> TERM_SHIFT {
                0 => None,
                1 => Some(Termination::Finished),
                2 => Some(Termination::Failed(self.clock())),
                _ => Some(Termination::Aborted(self.clock())),
            }
        }

        /// Whether the VP has terminated (finished, failed, or aborted).
        #[inline]
        pub fn is_done(&self) -> bool {
            dec_state(self.$table.flags[self.i]) == VpState::Done
        }

        /// Whether the VP terminated by injected failure.
        #[inline]
        pub fn is_failed(&self) -> bool {
            self.$table.flags[self.i] >> TERM_SHIFT == 2
        }
    };
}

impl VpRef<'_> {
    vp_read_api!(t);
}

/// Mutable view of one VP in a [`VpTable`].
pub struct VpMut<'a> {
    t: &'a mut VpTable,
    i: usize,
}

impl VpMut<'_> {
    vp_read_api!(t);

    /// Set the scheduling state.
    #[inline]
    pub fn set_state(&mut self, s: VpState) {
        let f = &mut self.t.flags[self.i];
        *f = (*f & !STATE_MASK) | enc_state(s);
    }

    /// Advance the clock to at least `time` (clocks never move backward).
    #[inline]
    pub fn advance_clock(&mut self, time: SimTime) -> SimTime {
        let c = &mut self.t.clock[self.i];
        *c = (*c).max(time);
        *c
    }

    /// Begin a new wait: bump the token, record the class and description.
    /// Returns the token the wakeup must carry.
    pub fn begin_wait(&mut self, class: WaitClass, desc: &'static str) -> WaitToken {
        debug_assert_eq!(dec_state(self.t.flags[self.i]), VpState::Running);
        let tok = WaitToken(self.t.wait_token[self.i].0 + 1);
        self.t.wait_token[self.i] = tok;
        self.t.wait_desc[self.i] = self.t.intern(desc);
        let f = &mut self.t.flags[self.i];
        *f = (*f & !(STATE_MASK | CLASS_MASK | WOKEN_BIT))
            | enc_state(VpState::Blocked)
            | (enc_class(class) << CLASS_SHIFT);
        tok
    }

    /// Re-enter a wait under an *existing* token after a spurious wake,
    /// keeping the already-scheduled wake event valid. Used by `sleep`
    /// and the file-system layer when an upper layer released the wait
    /// early.
    pub fn rearm_wait(&mut self, class: WaitClass, desc: &'static str, token: WaitToken) {
        self.t.wait_token[self.i] = token;
        self.t.wait_desc[self.i] = self.t.intern(desc);
        let f = &mut self.t.flags[self.i];
        *f = (*f & !(STATE_MASK | CLASS_MASK | WOKEN_BIT))
            | enc_state(VpState::Blocked)
            | (enc_class(class) << CLASS_SHIFT);
    }

    /// Deliver a wakeup: mark runnable with the pending-wake flag set.
    #[inline]
    pub fn deliver_wake(&mut self) {
        let f = &mut self.t.flags[self.i];
        *f = (*f & !STATE_MASK) | enc_state(VpState::Runnable) | WOKEN_BIT;
    }

    /// Consume a delivered wakeup, if any. Called by blocking futures on
    /// re-poll.
    #[inline]
    pub fn take_woken(&mut self) -> bool {
        let f = &mut self.t.flags[self.i];
        let woken = *f & WOKEN_BIT != 0;
        *f &= !WOKEN_BIT;
        woken
    }

    /// Set the scheduled time of failure. Materializes the lazy column
    /// on a shard's first injection.
    #[inline]
    pub fn set_time_of_failure(&mut self, tof: SimTime) {
        self.t.ensure_tof();
        self.t.time_of_failure[self.i] = tof.as_nanos();
    }

    /// Min-merge a propagated-abort activation time. Materializes the
    /// lazy column on a shard's first abort.
    #[inline]
    pub fn note_abort_at(&mut self, time: SimTime) {
        self.t.ensure_abort();
        let slot = &mut self.t.abort_at[self.i];
        *slot = (*slot).min(time.as_nanos());
    }

    /// Record how the VP terminated. Only the *kind* is stored: every
    /// kernel termination path sets the time to the VP's final clock
    /// (it advances the clock first), so the time is reconstructed from
    /// the clock column — asserted here.
    #[inline]
    pub fn set_termination(&mut self, term: Termination) {
        let kind = match term {
            Termination::Finished => 1u8,
            Termination::Failed(t) => {
                debug_assert_eq!(t, self.clock(), "termination time must be the final clock");
                2
            }
            Termination::Aborted(t) => {
                debug_assert_eq!(t, self.clock(), "termination time must be the final clock");
                3
            }
        };
        let f = &mut self.t.flags[self.i];
        *f = (*f & !(0b11 << TERM_SHIFT)) | (kind << TERM_SHIFT);
    }

    /// Move the coroutine out for polling (or teardown).
    #[inline]
    pub fn take_future(&mut self) -> Option<VpFuture> {
        self.t.futures[self.i].take()
    }

    /// Put the coroutine back after a `Pending` poll (or install it at
    /// spawn).
    #[inline]
    pub fn put_future(&mut self, fut: VpFuture) {
        self.t.futures[self.i] = Some(fut);
    }

    /// Drop the coroutine (force-terminate).
    #[inline]
    pub fn drop_future(&mut self) {
        self.t.futures[self.i] = None;
    }
}

impl fmt::Debug for VpRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vp")
            .field("rank", &self.rank())
            .field("clock", &self.clock())
            .field("state", &self.state())
            .field("wait", &self.wait_desc())
            .field("tof", &self.time_of_failure())
            .finish()
    }
}

impl fmt::Debug for VpMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        VpRef {
            t: self.t,
            i: self.i,
        }
        .fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VpTable {
        VpTable::new(4..8, SimTime::ZERO)
    }

    #[test]
    fn dense_indexing_offsets_by_base() {
        let mut t = table();
        assert_eq!(t.len(), 4);
        assert!(t.contains(Rank(4)) && t.contains(Rank(7)));
        assert!(!t.contains(Rank(3)) && !t.contains(Rank(8)));
        assert_eq!(t.get(Rank(5)).rank(), Rank(5));
        t.get_mut(Rank(6)).advance_clock(SimTime(9));
        assert_eq!(t.get(Rank(6)).clock(), SimTime(9));
        assert_eq!(t.get(Rank(5)).clock(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn foreign_rank_panics() {
        table().get(Rank(0));
    }

    #[test]
    fn begin_wait_bumps_token_and_blocks() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(4));
        vp.set_state(VpState::Running);
        let t1 = vp.begin_wait(WaitClass::Compute, "compute");
        assert_eq!(vp.state(), VpState::Blocked);
        assert_eq!(vp.wait_desc(), "compute");
        vp.set_state(VpState::Running);
        let t2 = vp.begin_wait(WaitClass::Message, "recv");
        assert_ne!(t1, t2);
    }

    #[test]
    fn rearm_wait_keeps_token_valid() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(4));
        vp.set_state(VpState::Running);
        let tok = vp.begin_wait(WaitClass::Compute, "compute");
        vp.deliver_wake();
        assert!(vp.take_woken());
        vp.rearm_wait(WaitClass::Compute, "compute", tok);
        assert_eq!(vp.state(), VpState::Blocked);
        assert_eq!(vp.wait_token(), tok);
        assert!(!vp.take_woken());
    }

    #[test]
    fn take_woken_is_one_shot() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(4));
        vp.deliver_wake();
        assert!(vp.take_woken());
        assert!(!vp.take_woken());
    }

    #[test]
    fn clocks_never_move_backward() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(7));
        vp.advance_clock(SimTime(50));
        assert_eq!(vp.advance_clock(SimTime(10)), SimTime(50));
    }

    #[test]
    fn packed_flags_round_trip_independently() {
        // Every (state, class, woken) combination survives a round trip
        // and mutating one field never disturbs the others.
        let mut t = table();
        let states = [
            VpState::Fresh,
            VpState::Running,
            VpState::Blocked,
            VpState::Runnable,
            VpState::Done,
        ];
        let classes = [
            WaitClass::Compute,
            WaitClass::Message,
            WaitClass::FileIo,
            WaitClass::Doomed,
        ];
        for &s in &states {
            for &c in &classes {
                let mut vp = t.get_mut(Rank(4));
                vp.set_state(VpState::Running);
                vp.begin_wait(c, "x");
                vp.set_state(s);
                assert_eq!(vp.state(), s);
                assert_eq!(vp.wait_class(), c);
                vp.deliver_wake();
                assert_eq!(vp.wait_class(), c, "wake must not clobber class");
                assert_eq!(vp.state(), VpState::Runnable);
                assert!(vp.take_woken());
            }
        }
    }

    #[test]
    fn termination_kind_packs_and_time_is_the_clock() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(4));
        assert_eq!(vp.termination(), None);
        vp.advance_clock(SimTime(77));
        vp.set_termination(Termination::Failed(SimTime(77)));
        assert_eq!(vp.termination(), Some(Termination::Failed(SimTime(77))));
        assert!(vp.is_failed());
        let mut vp = t.get_mut(Rank(5));
        vp.advance_clock(SimTime(9));
        vp.set_termination(Termination::Aborted(SimTime(9)));
        assert_eq!(vp.termination(), Some(Termination::Aborted(SimTime(9))));
        let mut vp = t.get_mut(Rank(6));
        vp.set_termination(Termination::Finished);
        assert_eq!(vp.termination(), Some(Termination::Finished));
        assert!(!vp.is_failed());
    }

    #[test]
    fn activation_columns_are_lazy() {
        let mut t = table();
        assert!(t.time_of_failure.is_empty() && t.abort_at.is_empty());
        assert_eq!(t.get(Rank(4)).time_of_failure(), None);
        assert_eq!(t.get(Rank(4)).abort_at(), None);
        t.get_mut(Rank(5)).set_time_of_failure(SimTime(123));
        assert_eq!(t.time_of_failure.len(), 4, "column materializes once");
        assert_eq!(t.get(Rank(5)).time_of_failure(), Some(SimTime(123)));
        assert_eq!(t.get(Rank(4)).time_of_failure(), None);
        t.get_mut(Rank(6)).note_abort_at(SimTime(50));
        t.get_mut(Rank(6)).note_abort_at(SimTime(40));
        t.get_mut(Rank(6)).note_abort_at(SimTime(60));
        assert_eq!(t.get(Rank(6)).abort_at(), Some(SimTime(40)), "min-merge");
    }

    #[test]
    fn wait_descs_intern_to_one_byte() {
        let mut t = table();
        for r in 4..8 {
            let mut vp = t.get_mut(Rank(r));
            vp.set_state(VpState::Running);
            vp.begin_wait(WaitClass::Message, "recv");
        }
        assert_eq!(t.descs.len(), 2, "one shared entry plus the empty slot");
        assert_eq!(t.get(Rank(7)).wait_desc(), "recv");
    }
}
