//! Virtual processes (VPs).
//!
//! A VP is the simulated counterpart of one MPI process: a coroutine with
//! its own virtual clock, suspended whenever it performs a simulator call
//! (paper §IV-A). The kernel owns the VP table and drives each VP's future.

use crate::error::Termination;
use crate::rank::Rank;
use crate::time::SimTime;
use std::fmt;
use std::future::Future;
use std::pin::Pin;

/// The outcome a VP program reports when it returns.
///
/// Upper layers map their own semantics onto this: the MPI layer returns
/// [`VpExit::Failed`] for a program that returns without having called
/// finalize (one of the paper's failure-injection methods, §IV-B) and
/// [`VpExit::Aborted`] when `MPI_Abort` semantics unwound the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpExit {
    /// Clean exit.
    Finished,
    /// The program itself is reporting a process failure.
    Failed,
    /// The program unwound due to (local or propagated) abort semantics.
    Aborted,
}

/// The future type a VP runs.
pub type VpFuture = Pin<Box<dyn Future<Output = VpExit> + Send>>;

/// Factory for VP programs: the engine calls [`VpProgram::spawn`] once per
/// rank at startup. Implementations are typically provided by the MPI
/// layer, wrapping a user application.
pub trait VpProgram: Send + Sync {
    /// Create the coroutine for `rank`. The returned future may only
    /// interact with the simulator through the [`crate::ctx`] functions
    /// (and APIs layered on them), and only while being polled by the
    /// engine.
    fn spawn(&self, rank: Rank) -> VpFuture;
}

impl<F> VpProgram for F
where
    F: Fn(Rank) -> VpFuture + Send + Sync,
{
    fn spawn(&self, rank: Rank) -> VpFuture {
        self(rank)
    }
}

/// Token identifying one particular `block()` call of a VP. Scheduled
/// wakeups carry the token of the wait they intend to satisfy, so stale
/// wakeups (e.g. a compute completion arriving after the VP was failed and
/// restarted into a different wait) are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaitToken(pub u64);

/// What kind of event can legitimately wake a blocked VP.
///
/// The distinction matters for failure semantics: xSim releases *message*
/// waits when a peer fails or the job aborts (paper §IV-C/D), but a VP in
/// the middle of a compute phase keeps computing and only observes the
/// failure/abort when the simulator regains control at the end of the
/// phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Blocked until a scheduled wakeup (compute/sleep completion). Only a
    /// [`crate::event::Action::WakeToken`] with the matching token wakes it.
    Compute,
    /// Blocked on simulated communication (or any simulator-internal
    /// message). Woken by `WakeMessage`, by a matching `WakeToken`, or by
    /// upper-layer `Call` actions (failure/abort releases).
    Message,
    /// Blocked on a simulated file system operation.
    FileIo,
    /// Blocked forever pending kernel-side termination (self-injected
    /// failure).
    Doomed,
}

/// Scheduling state of a VP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpState {
    /// Never yet polled (spawn event pending).
    Fresh,
    /// Currently being polled by a worker.
    Running,
    /// Suspended; `wait_class`/`wait_token` describe what it waits for.
    Blocked,
    /// Woken; will be polled promptly by the kernel.
    Runnable,
    /// Terminated (see `termination` for how).
    Done,
}

/// Per-VP bookkeeping. The future itself lives in an `Option` so the
/// kernel can move it out while polling (avoiding aliasing the VP table)
/// and drop it to force-terminate the VP.
pub struct Vp {
    /// This VP's rank.
    pub rank: Rank,
    /// The VP's virtual clock. Advances only at simulator calls.
    pub clock: SimTime,
    /// Scheduling state.
    pub state: VpState,
    /// The coroutine, while alive and not being polled.
    pub future: Option<VpFuture>,
    /// What the VP is blocked on (valid when `state == Blocked`).
    pub wait_class: WaitClass,
    /// Token of the current wait; incremented by every `begin_wait`.
    pub wait_token: WaitToken,
    /// Set by the kernel when a wakeup was delivered; cleared by the
    /// blocking future when it observes it.
    pub woken: bool,
    /// Human-readable description of the current wait, for deadlock
    /// diagnostics (static to keep the hot path allocation-free).
    pub wait_desc: &'static str,
    /// Scheduled (earliest) time of failure, if an injection targets this
    /// VP. `None` = "fail never" (the paper encodes this as time 0).
    pub time_of_failure: Option<SimTime>,
    /// Earliest time at which this VP must observe a propagated abort.
    pub abort_at: Option<SimTime>,
    /// How the VP terminated (valid when `state == Done`).
    pub termination: Option<Termination>,
    /// Number of times this VP was resumed (context switches in).
    pub resumes: u64,
}

impl Vp {
    /// A fresh VP with its clock at `start`.
    pub fn new(rank: Rank, start: SimTime) -> Self {
        Vp {
            rank,
            clock: start,
            state: VpState::Fresh,
            future: None,
            wait_class: WaitClass::Message,
            wait_token: WaitToken(0),
            woken: false,
            wait_desc: "",
            time_of_failure: None,
            abort_at: None,
            termination: None,
            resumes: 0,
        }
    }

    /// Whether the VP has terminated (finished, failed, or aborted).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.state == VpState::Done
    }

    /// Whether the VP terminated by injected failure.
    #[inline]
    pub fn is_failed(&self) -> bool {
        matches!(self.termination, Some(Termination::Failed(_)))
    }

    /// Begin a new wait: bump the token, record the class and description.
    /// Returns the token the wakeup must carry.
    pub fn begin_wait(&mut self, class: WaitClass, desc: &'static str) -> WaitToken {
        debug_assert_eq!(self.state, VpState::Running);
        self.wait_token = WaitToken(self.wait_token.0 + 1);
        self.wait_class = class;
        self.wait_desc = desc;
        self.woken = false;
        self.state = VpState::Blocked;
        self.wait_token
    }

    /// Consume a delivered wakeup, if any. Called by blocking futures on
    /// re-poll.
    pub fn take_woken(&mut self) -> bool {
        std::mem::take(&mut self.woken)
    }
}

impl fmt::Debug for Vp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vp")
            .field("rank", &self.rank)
            .field("clock", &self.clock)
            .field("state", &self.state)
            .field("wait", &self.wait_desc)
            .field("tof", &self.time_of_failure)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_wait_bumps_token_and_blocks() {
        let mut vp = Vp::new(Rank(0), SimTime::ZERO);
        vp.state = VpState::Running;
        let t1 = vp.begin_wait(WaitClass::Compute, "compute");
        assert_eq!(vp.state, VpState::Blocked);
        assert_eq!(vp.wait_desc, "compute");
        vp.state = VpState::Running;
        let t2 = vp.begin_wait(WaitClass::Message, "recv");
        assert_ne!(t1, t2);
    }

    #[test]
    fn take_woken_is_one_shot() {
        let mut vp = Vp::new(Rank(0), SimTime::ZERO);
        vp.woken = true;
        assert!(vp.take_woken());
        assert!(!vp.take_woken());
    }
}
