//! Virtual processes (VPs).
//!
//! A VP is the simulated counterpart of one MPI process: a coroutine with
//! its own virtual clock, suspended whenever it performs a simulator call
//! (paper §IV-A). The kernel owns a [`VpTable`] and drives each VP's
//! future.
//!
//! ## Data-oriented layout
//!
//! Per-VP state lives in parallel SoA `Vec`s indexed by *local* VP index
//! (`rank − shard base`), not in an array of structs behind options:
//!
//! * the hot wake/dispatch fields (clock, run state, wait class/token,
//!   pending-wake flag) each occupy their own dense array, so the
//!   kernel's wake checks and the engines' end-of-run scans touch a few
//!   contiguous cache lines per shard instead of striding over
//!   pointer-sized `Option<Vp>` slots sized to the *whole* machine;
//! * cold fields (the coroutine itself, termination, diagnostics) sit in
//!   separate arrays so they never pollute the hot lines;
//! * each shard's table is sized to the ranks it owns — per-shard memory
//!   is O(owned), not O(n_ranks), which is what lets a 32-shard run hold
//!   a million VPs without 32 copies of a million-slot table.
//!
//! Code outside the kernel goes through the [`VpRef`]/[`VpMut`] handles
//! returned by `Kernel::vp` / `Kernel::vp_mut`.

use crate::error::Termination;
use crate::rank::Rank;
use crate::time::SimTime;
use std::fmt;
use std::future::Future;
use std::ops::Range;
use std::pin::Pin;

/// The outcome a VP program reports when it returns.
///
/// Upper layers map their own semantics onto this: the MPI layer returns
/// [`VpExit::Failed`] for a program that returns without having called
/// finalize (one of the paper's failure-injection methods, §IV-B) and
/// [`VpExit::Aborted`] when `MPI_Abort` semantics unwound the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpExit {
    /// Clean exit.
    Finished,
    /// The program itself is reporting a process failure.
    Failed,
    /// The program unwound due to (local or propagated) abort semantics.
    Aborted,
}

/// The future type a VP runs.
pub type VpFuture = Pin<Box<dyn Future<Output = VpExit> + Send>>;

/// Factory for VP programs: the engine calls [`VpProgram::spawn`] once per
/// rank at startup. Implementations are typically provided by the MPI
/// layer, wrapping a user application.
pub trait VpProgram: Send + Sync {
    /// Create the coroutine for `rank`. The returned future may only
    /// interact with the simulator through the [`crate::ctx`] functions
    /// (and APIs layered on them), and only while being polled by the
    /// engine.
    fn spawn(&self, rank: Rank) -> VpFuture;
}

impl<F> VpProgram for F
where
    F: Fn(Rank) -> VpFuture + Send + Sync,
{
    fn spawn(&self, rank: Rank) -> VpFuture {
        self(rank)
    }
}

/// Token identifying one particular `block()` call of a VP. Scheduled
/// wakeups carry the token of the wait they intend to satisfy, so stale
/// wakeups (e.g. a compute completion arriving after the VP was failed and
/// restarted into a different wait) are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaitToken(pub u64);

/// What kind of event can legitimately wake a blocked VP.
///
/// The distinction matters for failure semantics: xSim releases *message*
/// waits when a peer fails or the job aborts (paper §IV-C/D), but a VP in
/// the middle of a compute phase keeps computing and only observes the
/// failure/abort when the simulator regains control at the end of the
/// phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Blocked until a scheduled wakeup (compute/sleep completion). Only a
    /// [`crate::event::Action::WakeToken`] with the matching token wakes it.
    Compute,
    /// Blocked on simulated communication (or any simulator-internal
    /// message). Woken by `WakeMessage`, by a matching `WakeToken`, or by
    /// upper-layer `Call` actions (failure/abort releases).
    Message,
    /// Blocked on a simulated file system operation.
    FileIo,
    /// Blocked forever pending kernel-side termination (self-injected
    /// failure).
    Doomed,
}

/// Scheduling state of a VP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpState {
    /// Never yet polled (spawn event pending).
    Fresh,
    /// Currently being polled by a worker.
    Running,
    /// Suspended; `wait_class`/`wait_token` describe what it waits for.
    Blocked,
    /// Woken; will be polled promptly by the kernel.
    Runnable,
    /// Terminated (see `termination` for how).
    Done,
}

/// SoA table of the VPs one shard owns, indexed by `rank − base`.
pub struct VpTable {
    /// Ranks this table covers (`base..base+len`).
    owned: Range<usize>,
    // --- hot: touched on every wake check / dispatch ---
    /// Virtual clocks. Advance only at simulator calls.
    clock: Vec<SimTime>,
    /// Scheduling states.
    state: Vec<VpState>,
    /// What each VP is blocked on (valid when `Blocked`).
    wait_class: Vec<WaitClass>,
    /// Token of the current wait; bumped by every `begin_wait`.
    wait_token: Vec<WaitToken>,
    /// Pending-wake flags: set by the kernel when a wakeup was delivered,
    /// cleared by the blocking future when it observes it.
    woken: Vec<bool>,
    // --- warm: failure/abort activation checks on resume ---
    /// Scheduled (earliest) time of failure, if an injection targets the
    /// VP. `None` = "fail never" (the paper encodes this as time 0).
    time_of_failure: Vec<Option<SimTime>>,
    /// Earliest time at which the VP must observe a propagated abort.
    abort_at: Vec<Option<SimTime>>,
    // --- cold: diagnostics, teardown, the coroutines themselves ---
    /// Human-readable wait descriptions for deadlock diagnostics
    /// (static to keep the hot path allocation-free).
    wait_desc: Vec<&'static str>,
    /// How each VP terminated (valid when `Done`).
    termination: Vec<Option<Termination>>,
    /// Context-switch-in counts.
    resumes: Vec<u64>,
    /// The coroutines, while alive and not being polled. `Option` so the
    /// kernel can move one out while polling (avoiding aliasing the
    /// table) and drop it to force-terminate the VP.
    futures: Vec<Option<VpFuture>>,
}

impl VpTable {
    /// A table of fresh VPs for `owned`, clocks at `start`.
    pub fn new(owned: Range<usize>, start: SimTime) -> Self {
        let n = owned.len();
        VpTable {
            owned,
            clock: vec![start; n],
            state: vec![VpState::Fresh; n],
            wait_class: vec![WaitClass::Message; n],
            wait_token: vec![WaitToken(0); n],
            woken: vec![false; n],
            time_of_failure: vec![None; n],
            abort_at: vec![None; n],
            wait_desc: vec![""; n],
            termination: vec![None; n],
            resumes: vec![0; n],
            futures: (0..n).map(|_| None).collect(),
        }
    }

    /// The ranks this table covers.
    pub fn owned_ranks(&self) -> Range<usize> {
        self.owned.clone()
    }

    /// Number of VPs in the table.
    pub fn len(&self) -> usize {
        self.clock.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.clock.is_empty()
    }

    /// Whether `rank` is in the table.
    #[inline]
    pub fn contains(&self, rank: Rank) -> bool {
        self.owned.contains(&rank.idx())
    }

    /// Shared handle to an owned VP. Panics if `rank` is foreign.
    #[inline]
    pub fn get(&self, rank: Rank) -> VpRef<'_> {
        assert!(self.contains(rank), "VP not owned by this shard");
        VpRef {
            t: self,
            i: rank.idx() - self.owned.start,
        }
    }

    /// Mutable handle to an owned VP. Panics if `rank` is foreign.
    #[inline]
    pub fn get_mut(&mut self, rank: Rank) -> VpMut<'_> {
        assert!(self.contains(rank), "VP not owned by this shard");
        let i = rank.idx() - self.owned.start;
        VpMut { t: self, i }
    }

    /// Iterate `(rank, handle)` over every VP in the table.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, VpRef<'_>)> {
        self.owned.clone().map(move |r| {
            (
                Rank::new(r),
                VpRef {
                    t: self,
                    i: r - self.owned.start,
                },
            )
        })
    }
}

// `Debug` for the table prints occupancy, not a million rows.
impl fmt::Debug for VpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VpTable")
            .field("owned", &self.owned)
            .field(
                "done",
                &self.state.iter().filter(|s| **s == VpState::Done).count(),
            )
            .finish()
    }
}

/// Shared view of one VP in a [`VpTable`].
#[derive(Clone, Copy)]
pub struct VpRef<'a> {
    t: &'a VpTable,
    i: usize,
}

macro_rules! vp_read_api {
    ($table:ident) => {
        /// This VP's rank.
        #[inline]
        pub fn rank(&self) -> Rank {
            Rank::new(self.$table.owned.start + self.i)
        }

        /// The VP's virtual clock. Advances only at simulator calls.
        #[inline]
        pub fn clock(&self) -> SimTime {
            self.$table.clock[self.i]
        }

        /// Scheduling state.
        #[inline]
        pub fn state(&self) -> VpState {
            self.$table.state[self.i]
        }

        /// What the VP is blocked on (valid when [`VpState::Blocked`]).
        #[inline]
        pub fn wait_class(&self) -> WaitClass {
            self.$table.wait_class[self.i]
        }

        /// Token of the current wait.
        #[inline]
        pub fn wait_token(&self) -> WaitToken {
            self.$table.wait_token[self.i]
        }

        /// Description of the current wait, for diagnostics.
        #[inline]
        pub fn wait_desc(&self) -> &'static str {
            self.$table.wait_desc[self.i]
        }

        /// Scheduled (earliest) time of failure, if any.
        #[inline]
        pub fn time_of_failure(&self) -> Option<SimTime> {
            self.$table.time_of_failure[self.i]
        }

        /// Earliest propagated-abort activation time, if any.
        #[inline]
        pub fn abort_at(&self) -> Option<SimTime> {
            self.$table.abort_at[self.i]
        }

        /// How the VP terminated (valid when [`VpState::Done`]).
        #[inline]
        pub fn termination(&self) -> Option<Termination> {
            self.$table.termination[self.i]
        }

        /// Number of times this VP was resumed (context switches in).
        #[inline]
        pub fn resumes(&self) -> u64 {
            self.$table.resumes[self.i]
        }

        /// Whether the VP has terminated (finished, failed, or aborted).
        #[inline]
        pub fn is_done(&self) -> bool {
            self.$table.state[self.i] == VpState::Done
        }

        /// Whether the VP terminated by injected failure.
        #[inline]
        pub fn is_failed(&self) -> bool {
            matches!(
                self.$table.termination[self.i],
                Some(Termination::Failed(_))
            )
        }
    };
}

impl VpRef<'_> {
    vp_read_api!(t);
}

/// Mutable view of one VP in a [`VpTable`].
pub struct VpMut<'a> {
    t: &'a mut VpTable,
    i: usize,
}

impl VpMut<'_> {
    vp_read_api!(t);

    /// Set the scheduling state.
    #[inline]
    pub fn set_state(&mut self, s: VpState) {
        self.t.state[self.i] = s;
    }

    /// Advance the clock to at least `time` (clocks never move backward).
    #[inline]
    pub fn advance_clock(&mut self, time: SimTime) -> SimTime {
        let c = &mut self.t.clock[self.i];
        *c = (*c).max(time);
        *c
    }

    /// Begin a new wait: bump the token, record the class and description.
    /// Returns the token the wakeup must carry.
    pub fn begin_wait(&mut self, class: WaitClass, desc: &'static str) -> WaitToken {
        debug_assert_eq!(self.t.state[self.i], VpState::Running);
        let tok = WaitToken(self.t.wait_token[self.i].0 + 1);
        self.t.wait_token[self.i] = tok;
        self.t.wait_class[self.i] = class;
        self.t.wait_desc[self.i] = desc;
        self.t.woken[self.i] = false;
        self.t.state[self.i] = VpState::Blocked;
        tok
    }

    /// Re-enter a wait under an *existing* token after a spurious wake,
    /// keeping the already-scheduled wake event valid. Used by `sleep`
    /// and the file-system layer when an upper layer released the wait
    /// early.
    pub fn rearm_wait(&mut self, class: WaitClass, desc: &'static str, token: WaitToken) {
        self.t.wait_token[self.i] = token;
        self.t.wait_class[self.i] = class;
        self.t.wait_desc[self.i] = desc;
        self.t.woken[self.i] = false;
        self.t.state[self.i] = VpState::Blocked;
    }

    /// Deliver a wakeup: mark runnable with the pending-wake flag set.
    #[inline]
    pub fn deliver_wake(&mut self) {
        self.t.state[self.i] = VpState::Runnable;
        self.t.woken[self.i] = true;
    }

    /// Consume a delivered wakeup, if any. Called by blocking futures on
    /// re-poll.
    #[inline]
    pub fn take_woken(&mut self) -> bool {
        std::mem::take(&mut self.t.woken[self.i])
    }

    /// Set the scheduled time of failure.
    #[inline]
    pub fn set_time_of_failure(&mut self, tof: SimTime) {
        self.t.time_of_failure[self.i] = Some(tof);
    }

    /// Min-merge a propagated-abort activation time.
    #[inline]
    pub fn note_abort_at(&mut self, time: SimTime) {
        let slot = &mut self.t.abort_at[self.i];
        *slot = Some(match *slot {
            Some(existing) => existing.min(time),
            None => time,
        });
    }

    /// Record how the VP terminated.
    #[inline]
    pub fn set_termination(&mut self, term: Termination) {
        self.t.termination[self.i] = Some(term);
    }

    /// Count a context switch in.
    #[inline]
    pub fn bump_resumes(&mut self) {
        self.t.resumes[self.i] += 1;
    }

    /// Move the coroutine out for polling (or teardown).
    #[inline]
    pub fn take_future(&mut self) -> Option<VpFuture> {
        self.t.futures[self.i].take()
    }

    /// Put the coroutine back after a `Pending` poll (or install it at
    /// spawn).
    #[inline]
    pub fn put_future(&mut self, fut: VpFuture) {
        self.t.futures[self.i] = Some(fut);
    }

    /// Drop the coroutine (force-terminate).
    #[inline]
    pub fn drop_future(&mut self) {
        self.t.futures[self.i] = None;
    }
}

impl fmt::Debug for VpRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vp")
            .field("rank", &self.rank())
            .field("clock", &self.clock())
            .field("state", &self.state())
            .field("wait", &self.wait_desc())
            .field("tof", &self.time_of_failure())
            .finish()
    }
}

impl fmt::Debug for VpMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        VpRef {
            t: self.t,
            i: self.i,
        }
        .fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VpTable {
        VpTable::new(4..8, SimTime::ZERO)
    }

    #[test]
    fn dense_indexing_offsets_by_base() {
        let mut t = table();
        assert_eq!(t.len(), 4);
        assert!(t.contains(Rank(4)) && t.contains(Rank(7)));
        assert!(!t.contains(Rank(3)) && !t.contains(Rank(8)));
        assert_eq!(t.get(Rank(5)).rank(), Rank(5));
        t.get_mut(Rank(6)).advance_clock(SimTime(9));
        assert_eq!(t.get(Rank(6)).clock(), SimTime(9));
        assert_eq!(t.get(Rank(5)).clock(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn foreign_rank_panics() {
        table().get(Rank(0));
    }

    #[test]
    fn begin_wait_bumps_token_and_blocks() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(4));
        vp.set_state(VpState::Running);
        let t1 = vp.begin_wait(WaitClass::Compute, "compute");
        assert_eq!(vp.state(), VpState::Blocked);
        assert_eq!(vp.wait_desc(), "compute");
        vp.set_state(VpState::Running);
        let t2 = vp.begin_wait(WaitClass::Message, "recv");
        assert_ne!(t1, t2);
    }

    #[test]
    fn rearm_wait_keeps_token_valid() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(4));
        vp.set_state(VpState::Running);
        let tok = vp.begin_wait(WaitClass::Compute, "compute");
        vp.deliver_wake();
        assert!(vp.take_woken());
        vp.rearm_wait(WaitClass::Compute, "compute", tok);
        assert_eq!(vp.state(), VpState::Blocked);
        assert_eq!(vp.wait_token(), tok);
        assert!(!vp.take_woken());
    }

    #[test]
    fn take_woken_is_one_shot() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(4));
        vp.deliver_wake();
        assert!(vp.take_woken());
        assert!(!vp.take_woken());
    }

    #[test]
    fn clocks_never_move_backward() {
        let mut t = table();
        let mut vp = t.get_mut(Rank(7));
        vp.advance_clock(SimTime(50));
        assert_eq!(vp.advance_clock(SimTime(10)), SimTime(50));
    }
}
