//! Engine configuration.

use crate::error::SimError;
use crate::time::SimTime;
use std::sync::Arc;

/// Which event-processing engine executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Pick automatically: the parallel engine when `workers > 1` and
    /// there is more than one rank to shard, the sequential engine
    /// otherwise.
    #[default]
    Auto,
    /// Force the reference sequential engine regardless of `workers`.
    Sequential,
    /// Force the conservative windowed parallel engine, even with a
    /// single worker thread (useful for differential testing: the
    /// parallel code path with no actual concurrency).
    Parallel,
}

/// A dynamic lookahead source queried once per synchronization window.
///
/// The closure maps the window's lower bound (the LBTS) to a *lower
/// bound on the virtual delay of any cross-shard event scheduled at or
/// after that time*. The engine takes the max of this value and the
/// static `CoreConfig::lookahead`, so a provider can only ever widen
/// windows — conservativeness of the static floor is preserved by
/// construction, and a provider that returns garbage below the floor is
/// simply ignored.
#[derive(Clone)]
pub struct LookaheadProvider(Arc<dyn Fn(SimTime) -> SimTime + Send + Sync>);

impl LookaheadProvider {
    /// Wrap a dynamic lookahead function.
    pub fn new(f: impl Fn(SimTime) -> SimTime + Send + Sync + 'static) -> Self {
        LookaheadProvider(Arc::new(f))
    }

    /// A provider that always returns `la` (mostly for tests).
    pub fn constant(la: SimTime) -> Self {
        LookaheadProvider::new(move |_| la)
    }

    /// Query the provider at window lower bound `lbts`.
    #[inline]
    pub fn at(&self, lbts: SimTime) -> SimTime {
        (self.0)(lbts)
    }
}

impl std::fmt::Debug for LookaheadProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LookaheadProvider(..)")
    }
}

/// Core engine configuration, independent of any machine model.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Number of simulated virtual processes (MPI ranks).
    pub n_ranks: usize,
    /// Number of native worker threads used by the parallel engine.
    pub workers: usize,
    /// Which engine runs the simulation (see [`EngineKind`]).
    pub engine: EngineKind,
    /// Shard oversubscription factor: the parallel engine partitions
    /// ranks into up to `workers * shard_factor` shards so the
    /// work-stealing pool has more tasks than threads and an idle worker
    /// can drain a hot shard's window instead of waiting at the barrier.
    /// `1` restores one shard per worker.
    pub shard_factor: usize,
    /// Capacity hint (in events) for the per-(src,dst) cross-shard
    /// exchange buffers. `0` lets the buffers grow organically; they are
    /// recycled between windows either way.
    pub batch_hint: usize,
    /// Initial virtual clock of every VP. Nonzero when a run continues the
    /// virtual timeline of a previous aborted run (paper §IV-E:
    /// "continuous virtual timing after an abort and a following restart").
    pub start_time: SimTime,
    /// Master seed for all deterministic randomness in the simulation.
    pub seed: u64,
    /// Conservative lookahead: the minimum virtual delay of any
    /// cross-rank event. Set by the machine layer from the minimum link
    /// latency. Must be positive when the parallel engine can run.
    pub lookahead: SimTime,
    /// Optional dynamic lookahead, queried once per window; the engine
    /// uses `max(lookahead, lookahead_fn(lbts))`, so this can only widen
    /// windows (fewer global synchronizations), never narrow them below
    /// the static floor.
    pub lookahead_fn: Option<LookaheadProvider>,
    /// If `true`, a scheduled process failure also activates while the VP
    /// is blocked on communication (an *eager* extension). The paper's
    /// strict semantics (`false`) activate a failure only when the VP's
    /// clock is updated by its own execution (§IV-B).
    pub fail_blocked: bool,
    /// Safety valve: abort the run with
    /// [`SimError::EventBudgetExceeded`] after this many events
    /// (`u64::MAX` = unlimited).
    pub max_events: u64,
    /// Print simulator-internal informational messages (failure/abort
    /// locations and times, shutdown statistics) to stderr, as xSim prints
    /// them to the command line.
    pub verbose: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            n_ranks: 1,
            workers: 1,
            engine: EngineKind::Auto,
            shard_factor: 4,
            batch_hint: 0,
            start_time: SimTime::ZERO,
            seed: 0x5eed_cafe_f00d_beef,
            lookahead: SimTime::from_nanos(1),
            lookahead_fn: None,
            fail_blocked: false,
            max_events: u64::MAX,
            verbose: false,
        }
    }
}

impl CoreConfig {
    /// Validate invariants the engines rely on.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_ranks == 0 {
            return Err(SimError::Config("n_ranks must be > 0".into()));
        }
        if self.workers == 0 {
            return Err(SimError::Config("workers must be > 0".into()));
        }
        if (self.workers > 1 || self.engine == EngineKind::Parallel)
            && self.lookahead == SimTime::ZERO
        {
            return Err(SimError::Config(
                "parallel engine requires positive lookahead".into(),
            ));
        }
        Ok(())
    }

    /// Whether this configuration selects the parallel engine.
    pub fn use_parallel(&self) -> bool {
        match self.engine {
            EngineKind::Sequential => false,
            EngineKind::Parallel => true,
            EngineKind::Auto => self.workers > 1 && self.n_ranks > 1,
        }
    }

    /// Number of ranks each shard owns (the last shard may own fewer).
    /// Contiguous block partitioning keeps neighbour communication of
    /// typical decompositions shard-local.
    pub fn ranks_per_shard(&self) -> usize {
        self.n_ranks.div_ceil(self.n_shards())
    }

    /// Effective number of shards: never more than ranks, up to
    /// `workers * shard_factor` so the stealing pool is oversubscribed.
    pub fn n_shards(&self) -> usize {
        self.n_ranks
            .min(self.workers.max(1) * self.shard_factor.max(1))
    }

    /// The shard owning `rank`.
    pub fn shard_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_shard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        CoreConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_configs() {
        let c = CoreConfig {
            n_ranks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = CoreConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let mut c = CoreConfig {
            workers: 4,
            n_ranks: 8,
            ..Default::default()
        };
        c.lookahead = SimTime::ZERO;
        assert!(c.validate().is_err());
        // Forced-parallel with one worker still needs lookahead.
        let mut c = CoreConfig {
            workers: 1,
            n_ranks: 8,
            engine: EngineKind::Parallel,
            ..Default::default()
        };
        c.lookahead = SimTime::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn engine_kind_selection() {
        let c = CoreConfig {
            n_ranks: 8,
            workers: 4,
            ..Default::default()
        };
        assert!(c.use_parallel());
        let c = CoreConfig {
            workers: 1,
            ..c.clone()
        };
        assert!(!c.use_parallel());
        let c = CoreConfig {
            engine: EngineKind::Parallel,
            ..c.clone()
        };
        assert!(c.use_parallel());
        let c = CoreConfig {
            engine: EngineKind::Sequential,
            workers: 4,
            ..c.clone()
        };
        assert!(!c.use_parallel());
        // Auto never goes parallel for a single rank.
        let c = CoreConfig {
            engine: EngineKind::Auto,
            n_ranks: 1,
            workers: 4,
            ..c.clone()
        };
        assert!(!c.use_parallel());
    }

    #[test]
    fn shard_partitioning_covers_all_ranks() {
        let c = CoreConfig {
            n_ranks: 10,
            workers: 4,
            shard_factor: 1,
            ..Default::default()
        };
        assert_eq!(c.ranks_per_shard(), 3);
        assert_eq!(c.n_shards(), 4);
        let shards: Vec<usize> = (0..10).map(|r| c.shard_of(r)).collect();
        assert_eq!(shards, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn oversubscription_creates_more_shards_than_workers() {
        let c = CoreConfig {
            n_ranks: 64,
            workers: 4,
            ..Default::default()
        };
        // shard_factor defaults to 4 → 16 shards of 4 ranks each.
        assert_eq!(c.n_shards(), 16);
        assert_eq!(c.ranks_per_shard(), 4);
        // Every rank maps to a valid shard, in nondecreasing order.
        let shards: Vec<usize> = (0..64).map(|r| c.shard_of(r)).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*shards.last().unwrap(), 15);
    }

    #[test]
    fn more_workers_than_ranks_collapses() {
        let c = CoreConfig {
            n_ranks: 2,
            workers: 8,
            ..Default::default()
        };
        assert_eq!(c.n_shards(), 2);
        assert_eq!(c.shard_of(0), 0);
        assert_eq!(c.shard_of(1), 1);
    }

    #[test]
    fn lookahead_provider_is_cloneable_and_callable() {
        let p = LookaheadProvider::constant(SimTime::from_nanos(5));
        let q = p.clone();
        assert_eq!(p.at(SimTime::ZERO), SimTime::from_nanos(5));
        assert_eq!(q.at(SimTime::from_secs(1)), SimTime::from_nanos(5));
    }
}
