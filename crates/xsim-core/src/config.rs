//! Engine configuration.

use crate::error::SimError;
use crate::time::SimTime;

/// Core engine configuration, independent of any machine model.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Number of simulated virtual processes (MPI ranks).
    pub n_ranks: usize,
    /// Number of native worker threads. `1` selects the reference
    /// sequential engine; `>1` the conservative windowed parallel engine.
    pub workers: usize,
    /// Initial virtual clock of every VP. Nonzero when a run continues the
    /// virtual timeline of a previous aborted run (paper §IV-E:
    /// "continuous virtual timing after an abort and a following restart").
    pub start_time: SimTime,
    /// Master seed for all deterministic randomness in the simulation.
    pub seed: u64,
    /// Conservative lookahead: the minimum virtual delay of any
    /// cross-rank event. Set by the machine layer from the minimum link
    /// latency. Must be positive when `workers > 1`.
    pub lookahead: SimTime,
    /// If `true`, a scheduled process failure also activates while the VP
    /// is blocked on communication (an *eager* extension). The paper's
    /// strict semantics (`false`) activate a failure only when the VP's
    /// clock is updated by its own execution (§IV-B).
    pub fail_blocked: bool,
    /// Safety valve: abort the run with
    /// [`SimError::EventBudgetExceeded`] after this many events
    /// (`u64::MAX` = unlimited).
    pub max_events: u64,
    /// Print simulator-internal informational messages (failure/abort
    /// locations and times, shutdown statistics) to stderr, as xSim prints
    /// them to the command line.
    pub verbose: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            n_ranks: 1,
            workers: 1,
            start_time: SimTime::ZERO,
            seed: 0x5eed_cafe_f00d_beef,
            lookahead: SimTime::from_nanos(1),
            fail_blocked: false,
            max_events: u64::MAX,
            verbose: false,
        }
    }
}

impl CoreConfig {
    /// Validate invariants the engines rely on.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_ranks == 0 {
            return Err(SimError::Config("n_ranks must be > 0".into()));
        }
        if self.workers == 0 {
            return Err(SimError::Config("workers must be > 0".into()));
        }
        if self.workers > 1 && self.lookahead == SimTime::ZERO {
            return Err(SimError::Config(
                "parallel engine requires positive lookahead".into(),
            ));
        }
        Ok(())
    }

    /// Number of ranks each worker shard owns (the last shard may own
    /// fewer). Contiguous block partitioning keeps neighbour communication
    /// of typical decompositions shard-local.
    pub fn ranks_per_shard(&self) -> usize {
        self.n_ranks.div_ceil(self.workers.min(self.n_ranks))
    }

    /// Effective number of shards (never more than ranks).
    pub fn n_shards(&self) -> usize {
        self.workers.min(self.n_ranks)
    }

    /// The shard owning `rank`.
    pub fn shard_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_shard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        CoreConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_configs() {
        let c = CoreConfig {
            n_ranks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = CoreConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let mut c = CoreConfig {
            workers: 4,
            n_ranks: 8,
            ..Default::default()
        };
        c.lookahead = SimTime::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn shard_partitioning_covers_all_ranks() {
        let c = CoreConfig {
            n_ranks: 10,
            workers: 4,
            ..Default::default()
        };
        assert_eq!(c.ranks_per_shard(), 3);
        assert_eq!(c.n_shards(), 4);
        let shards: Vec<usize> = (0..10).map(|r| c.shard_of(r)).collect();
        assert_eq!(shards, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn more_workers_than_ranks_collapses() {
        let c = CoreConfig {
            n_ranks: 2,
            workers: 8,
            ..Default::default()
        };
        assert_eq!(c.n_shards(), 2);
        assert_eq!(c.shard_of(0), 0);
        assert_eq!(c.shard_of(1), 1);
    }
}
