//! The kernel: one shard of the simulation state.
//!
//! A kernel owns a contiguous block of VPs (a SoA [`VpTable`]), their
//! pending-event queue and the per-shard services of upper layers. The
//! sequential engine uses a single kernel; the parallel engine runs one
//! kernel per worker thread and exchanges cross-shard events at
//! conservative window boundaries.
//!
//! ## Determinism contract
//!
//! * Events are processed in ascending `(time, dst, src, seq)` order per
//!   destination rank.
//! * Every scheduled event is attributed to the rank whose poll or event
//!   is currently being processed; per-rank `seq` counters therefore
//!   advance identically in the sequential and parallel engines.
//! * `Call` actions must only mutate state belonging to their destination
//!   rank (they may schedule events to any rank). This is what makes
//!   shard-local processing equivalent to global-order processing.

use crate::config::CoreConfig;
use crate::ctx;
use crate::error::{FailureRecord, Termination};
use crate::event::{Action, EventKey, EventRec};
use crate::queue::EventQueue;
use crate::rank::Rank;
use crate::rng::DetRng;
use crate::service::{Service, ServiceMap};
use crate::time::SimTime;
use crate::vp::{VpExit, VpMut, VpProgram, VpRef, VpState, VpTable, WaitClass};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// Hook invoked after a VP has been failed (by injection activation or by
/// its program reporting a failure). The MPI layer registers one to
/// broadcast the simulator-internal failure notification (paper §IV-B).
pub type FailHook = Arc<dyn Fn(&mut Kernel, Rank, SimTime) + Send + Sync>;

/// Hook invoked once per shard at engine shutdown, before the report is
/// assembled. Upper layers register these to flush per-shard state
/// (trace buffers, metric sets) deterministically instead of relying on
/// `Drop` order.
pub type ShutdownHook = Arc<dyn Fn(&mut Kernel) + Send + Sync>;

/// One shard of the simulation.
pub struct Kernel {
    /// Index of this shard.
    pub shard_id: usize,
    /// Shared engine configuration.
    pub cfg: Arc<CoreConfig>,
    /// SoA table of the VPs this shard owns.
    vps: VpTable,
    /// Pending events for owned ranks.
    pub(crate) queue: EventQueue,
    /// Per-shard upper-layer state.
    services: ServiceMap,
    /// Event sequence counters for owned ranks, indexed by `rank − base`.
    /// Dense and shard-local: per-shard memory stays O(owned ranks).
    seq: Vec<u64>,
    /// Sequence counters for the rare foreign-src attributions (events
    /// scheduled outside any execution context to a foreign rank, e.g.
    /// setup-phase injections). Cold path.
    foreign_seq: BTreeMap<usize, u64>,
    /// Events destined for other shards, one batch lane per destination
    /// shard, flushed wholesale at window boundaries. Lane buffers are
    /// recycled through the engine's exchange-slot arena, so steady-state
    /// cross-shard traffic allocates nothing per event.
    pub(crate) outbox: Vec<Vec<EventRec>>,
    /// Earliest event time currently in any outbox lane (u64::MAX when
    /// all lanes are empty). The parallel engine clamps an exclusive
    /// drain (sole-active-shard window) to `outbox_min + lookahead`: a
    /// causal echo of an emission crosses shards twice, so nothing can
    /// come back before that. Reset by the engine after each flush.
    pub(crate) outbox_min: u64,
    /// Program factory used by spawn events.
    program: Arc<dyn VpProgram>,
    /// Hooks to run when a VP fails.
    fail_hooks: Vec<FailHook>,
    /// Hooks to run at engine shutdown.
    shutdown_hooks: Vec<ShutdownHook>,
    /// Rank currently attributed for scheduling (being polled, or dst of
    /// the event being processed).
    attrib: Option<Rank>,
    /// Number of owned VPs that have terminated.
    done: usize,
    /// Failures activated on this shard.
    pub(crate) failures: Vec<FailureRecord>,
    /// Earliest abort observed on this shard.
    pub(crate) abort_time: Option<SimTime>,
    /// Events processed by this shard.
    pub(crate) events_processed: u64,
    /// VP resumes performed by this shard.
    pub(crate) context_switches: u64,
    /// High-water mark of this shard's pending-event queue.
    pub(crate) queue_depth_hwm: u64,
}

impl Kernel {
    /// Create a shard owning `owned` and install its VPs.
    pub fn new(
        shard_id: usize,
        cfg: Arc<CoreConfig>,
        owned: Range<usize>,
        program: Arc<dyn VpProgram>,
    ) -> Self {
        let n_shards = cfg.n_shards();
        let outbox = (0..n_shards)
            .map(|_| Vec::with_capacity(cfg.batch_hint))
            .collect();
        Kernel {
            shard_id,
            vps: VpTable::new(owned.clone(), cfg.start_time),
            cfg,
            queue: EventQueue::new(),
            services: ServiceMap::new(),
            seq: vec![0; owned.len()],
            foreign_seq: BTreeMap::new(),
            outbox,
            outbox_min: u64::MAX,
            program,
            fail_hooks: Vec::new(),
            shutdown_hooks: Vec::new(),
            attrib: None,
            done: 0,
            failures: Vec::new(),
            abort_time: None,
            events_processed: 0,
            context_switches: 0,
            queue_depth_hwm: 0,
        }
    }

    /// The ranks this shard owns.
    pub fn owned_ranks(&self) -> Range<usize> {
        self.vps.owned_ranks()
    }

    /// Whether this shard owns `rank`.
    #[inline]
    pub fn owns(&self, rank: Rank) -> bool {
        self.vps.contains(rank)
    }

    /// Number of owned VPs that have terminated.
    pub fn done_count(&self) -> usize {
        self.done
    }

    /// Whether every owned VP has terminated.
    pub fn all_done(&self) -> bool {
        self.done == self.vps.len()
    }

    /// Shared view of an owned VP.
    #[inline]
    pub fn vp(&self, rank: Rank) -> VpRef<'_> {
        self.vps.get(rank)
    }

    /// Mutable view of an owned VP.
    #[inline]
    pub fn vp_mut(&mut self, rank: Rank) -> VpMut<'_> {
        self.vps.get_mut(rank)
    }

    /// The rank currently being executed or processed.
    #[inline]
    pub fn attributed_rank(&self) -> Rank {
        self.attrib.expect("no rank in execution context")
    }

    /// Virtual clock of the attributed rank.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.vp(self.attributed_rank()).clock()
    }

    /// Register a failure hook (MPI layer notification broadcast).
    pub fn add_fail_hook(&mut self, hook: FailHook) {
        self.fail_hooks.push(hook);
    }

    /// Register a hook to run at engine shutdown (before report assembly).
    pub fn add_shutdown_hook(&mut self, hook: ShutdownHook) {
        self.shutdown_hooks.push(hook);
    }

    /// Run the registered shutdown hooks. Called once per shard by the
    /// engines after the event loop drains.
    pub(crate) fn run_shutdown_hooks(&mut self) {
        let hooks = std::mem::take(&mut self.shutdown_hooks);
        for h in &hooks {
            h(self);
        }
    }

    /// Fold the current queue depth into the high-water mark. The engines
    /// call this after bulk ingest (cross-shard inbox drains).
    #[inline]
    pub(crate) fn note_queue_depth(&mut self) {
        self.queue_depth_hwm = self.queue_depth_hwm.max(self.queue.len() as u64);
    }

    /// Install a service.
    pub fn install_service<T: Service>(&mut self, svc: T) {
        self.services.insert(svc);
    }

    /// Access a service.
    pub fn service<T: Service>(&self) -> &T {
        self.services.get::<T>().expect("service not installed")
    }

    /// Mutable access to a service.
    pub fn service_mut<T: Service>(&mut self) -> &mut T {
        self.services.get_mut::<T>().expect("service not installed")
    }

    /// Mutable access to a service that may not be installed.
    pub fn try_service_mut<T: Service>(&mut self) -> Option<&mut T> {
        self.services.get_mut::<T>()
    }

    /// Shared access to a service that may not be installed.
    pub fn try_service<T: Service>(&self) -> Option<&T> {
        self.services.get::<T>()
    }

    /// Temporarily remove a service to call kernel methods while holding
    /// it; must be paired with [`put_back_service`](Self::put_back_service).
    pub fn take_service<T: Service>(&mut self) -> Box<T> {
        self.services.take::<T>().expect("service not installed")
    }

    /// Re-install a service removed with [`take_service`](Self::take_service).
    pub fn put_back_service<T: Service>(&mut self, svc: Box<T>) {
        self.services.put_back(svc);
    }

    /// A deterministic RNG stream derived from the master seed.
    pub fn rng(&self, stream_tag: u64) -> DetRng {
        DetRng::stream(self.cfg.seed, stream_tag)
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Bump and return the next sequence number attributed to `src`.
    #[inline]
    fn next_seq(&mut self, src: Rank) -> u64 {
        if self.vps.contains(src) {
            let local = src.idx() - self.owned_ranks().start;
            let s = &mut self.seq[local];
            *s += 1;
            *s
        } else {
            let s = self.foreign_seq.entry(src.idx()).or_insert(0);
            *s += 1;
            *s
        }
    }

    /// Schedule `action` to fire at `dst` at absolute virtual time `time`.
    ///
    /// In parallel mode, events crossing shards must respect the
    /// configured lookahead relative to the scheduling rank's clock; this
    /// is checked in debug builds.
    pub fn schedule_at(&mut self, time: SimTime, dst: Rank, action: Action) {
        let src = self.attrib.unwrap_or(dst);
        let seq = self.next_seq(src);
        let rec = EventRec {
            key: EventKey {
                time,
                dst,
                src,
                seq,
            },
            action,
        };
        if self.owns(dst) {
            self.queue.push(rec);
            self.queue_depth_hwm = self.queue_depth_hwm.max(self.queue.len() as u64);
        } else {
            debug_assert!(self.cfg.n_shards() > 1, "single shard must own every rank");
            let dst_shard = self.cfg.shard_of(dst.idx());
            self.outbox_min = self.outbox_min.min(time.as_nanos());
            self.outbox[dst_shard].push(rec);
        }
    }

    /// Schedule the initial spawn events for every owned rank.
    ///
    /// Ranks are pushed in *descending* order: spawn keys share one
    /// timestamp, so descending ranks mean descending keys, and every
    /// push lands on the calendar bucket's append fast path — the spawn
    /// wave stays sorted without a single deferred sort even at 2²⁷
    /// VPs. Pop order is push-order independent (key uniqueness; pinned
    /// by `queue_order_is_push_order_independent`), so this is purely a
    /// host-side optimization.
    pub fn schedule_spawns(&mut self) {
        let t0 = self.cfg.start_time;
        for r in self.owned_ranks().rev() {
            let rank = Rank::new(r);
            self.queue.push(EventRec {
                key: EventKey {
                    time: t0,
                    dst: rank,
                    src: rank,
                    seq: 0,
                },
                action: Action::Spawn,
            });
        }
        self.note_queue_depth();
    }

    // ------------------------------------------------------------------
    // Event processing
    // ------------------------------------------------------------------

    /// Fire one event. The caller (engine loop) guarantees events arrive
    /// in non-decreasing key order per destination rank.
    pub fn process(&mut self, ev: EventRec) {
        self.events_processed += 1;
        let dst = ev.key.dst;
        let prev_attrib = self.attrib;
        self.attrib = Some(dst);
        match ev.action {
            Action::Spawn => {
                if self.vps.get(dst).state() == VpState::Fresh {
                    let fut = self.program.clone().spawn(dst);
                    let mut vp = self.vps.get_mut(dst);
                    vp.put_future(fut);
                    vp.deliver_wake();
                    self.resume(dst);
                }
            }
            Action::WakeToken(token) => {
                let vp = self.vps.get(dst);
                if vp.state() == VpState::Blocked && vp.wait_token() == token {
                    self.wake(dst, ev.key.time);
                }
            }
            Action::WakeMessage => {
                let vp = self.vps.get(dst);
                if vp.state() == VpState::Blocked && vp.wait_class() == WaitClass::Message {
                    self.wake(dst, ev.key.time);
                }
            }
            Action::Call(f) => f.invoke(self),
        }
        self.attrib = prev_attrib;
    }

    /// Wake a blocked VP at virtual time `time` (clock advances to at
    /// least `time`) and run it until it blocks again or terminates.
    pub fn wake(&mut self, rank: Rank, time: SimTime) {
        let mut vp = self.vps.get_mut(rank);
        if vp.state() != VpState::Blocked {
            return;
        }
        vp.deliver_wake();
        vp.advance_clock(time);
        self.resume(rank);
    }

    /// Wake a VP blocked on a message-class wait, if it is. Returns
    /// whether a wake happened. Upper layers call this after delivering
    /// data that may satisfy the wait.
    pub fn wake_if_message_blocked(&mut self, rank: Rank, time: SimTime) -> bool {
        let vp = self.vps.get(rank);
        if vp.state() == VpState::Blocked
            && matches!(vp.wait_class(), WaitClass::Message | WaitClass::FileIo)
        {
            self.wake(rank, time);
            true
        } else {
            false
        }
    }

    /// Poll a runnable VP. Applies the failure/abort activation rules of
    /// the paper before handing control to the VP: the VP clock has just
    /// been updated, so if it reached or passed the scheduled time of
    /// failure (or abort), the VP is terminated instead of resumed.
    fn resume(&mut self, rank: Rank) {
        // Activation checks (paper §IV-B: "the simulated process is
        // failed with the simulated process time the simulator regains
        // control when it has reached or passed the time of failure").
        let vp = self.vps.get(rank);
        debug_assert_eq!(vp.state(), VpState::Runnable);
        let clock = vp.clock();
        if let Some(tof) = vp.time_of_failure() {
            if clock >= tof {
                self.kill_failed(rank, tof, clock);
                return;
            }
        }
        if let Some(ab) = vp.abort_at() {
            if clock >= ab {
                self.terminate_aborted(rank, clock);
                return;
            }
        }

        self.context_switches += 1;
        let mut vp = self.vps.get_mut(rank);
        vp.set_state(VpState::Running);
        let mut fut = vp.take_future().expect("runnable VP must have a future");

        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let prev_attrib = self.attrib;
        self.attrib = Some(rank);
        let poll = ctx::enter(self, || fut.as_mut().poll(&mut cx));
        self.attrib = prev_attrib;

        match poll {
            Poll::Pending => {
                let mut vp = self.vps.get_mut(rank);
                debug_assert_eq!(
                    vp.state(),
                    VpState::Blocked,
                    "a VP future must only return Pending via ctx::block"
                );
                vp.put_future(fut);
            }
            Poll::Ready(exit) => {
                drop(fut);
                let clock = self.vps.get(rank).clock();
                match exit {
                    VpExit::Finished => {
                        let mut vp = self.vps.get_mut(rank);
                        vp.set_state(VpState::Done);
                        vp.set_termination(Termination::Finished);
                        self.done += 1;
                    }
                    VpExit::Failed => {
                        // Program-reported failure (e.g. returning from
                        // main without finalize): treat like an injected
                        // failure activating right now.
                        let mut vp = self.vps.get_mut(rank);
                        vp.set_state(VpState::Done);
                        vp.set_termination(Termination::Failed(clock));
                        self.done += 1;
                        self.record_failure(rank, clock, clock);
                        self.run_fail_hooks(rank, clock);
                    }
                    VpExit::Aborted => {
                        self.note_abort(clock);
                        let mut vp = self.vps.get_mut(rank);
                        vp.set_state(VpState::Done);
                        vp.set_termination(Termination::Aborted(clock));
                        self.done += 1;
                    }
                }
            }
        }
    }

    /// Forcibly fail a VP: drop its future, record the failure, notify
    /// upper layers. Must not target the VP currently being polled.
    pub fn kill_failed(&mut self, rank: Rank, scheduled: SimTime, actual: SimTime) {
        let mut vp = self.vps.get_mut(rank);
        if vp.state() == VpState::Done {
            return;
        }
        debug_assert!(
            vp.state() != VpState::Running,
            "cannot kill the VP currently being polled"
        );
        vp.drop_future();
        vp.set_state(VpState::Done);
        let actual = vp.advance_clock(actual);
        vp.set_termination(Termination::Failed(actual));
        self.done += 1;
        if self.cfg.verbose {
            eprintln!("xsim: process failure injected at rank {rank} at time {actual}");
        }
        self.record_failure(rank, scheduled, actual);
        self.run_fail_hooks(rank, actual);
    }

    /// Terminate a VP due to (propagated) abort activation.
    pub fn terminate_aborted(&mut self, rank: Rank, time: SimTime) {
        let mut vp = self.vps.get_mut(rank);
        if vp.state() == VpState::Done {
            return;
        }
        debug_assert!(vp.state() != VpState::Running);
        vp.drop_future();
        vp.set_state(VpState::Done);
        let t = vp.advance_clock(time);
        vp.set_termination(Termination::Aborted(t));
        self.done += 1;
        self.note_abort(t);
    }

    /// Record the earliest abort time seen on this shard.
    pub fn note_abort(&mut self, time: SimTime) {
        self.abort_time = Some(match self.abort_time {
            Some(t) => t.min(time),
            None => time,
        });
        if self.cfg.verbose {
            eprintln!("xsim: MPI abort observed at time {time}");
        }
    }

    fn record_failure(&mut self, rank: Rank, scheduled: SimTime, actual: SimTime) {
        self.failures.push(FailureRecord {
            rank,
            scheduled,
            actual,
        });
    }

    fn run_fail_hooks(&mut self, rank: Rank, time: SimTime) {
        let hooks = self.fail_hooks.clone();
        for h in hooks {
            h(self, rank, time);
        }
    }

    // ------------------------------------------------------------------
    // Failure injection API (used by xsim-fault)
    // ------------------------------------------------------------------

    /// Set the scheduled (earliest) time of failure for an owned rank.
    /// With `fail_blocked` configured, also schedules an eager activation
    /// event at that time.
    pub fn set_time_of_failure(&mut self, rank: Rank, tof: SimTime) {
        self.vps.get_mut(rank).set_time_of_failure(tof);
        if self.cfg.fail_blocked {
            self.schedule_at(
                tof,
                rank,
                Action::call(move |k: &mut Kernel| {
                    let vp = k.vp(rank);
                    let releasable =
                        vp.state() == VpState::Blocked && vp.wait_class() != WaitClass::Compute;
                    let actual = vp.clock().max(tof);
                    if releasable {
                        k.kill_failed(rank, tof, actual);
                    }
                }),
            );
        }
    }

    /// Set the earliest time at which `rank` must observe a propagated
    /// abort (paper §IV-D activation semantics).
    pub fn set_abort_at(&mut self, rank: Rank, time: SimTime) {
        self.vps.get_mut(rank).note_abort_at(time);
    }

    /// Snapshot of final clocks and terminations for owned ranks, used by
    /// the engines to assemble the report.
    pub(crate) fn drain_results(&mut self) -> Vec<(usize, SimTime, Termination)> {
        self.vps
            .iter()
            .map(|(rank, vp)| {
                let term = vp.termination().unwrap_or(Termination::Finished);
                (rank.idx(), vp.clock(), term)
            })
            .collect()
    }

    /// Blocked-VP diagnostics for deadlock reporting.
    pub(crate) fn blocked_summary(&self) -> Vec<(Rank, SimTime, &'static str)> {
        self.vps
            .iter()
            .filter_map(|(rank, vp)| match vp.state() {
                VpState::Done => None,
                _ => Some((rank, vp.clock(), vp.wait_desc())),
            })
            .collect()
    }
}
