//! Deadlock detection and diagnostics.
//!
//! xSim's conservative PDES execution includes deadlock detection as part
//! of its simulator-internal synchronization mechanism (paper §IV-C). In
//! xsim-rs a deadlock manifests as a drained event queue while one or more
//! VPs remain blocked; this module renders an actionable diagnosis.

use crate::rank::Rank;
use crate::time::SimTime;

/// Maximum number of blocked VPs listed individually in a report.
const MAX_LISTED: usize = 16;

/// Build a human-readable deadlock report from blocked-VP summaries
/// gathered across shards.
pub fn report(blocked: &[(Rank, SimTime, &'static str)], total_ranks: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} of {} virtual processes blocked with no pending events:",
        blocked.len(),
        total_ranks
    );
    for (rank, clock, desc) in blocked.iter().take(MAX_LISTED) {
        let what = if desc.is_empty() {
            "<unspecified>"
        } else {
            desc
        };
        let _ = writeln!(out, "  rank {rank} blocked at {clock} on {what}");
    }
    if blocked.len() > MAX_LISTED {
        let _ = writeln!(out, "  ... and {} more", blocked.len() - MAX_LISTED);
    }
    // Aggregate by wait description to expose the dominant cause.
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for (_, _, desc) in blocked {
        *counts
            .entry(if desc.is_empty() {
                "<unspecified>"
            } else {
                desc
            })
            .or_default() += 1;
    }
    let _ = writeln!(out, "blocked-by-wait summary:");
    for (desc, n) in counts {
        let _ = writeln!(out, "  {n:>8} x {desc}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lists_and_aggregates() {
        let blocked = vec![
            (Rank(0), SimTime::from_secs(1), "recv from 1"),
            (Rank(1), SimTime::from_secs(2), "recv from 0"),
            (Rank(2), SimTime::from_secs(2), "recv from 0"),
        ];
        let r = report(&blocked, 4);
        assert!(r.contains("3 of 4"));
        assert!(r.contains("rank 0 blocked"));
        assert!(r.contains("2 x recv from 0"));
    }

    #[test]
    fn report_truncates_long_lists() {
        let blocked: Vec<_> = (0..40).map(|i| (Rank(i), SimTime::ZERO, "recv")).collect();
        let r = report(&blocked, 64);
        assert!(r.contains("... and 24 more"));
        assert!(r.contains("40 x recv"));
    }

    #[test]
    fn report_handles_empty_desc() {
        let blocked = vec![(Rank(0), SimTime::ZERO, "")];
        let r = report(&blocked, 1);
        assert!(r.contains("<unspecified>"));
    }
}
