//! The reference sequential engine: global-key-order event processing.

use super::{assemble_report, SetupFn};
use crate::config::CoreConfig;
use crate::error::SimError;
use crate::kernel::Kernel;
use crate::report::{EngineProfile, SimReport};
use crate::vp::VpProgram;
use std::sync::Arc;

/// Run the simulation on the calling thread, processing events in global
/// `(time, dst, src, seq)` order.
pub fn run_sequential(
    cfg: CoreConfig,
    program: Arc<dyn VpProgram>,
    setup: SetupFn<'_>,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    let start = std::time::Instant::now();
    let cfg = Arc::new(cfg);
    let mut kernel = Kernel::new(0, cfg.clone(), 0..cfg.n_ranks, program);
    kernel.schedule_spawns();
    setup(&mut kernel);

    while let Some(ev) = kernel.queue.pop() {
        kernel.process(ev);
        if kernel.events_processed > cfg.max_events {
            return Err(SimError::EventBudgetExceeded {
                processed: kernel.events_processed,
            });
        }
    }
    debug_assert!(
        kernel.outbox.iter().all(|lane| lane.is_empty()),
        "sequential engine owns all ranks"
    );

    assemble_report(
        &cfg,
        vec![kernel],
        EngineProfile::default(),
        start.elapsed(),
    )
}
