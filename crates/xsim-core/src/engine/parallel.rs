//! Conservative windowed parallel engine over a work-stealing pool.
//!
//! The rank space is partitioned into contiguous shards — more shards
//! than workers when `cfg.shard_factor > 1`, so the pool is
//! oversubscribed and an idle worker picks up a hot shard's window task
//! instead of spinning at the barrier. Execution proceeds in global
//! windows; within each window every shard is handled exactly once per
//! phase by whichever worker claims its ticket:
//!
//! * **Phase A (ingest + publish):** drain the shard's inbound exchange
//!   slots into its queue and publish its next pending event time.
//! * **Barrier 1**, after which every worker independently computes the
//!   two smallest published times (`min1`, `min2`) and the window's
//!   effective lookahead `la = max(cfg.lookahead, lookahead_fn(min1))`.
//! * **Phase B (execute + flush):** process the shard's events below
//!   the window bound (or under the clamped exclusive drain described
//!   below), then swap its outbox lanes into the exchange slots
//!   (batched delivery, buffers recycled between windows).
//! * **Barrier 2**, then the next window.
//!
//! ## Window-bound safety
//!
//! Every shard's (exclusive) bound is the classic conservative
//! `min1 + la`: every cross-shard event carries at least `la` of
//! virtual delay, so all events below that bound are already queued
//! when the window opens. Extending the bound any further is unsound in
//! general — a shard processing past `min1 + la` can emit a request
//! whose *reply* arrives with only `2·la` of accumulated delay, i.e.
//! inside the region it already drained.
//!
//! One sound extension remains: when exactly one shard has pending work
//! (`min2 == MAX`) it drains with an unbounded window, *clamped as it
//! goes* to `outbox_min + la`, where `outbox_min` is the earliest
//! cross-shard event it has emitted so far this window. Until it emits,
//! nothing outside can ever act; once it emits an event arriving at
//! `A`, any causal echo crosses shards twice and returns no earlier
//! than `A + la`. An isolated shard (or a single-shard run) therefore
//! still drains to completion without per-event synchronization.
//!
//! ## Determinism
//!
//! Each shard processes its events in ascending `(time, dst, src, seq)`
//! key order; keys are globally unique and heap order is insertion-order
//! independent, so batching the exchange cannot reorder anything.
//! `Call` actions only mutate destination-rank state, and per-source
//! `seq` counters advance on the source's owning shard alone —
//! per-rank event histories, and therefore all virtual-time results,
//! are identical to the sequential engine's for any worker or shard
//! count. Only the [`EngineProfile`] execution-shape counters (windows,
//! steals, barrier waits, batch sizes) vary.

use super::{assemble_report, SetupFn};
use crate::config::CoreConfig;
use crate::error::SimError;
use crate::event::EventRec;
use crate::kernel::Kernel;
use crate::report::{EngineProfile, SimReport};
use crate::time::SimTime;
use crate::vp::VpProgram;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// Shared synchronization state of one parallel run.
struct SyncState {
    /// Per-shard next pending event time (u64::MAX = idle). Written in
    /// Phase A, read between the barriers — stable when read.
    next_times: Vec<AtomicU64>,
    /// Exchange slot matrix: `slots[dst][src]` carries the batch of
    /// events shard `src` produced for shard `dst` this window. Phase B
    /// swaps a full outbox lane in; Phase A drains it (keeping the
    /// allocation), so the two buffers per (src,dst) pair ping-pong and
    /// steady-state traffic allocates nothing.
    slots: Vec<Vec<Mutex<Vec<EventRec>>>>,
    /// Window barrier (two crossings per window).
    barrier: Barrier,
    /// Monotonic ticket counter driving the work-stealing pool: ticket
    /// `t` denotes shard `t % n_shards` of phase `(t / n_shards) % 2`.
    ticket: AtomicUsize,
    /// Aggregate processed-event counter for the budget check.
    events: AtomicU64,
    /// Set when any shard trips the event budget.
    over_budget: AtomicBool,
    /// Merged execution profile (workers fold theirs in on exit).
    profile: Mutex<EngineProfile>,
}

/// Claim the next ticket below `end`; returns the claimed ticket.
#[inline]
fn claim(ticket: &AtomicUsize, end: usize) -> Option<usize> {
    ticket
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
            if t < end {
                Some(t + 1)
            } else {
                None
            }
        })
        .ok()
}

/// Run the simulation across up to `cfg.workers` worker threads pulling
/// from `cfg.n_shards()` shard tasks.
pub fn run_parallel(
    cfg: CoreConfig,
    program: Arc<dyn VpProgram>,
    setup: SetupFn<'_>,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    let start = std::time::Instant::now();
    let cfg = Arc::new(cfg);
    let n_shards = cfg.n_shards();
    let per = cfg.ranks_per_shard();
    let nthreads = cfg.workers.min(n_shards).max(1);

    let sync = SyncState {
        next_times: (0..n_shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
        slots: (0..n_shards)
            .map(|_| {
                (0..n_shards)
                    .map(|_| Mutex::new(Vec::with_capacity(cfg.batch_hint)))
                    .collect()
            })
            .collect(),
        barrier: Barrier::new(nthreads),
        ticket: AtomicUsize::new(0),
        events: AtomicU64::new(0),
        over_budget: AtomicBool::new(false),
        profile: Mutex::new(EngineProfile::default()),
    };

    let kernels: Vec<Mutex<Kernel>> = (0..n_shards)
        .map(|s| {
            let lo = s * per;
            let hi = ((s + 1) * per).min(cfg.n_ranks);
            let mut k = Kernel::new(s, cfg.clone(), lo..hi, program.clone());
            k.schedule_spawns();
            Mutex::new(k)
        })
        .collect();

    std::thread::scope(|scope| {
        for worker_id in 0..nthreads {
            let sync = &sync;
            let cfg = &cfg;
            let kernels = &kernels;
            scope.spawn(move || {
                worker_loop(worker_id, nthreads, kernels, sync, cfg, setup);
            });
        }
    });

    if sync.over_budget.load(Ordering::Relaxed) {
        return Err(SimError::EventBudgetExceeded {
            processed: sync.events.load(Ordering::Relaxed),
        });
    }

    let kernels: Vec<Kernel> = kernels.into_iter().map(|m| m.into_inner()).collect();
    let profile = *sync.profile.lock();
    assemble_report(&cfg, kernels, profile, start.elapsed())
}

/// The shared (exclusive) window bound, `min1 + la` (see module docs).
/// The sole-active-shard drain extends past this under its dynamic
/// `outbox_min + la` clamp, applied in the execution loop itself.
#[inline]
fn window_bound(min1: u64, la: u64) -> u64 {
    min1.saturating_add(la)
}

fn worker_loop(
    worker_id: usize,
    nthreads: usize,
    kernels: &[Mutex<Kernel>],
    sync: &SyncState,
    cfg: &CoreConfig,
    setup: SetupFn<'_>,
) {
    let n_shards = kernels.len();
    let budget_limited = cfg.max_events != u64::MAX;
    let mut prof = EngineProfile::default();
    let mut window: usize = 0;

    loop {
        // ---- Phase A: ingest exchanged batches, publish lower bounds.
        let phase_a_end = (2 * window + 1) * n_shards;
        while let Some(t) = claim(&sync.ticket, phase_a_end) {
            let s = t % n_shards;
            let mut k = kernels[s].lock();
            if window == 0 {
                // First touch of this shard: install services and
                // scheduled injections before publishing its bound.
                setup(&mut k);
            }
            for src in 0..n_shards {
                let mut slot = sync.slots[s][src].lock();
                if slot.is_empty() {
                    continue;
                }
                prof.batched_events += slot.len() as u64;
                prof.batch_max_events = prof.batch_max_events.max(slot.len() as u64);
                // drain() keeps the slot's capacity: the buffer returns
                // to the arena for the producer to swap into next window.
                for ev in slot.drain(..) {
                    debug_assert!(k.owns(ev.key.dst), "exchange misrouted an event");
                    k.queue.push(ev);
                }
            }
            k.note_queue_depth();
            let mine = k.queue.next_time().map_or(u64::MAX, |t| t.as_nanos());
            sync.next_times[s].store(mine, Ordering::SeqCst);
        }
        let wait = std::time::Instant::now();
        sync.barrier.wait();
        prof.barrier_wait_ns += wait.elapsed().as_nanos() as u64;

        // ---- Between barriers: every worker independently derives the
        // same window parameters from the (now stable) published bounds.
        let mut min1 = u64::MAX;
        let mut min2 = u64::MAX;
        let mut min1_count = 0u32;
        for t in &sync.next_times {
            let v = t.load(Ordering::SeqCst);
            if v < min1 {
                min2 = min1;
                min1 = v;
                min1_count = 1;
            } else if v == min1 {
                min1_count = min1_count.saturating_add(1);
            } else if v < min2 {
                min2 = v;
            }
        }
        if min1 == u64::MAX || sync.over_budget.load(Ordering::Relaxed) {
            // No shard has pending work (or the budget tripped during the
            // previous window): the run is over, consistently for every
            // worker — over_budget is only written before barrier 2, so
            // all workers observe the same value here.
            break;
        }
        prof.windows += 1;
        let la = match &cfg.lookahead_fn {
            // The provider can only widen the window: the static floor
            // stays a correct minimum cross-shard delay.
            Some(f) => cfg.lookahead.max(f.at(SimTime(min1))).as_nanos(),
            None => cfg.lookahead.as_nanos(),
        };

        // ---- Phase B: execute each shard's window, flush its batches.
        let phase_b_end = (2 * window + 2) * n_shards;
        while let Some(t) = claim(&sync.ticket, phase_b_end) {
            let s = t % n_shards;
            if s % nthreads != worker_id {
                prof.steals += 1;
            }
            let mut k = kernels[s].lock();
            let next = sync.next_times[s].load(Ordering::SeqCst);
            // The sole shard with pending work drains unboundedly, under
            // the dynamic emission clamp below; everyone else stops at
            // the shared conservative bound.
            let exclusive = min2 == u64::MAX && next == min1 && min1_count == 1;
            let bound = if exclusive {
                u64::MAX
            } else {
                window_bound(min1, la)
            };
            let base = if budget_limited {
                sync.events.load(Ordering::Relaxed)
            } else {
                0
            };
            let mut processed = 0u64;
            loop {
                // Re-clamped every iteration: processing may emit new
                // cross-shard events, and a later emission can carry an
                // *earlier* arrival time. The clamp never cuts below the
                // current processing point (an emission from time `t`
                // arrives ≥ `t + la`, putting the clamp ≥ `t + 2·la`).
                let eff = bound.min(k.outbox_min.saturating_add(la));
                let Some(ev) = k.queue.pop_before(SimTime(eff)) else {
                    break;
                };
                debug_assert!(
                    ev.key.time.as_nanos() >= min1,
                    "event below the window's lower bound"
                );
                k.process(ev);
                processed += 1;
                // In-loop check: in an unclamped exclusive drain a
                // runaway program would otherwise never leave this loop.
                if budget_limited
                    && (base + processed > cfg.max_events
                        || sync.over_budget.load(Ordering::Relaxed))
                {
                    sync.over_budget.store(true, Ordering::Relaxed);
                    break;
                }
            }
            let total = sync.events.fetch_add(processed, Ordering::Relaxed) + processed;
            if total > cfg.max_events {
                sync.over_budget.store(true, Ordering::Relaxed);
            }
            for dst in 0..n_shards {
                if k.outbox[dst].is_empty() {
                    continue;
                }
                #[cfg(debug_assertions)]
                {
                    // No receiver processed past the shared bound this
                    // window, so every exchanged event must land at or
                    // beyond it.
                    let dst_bound = window_bound(min1, la);
                    for ev in &k.outbox[dst] {
                        debug_assert!(
                            ev.key.time.as_nanos() >= dst_bound,
                            "cross-shard event below the receiver's window bound: \
                             {:?} < {:?}",
                            ev.key.time,
                            SimTime(dst_bound)
                        );
                    }
                }
                let mut slot = sync.slots[dst][s].lock();
                debug_assert!(slot.is_empty(), "exchange slot not drained in Phase A");
                // Swap the filled lane in and take the drained slot
                // buffer back as next window's lane: zero-copy handoff,
                // capacities recycled.
                std::mem::swap(&mut *slot, &mut k.outbox[dst]);
            }
            k.outbox_min = u64::MAX;
        }
        let wait = std::time::Instant::now();
        sync.barrier.wait();
        prof.barrier_wait_ns += wait.elapsed().as_nanos() as u64;
        window += 1;
    }

    sync.profile.lock().merge(&prof);
}
