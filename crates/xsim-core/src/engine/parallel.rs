//! Conservative windowed parallel engine over a work-stealing pool.
//!
//! The rank space is partitioned into contiguous shards — more shards
//! than workers when `cfg.shard_factor > 1`, so the pool is
//! oversubscribed and an idle worker picks up a hot shard's window task
//! instead of spinning at the barrier. Execution proceeds in global
//! windows; within each window every shard is handled exactly once per
//! phase by whichever worker claims its ticket:
//!
//! * **Phase A (ingest + publish):** drain the shard's inbound exchange
//!   slots into its queue and publish its next pending event time.
//! * **Barrier 1**, after which every worker independently computes the
//!   two smallest published times (`min1`, `min2`) and the window's
//!   effective lookahead `la = max(cfg.lookahead, lookahead_fn(min1))`.
//! * **Phase B (execute + flush):** process the shard's events below
//!   the window bound (or under the clamped exclusive drain described
//!   below), then swap its outbox lanes into the exchange slots
//!   (batched delivery, buffers recycled between windows) and
//!   re-publish the shard's post-execution next event time.
//! * **Barrier 2**, then the next window.
//!
//! ## Skipped ingest windows
//!
//! Phase A exists to ingest the previous window's exchange and publish
//! bounds that account for it. When a window exchanges *nothing* —
//! overwhelmingly common for compute-heavy workloads, where many
//! windows pass between communication bursts — the next window's
//! Phase A (and barrier 1 with it) is pure overhead: the bounds each
//! shard published at the end of Phase B are already exact. The engine
//! tracks the last window that flushed any outbox lane in a monotonic
//! marker; after barrier 2 every worker reads it and deterministically
//! agrees whether the next window starts at Phase A or jumps straight
//! to Phase B. This halves the barrier count (and removes an
//! O(shards²) slot scan) on exchange-free windows. Window 0 always
//! runs Phase A: it doubles as per-shard setup.
//!
//! Because a worker that finishes its min-scan early enters Phase B
//! while slower workers are still scanning, the published bounds are
//! double-buffered: window `w` scans (and Phase A writes) buffer
//! `w % 2`, while Phase B publishes its post-execution bounds into
//! buffer `(w + 1) % 2`. Every write is thus separated from every
//! scan that reads it by a barrier, and all workers derive identical
//! window parameters.
//!
//! The slot scan itself is driven by per-destination atomic bitmasks of
//! non-empty exchange slots, so an ingest phase locks exactly the
//! (src → dst) lanes that carry traffic instead of all `n_shards²`.
//!
//! ## Window-bound safety
//!
//! Every shard's (exclusive) bound is the classic conservative
//! `min1 + la`: every cross-shard event carries at least `la` of
//! virtual delay, so all events below that bound are already queued
//! when the window opens. Extending the bound any further is unsound in
//! general — a shard processing past `min1 + la` can emit a request
//! whose *reply* arrives with only `2·la` of accumulated delay, i.e.
//! inside the region it already drained.
//!
//! One sound extension remains: when exactly one shard has pending work
//! (`min2 == MAX`) it drains with an unbounded window, *clamped as it
//! goes* to `outbox_min + la`, where `outbox_min` is the earliest
//! cross-shard event it has emitted so far this window. Until it emits,
//! nothing outside can ever act; once it emits an event arriving at
//! `A`, any causal echo crosses shards twice and returns no earlier
//! than `A + la`. An isolated shard (or a single-shard run) therefore
//! still drains to completion without per-event synchronization.
//!
//! ## Determinism
//!
//! Each shard processes its events in ascending `(time, dst, src, seq)`
//! key order; keys are globally unique and pop-min order is
//! insertion-order independent, so batching the exchange cannot reorder
//! anything. `Call` actions only mutate destination-rank state, and
//! per-source `seq` counters advance on the source's owning shard alone
//! — per-rank event histories, and therefore all virtual-time results,
//! are identical to the sequential engine's for any worker or shard
//! count. Skipping an ingest phase only elides synchronization that had
//! nothing to synchronize; the window-bound arithmetic is unchanged.
//! Only the [`EngineProfile`] execution-shape counters (windows, skips,
//! steals, barrier waits, batch sizes) vary.

use super::{assemble_report, SetupFn};
use crate::config::CoreConfig;
use crate::error::SimError;
use crate::event::EventRec;
use crate::kernel::Kernel;
use crate::report::{EngineProfile, SimReport};
use crate::time::SimTime;
use crate::vp::VpProgram;
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// Shared synchronization state of one parallel run.
struct SyncState {
    /// Double-buffered per-shard next pending event time (u64::MAX =
    /// idle). Window `w` scans buffer `w % 2`; Phase A publishes into
    /// that same buffer, while Phase B publishes its post-execution
    /// bound into buffer `(w + 1) % 2` for the *next* window. The
    /// split matters: a worker that finishes its scan early enters
    /// Phase B while slower workers are still scanning, so Phase B
    /// must never write the buffer the current window reads — with
    /// one buffer the racing writes made workers derive different
    /// `min1` values (unsound bounds, divergent exits, deadlock at
    /// the barrier).
    next_times: [Vec<AtomicU64>; 2],
    /// Exchange slot matrix: `slots[dst][src]` carries the batch of
    /// events shard `src` produced for shard `dst` this window. Phase B
    /// swaps a full outbox lane in; Phase A drains it (keeping the
    /// allocation), so the two buffers per (src,dst) pair ping-pong and
    /// steady-state traffic allocates nothing.
    slots: Vec<Vec<Mutex<Vec<EventRec>>>>,
    /// Per-destination bitmask of source shards with a non-empty slot
    /// (`filled[dst][src / 64]` bit `src % 64`). Lets Phase A lock only
    /// the lanes that carry traffic.
    filled: Vec<Vec<AtomicU64>>,
    /// Index+1 of the most recent window that flushed any outbox lane.
    /// Monotonic; read after barrier 2 to decide whether the next
    /// window needs an ingest phase at all.
    exchanged: AtomicU64,
    /// Window barrier (at most two crossings per window).
    barrier: Barrier,
    /// Monotonic ticket counter driving the work-stealing pool: with
    /// `p` executed phases so far, tickets `p*n_shards..(p+1)*n_shards`
    /// map to the shards of the current phase. (Workers track `p`
    /// locally; skipped phases consume no tickets.)
    ticket: AtomicUsize,
    /// Aggregate processed-event counter for the budget check.
    events: AtomicU64,
    /// Window index during which the event budget first tripped
    /// (u64::MAX: never). The exit check compares it against the
    /// *current* window, so a trip during window `w` — which some
    /// workers may observe mid-scan and others not — halts everyone
    /// uniformly at the start of window `w + 1`.
    budget_window: AtomicU64,
    /// Merged execution profile (workers fold theirs in on exit).
    profile: Mutex<EngineProfile>,
}

/// Claim up to `chunk` consecutive tickets below `end`; returns the
/// claimed range. Chunking amortizes the contended atomic over several
/// shard-tasks when shards heavily outnumber workers.
#[inline]
fn claim(ticket: &AtomicUsize, end: usize, chunk: usize) -> Option<Range<usize>> {
    let mut got = 0..0;
    ticket
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
            if t < end {
                let take = chunk.min(end - t);
                got = t..t + take;
                Some(t + take)
            } else {
                None
            }
        })
        .ok()
        .map(|_| got)
}

/// Run the simulation across up to `cfg.workers` worker threads pulling
/// from `cfg.n_shards()` shard tasks.
pub fn run_parallel(
    cfg: CoreConfig,
    program: Arc<dyn VpProgram>,
    setup: SetupFn<'_>,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    let start = std::time::Instant::now();
    let cfg = Arc::new(cfg);
    let n_shards = cfg.n_shards();
    let per = cfg.ranks_per_shard();
    let nthreads = cfg.workers.min(n_shards).max(1);
    let mask_words = n_shards.div_ceil(64);

    let sync = SyncState {
        next_times: [
            (0..n_shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
            (0..n_shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
        ],
        slots: (0..n_shards)
            .map(|_| {
                (0..n_shards)
                    .map(|_| Mutex::new(Vec::with_capacity(cfg.batch_hint)))
                    .collect()
            })
            .collect(),
        filled: (0..n_shards)
            .map(|_| (0..mask_words).map(|_| AtomicU64::new(0)).collect())
            .collect(),
        exchanged: AtomicU64::new(0),
        barrier: Barrier::new(nthreads),
        ticket: AtomicUsize::new(0),
        events: AtomicU64::new(0),
        budget_window: AtomicU64::new(u64::MAX),
        profile: Mutex::new(EngineProfile::default()),
    };

    let kernels: Vec<Mutex<Kernel>> = (0..n_shards)
        .map(|s| {
            let lo = s * per;
            let hi = ((s + 1) * per).min(cfg.n_ranks);
            let mut k = Kernel::new(s, cfg.clone(), lo..hi, program.clone());
            k.schedule_spawns();
            Mutex::new(k)
        })
        .collect();

    std::thread::scope(|scope| {
        for worker_id in 0..nthreads {
            let sync = &sync;
            let cfg = &cfg;
            let kernels = &kernels;
            scope.spawn(move || {
                worker_loop(worker_id, nthreads, kernels, sync, cfg, setup);
            });
        }
    });

    if sync.budget_window.load(Ordering::Relaxed) != u64::MAX {
        return Err(SimError::EventBudgetExceeded {
            processed: sync.events.load(Ordering::Relaxed),
        });
    }

    let kernels: Vec<Kernel> = kernels.into_iter().map(|m| m.into_inner()).collect();
    let profile = *sync.profile.lock();
    assemble_report(&cfg, kernels, profile, start.elapsed())
}

/// The shared (exclusive) window bound, `min1 + la` (see module docs).
/// The sole-active-shard drain extends past this under its dynamic
/// `outbox_min + la` clamp, applied in the execution loop itself.
#[inline]
fn window_bound(min1: u64, la: u64) -> u64 {
    min1.saturating_add(la)
}

fn worker_loop(
    worker_id: usize,
    nthreads: usize,
    kernels: &[Mutex<Kernel>],
    sync: &SyncState,
    cfg: &CoreConfig,
    setup: SetupFn<'_>,
) {
    let n_shards = kernels.len();
    let budget_limited = cfg.max_events != u64::MAX;
    let mut prof = EngineProfile::default();
    let mut window: u64 = 0;
    // Executed-phase counter: every worker advances it identically (the
    // skip decision is derived from shared state read after a barrier),
    // so `phase * n_shards` bounds the ticket range without encoding
    // skipped phases.
    let mut phase: usize = 0;
    // Chunk ticket claims when shards heavily oversubscribe the pool;
    // keep the tail fine-grained so stealing still balances stragglers.
    let chunk = (n_shards / (nthreads * 4)).max(1);
    let mut need_ingest = true; // window 0: setup + initial publish

    loop {
        // This window's scan buffer; Phase B publishes into the other
        // one (see `SyncState::next_times`).
        let cur = (window % 2) as usize;
        if need_ingest {
            // ---- Phase A: ingest exchanged batches, publish bounds.
            let end = (phase + 1) * n_shards;
            while let Some(tickets) = claim(&sync.ticket, end, chunk) {
                for t in tickets {
                    let s = t % n_shards;
                    let mut k = kernels[s].lock();
                    if window == 0 {
                        // First touch of this shard: install services and
                        // scheduled injections before publishing its bound.
                        setup(&mut k);
                    }
                    for (w, word) in sync.filled[s].iter().enumerate() {
                        let mut bits = word.swap(0, Ordering::Relaxed);
                        while bits != 0 {
                            let src = w * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let mut slot = sync.slots[s][src].lock();
                            prof.batched_events += slot.len() as u64;
                            prof.batch_max_events = prof.batch_max_events.max(slot.len() as u64);
                            // drain() keeps the slot's capacity: the buffer
                            // returns to the arena for the producer to swap
                            // into next window.
                            for ev in slot.drain(..) {
                                debug_assert!(k.owns(ev.key.dst), "exchange misrouted an event");
                                k.queue.push(ev);
                            }
                        }
                    }
                    k.note_queue_depth();
                    let mine = k.queue.next_time().map_or(u64::MAX, |t| t.as_nanos());
                    sync.next_times[cur][s].store(mine, Ordering::SeqCst);
                }
            }
            phase += 1;
            let wait = std::time::Instant::now();
            sync.barrier.wait();
            let waited = wait.elapsed().as_nanos() as u64;
            prof.barrier_wait_ns += waited;
            prof.window_barrier_hwm_ns = prof.window_barrier_hwm_ns.max(waited);
        } else {
            prof.ingest_skips += 1;
        }

        // ---- Every worker independently derives the same window
        // parameters from the (stable) published bounds: after barrier 1
        // when Phase A ran, straight after barrier 2 of the previous
        // window when it was skipped.
        let mut min1 = u64::MAX;
        let mut min2 = u64::MAX;
        let mut min1_count = 0u32;
        for t in &sync.next_times[cur] {
            let v = t.load(Ordering::SeqCst);
            if v < min1 {
                min2 = min1;
                min1 = v;
                min1_count = 1;
            } else if v == min1 {
                min1_count = min1_count.saturating_add(1);
            } else if v < min2 {
                min2 = v;
            }
        }
        if min1 == u64::MAX || sync.budget_window.load(Ordering::Relaxed) < window {
            // No shard has pending work, or the budget tripped during a
            // *previous* window: the run is over, consistently for
            // every worker. (A trip during the current window — which a
            // worker already in Phase B may cause while another is
            // still here — deliberately does not exit yet: `w < w` is
            // false for both, so nobody diverges.)
            break;
        }
        prof.windows += 1;
        let la = match &cfg.lookahead_fn {
            // The provider can only widen the window: the static floor
            // stays a correct minimum cross-shard delay.
            Some(f) => cfg.lookahead.max(f.at(SimTime(min1))).as_nanos(),
            None => cfg.lookahead.as_nanos(),
        };

        // ---- Phase B: execute each shard's window, flush its batches.
        let end = (phase + 1) * n_shards;
        let mut window_steals = 0u64;
        while let Some(tickets) = claim(&sync.ticket, end, chunk) {
            for t in tickets {
                let s = t % n_shards;
                if s % nthreads != worker_id {
                    window_steals += 1;
                }
                let mut k = kernels[s].lock();
                let next = sync.next_times[cur][s].load(Ordering::SeqCst);
                // The sole shard with pending work drains unboundedly,
                // under the dynamic emission clamp below; everyone else
                // stops at the shared conservative bound.
                let exclusive = min2 == u64::MAX && next == min1 && min1_count == 1;
                let bound = if exclusive {
                    u64::MAX
                } else {
                    window_bound(min1, la)
                };
                let base = if budget_limited {
                    sync.events.load(Ordering::Relaxed)
                } else {
                    0
                };
                let mut processed = 0u64;
                loop {
                    // Re-clamped every iteration: processing may emit new
                    // cross-shard events, and a later emission can carry
                    // an *earlier* arrival time. The clamp never cuts
                    // below the current processing point (an emission
                    // from time `t` arrives ≥ `t + la`, putting the clamp
                    // ≥ `t + 2·la`).
                    let eff = bound.min(k.outbox_min.saturating_add(la));
                    let Some(ev) = k.queue.pop_before(SimTime(eff)) else {
                        break;
                    };
                    debug_assert!(
                        ev.key.time.as_nanos() >= min1,
                        "event below the window's lower bound"
                    );
                    k.process(ev);
                    processed += 1;
                    // In-loop check: in an unclamped exclusive drain a
                    // runaway program would otherwise never leave this
                    // loop.
                    if budget_limited
                        && (base + processed > cfg.max_events
                            || sync.budget_window.load(Ordering::Relaxed) != u64::MAX)
                    {
                        sync.budget_window.fetch_min(window, Ordering::Relaxed);
                        break;
                    }
                }
                if budget_limited {
                    let total = sync.events.fetch_add(processed, Ordering::Relaxed) + processed;
                    if total > cfg.max_events {
                        sync.budget_window.fetch_min(window, Ordering::Relaxed);
                    }
                } else {
                    sync.events.fetch_add(processed, Ordering::Relaxed);
                }
                let mut flushed = false;
                for dst in 0..n_shards {
                    if k.outbox[dst].is_empty() {
                        continue;
                    }
                    #[cfg(debug_assertions)]
                    {
                        // No receiver processed past the shared bound this
                        // window, so every exchanged event must land at or
                        // beyond it.
                        let dst_bound = window_bound(min1, la);
                        for ev in &k.outbox[dst] {
                            debug_assert!(
                                ev.key.time.as_nanos() >= dst_bound,
                                "cross-shard event below the receiver's window \
                                 bound: {:?} < {:?}",
                                ev.key.time,
                                SimTime(dst_bound)
                            );
                        }
                    }
                    let mut slot = sync.slots[dst][s].lock();
                    debug_assert!(slot.is_empty(), "exchange slot not drained in Phase A");
                    // Swap the filled lane in and take the drained slot
                    // buffer back as next window's lane: zero-copy
                    // handoff, capacities recycled.
                    std::mem::swap(&mut *slot, &mut k.outbox[dst]);
                    sync.filled[dst][s / 64].fetch_or(1 << (s % 64), Ordering::Relaxed);
                    flushed = true;
                }
                k.outbox_min = u64::MAX;
                if flushed {
                    sync.exchanged.fetch_max(window + 1, Ordering::Relaxed);
                }
                // Post-execution bound for the *next* window's scan
                // buffer: exact unless a peer exchanged events toward
                // this shard (in which case the next window runs
                // Phase A and overwrites it after ingest).
                let mine = k.queue.next_time().map_or(u64::MAX, |t| t.as_nanos());
                sync.next_times[1 - cur][s].store(mine, Ordering::SeqCst);
            }
        }
        prof.steals += window_steals;
        prof.window_steal_hwm = prof.window_steal_hwm.max(window_steals);
        phase += 1;
        let wait = std::time::Instant::now();
        sync.barrier.wait();
        let waited = wait.elapsed().as_nanos() as u64;
        prof.barrier_wait_ns += waited;
        prof.window_barrier_hwm_ns = prof.window_barrier_hwm_ns.max(waited);
        // All of this window's flushes happen-before this point
        // (barrier), so a marker of exactly `window + 1` is stable and
        // every worker takes the same branch. Exact equality matters:
        // when nothing was exchanged, a fast worker skips ahead into
        // the next window's Phase B and may flush (marker `window + 2`)
        // before a slow worker reads — `> window` would diverge here,
        // `== window + 1` cannot.
        need_ingest = sync.exchanged.load(Ordering::Relaxed) == window + 1;
        window += 1;
    }

    sync.profile.lock().merge(&prof);
}
