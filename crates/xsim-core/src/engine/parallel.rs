//! Conservative windowed parallel engine.
//!
//! The rank space is partitioned into contiguous shards, one per worker
//! thread. Execution proceeds in global windows `[W, W + lookahead)`
//! where `W` is the minimum pending event time across shards (the lower
//! bound on timestamps). Because every cross-rank event carries at least
//! `lookahead` of virtual delay, all events that can fire inside the
//! window are already present in their shard's queue when the window
//! opens — the classic conservative synchronous-window PDES argument.
//!
//! Determinism: each shard processes its events in ascending key order,
//! and `Call` actions only mutate destination-rank state, so per-rank
//! event histories — and therefore all virtual times — are identical to
//! the sequential engine's.

use super::{assemble_report, SetupFn};
use crate::config::CoreConfig;
use crate::error::SimError;
use crate::event::EventRec;
use crate::kernel::Kernel;
use crate::report::SimReport;
use crate::time::SimTime;
use crate::vp::VpProgram;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Shared synchronization state of one parallel run.
struct SyncState {
    /// Per-shard next pending event time (u64::MAX = idle).
    next_times: Vec<AtomicU64>,
    /// Per-shard inbound cross-shard events.
    inboxes: Vec<Mutex<Vec<EventRec>>>,
    /// Window barrier.
    barrier: Barrier,
    /// Aggregate processed-event counter for the budget check.
    events: AtomicU64,
    /// Set when any shard trips the event budget.
    over_budget: AtomicBool,
}

/// Run the simulation across `cfg.n_shards()` worker threads.
pub fn run_parallel(
    cfg: CoreConfig,
    program: Arc<dyn VpProgram>,
    setup: SetupFn<'_>,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    let start = std::time::Instant::now();
    let cfg = Arc::new(cfg);
    let n_shards = cfg.n_shards();
    let per = cfg.ranks_per_shard();

    let sync = SyncState {
        next_times: (0..n_shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
        inboxes: (0..n_shards).map(|_| Mutex::new(Vec::new())).collect(),
        barrier: Barrier::new(n_shards),
        events: AtomicU64::new(0),
        over_budget: AtomicBool::new(false),
    };

    let shards: Vec<Mutex<Option<Kernel>>> = (0..n_shards)
        .map(|s| {
            let lo = s * per;
            let hi = ((s + 1) * per).min(cfg.n_ranks);
            let mut k = Kernel::new(s, cfg.clone(), lo..hi, program.clone());
            k.schedule_spawns();
            Mutex::new(Some(k))
        })
        .collect();

    std::thread::scope(|scope| {
        for slot in shards.iter() {
            let sync = &sync;
            let cfg = &cfg;
            scope.spawn(move || {
                let mut k = slot.lock().take().expect("shard taken once");
                setup(&mut k);
                worker_loop(&mut k, sync, cfg);
                *slot.lock() = Some(k);
            });
        }
    });

    if sync.over_budget.load(Ordering::Relaxed) {
        return Err(SimError::EventBudgetExceeded {
            processed: sync.events.load(Ordering::Relaxed),
        });
    }

    let kernels: Vec<Kernel> = shards
        .into_iter()
        .map(|m| m.into_inner().expect("shard returned"))
        .collect();
    assemble_report(&cfg, kernels, start.elapsed())
}

fn worker_loop(k: &mut Kernel, sync: &SyncState, cfg: &CoreConfig) {
    let lookahead = cfg.lookahead;
    loop {
        // Ingest cross-shard events delivered during the previous window.
        {
            let mut inbox = sync.inboxes[k.shard_id].lock();
            for ev in inbox.drain(..) {
                debug_assert!(k.owns(ev.key.dst));
                k.queue.push(ev);
            }
        }
        k.note_queue_depth();

        // Publish our lower bound and agree on the global one.
        let mine = k.queue.next_time().map_or(u64::MAX, |t| t.as_nanos());
        sync.next_times[k.shard_id].store(mine, Ordering::SeqCst);
        sync.barrier.wait();
        let lbts = sync
            .next_times
            .iter()
            .map(|t| t.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if lbts == u64::MAX || sync.over_budget.load(Ordering::Relaxed) {
            // No shard has work (or the budget tripped): simulation over.
            // One final barrier so nobody re-enters the inbox phase while
            // another shard still flushes (there is nothing to flush —
            // outboxes are drained before the previous barrier).
            break;
        }

        // Process the window [lbts, lbts + lookahead).
        let bound = SimTime(lbts).saturating_add(lookahead);
        let mut processed = 0u64;
        while let Some(ev) = k.queue.pop_before(bound) {
            k.process(ev);
            processed += 1;
        }
        let total = sync.events.fetch_add(processed, Ordering::Relaxed) + processed;
        if total > cfg.max_events {
            sync.over_budget.store(true, Ordering::Relaxed);
        }

        // Flush cross-shard events, then make them visible to everyone
        // before the next inbox ingest.
        for (dst_shard, ev) in k.outbox.drain(..) {
            debug_assert!(
                ev.key.time >= bound,
                "cross-shard event below lookahead window: {:?} < {:?}",
                ev.key.time,
                bound
            );
            sync.inboxes[dst_shard].lock().push(ev);
        }
        sync.barrier.wait();
    }
}
