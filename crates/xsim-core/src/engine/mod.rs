//! Simulation engines.
//!
//! Two engines share the same kernel and produce bit-identical virtual
//! time results:
//!
//! * [`run_sequential`] processes events in global key order — the
//!   reference implementation.
//! * [`run_parallel`] is a conservative, window-synchronized PDES over
//!   a work-stealing pool of native worker threads, the shared-memory
//!   analogue of xSim running as a parallel MPI program with
//!   conservative synchronization (paper §II-A, §IV-A).
//!
//! [`run`] dispatches on `cfg.use_parallel()` (engine kind + workers).

mod parallel;
mod sequential;

pub use parallel::run_parallel;
pub use sequential::run_sequential;

use crate::config::CoreConfig;
use crate::error::{SimError, Termination};
use crate::kernel::Kernel;
use crate::report::{EngineProfile, ExitKind, ShardStats, SimReport, VpTimingStats};
use crate::time::SimTime;
use crate::vp::VpProgram;
use std::sync::Arc;

/// Per-shard setup hook: installs services, fail hooks and scheduled
/// injections before the event loop starts. Runs once per shard.
pub type SetupFn<'a> = &'a (dyn Fn(&mut Kernel) + Sync);

/// Run a simulation with the engine selected by `cfg.engine` /
/// `cfg.workers` (see [`CoreConfig::use_parallel`]).
pub fn run(
    cfg: CoreConfig,
    program: Arc<dyn VpProgram>,
    setup: SetupFn<'_>,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    if cfg.use_parallel() {
        run_parallel(cfg, program, setup)
    } else {
        run_sequential(cfg, program, setup)
    }
}

/// Assemble the final report from finished shards.
pub(crate) fn assemble_report(
    cfg: &CoreConfig,
    shards: Vec<Kernel>,
    profile: EngineProfile,
    wall: std::time::Duration,
) -> Result<SimReport, SimError> {
    let mut blocked = Vec::new();
    let mut final_clocks = vec![SimTime::ZERO; cfg.n_ranks];
    let mut terminations = vec![Termination::Finished; cfg.n_ranks];
    let mut failures = Vec::new();
    let mut abort_time: Option<SimTime> = None;
    let mut events_processed = 0;
    let mut context_switches = 0;
    let mut shard_stats = Vec::with_capacity(shards.len());

    let mut profile = profile;
    let mut shards = shards;
    for shard in &mut shards {
        // Flush upper-layer state (trace buffers, metric sets) before
        // reading results, so sinks are complete without relying on the
        // shard's Drop order.
        shard.run_shutdown_hooks();
        // Fold this shard's queue allocation/occupancy counters into the
        // profile (execution-shape data; both engines report it).
        let qs = shard.queue.stats();
        profile.pool_pushes += qs.pushes;
        profile.pool_reused += qs.reused;
        profile.queue_bucket_hwm = profile.queue_bucket_hwm.max(qs.bucket_hwm);
        blocked.extend(shard.blocked_summary());
        for (r, clock, term) in shard.drain_results() {
            final_clocks[r] = clock;
            terminations[r] = term;
        }
        failures.append(&mut shard.failures);
        abort_time = match (abort_time, shard.abort_time) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        events_processed += shard.events_processed;
        context_switches += shard.context_switches;
        shard_stats.push(ShardStats {
            shard_id: shard.shard_id,
            events_processed: shard.events_processed,
            context_switches: shard.context_switches,
            queue_depth_hwm: shard.queue_depth_hwm,
        });
    }

    if !blocked.is_empty() {
        blocked.sort_by_key(|(r, _, _)| *r);
        return Err(SimError::Deadlock(crate::deadlock::report(
            &blocked,
            cfg.n_ranks,
        )));
    }

    // Deterministic failure ordering regardless of shard interleaving.
    failures.sort_by_key(|f| (f.actual, f.rank));

    let exit = if abort_time.is_some() {
        ExitKind::Aborted
    } else if terminations
        .iter()
        .any(|t| matches!(t, Termination::Failed(_)))
    {
        ExitKind::FailedOnly
    } else {
        ExitKind::Completed
    };

    let timing = VpTimingStats::from_clocks(&final_clocks);
    let report = SimReport {
        exit,
        final_clocks,
        terminations,
        timing,
        failures,
        abort_time,
        events_processed,
        context_switches,
        shards: shard_stats,
        profile,
        wall,
    };
    if cfg.verbose {
        eprintln!("{}", report.summary());
    }
    Ok(report)
}
