//! The pending-event queue.
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * **Calendar** (default): an O(1)-amortized calendar/ladder queue
//!   over flat, recycled `Vec` buckets — the data-oriented hot core.
//!   Pending events live in a ring of `nb` buckets, each covering one
//!   `2^shift`-nanosecond slice of virtual time; events beyond the
//!   ring's horizon wait in an overflow lane that is redistributed when
//!   the ring drains. Buckets are kept sorted (descending by key, so
//!   `Vec::pop` yields the minimum) by binary-search ordered insertion;
//!   the dirty-flag deferred sort survives only for bulk redistribution
//!   (ring growth, width re-fits, overflow migration) and for the
//!   bounded-memmove fallback below. Bucket/overflow buffers keep their
//!   capacity across the run, so steady-state push/pop performs zero
//!   allocations.
//! * **Heap**: the original `BinaryHeap` implementation, kept as the
//!   determinism oracle. Select it with `XSIM_ENGINE_QUEUE=heap` (the
//!   default is `calendar`; any other value falls back to the default).
//!
//! Both pop the *current minimum* [`EventKey`]; since keys are globally
//! unique, the two implementations produce byte-identical pop sequences
//! for any push/pop interleaving — pinned by the oracle proptest in
//! `tests/prop.rs` and the seeded differential test below.
//!
//! ## Compact records and the call slab
//!
//! Resident events are stored as a 40-byte [`CompactRec`] — the 24-byte
//! key plus a 16-byte action word — instead of the full [`EventRec`],
//! whose inline [`CallFn`] buffer makes it ~176 bytes. `Call` closures
//! park in a facade-owned slab ([`CallSlab`]) and the record carries
//! only the slot index; slots are recycled through a free list, so the
//! 112-byte closure buffer is paid once per *in-flight* `Call`, not per
//! resident event. At the paper's 2²⁷-VP scale the initial spawn wave
//! alone is ~134 M resident events: 40 B/event keeps that to ~5 GiB
//! where full records would need ~24 GiB. Dropping the queue drops the
//! slab, releasing unfired closures' captures (abort teardown).
//!
//! ## Tie-breaking audit
//!
//! Same-timestamp events are totally ordered by the remaining key
//! fields, compared lexicographically: `(time, dst, src, seq)` —
//! destination rank first, then source rank, then the source's
//! per-rank sequence number. The `seq` counter advances only on the
//! source rank's *owning* shard (event attribution), so the full key is
//! globally unique and its order is a property of the simulation alone,
//! never of sharding: no shard count, worker count, exchange batching
//! or heap insertion order can reorder ties. Neither `BinaryHeap` nor
//! the calendar buckets are insertion-order stable — determinism comes
//! entirely from key uniqueness, which `queue_order_is_push_order_independent`
//! below and the colliding-timestamp regression tests in
//! `tests/engine.rs` pin down.

use crate::event::{Action, CallFn, EventKey, EventRec};
use crate::time::SimTime;
use crate::vp::WaitToken;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which pending-event-queue implementation a kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueImpl {
    /// Calendar/ladder queue over flat buckets (the default).
    #[default]
    Calendar,
    /// `BinaryHeap` oracle (`XSIM_ENGINE_QUEUE=heap`).
    Heap,
}

impl QueueImpl {
    /// The implementation selected by `XSIM_ENGINE_QUEUE`, defaulting
    /// to the calendar queue. Read per call: tests flip the variable
    /// between runs, and a kernel constructs its queue exactly once.
    pub fn from_env() -> Self {
        match std::env::var("XSIM_ENGINE_QUEUE").as_deref() {
            Ok("heap") => QueueImpl::Heap,
            _ => QueueImpl::Calendar,
        }
    }
}

/// Allocation/occupancy counters of one queue, folded into the engine
/// profile at shutdown. Execution-shape data, never part of determinism
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Total events pushed.
    pub pushes: u64,
    /// Pushes served from already-reserved bucket capacity (no
    /// allocation). `reused / pushes` is the pool reuse ratio.
    pub reused: u64,
    /// High-water mark of events resident in a single calendar bucket.
    pub bucket_hwm: u64,
}

// ---------------------------------------------------------------------
// Compact resident representation
// ---------------------------------------------------------------------

/// The action word of a resident event: [`Action`] with the `Call`
/// closure swapped for its [`CallSlab`] slot index.
enum CompactAction {
    Spawn,
    WakeToken(WaitToken),
    WakeMessage,
    Call(u32),
}

/// A resident event: 24-byte key + 16-byte action = 40 bytes.
struct CompactRec {
    key: EventKey,
    action: CompactAction,
}

/// Parking lot for in-flight `Call` closures, owned by the facade and
/// shared by both queue implementations. Slots are recycled through a
/// free list, so steady-state `Call` traffic allocates nothing once the
/// slab has grown to the in-flight high-water mark.
#[derive(Default)]
struct CallSlab {
    slots: Vec<Option<CallFn>>,
    free: Vec<u32>,
}

impl CallSlab {
    #[inline]
    fn insert(&mut self, f: CallFn) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(f);
                i
            }
            None => {
                self.slots.push(Some(f));
                (self.slots.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn remove(&mut self, slot: u32) -> CallFn {
        let f = self.slots[slot as usize].take().expect("live call slot");
        self.free.push(slot);
        f
    }
}

// ---------------------------------------------------------------------
// Heap implementation (oracle)
// ---------------------------------------------------------------------

struct HeapEntry(CompactRec);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key first.
        other.0.key.cmp(&self.0.key)
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<HeapEntry>,
    stats: QueueStats,
}

impl HeapQueue {
    #[inline]
    fn push(&mut self, ev: CompactRec) {
        self.stats.pushes += 1;
        if self.heap.len() < self.heap.capacity() {
            self.stats.reused += 1;
        }
        self.heap.push(HeapEntry(ev));
    }

    #[inline]
    fn pop(&mut self) -> Option<CompactRec> {
        self.heap.pop().map(|e| e.0)
    }

    #[inline]
    fn next_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.0.key)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------
// Calendar implementation
// ---------------------------------------------------------------------

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: usize = 256;
/// Initial bucket width: 2^10 ns ≈ 1 µs of virtual time per slice.
const INITIAL_SHIFT: u32 = 10;
/// Grow the ring when resident events exceed `buckets * GROW_LOAD`.
const GROW_LOAD: usize = 4;
/// Hard cap on the ring size (2^20 buckets ≈ 24 MiB of headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Re-fit the bucket width when the bucket at the window head holds
/// more events than this. Dense clusters otherwise degenerate: every
/// ordered insert into an oversized bucket pays an O(len) memmove.
const SPLIT_OCCUPANCY: usize = 64;
/// Events per slice a width re-fit aims for: a few records per bucket
/// keeps ordered-insert memmoves to a cache line or two. Higher targets
/// measurably lose at the dense tiers — the deeper per-insert memmove
/// traffic outweighs the fewer header touches.
const SPLIT_TARGET_OCCUPANCY: usize = 8;
/// Spare bucket buffers kept for recycling. A sliding window marches
/// over buckets that have never held an event (the ring wraps only
/// every `nb` slices), so without recycling every few pushes pay a
/// fresh allocation; the settle scan instead strips capacity from the
/// drained buckets it passes and pushes install it into cold ones.
const SPARE_BUFFERS: usize = 32;
/// Ordered-insertion memmove bound: an insertion that would shift more
/// than this many records appends + dirties the bucket instead,
/// deferring to one sort when the bucket reaches the window head. This
/// caps the per-push cost at a ~2.5 KiB memmove while turning the two
/// degenerate fills — ascending-key floods into one slice, and dense
/// same-time ties whose order is decided by `(dst, src, seq)` alone —
/// into one O(n log n) sort instead of O(n²) memmoves.
const INSERT_MOVE_CAP: usize = 64;
/// Shrink a bucket's buffer back to this capacity when it empties.
/// One-shot giants (the initial spawn wave parks ~n events in a single
/// unsplittable same-time bucket) would otherwise pin their peak
/// allocation for the rest of the run.
const TRIM_CAP: usize = 1 << 16;

/// Smallest bucket-width log2 that lets `span` nanoseconds of resident
/// virtual time fit inside half the ring-size cap — the narrowest
/// slices the geometry can afford for a given span. Splits narrow no
/// further than this and migrations widen up to it, so the two can
/// never disagree about the width (the split ↔ widen ping-pong that
/// otherwise cycles the whole population through the overflow lane).
fn span_fit_shift(span: u64) -> u32 {
    let mut shift = 0;
    while (span >> shift) >= (MAX_BUCKETS as u64) / 2 {
        shift += 1;
    }
    shift
}

/// Route one event into its bucket during bulk redistribution
/// (rebuild / overflow migration), preserving a clean bucket's
/// descending order when the arrival order allows (keys are unique, so
/// `last.key < ev.key` is exactly an order break). Free function: the
/// overflow-migration caller holds a `Drain` borrow on another field.
#[inline]
fn route_bulk(ring: &mut [Vec<CompactRec>], dirty: &mut [bool], s: u64, ev: CompactRec) {
    let nb = ring.len() as u64;
    let b = (s & (nb - 1)) as usize;
    let bucket = &mut ring[b];
    if !dirty[b] {
        if let Some(l) = bucket.last() {
            if l.key < ev.key {
                dirty[b] = true;
            }
        }
    }
    bucket.push(ev);
}

struct CalendarQueue {
    /// Ring of buckets; bucket `i` holds events whose time slice `s`
    /// (`s = time >> shift`) satisfies `s % nb == i` and lies inside the
    /// current window `[cur_slice, cur_slice + nb)`. Clean buckets are
    /// sorted descending by key, so `Vec::pop` yields the minimum.
    ring: Vec<Vec<CompactRec>>,
    /// Per-bucket deferred-sort flag: set only by bulk redistribution
    /// and the bounded-memmove fallback (ordinary pushes insert in order), cleared
    /// after the bucket is sorted at the window head.
    dirty: Vec<bool>,
    /// `log2` of the bucket width in nanoseconds.
    shift: u32,
    /// Lowest time slice the ring currently represents. Monotonically
    /// non-decreasing; pops only advance it past empty buckets, so
    /// every resident event's slice is `>= cur_slice`.
    cur_slice: u64,
    /// Events beyond the ring horizon at push time, redistributed (and
    /// the geometry re-fitted) whenever the ring drains.
    overflow: Vec<CompactRec>,
    /// Time (ns) of the earliest overflow event; `u64::MAX` when the
    /// lane is empty. Ring pushes are gated strictly below this bound.
    /// Without it the sliding window is unsound: an event parked in
    /// overflow (beyond the horizon *at its push time*) falls inside the
    /// window as `cur_slice` advances, and a later push may then land in
    /// the ring at a later time yet pop first.
    overflow_min_ns: u64,
    /// Events resident in the ring.
    ring_len: usize,
    /// Total events (ring + overflow).
    len: usize,
    /// Latest resident time (ns): raised on push, recomputed exactly on
    /// rebuild, reset when the queue empties. Between rebuilds it may
    /// overestimate (the max-time event pops only when it is last), but
    /// it is never below the true maximum, which is the safe direction
    /// for the span-driven geometry below.
    max_ns: u64,
    /// Recycled bucket buffers — see [`SPARE_BUFFERS`].
    spare: Vec<Vec<CompactRec>>,
    /// Allocation/occupancy counters.
    stats: QueueStats,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue::with_geometry(INITIAL_BUCKETS, INITIAL_SHIFT, 0)
    }

    fn with_geometry(nb: usize, shift: u32, cur_slice: u64) -> Self {
        debug_assert!(nb.is_power_of_two());
        CalendarQueue {
            ring: (0..nb).map(|_| Vec::new()).collect(),
            dirty: vec![false; nb],
            shift,
            cur_slice,
            overflow: Vec::new(),
            overflow_min_ns: u64::MAX,
            ring_len: 0,
            len: 0,
            max_ns: 0,
            spare: Vec::new(),
            stats: QueueStats::default(),
        }
    }

    #[inline]
    fn slice_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.shift
    }

    #[inline]
    fn push(&mut self, ev: CompactRec) {
        self.stats.pushes += 1;
        self.len += 1;
        // Clamp below-window pushes into the current bucket: ordered
        // insertion still pops them first, preserving pop-min semantics.
        // (The engines never schedule into the popped past, but the
        // queue must not corrupt its geometry if a layer above ever
        // does.)
        let ns = ev.key.time.as_nanos();
        self.max_ns = self.max_ns.max(ns);
        let s = self.slice_of(ev.key.time).max(self.cur_slice);
        let nb = self.ring.len();
        // Ring placement requires being strictly earlier than everything
        // in the overflow lane (ties included), so the ring minimum is
        // always the global minimum — see `overflow_min_ns`.
        if s < self.cur_slice + nb as u64 && ns < self.overflow_min_ns {
            let b = (s & (nb as u64 - 1)) as usize;
            let bucket = &mut self.ring[b];
            if bucket.capacity() == 0 {
                // Cold bucket (never filled, or stripped by the settle
                // scan): seed it with a recycled buffer.
                if let Some(buf) = self.spare.pop() {
                    *bucket = buf;
                }
            }
            if bucket.len() < bucket.capacity() {
                self.stats.reused += 1;
            }
            if self.dirty[b] || bucket.last().is_none_or(|l| ev.key < l.key) {
                // Dirty buckets collect appends until their deferred
                // sort; clean buckets append when the event is the new
                // bucket minimum — the common hold-model case, O(1).
                bucket.push(ev);
            } else {
                // Binary-search ordered insertion into the descending
                // bucket. `partition_point` finds the first entry not
                // greater than the new key; keys are unique, so this is
                // the exact insertion point.
                let pos = bucket.partition_point(|x| x.key > ev.key);
                if bucket.len() - pos > INSERT_MOVE_CAP {
                    // Bounded-memmove fallback: a deep insertion appends
                    // and dirties the bucket; the deferred sort at the
                    // window head pays once — see `INSERT_MOVE_CAP`.
                    bucket.push(ev);
                    self.dirty[b] = true;
                } else {
                    bucket.insert(pos, ev);
                }
            }
            let blen = bucket.len();
            self.stats.bucket_hwm = self.stats.bucket_hwm.max(blen as u64);
            self.ring_len += 1;
            // Width re-fits trigger here too, not only at the window
            // head: a bulk fill (benchmark prefill, an engine's spawn
            // wave) then pays for its own redistribution while loading,
            // instead of deferring an O(n) rebuild into the first pop of
            // the measured/steady phase. Checked at the occupancy
            // threshold and at power-of-two crossings so a bucket is
            // re-examined O(log len) times, not per push.
            if blen == SPLIT_OCCUPANCY + 1 || (blen > SPLIT_OCCUPANCY && blen & (blen - 1) == 0) {
                if let Some(sh) = self.cluster_shift(b) {
                    self.rebuild(sh, 0);
                    return;
                }
            }
            if self.ring_len > self.ring.len() * GROW_LOAD && self.ring.len() < MAX_BUCKETS {
                self.grow();
            }
        } else {
            if self.overflow.len() < self.overflow.capacity() {
                self.stats.reused += 1;
            }
            self.overflow_min_ns = self.overflow_min_ns.min(ns);
            self.overflow.push(ev);
        }
    }

    /// Enlarge the ring and redistribute resident events. `rebuild`
    /// jumps straight to a size fitting the current load and span
    /// (instead of one doubling per call), so a bulk wave — the 2²⁷
    /// initial spawns — pays one redistribution, not one per doubling;
    /// the doubling floor only guards the exact-power-of-two boundary
    /// where the load-derived size equals the current one. Amortized
    /// O(1) per push.
    fn grow(&mut self) {
        self.rebuild(self.shift, self.ring.len() * 2);
    }

    /// Re-fit the ring to width `2^shift` and redistribute every
    /// resident event in bulk: slice-vs-horizon routing (as in
    /// `migrate_overflow`) with appends that defer sorting to the window
    /// head, O(n) total. Reuses the old buffers where possible. This is
    /// the one remaining producer of dirty buckets besides the
    /// bounded-memmove fallback.
    ///
    /// The bucket count is derived here, never passed in: at least
    /// `min_nb`, at least the load target (`len / GROW_LOAD` buckets),
    /// and — the load-bearing term — at least twice the resident
    /// *time-span* in slices, so the whole population rides inside the
    /// window whenever the cap allows. Sizing to load alone is the
    /// classic calendar-queue failure: a population whose span outgrows
    /// `nb` slices at the occupancy-driven width cycles ring → overflow
    /// → ring forever, three O(n) redistributions per lap. The count is
    /// monotone non-decreasing; empty buckets cost 24 B of header and
    /// make the geometry a high-water mark instead of a thrash point.
    fn rebuild(&mut self, shift: u32, min_nb: usize) {
        let mut events: Vec<CompactRec> = Vec::with_capacity(self.ring_len + self.overflow.len());
        // Drain from the window head forward and stop once every
        // resident event is collected: the live region sits just past
        // `cur_slice`, so a huge mostly-empty ring doesn't pay a full
        // header sweep per re-fit. Unvisited (empty) buckets may keep a
        // stale dirty flag; that only downgrades a later ordered insert
        // into the append-and-sort-once path, so it is cosmetic.
        let old_nb = self.ring.len();
        let start = (self.cur_slice as usize) & (old_nb - 1);
        for i in 0..old_nb {
            if events.len() == self.ring_len {
                break;
            }
            let b = (start + i) & (old_nb - 1);
            self.dirty[b] = false;
            events.append(&mut self.ring[b]);
        }
        events.append(&mut self.overflow);
        self.overflow_min_ns = u64::MAX;
        let mut min_ns = u64::MAX;
        let mut max_ns = 0u64;
        for e in &events {
            let ns = e.key.time.as_nanos();
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        if events.is_empty() {
            min_ns = 0;
        }
        self.max_ns = max_ns;
        let span_slices = max_ns.saturating_sub(min_ns) >> shift;
        let span_nb = if span_slices >= (MAX_BUCKETS as u64) / 2 {
            MAX_BUCKETS
        } else {
            (span_slices as usize * 2 + 1).next_power_of_two()
        };
        let load_nb = (events.len() / GROW_LOAD).max(1).next_power_of_two();
        let nb = self
            .ring
            .len()
            .max(min_nb)
            .max(load_nb)
            .max(span_nb)
            .min(MAX_BUCKETS);
        // Anchor the window at the resident minimum. Nothing below it is
        // pending, and a later push below the window start is clamped
        // into the current bucket by `push` (ordered insertion still
        // pops it first), so this floor can never reorder pops.
        self.shift = shift;
        self.cur_slice = min_ns >> shift;
        if self.ring.len() != nb {
            self.ring.resize_with(nb, Vec::new);
            self.dirty.resize(nb, false);
        }
        self.ring_len = 0;
        let horizon = self.cur_slice + nb as u64;
        for ev in events {
            let ns = ev.key.time.as_nanos();
            let s = ns >> shift;
            // Ring times stay below `horizon << shift` and overflow
            // times at or above it, so the overflow gate holds.
            if s < horizon {
                route_bulk(&mut self.ring, &mut self.dirty, s, ev);
                self.ring_len += 1;
            } else {
                self.overflow_min_ns = self.overflow_min_ns.min(ns);
                self.overflow.push(ev);
            }
        }
        // Redistribution is internal bookkeeping: `len` and the
        // allocation counters are deliberately untouched.
    }

    /// Position `cur_slice` at the bucket holding the minimum key; sort
    /// it if a bulk redistribution or bounded-memmove fallback left it dirty.
    /// Returns the bucket index, or `None` when empty.
    fn settle(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // The outer loop re-settles after a split re-fits the geometry;
        // `shift` strictly decreases across splits, bounding it.
        loop {
            if self.ring_len == 0 {
                self.migrate_overflow();
            }
            let nb = self.ring.len() as u64;
            let mut s = self.cur_slice;
            let b = loop {
                let b = (s & (nb - 1)) as usize;
                if !self.ring[b].is_empty() {
                    break b;
                }
                // The window has drained past this slice; strip its
                // buffer for the cold buckets ahead. Each slice is
                // passed exactly once per geometry, so this is O(1)
                // amortized per pop.
                let cap = self.ring[b].capacity();
                if cap > 0 && cap <= TRIM_CAP && self.spare.len() < SPARE_BUFFERS {
                    self.spare.push(std::mem::take(&mut self.ring[b]));
                }
                s += 1;
                debug_assert!(
                    s < self.cur_slice + nb,
                    "ring_len > 0 but no non-empty bucket in the window"
                );
            };
            self.cur_slice = s;
            if self.try_split(b) {
                continue;
            }
            if self.dirty[b] {
                // Descending by key: `Vec::pop` then yields the minimum.
                // Keys are unique, so unstable sorting is deterministic.
                self.ring[b].sort_unstable_by_key(|x| std::cmp::Reverse(x.key));
                self.dirty[b] = false;
            }
            return Some(b);
        }
    }

    /// The bucket at the window head is oversized: narrow the bucket
    /// width so the cluster spreads across many slices, restoring O(1)
    /// amortized pops under skewed time distributions. Returns whether
    /// the geometry changed (the caller must re-settle). Identical-time
    /// floods (span 0) cannot be split and simply sort. For a clean
    /// bucket the span check is O(1): descending order puts the latest
    /// time first and the earliest last.
    fn try_split(&mut self, b: usize) -> bool {
        match self.cluster_shift(b) {
            Some(shift) => {
                self.rebuild(shift, 0);
                true
            }
            None => false,
        }
    }

    /// The narrower bucket width an oversized bucket's cluster calls
    /// for, or `None` when narrowing is impossible (small bucket,
    /// identical-time flood, or the span cap already binds).
    fn cluster_shift(&self, b: usize) -> Option<u32> {
        let bucket = &self.ring[b];
        if bucket.len() <= SPLIT_OCCUPANCY || self.shift == 0 {
            return None;
        }
        let (min_ns, max_ns) = if self.dirty[b] {
            let mut min_ns = u64::MAX;
            let mut max_ns = 0u64;
            for e in bucket {
                let ns = e.key.time.as_nanos();
                min_ns = min_ns.min(ns);
                max_ns = max_ns.max(ns);
            }
            (min_ns, max_ns)
        } else {
            (
                bucket.last().unwrap().key.time.as_nanos(),
                bucket.first().unwrap().key.time.as_nanos(),
            )
        };
        let span = max_ns - min_ns;
        if span == 0 {
            return None;
        }
        // Aim for ~4 events per slice at the new width, but narrow no
        // further than the full resident span can afford under the
        // ring-size cap: past that point the tail would fall out of any
        // coverable window and every lap would migrate it back — the
        // other half of the split ↔ widen ping-pong guarded against in
        // `span_fit_shift`. A cluster denser than the clamped width can
        // express leans on the bounded-memmove insertion instead.
        let target = (bucket.len() / SPLIT_TARGET_OCCUPANCY).max(1) as u64;
        let mut shift = self.shift;
        while shift > 0 && (span >> shift) < target {
            shift -= 1;
        }
        let full_span = self.max_ns.saturating_sub(self.cur_slice << self.shift);
        shift = shift.max(span_fit_shift(full_span));
        if shift >= self.shift {
            return None;
        }
        Some(shift)
    }

    /// The ring is empty: jump the window to the earliest overflow event
    /// and redistribute. When even the re-anchored window cannot cover
    /// the lane's span, re-fit instead — `rebuild` grows the ring to
    /// cover it, widening the slices only when the span tops out the
    /// ring-size cap (sparse far-future schedules).
    fn migrate_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty());
        let mut min_ns = u64::MAX;
        let mut max_ns = 0u64;
        for e in &self.overflow {
            let ns = e.key.time.as_nanos();
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        let nb = self.ring.len() as u64;
        let span = max_ns - min_ns;
        if (span >> self.shift) >= nb {
            let shift = self.shift.max(span_fit_shift(span));
            self.rebuild(shift, 0);
            return;
        }
        self.cur_slice = min_ns >> self.shift;
        let horizon = self.cur_slice + nb;
        let mut keep = Vec::with_capacity(self.overflow.len());
        // Slice-vs-horizon routing keeps the ring/overflow time order:
        // every ring time is below `horizon << shift`, every kept time at
        // or above it. Re-derive the gating bound from the kept set.
        self.overflow_min_ns = u64::MAX;
        for ev in self.overflow.drain(..) {
            let ns = ev.key.time.as_nanos();
            let s = ns >> self.shift;
            if s < horizon {
                route_bulk(&mut self.ring, &mut self.dirty, s, ev);
                self.ring_len += 1;
            } else {
                self.overflow_min_ns = self.overflow_min_ns.min(ns);
                keep.push(ev);
            }
        }
        // Swap back so the overflow lane keeps (the larger of) its
        // capacity across migrations.
        std::mem::swap(&mut self.overflow, &mut keep);
        if self.overflow.capacity() < keep.capacity() {
            let mut bigger = keep;
            bigger.clear();
            bigger.append(&mut self.overflow);
            self.overflow = bigger;
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<CompactRec> {
        let b = self.settle()?;
        let ev = self.ring[b].pop();
        debug_assert!(ev.is_some());
        self.ring_len -= 1;
        self.len -= 1;
        if self.len == 0 {
            // A fresh epoch may start at much earlier times; a stale
            // maximum would overclamp `try_split` forever.
            self.max_ns = 0;
        }
        let bucket = &mut self.ring[b];
        if bucket.is_empty() && bucket.capacity() > TRIM_CAP {
            bucket.shrink_to(TRIM_CAP);
        }
        ev
    }

    #[inline]
    fn next_key(&mut self) -> Option<EventKey> {
        let b = self.settle()?;
        self.ring[b].last().map(|e| e.key)
    }
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

enum Inner {
    Heap(HeapQueue),
    Calendar(Box<CalendarQueue>),
}

/// Min-queue of pending events with deterministic tie-breaking.
pub struct EventQueue {
    inner: Inner,
    /// In-flight `Call` closures; resident records carry slot indices.
    calls: CallSlab,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue using the `XSIM_ENGINE_QUEUE`-selected
    /// implementation (calendar by default).
    pub fn new() -> Self {
        EventQueue::with_impl(QueueImpl::from_env())
    }

    /// An empty queue with an explicit implementation.
    pub fn with_impl(imp: QueueImpl) -> Self {
        EventQueue {
            inner: match imp {
                QueueImpl::Heap => Inner::Heap(HeapQueue::default()),
                QueueImpl::Calendar => Inner::Calendar(Box::new(CalendarQueue::new())),
            },
            calls: CallSlab::default(),
        }
    }

    /// An empty `BinaryHeap`-backed queue (the determinism oracle).
    pub fn heap() -> Self {
        EventQueue::with_impl(QueueImpl::Heap)
    }

    /// An empty calendar queue.
    pub fn calendar() -> Self {
        EventQueue::with_impl(QueueImpl::Calendar)
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = EventQueue::new();
        if let Inner::Heap(h) = &mut q.inner {
            h.heap.reserve(cap);
        }
        q
    }

    /// Which implementation this queue runs.
    pub fn impl_kind(&self) -> QueueImpl {
        match &self.inner {
            Inner::Heap(_) => QueueImpl::Heap,
            Inner::Calendar(_) => QueueImpl::Calendar,
        }
    }

    /// Allocation/occupancy counters (see [`QueueStats`]).
    pub fn stats(&self) -> QueueStats {
        match &self.inner {
            Inner::Heap(h) => h.stats,
            Inner::Calendar(c) => c.stats,
        }
    }

    /// Insert an event. `Call` closures park in the facade's slab and
    /// the resident record carries only the slot index — see the module
    /// docs.
    #[inline]
    pub fn push(&mut self, ev: EventRec) {
        let rec = CompactRec {
            key: ev.key,
            action: match ev.action {
                Action::Spawn => CompactAction::Spawn,
                Action::WakeToken(t) => CompactAction::WakeToken(t),
                Action::WakeMessage => CompactAction::WakeMessage,
                Action::Call(f) => CompactAction::Call(self.calls.insert(f)),
            },
        };
        match &mut self.inner {
            Inner::Heap(h) => h.push(rec),
            Inner::Calendar(c) => c.push(rec),
        }
    }

    /// Remove and return the earliest event (smallest key).
    #[inline]
    pub fn pop(&mut self) -> Option<EventRec> {
        let rec = match &mut self.inner {
            Inner::Heap(h) => h.pop(),
            Inner::Calendar(c) => c.pop(),
        }?;
        Some(EventRec {
            key: rec.key,
            action: match rec.action {
                CompactAction::Spawn => Action::Spawn,
                CompactAction::WakeToken(t) => Action::WakeToken(t),
                CompactAction::WakeMessage => Action::WakeMessage,
                CompactAction::Call(slot) => Action::Call(self.calls.remove(slot)),
            },
        })
    }

    /// Remove the earliest event only if it fires strictly before `bound`.
    /// This is the primitive the windowed parallel engine drains with.
    #[inline]
    pub fn pop_before(&mut self, bound: SimTime) -> Option<EventRec> {
        if self.next_time()? < bound {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event, if any.
    #[inline]
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.next_key().map(|k| k.time)
    }

    /// Key of the earliest pending event, if any.
    #[inline]
    pub fn next_key(&mut self) -> Option<EventKey> {
        match &mut self.inner {
            Inner::Heap(h) => h.next_key(),
            Inner::Calendar(c) => c.next_key(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Calendar(c) => c.len,
        }
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Action;
    use crate::rank::Rank;

    fn ev(t: u64, dst: u32, src: u32, seq: u64) -> EventRec {
        EventRec {
            key: EventKey {
                time: SimTime(t),
                dst: Rank(dst),
                src: Rank(src),
                seq,
            },
            action: Action::Spawn,
        }
    }

    fn both() -> [EventQueue; 2] {
        [EventQueue::heap(), EventQueue::calendar()]
    }

    #[test]
    fn pops_in_key_order() {
        for mut q in both() {
            q.push(ev(5, 0, 0, 0));
            q.push(ev(1, 2, 0, 1));
            q.push(ev(1, 1, 0, 2));
            q.push(ev(1, 1, 0, 0));
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
            assert_eq!(order[0].seq, 0);
            assert_eq!(order[0].dst, Rank(1));
            assert_eq!(order[1].seq, 2);
            assert_eq!(order[2].dst, Rank(2));
            assert_eq!(order[3].time, SimTime(5));
        }
    }

    #[test]
    fn pop_before_respects_bound() {
        for mut q in both() {
            q.push(ev(10, 0, 0, 0));
            q.push(ev(3, 0, 0, 1));
            assert_eq!(q.pop_before(SimTime(5)).unwrap().key.time, SimTime(3));
            assert!(q.pop_before(SimTime(5)).is_none());
            assert!(q.pop_before(SimTime(10)).is_none(), "bound is exclusive");
            assert_eq!(q.pop_before(SimTime(11)).unwrap().key.time, SimTime(10));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn colliding_timestamps_order_by_dst_src_seq() {
        // All four events collide at t=9; the pop order must be the
        // lexicographic (dst, src, seq) order regardless of push order.
        for mut q in both() {
            q.push(ev(9, 1, 0, 4));
            q.push(ev(9, 0, 1, 7));
            q.push(ev(9, 0, 0, 2));
            q.push(ev(9, 1, 0, 3));
            let order: Vec<_> = std::iter::from_fn(|| q.pop())
                .map(|e| (e.key.dst.0, e.key.src.0, e.key.seq))
                .collect();
            assert_eq!(order, vec![(0, 0, 2), (0, 1, 7), (1, 0, 3), (1, 0, 4)]);
        }
    }

    #[test]
    fn queue_order_is_push_order_independent() {
        // Exchange batching changes insertion order between engines;
        // the pop sequence must not. Try several permutations of the
        // same colliding-key set, on both implementations.
        let evs = [
            ev(5, 0, 0, 1),
            ev(5, 0, 2, 1),
            ev(5, 1, 0, 2),
            ev(3, 2, 1, 9),
            ev(5, 0, 0, 3),
        ];
        for make in [EventQueue::heap, EventQueue::calendar] {
            let reference: Vec<EventKey> = {
                let mut q = make();
                for e in &evs {
                    q.push(clone_ev(e));
                }
                std::iter::from_fn(|| q.pop()).map(|e| e.key).collect()
            };
            let perms: [[usize; 5]; 3] = [[4, 3, 2, 1, 0], [1, 3, 0, 4, 2], [2, 0, 4, 1, 3]];
            for p in &perms {
                let mut q = make();
                for &i in p {
                    q.push(clone_ev(&evs[i]));
                }
                let got: Vec<EventKey> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
                assert_eq!(got, reference, "permutation {p:?} reordered ties");
            }
        }
    }

    fn clone_ev(e: &EventRec) -> EventRec {
        EventRec {
            key: e.key,
            action: Action::Spawn,
        }
    }

    #[test]
    fn next_time_tracks_min() {
        for mut q in both() {
            assert_eq!(q.next_time(), None);
            q.push(ev(7, 0, 0, 0));
            q.push(ev(2, 0, 0, 1));
            assert_eq!(q.next_time(), Some(SimTime(2)));
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn env_selects_implementation() {
        std::env::set_var("XSIM_ENGINE_QUEUE", "heap");
        assert_eq!(EventQueue::new().impl_kind(), QueueImpl::Heap);
        std::env::set_var("XSIM_ENGINE_QUEUE", "calendar");
        assert_eq!(EventQueue::new().impl_kind(), QueueImpl::Calendar);
        std::env::remove_var("XSIM_ENGINE_QUEUE");
        assert_eq!(EventQueue::new().impl_kind(), QueueImpl::Calendar);
    }

    /// Seeded randomized differential test: interleaved push/pop (with
    /// heavy timestamp collisions and far-future outliers that force
    /// overflow migrations, ring growth, and occupancy splits) pops
    /// byte-identically on both implementations. Runs in stub mode,
    /// unlike the proptest twin in `tests/prop.rs`.
    #[test]
    fn calendar_matches_heap_oracle_seeded() {
        for seed in [
            0x9e3779b97f4a7c15u64,
            0xdeadbeefcafef00d,
            0x0123456789abcdef,
            0x2545f4914f6cdd1d,
        ] {
            differential_churn(seed, 5_000);
        }
    }

    fn differential_churn(seed: u64, ops: usize) {
        // Deterministic xorshift so the test needs no external RNG.
        let mut state = seed;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::calendar();
        let mut seq = 0u64;
        let mut virt_now = 0u64;
        for _ in 0..ops {
            let r = rng();
            if r % 100 < 60 {
                // Push: mostly near-future, some colliding, some far.
                let dt = match r % 10 {
                    0..=5 => r % 2_000,            // dense near-future
                    6..=7 => 0,                    // exact-time collision
                    8 => (r >> 8) % 1_000_000,     // mid-range
                    _ => (r >> 8) % 4_000_000_000, // far overflow
                };
                seq += 1;
                let e = EventKey {
                    time: SimTime(virt_now + dt),
                    dst: Rank((r >> 32) as u32 % 64),
                    src: Rank((r >> 40) as u32 % 64),
                    seq,
                };
                heap.push(EventRec {
                    key: e,
                    action: Action::Spawn,
                });
                cal.push(EventRec {
                    key: e,
                    action: Action::Spawn,
                });
            } else {
                let a = heap.pop().map(|e| e.key);
                let b = cal.pop().map(|e| e.key);
                assert_eq!(a, b, "pop diverged (seed {seed:#x})");
                if let Some(k) = a {
                    virt_now = k.time.as_nanos();
                }
                assert_eq!(heap.next_time(), cal.next_time());
            }
            assert_eq!(heap.len(), cal.len());
        }
        loop {
            let a = heap.pop().map(|e| e.key);
            let b = cal.pop().map(|e| e.key);
            assert_eq!(a, b, "drain diverged (seed {seed:#x})");
            if a.is_none() {
                break;
            }
        }
        let s = cal.stats();
        assert!(s.pushes > 0 && s.bucket_hwm > 0);
        assert!(s.reused > 0, "steady state must reuse bucket capacity");
    }

    /// A dense same-slice cluster (thousands of events within one
    /// initial 1 µs bucket) must trigger the occupancy split and still
    /// pop byte-identically, including under hold-model churn that
    /// keeps landing in the pop bucket plus a far-future tail that
    /// exercises the overflow gating against the narrowed window.
    #[test]
    fn dense_cluster_splits_and_matches_heap() {
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::calendar();
        let push = |h: &mut EventQueue, c: &mut EventQueue, t: u64, seq: u64| {
            let e = ev(t, (seq % 7) as u32, (seq % 5) as u32, seq);
            h.push(clone_ev(&e));
            c.push(e);
        };
        let mut seq = 0;
        // 4000 events inside [0, 1024) ns: one initial calendar slice.
        for i in 0..4_000u64 {
            push(&mut heap, &mut cal, (i * 37) % 1_024, seq);
            seq += 1;
        }
        // A far tail that must stay behind the cluster in overflow.
        for i in 0..50u64 {
            push(&mut heap, &mut cal, 3_000_000_000 + i * 11, seq);
            seq += 1;
        }
        // Hold-model churn: pop the min, push a successor just ahead —
        // repeatedly landing in the pop bucket.
        let mut state = 0xabcdef12345678u64;
        for _ in 0..6_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let a = heap.pop().map(|e| e.key);
            let b = cal.pop().map(|e| e.key);
            assert_eq!(a, b, "cluster pop diverged");
            let t = a.unwrap().time.as_nanos() + 1 + state % 64;
            push(&mut heap, &mut cal, t, seq);
            seq += 1;
        }
        loop {
            let a = heap.pop().map(|e| e.key);
            let b = cal.pop().map(|e| e.key);
            assert_eq!(a, b, "cluster drain diverged");
            if a.is_none() {
                break;
            }
        }
        // Sanity-check the trigger precondition: the cluster really did
        // stack one bucket far above the split threshold.
        assert!(cal.stats().bucket_hwm > SPLIT_OCCUPANCY as u64);
    }

    /// Dense ties on one timestamp (span 0: unsplittable, so the split
    /// path can never rescue the bucket) hammer the ordered-insertion
    /// path directly: ascending, descending and shuffled key orders,
    /// far past the bounded-memmove cap, interleaved with pops. Pop
    /// order must match the heap oracle byte-for-byte.
    #[test]
    fn dense_tie_insertion_matches_heap() {
        // Three adversarial push orders over the same key set, sized so
        // both the in-order insert and the append-and-sort-once paths
        // are exercised many times over.
        let n: u64 = 32 * INSERT_MOVE_CAP as u64 + 137;
        let orders: [&dyn Fn(u64) -> u64; 3] = [
            &|i| i,                       // ascending (dst,src,seq)
            &|i| n - 1 - i,               // descending
            &|i| (i * 2_654_435_761) % n, // pseudo-shuffled
        ];
        for order in orders {
            let mut heap = EventQueue::heap();
            let mut cal = EventQueue::calendar();
            for i in 0..n {
                let j = order(i);
                let e = ev(500, (j % 61) as u32, (j % 53) as u32, j);
                heap.push(clone_ev(&e));
                cal.push(e);
            }
            // Interleave: pop a few, push a few more colliding events.
            for round in 0..64u64 {
                for _ in 0..8 {
                    let a = heap.pop().map(|e| e.key);
                    let b = cal.pop().map(|e| e.key);
                    assert_eq!(a, b, "tie pop diverged");
                }
                let j = n + round;
                let e = ev(500, (j % 61) as u32, (j % 53) as u32, j);
                heap.push(clone_ev(&e));
                cal.push(e);
            }
            loop {
                let a = heap.pop().map(|e| e.key);
                let b = cal.pop().map(|e| e.key);
                assert_eq!(a, b, "tie drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Seeded mirror of the banded/burst proptest in `tests/prop.rs`:
    /// interleaved push/pop traffic over three time bands (tie-dense,
    /// mid-range across many slices, far-future overflow) with
    /// same-time bursts crossing the bounded-memmove cap. Runs in every
    /// local build, where the proptest needs the real `proptest` crate.
    #[test]
    fn banded_burst_traffic_matches_heap() {
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::calendar();
        let mut seq = 0u64;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..1_200 {
            let r = rng();
            if r & 1 == 1 || heap.is_empty() {
                let t = (r >> 8) % 512;
                let t = match (r >> 1) % 3 {
                    0 => t,
                    1 => t << 12,
                    _ => t << 40,
                };
                let burst = 1 + 48 * ((r >> 24) % 3);
                for _ in 0..burst {
                    let e = ev(t, ((r >> 32) % 16) as u32, ((r >> 40) % 16) as u32, seq);
                    seq += 1;
                    heap.push(clone_ev(&e));
                    cal.push(e);
                }
            } else {
                let a = heap.pop().map(|e| e.key);
                let b = cal.pop().map(|e| e.key);
                assert_eq!(a, b, "banded pop diverged");
            }
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.next_time(), cal.next_time());
        }
        loop {
            let a = heap.pop().map(|e| e.key);
            let b = cal.pop().map(|e| e.key);
            assert_eq!(a, b, "banded drain diverged");
            if a.is_none() {
                break;
            }
        }
        assert!(cal.stats().bucket_hwm > INSERT_MOVE_CAP as u64);
    }

    /// `Call` closures round-trip through the facade slab: popped events
    /// carry the original closure, slots are recycled across push/pop
    /// cycles, and dropping the queue releases unfired captures.
    #[test]
    fn call_slab_recycles_slots_and_releases_unfired() {
        use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU32::new(0));
        struct Bump(Arc<AtomicU32>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, AtomicOrdering::SeqCst);
            }
        }
        for mut q in both() {
            counter.store(0, AtomicOrdering::SeqCst);
            for i in 0..8u64 {
                let b = Bump(counter.clone());
                q.push(EventRec {
                    key: ev(i, 0, 0, i).key,
                    action: Action::call(move |_k| {
                        let _ = &b;
                    }),
                });
            }
            assert_eq!(q.calls.slots.len(), 8);
            for _ in 0..8 {
                let rec = q.pop().unwrap();
                assert!(matches!(rec.action, Action::Call(_)));
                drop(rec); // unfired: must release the capture
            }
            assert_eq!(counter.load(AtomicOrdering::SeqCst), 8);
            // All slots are free again: new calls reuse them.
            for i in 0..8u64 {
                let b = Bump(counter.clone());
                q.push(EventRec {
                    key: ev(100 + i, 0, 0, 100 + i).key,
                    action: Action::call(move |_k| {
                        let _ = &b;
                    }),
                });
            }
            assert_eq!(q.calls.slots.len(), 8, "slots must be recycled");
            drop(q);
            assert_eq!(
                counter.load(AtomicOrdering::SeqCst),
                16,
                "queue drop must release unfired captures"
            );
        }
    }

    /// The resident record must stay at 40 bytes (24-byte key + 16-byte
    /// action word): the 2²⁷-VP memory budget is sized to it.
    #[test]
    fn compact_rec_is_40_bytes() {
        assert_eq!(std::mem::size_of::<CompactRec>(), 40);
    }
}
