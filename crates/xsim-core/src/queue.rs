//! The pending-event queue.
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * **Calendar** (default): an O(1)-amortized calendar/ladder queue
//!   over flat, recycled `Vec` buckets — the data-oriented hot core.
//!   Pending events live in a ring of `nb` buckets, each covering one
//!   `2^shift`-nanosecond slice of virtual time; events beyond the
//!   ring's horizon wait in an overflow lane that is redistributed when
//!   the ring drains. Buckets are sorted lazily (only when popped from
//!   and only after new pushes dirtied them), and bucket/overflow
//!   buffers keep their capacity across the run, so steady-state
//!   push/pop performs zero allocations.
//! * **Heap**: the original `BinaryHeap` implementation, kept as the
//!   determinism oracle. Select it with `XSIM_ENGINE_QUEUE=heap` (the
//!   default is `calendar`; any other value falls back to the default).
//!
//! Both pop the *current minimum* [`EventKey`]; since keys are globally
//! unique, the two implementations produce byte-identical pop sequences
//! for any push/pop interleaving — pinned by the oracle proptest in
//! `tests/prop.rs` and the seeded differential test below.
//!
//! ## Tie-breaking audit
//!
//! Same-timestamp events are totally ordered by the remaining key
//! fields, compared lexicographically: `(time, dst, src, seq)` —
//! destination rank first, then source rank, then the source's
//! per-rank sequence number. The `seq` counter advances only on the
//! source rank's *owning* shard (event attribution), so the full key is
//! globally unique and its order is a property of the simulation alone,
//! never of sharding: no shard count, worker count, exchange batching
//! or heap insertion order can reorder ties. Neither `BinaryHeap` nor
//! the calendar buckets are insertion-order stable — determinism comes
//! entirely from key uniqueness, which `queue_order_is_push_order_independent`
//! below and the colliding-timestamp regression tests in
//! `tests/engine.rs` pin down.

use crate::event::{EventKey, EventRec};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which pending-event-queue implementation a kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueImpl {
    /// Calendar/ladder queue over flat buckets (the default).
    #[default]
    Calendar,
    /// `BinaryHeap` oracle (`XSIM_ENGINE_QUEUE=heap`).
    Heap,
}

impl QueueImpl {
    /// The implementation selected by `XSIM_ENGINE_QUEUE`, defaulting
    /// to the calendar queue. Read per call: tests flip the variable
    /// between runs, and a kernel constructs its queue exactly once.
    pub fn from_env() -> Self {
        match std::env::var("XSIM_ENGINE_QUEUE").as_deref() {
            Ok("heap") => QueueImpl::Heap,
            _ => QueueImpl::Calendar,
        }
    }
}

/// Allocation/occupancy counters of one queue, folded into the engine
/// profile at shutdown. Execution-shape data, never part of determinism
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Total events pushed.
    pub pushes: u64,
    /// Pushes served from already-reserved bucket capacity (no
    /// allocation). `reused / pushes` is the pool reuse ratio.
    pub reused: u64,
    /// High-water mark of events resident in a single calendar bucket.
    pub bucket_hwm: u64,
}

// ---------------------------------------------------------------------
// Heap implementation (oracle)
// ---------------------------------------------------------------------

struct HeapEntry(EventRec);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key first.
        other.0.key.cmp(&self.0.key)
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<HeapEntry>,
    stats: QueueStats,
}

impl HeapQueue {
    #[inline]
    fn push(&mut self, ev: EventRec) {
        self.stats.pushes += 1;
        if self.heap.len() < self.heap.capacity() {
            self.stats.reused += 1;
        }
        self.heap.push(HeapEntry(ev));
    }

    #[inline]
    fn pop(&mut self) -> Option<EventRec> {
        self.heap.pop().map(|e| e.0)
    }

    #[inline]
    fn next_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.0.key)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------
// Calendar implementation
// ---------------------------------------------------------------------

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: usize = 256;
/// Initial bucket width: 2^10 ns ≈ 1 µs of virtual time per slice.
const INITIAL_SHIFT: u32 = 10;
/// Grow the ring when resident events exceed `buckets * GROW_LOAD`.
const GROW_LOAD: usize = 4;
/// Hard cap on the ring size (2^20 buckets ≈ 8 MiB of headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Re-fit the bucket width when a dirty bucket about to be sorted
/// holds more events than this. Dense clusters otherwise degenerate:
/// every push into the pop bucket re-dirties it and each pop pays a
/// near-full re-sort.
const SPLIT_OCCUPANCY: usize = 64;

struct CalendarQueue {
    /// Ring of buckets; bucket `i` holds events whose time slice `s`
    /// (`s = time >> shift`) satisfies `s % nb == i` and lies inside the
    /// current window `[cur_slice, cur_slice + nb)`.
    ring: Vec<Vec<EventRec>>,
    /// Per-bucket lazy-sort flag: set on push, cleared after the bucket
    /// is sorted (descending by key, so `Vec::pop` yields the minimum).
    dirty: Vec<bool>,
    /// `log2` of the bucket width in nanoseconds.
    shift: u32,
    /// Lowest time slice the ring currently represents. Monotonically
    /// non-decreasing; pops only advance it past empty buckets, so
    /// every resident event's slice is `>= cur_slice`.
    cur_slice: u64,
    /// Events beyond the ring horizon at push time, redistributed (and
    /// the geometry re-fitted) whenever the ring drains.
    overflow: Vec<EventRec>,
    /// Time (ns) of the earliest overflow event; `u64::MAX` when the
    /// lane is empty. Ring pushes are gated strictly below this bound.
    /// Without it the sliding window is unsound: an event parked in
    /// overflow (beyond the horizon *at its push time*) falls inside the
    /// window as `cur_slice` advances, and a later push may then land in
    /// the ring at a later time yet pop first.
    overflow_min_ns: u64,
    /// Events resident in the ring.
    ring_len: usize,
    /// Total events (ring + overflow).
    len: usize,
    /// Allocation/occupancy counters.
    stats: QueueStats,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue::with_geometry(INITIAL_BUCKETS, INITIAL_SHIFT, 0)
    }

    fn with_geometry(nb: usize, shift: u32, cur_slice: u64) -> Self {
        debug_assert!(nb.is_power_of_two());
        CalendarQueue {
            ring: (0..nb).map(|_| Vec::new()).collect(),
            dirty: vec![false; nb],
            shift,
            cur_slice,
            overflow: Vec::new(),
            overflow_min_ns: u64::MAX,
            ring_len: 0,
            len: 0,
            stats: QueueStats::default(),
        }
    }

    #[inline]
    fn slice_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.shift
    }

    #[inline]
    fn push(&mut self, ev: EventRec) {
        self.stats.pushes += 1;
        self.len += 1;
        // Clamp below-window pushes into the current bucket: its full-key
        // sort still pops them first, preserving pop-min semantics. (The
        // engines never schedule into the popped past, but the queue must
        // not corrupt its geometry if a layer above ever does.)
        let ns = ev.key.time.as_nanos();
        let s = self.slice_of(ev.key.time).max(self.cur_slice);
        let nb = self.ring.len();
        // Ring placement requires being strictly earlier than everything
        // in the overflow lane (ties included), so the ring minimum is
        // always the global minimum — see `overflow_min_ns`.
        if s < self.cur_slice + nb as u64 && ns < self.overflow_min_ns {
            let b = (s & (nb as u64 - 1)) as usize;
            let bucket = &mut self.ring[b];
            if bucket.len() < bucket.capacity() {
                self.stats.reused += 1;
            }
            bucket.push(ev);
            self.dirty[b] = true;
            self.stats.bucket_hwm = self.stats.bucket_hwm.max(bucket.len() as u64);
            self.ring_len += 1;
            if self.ring_len > nb * GROW_LOAD && nb < MAX_BUCKETS {
                self.grow();
            }
        } else {
            if self.overflow.len() < self.overflow.capacity() {
                self.stats.reused += 1;
            }
            self.overflow_min_ns = self.overflow_min_ns.min(ns);
            self.overflow.push(ev);
        }
    }

    /// Double the ring and redistribute resident events. Amortized O(1)
    /// per push; bucket buffers are recycled into the larger ring.
    fn grow(&mut self) {
        let nb = (self.ring.len() * 2).min(MAX_BUCKETS);
        self.rebuild(nb, self.shift);
    }

    /// Re-fit the ring to `nb` buckets of width `2^shift` and re-insert
    /// every resident event. Reuses the old buffers where possible.
    fn rebuild(&mut self, nb: usize, shift: u32) {
        let mut events: Vec<EventRec> = Vec::with_capacity(self.ring_len + self.overflow.len());
        for b in &mut self.ring {
            events.append(b);
        }
        events.append(&mut self.overflow);
        self.overflow_min_ns = u64::MAX;
        // Anchor the window at the resident minimum. Nothing below it is
        // pending, and a later push below the window start is clamped
        // into the current bucket by `push` (the full-key bucket sort
        // still pops it first), so this floor can never reorder pops.
        // Anchoring anywhere earlier is the trap: after a split narrows
        // the slices, a floor carried over from the old geometry can sit
        // more than `nb` new slices below the minimum, spilling the
        // entire ring into overflow and ping-ponging with the widening
        // re-fit in `migrate_overflow`.
        let min_slice = events
            .iter()
            .map(|e| e.key.time.as_nanos() >> shift)
            .min()
            .unwrap_or(0);
        self.shift = shift;
        self.cur_slice = min_slice;
        if self.ring.len() != nb {
            self.ring.resize_with(nb, Vec::new);
            self.dirty.resize(nb, false);
        }
        self.ring_len = 0;
        let prev_pushes = self.stats.pushes;
        let prev_reused = self.stats.reused;
        let prev_len = self.len;
        self.len = 0;
        for ev in events {
            self.push(ev);
        }
        // Redistribution is internal bookkeeping, not new traffic.
        self.stats.pushes = prev_pushes;
        self.stats.reused = prev_reused;
        self.len = prev_len;
    }

    /// Position `cur_slice` at the bucket holding the minimum key and
    /// sort it if dirty. Returns the bucket index, or `None` when empty.
    fn settle(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // The outer loop re-settles after a split re-fits the geometry;
        // `shift` strictly decreases across splits, bounding it.
        loop {
            if self.ring_len == 0 {
                self.migrate_overflow();
            }
            let nb = self.ring.len() as u64;
            let mut s = self.cur_slice;
            let b = loop {
                let b = (s & (nb - 1)) as usize;
                if !self.ring[b].is_empty() {
                    break b;
                }
                s += 1;
                debug_assert!(
                    s < self.cur_slice + nb,
                    "ring_len > 0 but no non-empty bucket in the window"
                );
            };
            self.cur_slice = s;
            if self.dirty[b] {
                if self.try_split(b) {
                    continue;
                }
                // Descending by key: `Vec::pop` then yields the minimum.
                // Keys are unique, so unstable sorting is deterministic.
                self.ring[b].sort_unstable_by_key(|x| std::cmp::Reverse(x.key));
                self.dirty[b] = false;
            }
            return Some(b);
        }
    }

    /// A dirty bucket about to be sorted is oversized: narrow the bucket
    /// width so the cluster spreads across many slices, restoring O(1)
    /// amortized pops under skewed time distributions. Returns whether
    /// the geometry changed (the caller must re-settle). Identical-time
    /// floods (span 0) cannot be split and simply sort.
    fn try_split(&mut self, b: usize) -> bool {
        let bucket = &self.ring[b];
        if bucket.len() <= SPLIT_OCCUPANCY || self.shift == 0 {
            return false;
        }
        let mut min_ns = u64::MAX;
        let mut max_ns = 0u64;
        for e in bucket {
            let ns = e.key.time.as_nanos();
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        let span = max_ns - min_ns;
        if span == 0 {
            return false;
        }
        // Aim for ~4 events per slice at the new width.
        let target = (bucket.len() / 4).max(1) as u64;
        let mut shift = self.shift;
        while shift > 0 && (span >> shift) < target {
            shift -= 1;
        }
        if shift == self.shift {
            return false;
        }
        let nb = self.ring.len();
        self.rebuild(nb, shift);
        true
    }

    /// The ring is empty: jump the window to the earliest overflow event
    /// and redistribute. Re-fits the bucket width when the overflow span
    /// dwarfs the window, so sparse far-future schedules don't thrash.
    fn migrate_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty());
        let mut min_ns = u64::MAX;
        let mut max_ns = 0u64;
        for e in &self.overflow {
            let ns = e.key.time.as_nanos();
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        let nb = self.ring.len() as u64;
        let span = max_ns - min_ns;
        let mut shift = self.shift;
        // Aim for the whole overflow span inside half the window: the
        // next migration then only happens after real progress.
        while shift < 63 && (span >> shift) >= nb / 2 {
            shift += 1;
        }
        if shift != self.shift {
            self.rebuild(self.ring.len(), shift);
            return;
        }
        self.cur_slice = min_ns >> self.shift;
        let horizon = self.cur_slice + nb;
        let mut keep = Vec::with_capacity(self.overflow.len());
        // Slice-vs-horizon routing keeps the ring/overflow time order:
        // every ring time is below `horizon << shift`, every kept time at
        // or above it. Re-derive the gating bound from the kept set.
        self.overflow_min_ns = u64::MAX;
        for ev in self.overflow.drain(..) {
            let ns = ev.key.time.as_nanos();
            let s = ns >> self.shift;
            if s < horizon {
                let b = (s & (nb - 1)) as usize;
                self.ring[b].push(ev);
                self.dirty[b] = true;
                self.ring_len += 1;
            } else {
                self.overflow_min_ns = self.overflow_min_ns.min(ns);
                keep.push(ev);
            }
        }
        // Swap back so the overflow lane keeps (the larger of) its
        // capacity across migrations.
        std::mem::swap(&mut self.overflow, &mut keep);
        if self.overflow.capacity() < keep.capacity() {
            let mut bigger = keep;
            bigger.clear();
            bigger.append(&mut self.overflow);
            self.overflow = bigger;
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<EventRec> {
        let b = self.settle()?;
        let ev = self.ring[b].pop();
        debug_assert!(ev.is_some());
        self.ring_len -= 1;
        self.len -= 1;
        ev
    }

    #[inline]
    fn next_key(&mut self) -> Option<EventKey> {
        let b = self.settle()?;
        self.ring[b].last().map(|e| e.key)
    }
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

enum Inner {
    Heap(HeapQueue),
    Calendar(Box<CalendarQueue>),
}

/// Min-queue of pending events with deterministic tie-breaking.
pub struct EventQueue {
    inner: Inner,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue using the `XSIM_ENGINE_QUEUE`-selected
    /// implementation (calendar by default).
    pub fn new() -> Self {
        EventQueue::with_impl(QueueImpl::from_env())
    }

    /// An empty queue with an explicit implementation.
    pub fn with_impl(imp: QueueImpl) -> Self {
        EventQueue {
            inner: match imp {
                QueueImpl::Heap => Inner::Heap(HeapQueue::default()),
                QueueImpl::Calendar => Inner::Calendar(Box::new(CalendarQueue::new())),
            },
        }
    }

    /// An empty `BinaryHeap`-backed queue (the determinism oracle).
    pub fn heap() -> Self {
        EventQueue::with_impl(QueueImpl::Heap)
    }

    /// An empty calendar queue.
    pub fn calendar() -> Self {
        EventQueue::with_impl(QueueImpl::Calendar)
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = EventQueue::new();
        if let Inner::Heap(h) = &mut q.inner {
            h.heap.reserve(cap);
        }
        q
    }

    /// Which implementation this queue runs.
    pub fn impl_kind(&self) -> QueueImpl {
        match &self.inner {
            Inner::Heap(_) => QueueImpl::Heap,
            Inner::Calendar(_) => QueueImpl::Calendar,
        }
    }

    /// Allocation/occupancy counters (see [`QueueStats`]).
    pub fn stats(&self) -> QueueStats {
        match &self.inner {
            Inner::Heap(h) => h.stats,
            Inner::Calendar(c) => c.stats,
        }
    }

    /// Insert an event.
    #[inline]
    pub fn push(&mut self, ev: EventRec) {
        match &mut self.inner {
            Inner::Heap(h) => h.push(ev),
            Inner::Calendar(c) => c.push(ev),
        }
    }

    /// Remove and return the earliest event (smallest key).
    #[inline]
    pub fn pop(&mut self) -> Option<EventRec> {
        match &mut self.inner {
            Inner::Heap(h) => h.pop(),
            Inner::Calendar(c) => c.pop(),
        }
    }

    /// Remove the earliest event only if it fires strictly before `bound`.
    /// This is the primitive the windowed parallel engine drains with.
    #[inline]
    pub fn pop_before(&mut self, bound: SimTime) -> Option<EventRec> {
        if self.next_time()? < bound {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event, if any.
    #[inline]
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.next_key().map(|k| k.time)
    }

    /// Key of the earliest pending event, if any.
    #[inline]
    pub fn next_key(&mut self) -> Option<EventKey> {
        match &mut self.inner {
            Inner::Heap(h) => h.next_key(),
            Inner::Calendar(c) => c.next_key(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Calendar(c) => c.len,
        }
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Action;
    use crate::rank::Rank;

    fn ev(t: u64, dst: u32, src: u32, seq: u64) -> EventRec {
        EventRec {
            key: EventKey {
                time: SimTime(t),
                dst: Rank(dst),
                src: Rank(src),
                seq,
            },
            action: Action::Spawn,
        }
    }

    fn both() -> [EventQueue; 2] {
        [EventQueue::heap(), EventQueue::calendar()]
    }

    #[test]
    fn pops_in_key_order() {
        for mut q in both() {
            q.push(ev(5, 0, 0, 0));
            q.push(ev(1, 2, 0, 1));
            q.push(ev(1, 1, 0, 2));
            q.push(ev(1, 1, 0, 0));
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
            assert_eq!(order[0].seq, 0);
            assert_eq!(order[0].dst, Rank(1));
            assert_eq!(order[1].seq, 2);
            assert_eq!(order[2].dst, Rank(2));
            assert_eq!(order[3].time, SimTime(5));
        }
    }

    #[test]
    fn pop_before_respects_bound() {
        for mut q in both() {
            q.push(ev(10, 0, 0, 0));
            q.push(ev(3, 0, 0, 1));
            assert_eq!(q.pop_before(SimTime(5)).unwrap().key.time, SimTime(3));
            assert!(q.pop_before(SimTime(5)).is_none());
            assert!(q.pop_before(SimTime(10)).is_none(), "bound is exclusive");
            assert_eq!(q.pop_before(SimTime(11)).unwrap().key.time, SimTime(10));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn colliding_timestamps_order_by_dst_src_seq() {
        // All four events collide at t=9; the pop order must be the
        // lexicographic (dst, src, seq) order regardless of push order.
        for mut q in both() {
            q.push(ev(9, 1, 0, 4));
            q.push(ev(9, 0, 1, 7));
            q.push(ev(9, 0, 0, 2));
            q.push(ev(9, 1, 0, 3));
            let order: Vec<_> = std::iter::from_fn(|| q.pop())
                .map(|e| (e.key.dst.0, e.key.src.0, e.key.seq))
                .collect();
            assert_eq!(order, vec![(0, 0, 2), (0, 1, 7), (1, 0, 3), (1, 0, 4)]);
        }
    }

    #[test]
    fn queue_order_is_push_order_independent() {
        // Exchange batching changes insertion order between engines;
        // the pop sequence must not. Try several permutations of the
        // same colliding-key set, on both implementations.
        let evs = [
            ev(5, 0, 0, 1),
            ev(5, 0, 2, 1),
            ev(5, 1, 0, 2),
            ev(3, 2, 1, 9),
            ev(5, 0, 0, 3),
        ];
        for make in [EventQueue::heap, EventQueue::calendar] {
            let reference: Vec<EventKey> = {
                let mut q = make();
                for e in &evs {
                    q.push(clone_ev(e));
                }
                std::iter::from_fn(|| q.pop()).map(|e| e.key).collect()
            };
            let perms: [[usize; 5]; 3] = [[4, 3, 2, 1, 0], [1, 3, 0, 4, 2], [2, 0, 4, 1, 3]];
            for p in &perms {
                let mut q = make();
                for &i in p {
                    q.push(clone_ev(&evs[i]));
                }
                let got: Vec<EventKey> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
                assert_eq!(got, reference, "permutation {p:?} reordered ties");
            }
        }
    }

    fn clone_ev(e: &EventRec) -> EventRec {
        EventRec {
            key: e.key,
            action: Action::Spawn,
        }
    }

    #[test]
    fn next_time_tracks_min() {
        for mut q in both() {
            assert_eq!(q.next_time(), None);
            q.push(ev(7, 0, 0, 0));
            q.push(ev(2, 0, 0, 1));
            assert_eq!(q.next_time(), Some(SimTime(2)));
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn env_selects_implementation() {
        std::env::set_var("XSIM_ENGINE_QUEUE", "heap");
        assert_eq!(EventQueue::new().impl_kind(), QueueImpl::Heap);
        std::env::set_var("XSIM_ENGINE_QUEUE", "calendar");
        assert_eq!(EventQueue::new().impl_kind(), QueueImpl::Calendar);
        std::env::remove_var("XSIM_ENGINE_QUEUE");
        assert_eq!(EventQueue::new().impl_kind(), QueueImpl::Calendar);
    }

    /// Seeded randomized differential test: interleaved push/pop (with
    /// heavy timestamp collisions and far-future outliers that force
    /// overflow migrations, ring growth, and occupancy splits) pops
    /// byte-identically on both implementations. Runs in stub mode,
    /// unlike the proptest twin in `tests/prop.rs`.
    #[test]
    fn calendar_matches_heap_oracle_seeded() {
        for seed in [
            0x9e3779b97f4a7c15u64,
            0xdeadbeefcafef00d,
            0x0123456789abcdef,
            0x2545f4914f6cdd1d,
        ] {
            differential_churn(seed, 5_000);
        }
    }

    fn differential_churn(seed: u64, ops: usize) {
        // Deterministic xorshift so the test needs no external RNG.
        let mut state = seed;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::calendar();
        let mut seq = 0u64;
        let mut virt_now = 0u64;
        for _ in 0..ops {
            let r = rng();
            if r % 100 < 60 {
                // Push: mostly near-future, some colliding, some far.
                let dt = match r % 10 {
                    0..=5 => r % 2_000,            // dense near-future
                    6..=7 => 0,                    // exact-time collision
                    8 => (r >> 8) % 1_000_000,     // mid-range
                    _ => (r >> 8) % 4_000_000_000, // far overflow
                };
                seq += 1;
                let e = EventKey {
                    time: SimTime(virt_now + dt),
                    dst: Rank((r >> 32) as u32 % 64),
                    src: Rank((r >> 40) as u32 % 64),
                    seq,
                };
                heap.push(EventRec {
                    key: e,
                    action: Action::Spawn,
                });
                cal.push(EventRec {
                    key: e,
                    action: Action::Spawn,
                });
            } else {
                let a = heap.pop().map(|e| e.key);
                let b = cal.pop().map(|e| e.key);
                assert_eq!(a, b, "pop diverged (seed {seed:#x})");
                if let Some(k) = a {
                    virt_now = k.time.as_nanos();
                }
                assert_eq!(heap.next_time(), cal.next_time());
            }
            assert_eq!(heap.len(), cal.len());
        }
        loop {
            let a = heap.pop().map(|e| e.key);
            let b = cal.pop().map(|e| e.key);
            assert_eq!(a, b, "drain diverged (seed {seed:#x})");
            if a.is_none() {
                break;
            }
        }
        let s = cal.stats();
        assert!(s.pushes > 0 && s.bucket_hwm > 0);
        assert!(s.reused > 0, "steady state must reuse bucket capacity");
    }

    /// A dense same-slice cluster (thousands of events within one
    /// initial 1 µs bucket) must trigger the occupancy split and still
    /// pop byte-identically, including under hold-model churn that
    /// keeps landing in the pop bucket plus a far-future tail that
    /// exercises the overflow gating against the narrowed window.
    #[test]
    fn dense_cluster_splits_and_matches_heap() {
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::calendar();
        let push = |h: &mut EventQueue, c: &mut EventQueue, t: u64, seq: u64| {
            let e = ev(t, (seq % 7) as u32, (seq % 5) as u32, seq);
            h.push(clone_ev(&e));
            c.push(e);
        };
        let mut seq = 0;
        // 4000 events inside [0, 1024) ns: one initial calendar slice.
        for i in 0..4_000u64 {
            push(&mut heap, &mut cal, (i * 37) % 1_024, seq);
            seq += 1;
        }
        // A far tail that must stay behind the cluster in overflow.
        for i in 0..50u64 {
            push(&mut heap, &mut cal, 3_000_000_000 + i * 11, seq);
            seq += 1;
        }
        // Hold-model churn: pop the min, push a successor just ahead —
        // repeatedly re-dirtying the pop bucket.
        let mut state = 0xabcdef12345678u64;
        for _ in 0..6_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let a = heap.pop().map(|e| e.key);
            let b = cal.pop().map(|e| e.key);
            assert_eq!(a, b, "cluster pop diverged");
            let t = a.unwrap().time.as_nanos() + 1 + state % 64;
            push(&mut heap, &mut cal, t, seq);
            seq += 1;
        }
        loop {
            let a = heap.pop().map(|e| e.key);
            let b = cal.pop().map(|e| e.key);
            assert_eq!(a, b, "cluster drain diverged");
            if a.is_none() {
                break;
            }
        }
        // Sanity-check the trigger precondition: the cluster really did
        // stack one bucket far above the split threshold.
        assert!(cal.stats().bucket_hwm > SPLIT_OCCUPANCY as u64);
    }
}
