//! The pending-event queue.
//!
//! A thin wrapper over `BinaryHeap` that (a) pops events in ascending
//! [`EventKey`] order and (b) exposes the next
//! event time, which the conservative parallel engine needs to compute the
//! global lower bound on timestamps (LBTS).
//!
//! ## Tie-breaking audit
//!
//! Same-timestamp events are totally ordered by the remaining key
//! fields, compared lexicographically: `(time, dst, src, seq)` —
//! destination rank first, then source rank, then the source's
//! per-rank sequence number. The `seq` counter advances only on the
//! source rank's *owning* shard (event attribution), so the full key is
//! globally unique and its order is a property of the simulation alone,
//! never of sharding: no shard count, worker count, exchange batching
//! or heap insertion order can reorder ties. `BinaryHeap` itself is
//! not insertion-order stable — determinism comes entirely from key
//! uniqueness, which `queue_order_is_push_order_independent` below and
//! the colliding-timestamp regression tests in `tests/engine.rs`
//! pin down.

use crate::event::{EventKey, EventRec};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapEntry(EventRec);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key first.
        other.0.key.cmp(&self.0.key)
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-queue of pending events with deterministic tie-breaking.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    /// Insert an event.
    #[inline]
    pub fn push(&mut self, ev: EventRec) {
        self.heap.push(HeapEntry(ev));
    }

    /// Remove and return the earliest event (smallest key).
    #[inline]
    pub fn pop(&mut self) -> Option<EventRec> {
        self.heap.pop().map(|e| e.0)
    }

    /// Remove the earliest event only if it fires strictly before `bound`.
    /// This is the primitive the windowed parallel engine drains with.
    #[inline]
    pub fn pop_before(&mut self, bound: SimTime) -> Option<EventRec> {
        if self.next_time()? < bound {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event, if any.
    #[inline]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.key.time)
    }

    /// Key of the earliest pending event, if any.
    #[inline]
    pub fn next_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.0.key)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Action;
    use crate::rank::Rank;

    fn ev(t: u64, dst: u32, src: u32, seq: u64) -> EventRec {
        EventRec {
            key: EventKey {
                time: SimTime(t),
                dst: Rank(dst),
                src: Rank(src),
                seq,
            },
            action: Action::Spawn,
        }
    }

    #[test]
    fn pops_in_key_order() {
        let mut q = EventQueue::new();
        q.push(ev(5, 0, 0, 0));
        q.push(ev(1, 2, 0, 1));
        q.push(ev(1, 1, 0, 2));
        q.push(ev(1, 1, 0, 0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        assert_eq!(order[0].seq, 0);
        assert_eq!(order[0].dst, Rank(1));
        assert_eq!(order[1].seq, 2);
        assert_eq!(order[2].dst, Rank(2));
        assert_eq!(order[3].time, SimTime(5));
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = EventQueue::new();
        q.push(ev(10, 0, 0, 0));
        q.push(ev(3, 0, 0, 1));
        assert_eq!(q.pop_before(SimTime(5)).unwrap().key.time, SimTime(3));
        assert!(q.pop_before(SimTime(5)).is_none());
        assert!(q.pop_before(SimTime(10)).is_none(), "bound is exclusive");
        assert_eq!(q.pop_before(SimTime(11)).unwrap().key.time, SimTime(10));
        assert!(q.is_empty());
    }

    #[test]
    fn colliding_timestamps_order_by_dst_src_seq() {
        // All four events collide at t=9; the pop order must be the
        // lexicographic (dst, src, seq) order regardless of push order.
        let mut q = EventQueue::new();
        q.push(ev(9, 1, 0, 4));
        q.push(ev(9, 0, 1, 7));
        q.push(ev(9, 0, 0, 2));
        q.push(ev(9, 1, 0, 3));
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.key.dst.0, e.key.src.0, e.key.seq))
            .collect();
        assert_eq!(order, vec![(0, 0, 2), (0, 1, 7), (1, 0, 3), (1, 0, 4)]);
    }

    #[test]
    fn queue_order_is_push_order_independent() {
        // Exchange batching changes insertion order between engines;
        // the pop sequence must not. Try several permutations of the
        // same colliding-key set.
        let evs = [
            ev(5, 0, 0, 1),
            ev(5, 0, 2, 1),
            ev(5, 1, 0, 2),
            ev(3, 2, 1, 9),
            ev(5, 0, 0, 3),
        ];
        let reference: Vec<EventKey> = {
            let mut q = EventQueue::new();
            for e in &evs {
                q.push(clone_ev(e));
            }
            std::iter::from_fn(|| q.pop()).map(|e| e.key).collect()
        };
        let perms: [[usize; 5]; 3] = [[4, 3, 2, 1, 0], [1, 3, 0, 4, 2], [2, 0, 4, 1, 3]];
        for p in &perms {
            let mut q = EventQueue::new();
            for &i in p {
                q.push(clone_ev(&evs[i]));
            }
            let got: Vec<EventKey> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
            assert_eq!(got, reference, "permutation {p:?} reordered ties");
        }
    }

    fn clone_ev(e: &EventRec) -> EventRec {
        EventRec {
            key: e.key,
            action: Action::Spawn,
        }
    }

    #[test]
    fn next_time_tracks_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(ev(7, 0, 0, 0));
        q.push(ev(2, 0, 0, 1));
        assert_eq!(q.next_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 2);
    }
}
