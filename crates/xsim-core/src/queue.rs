//! The pending-event queue.
//!
//! A thin wrapper over `BinaryHeap` that (a) pops events in ascending
//! [`EventKey`] order and (b) exposes the next
//! event time, which the conservative parallel engine needs to compute the
//! global lower bound on timestamps (LBTS).

use crate::event::{EventKey, EventRec};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapEntry(EventRec);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key first.
        other.0.key.cmp(&self.0.key)
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-queue of pending events with deterministic tie-breaking.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    /// Insert an event.
    #[inline]
    pub fn push(&mut self, ev: EventRec) {
        self.heap.push(HeapEntry(ev));
    }

    /// Remove and return the earliest event (smallest key).
    #[inline]
    pub fn pop(&mut self) -> Option<EventRec> {
        self.heap.pop().map(|e| e.0)
    }

    /// Remove the earliest event only if it fires strictly before `bound`.
    /// This is the primitive the windowed parallel engine drains with.
    #[inline]
    pub fn pop_before(&mut self, bound: SimTime) -> Option<EventRec> {
        if self.next_time()? < bound {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event, if any.
    #[inline]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.key.time)
    }

    /// Key of the earliest pending event, if any.
    #[inline]
    pub fn next_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.0.key)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Action;
    use crate::rank::Rank;

    fn ev(t: u64, dst: u32, src: u32, seq: u64) -> EventRec {
        EventRec {
            key: EventKey {
                time: SimTime(t),
                dst: Rank(dst),
                src: Rank(src),
                seq,
            },
            action: Action::Spawn,
        }
    }

    #[test]
    fn pops_in_key_order() {
        let mut q = EventQueue::new();
        q.push(ev(5, 0, 0, 0));
        q.push(ev(1, 2, 0, 1));
        q.push(ev(1, 1, 0, 2));
        q.push(ev(1, 1, 0, 0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        assert_eq!(order[0].seq, 0);
        assert_eq!(order[0].dst, Rank(1));
        assert_eq!(order[1].seq, 2);
        assert_eq!(order[2].dst, Rank(2));
        assert_eq!(order[3].time, SimTime(5));
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = EventQueue::new();
        q.push(ev(10, 0, 0, 0));
        q.push(ev(3, 0, 0, 1));
        assert_eq!(q.pop_before(SimTime(5)).unwrap().key.time, SimTime(3));
        assert!(q.pop_before(SimTime(5)).is_none());
        assert!(q.pop_before(SimTime(10)).is_none(), "bound is exclusive");
        assert_eq!(q.pop_before(SimTime(11)).unwrap().key.time, SimTime(10));
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_tracks_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(ev(7, 0, 0, 0));
        q.push(ev(2, 0, 0, 1));
        assert_eq!(q.next_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 2);
    }
}
