//! Simulated process (virtual process) identifiers.

use std::fmt;

/// Identifier of a virtual process — a simulated MPI rank in
/// `MPI_COMM_WORLD` terms.
///
/// xSim scales to 2^27 ranks (paper §II-A); `u32` comfortably covers that
/// while keeping event records small.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub u32);

impl Rank {
    /// Construct from a `usize` index, panicking on overflow (rank counts
    /// beyond u32 are not supported).
    #[inline]
    pub fn new(r: usize) -> Self {
        debug_assert!(r <= u32::MAX as usize, "rank out of range");
        Rank(r as u32)
    }

    /// The rank as a `usize` index.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(r: u32) -> Self {
        Rank(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(Rank::new(17).idx(), 17);
        assert_eq!(Rank::from(4u32), Rank(4));
        assert_eq!(format!("{}", Rank(9)), "9");
        assert_eq!(format!("{:?}", Rank(9)), "r9");
    }
}
