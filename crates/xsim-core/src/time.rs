//! Virtual simulation time.
//!
//! xSim maintains a separate virtual clock per simulated MPI process
//! (paper §IV-A). We represent virtual time as unsigned nanoseconds, which
//! gives a deterministic total order (no floating-point accumulation error)
//! and a range of ~584 years — far beyond the multi-hour horizons of the
//! paper's experiments.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) on the virtual time axis, in nanoseconds.
///
/// `SimTime` is used both for absolute timestamps and durations; the
/// arithmetic is saturating on overflow so pathological model parameters
/// degrade gracefully instead of wrapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero timestamp (simulation start, unless continued from a
    /// previous run — see the checkpoint/restart layer).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time, used as an "infinity" sentinel by
    /// the engines when computing the next event window.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds. Negative and non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to
    /// [`SimTime::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            // NaN and non-positive inputs clamp to zero.
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds (lossy above 2^53 ns, i.e. ~104 days;
    /// fine for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Scale a duration by a dimensionless factor, rounding to nearest
    /// nanosecond and saturating. Used by the processor model to apply
    /// slowdown factors.
    pub fn scale(self, factor: f64) -> SimTime {
        if !factor.is_finite() || factor <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = self.0 as f64 * factor;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Honor width/alignment flags (used by table harnesses).
        f.pad(&format!("{:.6} s", self.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_nanos(3).as_nanos(), 3);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimTime::from_secs(5) - SimTime::from_secs(2),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn scale_rounds_and_clamps() {
        assert_eq!(
            SimTime::from_secs(1).scale(1000.0),
            SimTime::from_secs(1000)
        );
        assert_eq!(SimTime::from_secs(1).scale(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(1).scale(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::MAX.scale(2.0), SimTime::MAX);
        // Rounding to nearest.
        assert_eq!(SimTime(3).scale(0.5), SimTime(2)); // 1.5 rounds to 2
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000 s");
    }
}
