//! Property-based tests for the checkpoint modes: the incremental diff
//! chain always restores to the exact bytes of a fresh full checkpoint,
//! and buddy memory copies / partnerless spills are lossless.

use bytes::Bytes;
use proptest::prelude::*;
use xsim_ckpt::{
    apply_diff, block_diff, encode_diff, resolve_latest, Checkpoint, CheckpointManager,
};
use xsim_fs::FsStore;
use xsim_mpi::CkptMode;

proptest! {
    /// Pure diff math: `apply(diff(base → cur)) == cur` for any inputs
    /// and any block size.
    #[test]
    fn diff_round_trips(
        base in proptest::collection::vec(any::<u8>(), 0..2048),
        cur in proptest::collection::vec(any::<u8>(), 0..2048),
        block in 1usize..64,
    ) {
        let (idx, data) = block_diff(&base, &cur, block);
        let out = apply_diff(&base, &idx, &data, cur.len(), block);
        prop_assert_eq!(out, cur);
    }

    /// A stored chain (one full checkpoint + a diff per later
    /// generation) restores to exactly the checkpoint a fresh full
    /// write of the final state would produce.
    #[test]
    fn incremental_chain_restores_like_full(
        states in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..1500),
            1..6,
        ),
    ) {
        let store = FsStore::new();
        let mgr = CheckpointManager::new("prop");
        let encs: Vec<Bytes> = states
            .iter()
            .enumerate()
            .map(|(i, payload)| {
                Checkpoint::new(0, (i as u64 + 1) * 10)
                    .with_section("s", Bytes::from(payload.clone()))
                    .encode()
            })
            .collect();
        // Generation 10 is full; every later generation diffs against
        // its predecessor's reconstructed bytes.
        store.put(&mgr.file_name(10, 0), encs[0].clone());
        for i in 1..encs.len() {
            let generation = (i as u64 + 1) * 10;
            let diff = encode_diff(0, generation, i as u64 * 10, &encs[i - 1], &encs[i]);
            store.put(&mgr.file_name(generation, 0), diff.encode());
        }
        let mode = CkptMode::Incremental { full_every: 4 };
        let resolved = resolve_latest(&store, &mgr, mode, 0, 1).expect("chain resolves");
        prop_assert_eq!(resolved.chain_len, encs.len());
        prop_assert_eq!(resolved.generation, encs.len() as u64 * 10);
        let fresh = Checkpoint::decode(&encs[encs.len() - 1]).expect("valid checkpoint");
        prop_assert_eq!(resolved.ckpt, fresh);
    }

    /// Buddy restore is lossless whichever single holder survives, and
    /// the partnerless spill path round-trips through the PFS files.
    #[test]
    fn buddy_copies_and_spills_are_lossless(
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        lose_own in any::<bool>(),
    ) {
        let store = FsStore::new();
        let mgr = CheckpointManager::new("prop");
        let ckpt = Checkpoint::new(0, 7).with_section("s", Bytes::from(payload.clone()));
        let enc = ckpt.encode();
        // Partnered pair (ranks 0/1): rank 0's state lives in both node
        // memories; losing either single copy must not lose the state.
        store.put(&mgr.mem_file_name(7, 0, 0), enc.clone());
        store.put(&mgr.mem_file_name(7, 0, 1), enc.clone());
        store.delete(&mgr.mem_file_name(7, 0, if lose_own { 0 } else { 1 }));
        let r = resolve_latest(&store, &mgr, CkptMode::Buddy, 0, 2).expect("buddy resolves");
        prop_assert_eq!(&r.ckpt, &ckpt);
        // Partnerless rank (2 of 3): the spill file on the PFS.
        let spill = Checkpoint::new(2, 7).with_section("s", Bytes::from(payload));
        store.put(&mgr.file_name(7, 2), spill.encode());
        let r = resolve_latest(&store, &mgr, CkptMode::Buddy, 2, 3).expect("spill resolves");
        prop_assert_eq!(r.ckpt, spill);
    }
}
