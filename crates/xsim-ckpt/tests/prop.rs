//! Property-based tests for the checkpoint codec: round trips always
//! succeed; any truncation or single-bit damage is always detected
//! (paper §V-B's corrupted-checkpoint detection depends on this).

use bytes::Bytes;
use proptest::prelude::*;
use xsim_ckpt::{crc32, Checkpoint};

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(
            (
                "[a-z]{0,12}",
                proptest::collection::vec(any::<u8>(), 0..200),
            ),
            0..6,
        ),
    )
        .prop_map(|(rank, iteration, sections)| {
            let mut c = Checkpoint::new(rank, iteration);
            for (name, data) in sections {
                c = c.with_section(&name, Bytes::from(data));
            }
            c
        })
}

proptest! {
    #[test]
    fn round_trip(c in arb_checkpoint()) {
        let enc = c.encode();
        let d = Checkpoint::decode(&enc).unwrap();
        prop_assert_eq!(d, c);
    }

    #[test]
    fn truncation_always_detected(c in arb_checkpoint(), cut_frac in 0.0f64..1.0) {
        let enc = c.encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < enc.len());
        prop_assert!(Checkpoint::decode(&enc[..cut]).is_err());
    }

    #[test]
    fn bit_damage_always_detected(c in arb_checkpoint(), pos_seed: usize, bit in 0u8..8) {
        let enc = c.encode();
        let mut dmg = enc.to_vec();
        let pos = pos_seed % dmg.len();
        dmg[pos] ^= 1 << bit;
        prop_assert!(
            Checkpoint::decode(&dmg).is_err(),
            "flip at byte {} bit {} went undetected", pos, bit
        );
    }

    #[test]
    fn crc32_detects_any_single_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..256), pos_seed: usize, bit in 0u8..8) {
        let original = crc32(&data);
        let mut dmg = data.clone();
        let pos = pos_seed % dmg.len();
        dmg[pos] ^= 1 << bit;
        prop_assert_ne!(crc32(&dmg), original);
    }

    #[test]
    fn crc32_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(crc32(&data), crc32(&data));
    }
}
