//! Checkpoint naming, writing, loading and cleanup.
//!
//! The application protocol of the paper (§V-B): a checkpoint is written
//! every C iterations; "after writing out a checkpoint, a global barrier
//! synchronizes all processes, such that the previous checkpoint can be
//! deleted safely"; on restart, the application "automatically loads the
//! last checkpoint and automatically deletes any corrupted checkpoint";
//! incomplete checkpoint *sets* (files missing because a rank died
//! before writing) are removed between runs by a cleanup step.

use crate::codec::Checkpoint;
use bytes::Bytes;
use std::sync::Arc;
use xsim_core::{ctx, SimTime};
use xsim_fs::{self as fs, FileState, FsError, FsStore};
use xsim_obs::service as obs;
use xsim_obs::{ids, ObsSpan};

/// Virtual clock of the current VP if metrics are enabled, else `None`.
fn obs_clock() -> Option<SimTime> {
    ctx::with_kernel(|k, rank| obs::enabled(k).then(|| k.vp(rank).clock()))
}

/// Name of the file carrying the virtual exit time across restarts
/// (paper §IV-E: "xSim optionally writes out the simulated time of the
/// application exit … to a file. This file can be read in upon restart").
pub const EXIT_TIME_FILE: &str = "xsim/exit_time";

/// Naming and persistence of one application's checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    /// Job-unique prefix separating this application's checkpoints.
    pub prefix: String,
}

impl CheckpointManager {
    /// Manager for a job prefix (e.g. `"heat"`).
    pub fn new(prefix: &str) -> Self {
        CheckpointManager {
            prefix: prefix.to_string(),
        }
    }

    /// Path prefix of one checkpoint generation.
    pub fn generation_prefix(&self, iteration: u64) -> String {
        format!("{}/ckpt/{iteration:020}/", self.prefix)
    }

    /// Path of one rank's file within a generation.
    pub fn file_name(&self, iteration: u64, rank: u32) -> String {
        format!("{}rank{rank:07}", self.generation_prefix(iteration))
    }

    /// Write this rank's checkpoint (simulated I/O, charged by the FS
    /// cost model). Call from within a VP.
    pub async fn write(&self, ckpt: &Checkpoint) -> Result<(), FsError> {
        let name = self.file_name(ckpt.iteration, ckpt.rank);
        self.write_at(&name, ckpt).await
    }

    /// Write a checkpoint under an explicit name (aggregated containers,
    /// diff files), with the same metrics/span accounting as
    /// [`write`](Self::write). Call from within a VP.
    pub async fn write_at(&self, name: &str, ckpt: &Checkpoint) -> Result<(), FsError> {
        let data = ckpt.encode();
        let nbytes = data.len() as u64;
        let t0 = obs_clock();
        fs::write(name, data).await?;
        if let Some(t0) = t0 {
            ctx::with_kernel(|k, rank| {
                let t1 = k.vp(rank).clock();
                obs::record(k, ids::CKPT_WRITES, 1);
                obs::record(k, ids::CKPT_BYTES_WRITTEN, nbytes);
                obs::record(k, ids::CKPT_COMMIT_NS, (t1 - t0).as_nanos());
                obs::span(
                    k,
                    ObsSpan {
                        name: "ckpt.commit",
                        cat: "ckpt",
                        rank,
                        start: t0,
                        end: t1,
                        bytes: nbytes,
                    },
                );
            });
        }
        Ok(())
    }

    /// Delete this rank's file of an older generation (the post-barrier
    /// cleanup of the paper's protocol). Missing files are fine.
    pub async fn delete_generation(&self, iteration: u64, rank: u32) -> Result<bool, FsError> {
        let existed = fs::delete(&self.file_name(iteration, rank)).await?;
        ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_DELETES, 1));
        Ok(existed)
    }

    /// Checkpoint generations present on storage, newest first. Iterates
    /// generation *prefixes* (O(generations · log files)) instead of the
    /// whole listing, so 32k ranks restarting concurrently stay O(P).
    pub fn generations(&self, store: &FsStore) -> Vec<u64> {
        let prefix = format!("{}/ckpt/", self.prefix);
        let mut gens = Vec::new();
        let mut cursor = prefix.clone();
        while let Some(key) = store.first_key_at_or_after(&cursor) {
            let Some(rest) = key.strip_prefix(&prefix) else {
                break;
            };
            let Some((gen_s, _)) = rest.split_once('/') else {
                break;
            };
            let Ok(g) = gen_s.parse::<u64>() else { break };
            gens.push(g);
            // Skip past every file of this generation ('\u{7f}' sorts
            // after the rank file names' ASCII).
            cursor = format!("{prefix}{gen_s}/\u{7f}");
        }
        gens.reverse();
        gens
    }

    /// Iterations for which this rank has a file on storage, newest
    /// first (direct store access — also usable outside the simulation).
    pub fn generations_for(&self, store: &FsStore, rank: u32) -> Vec<u64> {
        self.generations(store)
            .into_iter()
            .filter(|&g| store.exists(&self.file_name(g, rank)))
            .collect()
    }

    /// Load the newest valid checkpoint for `rank`, deleting corrupted
    /// ones on the way (paper §V-B). Returns `None` when no valid
    /// checkpoint exists (cold start). Call from within a VP.
    pub async fn load_latest(&self, store: &Arc<FsStore>, rank: u32) -> Option<Checkpoint> {
        for generation in self.generations_for(store, rank) {
            let name = self.file_name(generation, rank);
            match fs::read(&name).await {
                Ok(FileState::Complete(data)) => match Checkpoint::decode(&data) {
                    Ok(c) => {
                        ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_LOADS, 1));
                        return Some(c);
                    }
                    Err(_) => {
                        // Corrupted checkpoint: delete and fall back.
                        ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_CORRUPT_DISCARDED, 1));
                        let _ = fs::delete(&name).await;
                    }
                },
                Ok(FileState::Partial(_)) => {
                    // Exists but incomplete — also "corrupted" per the
                    // paper's definition.
                    ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_CORRUPT_DISCARDED, 1));
                    let _ = fs::delete(&name).await;
                }
                Err(_) => {}
            }
        }
        None
    }

    /// Remove checkpoint generations that are missing files ("incomplete
    /// checkpoints (missing checkpoint files due to a failure during
    /// checkpointing) are deleted using a shell script", §V-B) or that
    /// contain partial/corrupt files. Runs *outside* the simulation,
    /// between an abort and the restart. Returns the generations
    /// removed.
    pub fn cleanup_incomplete(&self, store: &FsStore, n_ranks: u32) -> Vec<u64> {
        let prefix = format!("{}/ckpt/", self.prefix);
        let mut by_gen: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
        for name in store.list_prefix(&prefix) {
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some((gen_s, _)) = rest.split_once('/') {
                    if let Ok(g) = gen_s.parse::<u64>() {
                        by_gen.entry(g).or_default().push(name);
                    }
                }
            }
        }
        let mut removed = Vec::new();
        for (generation, files) in by_gen {
            let complete = files.len() as u32 == n_ranks
                && files.iter().all(|f| {
                    matches!(store.get(f), Some(FileState::Complete(data))
                        if Checkpoint::decode(&data).is_ok())
                });
            if !complete {
                store.delete_prefix(&self.generation_prefix(generation));
                removed.push(generation);
            }
        }
        removed
    }

    /// Latest generation that is complete and valid across all ranks
    /// (direct store access).
    pub fn latest_complete(&self, store: &FsStore, n_ranks: u32) -> Option<u64> {
        let gens = self.generations(store);
        gens.into_iter().find(|&g| {
            (0..n_ranks).all(|r| {
                matches!(store.get(&self.file_name(g, r)), Some(FileState::Complete(d))
                    if Checkpoint::decode(&d).is_ok())
            })
        })
    }
}

/// Persist the virtual exit time of an aborted run (paper §IV-E).
pub fn write_exit_time(store: &FsStore, t: xsim_core::SimTime) {
    store.put(
        EXIT_TIME_FILE,
        Bytes::from(t.as_nanos().to_le_bytes().to_vec()),
    );
}

/// Read back the persisted exit time, if any.
pub fn read_exit_time(store: &FsStore) -> Option<xsim_core::SimTime> {
    match store.get(EXIT_TIME_FILE)? {
        FileState::Complete(d) if d.len() == 8 => Some(xsim_core::SimTime(u64::from_le_bytes(
            d[..8].try_into().expect("8 bytes"),
        ))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put_valid(store: &FsStore, m: &CheckpointManager, generation: u64, rank: u32) {
        let c = Checkpoint::new(rank, generation).with_section("d", Bytes::from_static(b"x"));
        store.put(&m.file_name(generation, rank), c.encode());
    }

    #[test]
    fn naming_is_sortable() {
        let m = CheckpointManager::new("heat");
        assert!(m.file_name(2, 0) > m.file_name(1, 0));
        assert!(m.file_name(10, 0) > m.file_name(9, 0), "zero-padding");
    }

    #[test]
    fn generations_listed_newest_first() {
        let store = FsStore::new();
        let m = CheckpointManager::new("job");
        for g in [5, 1, 3] {
            put_valid(&store, &m, g, 0);
        }
        assert_eq!(m.generations_for(&store, 0), vec![5, 3, 1]);
        assert!(m.generations_for(&store, 1).is_empty());
    }

    #[test]
    fn cleanup_removes_incomplete_sets() {
        let store = FsStore::new();
        let m = CheckpointManager::new("job");
        // Generation 1: complete for 2 ranks. Generation 2: missing rank 1.
        put_valid(&store, &m, 1, 0);
        put_valid(&store, &m, 1, 1);
        put_valid(&store, &m, 2, 0);
        let removed = m.cleanup_incomplete(&store, 2);
        assert_eq!(removed, vec![2]);
        assert_eq!(m.latest_complete(&store, 2), Some(1));
    }

    #[test]
    fn cleanup_removes_corrupt_sets() {
        let store = FsStore::new();
        let m = CheckpointManager::new("job");
        put_valid(&store, &m, 1, 0);
        store.put(&m.file_name(1, 1), Bytes::from_static(b"garbage"));
        assert_eq!(m.cleanup_incomplete(&store, 2), vec![1]);
        assert!(m.latest_complete(&store, 2).is_none());
    }

    #[test]
    fn cleanup_removes_partial_files() {
        let store = FsStore::new();
        let m = CheckpointManager::new("job");
        put_valid(&store, &m, 4, 0);
        store.begin_write(&m.file_name(4, 1)); // never committed
        assert_eq!(m.cleanup_incomplete(&store, 2), vec![4]);
    }

    #[test]
    fn exit_time_round_trips() {
        let store = FsStore::new();
        assert!(read_exit_time(&store).is_none());
        write_exit_time(&store, xsim_core::SimTime::from_secs(7957));
        assert_eq!(
            read_exit_time(&store),
            Some(xsim_core::SimTime::from_secs(7957))
        );
    }
}
