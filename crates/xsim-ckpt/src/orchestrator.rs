//! Restart orchestration: run → abort → cleanup → restart with the
//! virtual timeline continued.
//!
//! This is the outer loop of the paper's Table II experiments: each row
//! "represents the execution of 1,000 iterations, including any
//! failure/restart cycle, with randomly injected MPI process failures"
//! (§V-E). The orchestrator:
//!
//! 1. draws the run's random failure (rank uniform, time uniform in
//!    2·MTTF_s relative to the run start — §V-C),
//! 2. runs the application under the simulator,
//! 3. on abort: persists the exit virtual time (§IV-E), removes
//!    incomplete checkpoint sets (the shell-script step of §V-B), and
//!    restarts with all VP clocks initialized to the carried time,
//! 4. repeats until the application completes (or a restart budget is
//!    exhausted).

use crate::manager::{read_exit_time, write_exit_time, CheckpointManager};
use std::sync::Arc;
use xsim_core::vp::VpProgram;
use xsim_core::{ExitKind, SimError, SimTime};
use xsim_fault::FailureModel;
use xsim_fs::FsStore;
use xsim_mpi::{CkptMode, RunReport, SimBuilder};

/// Outcome of a full run-to-completion campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-run reports, in execution order.
    pub runs: Vec<RunReport>,
    /// Whether the application eventually completed.
    pub completed: bool,
    /// Final virtual time (the Table II `E2` when `completed`).
    pub finish_time: SimTime,
    /// Total activated process failures across runs (Table II `F`).
    pub failures: u64,
}

impl CampaignResult {
    /// The experienced application mean time to failure: total virtual
    /// time divided by the number of runs (Table II `MTTF_a = E2/(F+1)`).
    pub fn application_mttf(&self) -> Option<SimTime> {
        if self.failures == 0 {
            return None;
        }
        Some(SimTime(self.finish_time.as_nanos() / (self.failures + 1)))
    }
}

/// The restart orchestrator. Configure with the failure model and a
/// budget, then [`run_to_completion`](Self::run_to_completion).
pub struct Orchestrator {
    /// Random failure injection model applied per run.
    pub model: FailureModel,
    /// Seed for the failure draws (independent of the in-run seed).
    pub seed: u64,
    /// Maximum number of restarts before giving up.
    pub max_restarts: usize,
    /// Checkpoint manager matching the application's (for the
    /// between-runs cleanup step).
    pub manager: CheckpointManager,
    /// Checkpoint mode the application writes with (selects the
    /// between-runs cleanup layout).
    pub mode: CkptMode,
}

impl Orchestrator {
    /// Orchestrator with the paper's defaults.
    pub fn new(model: FailureModel, seed: u64, manager: CheckpointManager) -> Self {
        Orchestrator {
            model,
            seed,
            max_restarts: 256,
            manager,
            mode: CkptMode::Full,
        }
    }

    /// Run the application to completion across failure/restart cycles.
    ///
    /// `make_builder` produces a fresh, fully configured [`SimBuilder`]
    /// per run (machine models, workers, seed…); the orchestrator
    /// overrides the store, start time and failure injection.
    pub fn run_to_completion(
        &self,
        store: Arc<FsStore>,
        program: Arc<dyn VpProgram>,
        n_ranks: usize,
        make_builder: impl Fn() -> SimBuilder,
    ) -> Result<CampaignResult, SimError> {
        let mut runs = Vec::new();
        let mut failures = 0u64;
        for run_idx in 0..=self.max_restarts as u64 {
            // Continuous virtual timing (paper §IV-E): initialize all
            // clocks with the previous run's persisted exit time.
            let start = read_exit_time(&store).unwrap_or(SimTime::ZERO);
            let mut builder = make_builder().fs_store(store.clone()).start_time(start);
            if let Some(draw) = self.model.draw(self.seed, run_idx, n_ranks) {
                builder = builder.inject_failure(draw.rank, start + draw.at);
            }
            let report = builder.run(program.clone())?;
            failures += report.sim.failures.len() as u64;
            let exit_kind = report.sim.exit;
            let exit_time = report.exit_time();
            let failed: Vec<u32> = report.sim.failures.iter().map(|f| f.rank.0).collect();
            runs.push(report);

            match exit_kind {
                ExitKind::Completed => {
                    return Ok(CampaignResult {
                        runs,
                        completed: true,
                        finish_time: exit_time,
                        failures,
                    });
                }
                ExitKind::Aborted | ExitKind::FailedOnly => {
                    // Persist the exit time and clean incomplete
                    // checkpoint sets before restarting (paper §IV-E,
                    // §V-B).
                    write_exit_time(&store, exit_time);
                    self.manager
                        .cleanup_between_runs(&store, n_ranks as u32, self.mode, &failed);
                }
            }
        }
        let finish_time = runs.last().map(|r| r.exit_time()).unwrap_or(SimTime::ZERO);
        Ok(CampaignResult {
            runs,
            completed: false,
            finish_time,
            failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_mttf_matches_table_ii_definition() {
        let r = CampaignResult {
            runs: Vec::new(),
            completed: true,
            finish_time: SimTime::from_secs(7957),
            failures: 1,
        };
        // Table II row: E2 = 7957 s, F = 1 → MTTF_a = 3978.5 s.
        assert_eq!(
            r.application_mttf().unwrap(),
            SimTime::from_secs_f64(3978.5)
        );
        let r0 = CampaignResult { failures: 0, ..r };
        assert!(r0.application_mttf().is_none());
    }
}
