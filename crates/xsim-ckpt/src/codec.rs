//! Checksummed binary checkpoint format.
//!
//! The paper's application "automatically deletes any corrupted
//! checkpoint (checkpoint file that exists, but misses some
//! information)" (§V-B). Detecting that condition requires a
//! self-validating on-disk format: this codec frames a checkpoint as a
//! magic/version header, a set of named sections, and CRC-32 checksums
//! over the header and every section, so truncation (a writer that
//! failed mid-checkpoint) and bit damage are both detected.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"XCKP";
const VERSION: u16 = 1;

/// CRC-32 (IEEE 802.3, reflected) — implemented locally to keep the
/// dependency set minimal.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Why a checkpoint failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer is shorter than a valid checkpoint (a failure during
    /// the simulated write leaves a truncated/empty file).
    Truncated,
    /// The magic or version did not match.
    BadHeader,
    /// A checksum failed (bit damage).
    ChecksumMismatch {
        /// Which section failed ("header" or the section name index).
        section: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "checkpoint truncated"),
            CodecError::BadHeader => write!(f, "checkpoint header invalid"),
            CodecError::ChecksumMismatch { section } => {
                write!(f, "checkpoint checksum mismatch in section {section}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A decoded checkpoint: identification plus named data sections (the
/// paper's checkpoints contain "the application's configuration and the
/// current iteration's data", §V-B).
///
/// ```
/// use xsim_ckpt::Checkpoint;
/// use bytes::Bytes;
///
/// let ckpt = Checkpoint::new(7, 250).with_section("grid", Bytes::from_static(b"data"));
/// let encoded = ckpt.encode();
/// assert_eq!(Checkpoint::decode(&encoded).unwrap(), ckpt);
/// // Any truncation is detected (the paper's corrupted-checkpoint case).
/// assert!(Checkpoint::decode(&encoded[..encoded.len() - 1]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// World rank that wrote the checkpoint.
    pub rank: u32,
    /// Application iteration the checkpoint captures.
    pub iteration: u64,
    /// Named data sections.
    pub sections: Vec<(String, Bytes)>,
}

impl Checkpoint {
    /// A checkpoint with no sections yet.
    pub fn new(rank: u32, iteration: u64) -> Self {
        Checkpoint {
            rank,
            iteration,
            sections: Vec::new(),
        }
    }

    /// Add a named section.
    pub fn with_section(mut self, name: &str, data: Bytes) -> Self {
        self.sections.push((name.to_string(), data));
        self
    }

    /// Find a section by name.
    pub fn section(&self, name: &str) -> Option<&Bytes> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
    }

    /// Serialize with checksums.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(self.rank);
        buf.put_u64_le(self.iteration);
        buf.put_u32_le(self.sections.len() as u32);
        let header_crc = crc32(&buf);
        buf.put_u32_le(header_crc);
        for (name, data) in &self.sections {
            let name_b = name.as_bytes();
            buf.put_u32_le(name_b.len() as u32);
            buf.put_slice(name_b);
            buf.put_u64_le(data.len() as u64);
            buf.put_slice(data);
            let mut crc_input = Vec::with_capacity(name_b.len() + data.len());
            crc_input.extend_from_slice(name_b);
            crc_input.extend_from_slice(data);
            buf.put_u32_le(crc32(&crc_input));
        }
        buf.freeze()
    }

    /// Deserialize and verify checksums. Any truncation or damage yields
    /// an error — the "corrupted checkpoint" the application must delete.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, CodecError> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], CodecError> {
            if data.len() < *off + n {
                return Err(CodecError::Truncated);
            }
            let s = &data[*off..*off + n];
            *off += n;
            Ok(s)
        };
        let magic = take(&mut off, 4)?;
        if magic != MAGIC {
            return Err(CodecError::BadHeader);
        }
        let version = u16::from_le_bytes(take(&mut off, 2)?.try_into().expect("2"));
        if version != VERSION {
            return Err(CodecError::BadHeader);
        }
        let rank = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4"));
        let iteration = u64::from_le_bytes(take(&mut off, 8)?.try_into().expect("8"));
        let n_sections = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4")) as usize;
        let header_crc = crc32(&data[..off]);
        let stored = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4"));
        if stored != header_crc {
            return Err(CodecError::ChecksumMismatch { section: 0 });
        }
        let mut sections = Vec::with_capacity(n_sections.min(1024));
        for i in 0..n_sections {
            let name_len = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4")) as usize;
            let name_b = take(&mut off, name_len)?.to_vec();
            let data_len = u64::from_le_bytes(take(&mut off, 8)?.try_into().expect("8")) as usize;
            let body = take(&mut off, data_len)?.to_vec();
            let stored = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4"));
            let mut crc_input = Vec::with_capacity(name_b.len() + body.len());
            crc_input.extend_from_slice(&name_b);
            crc_input.extend_from_slice(&body);
            if crc32(&crc_input) != stored {
                return Err(CodecError::ChecksumMismatch { section: i + 1 });
            }
            let name = String::from_utf8(name_b).map_err(|_| CodecError::BadHeader)?;
            sections.push((name, Bytes::from(body)));
        }
        if off != data.len() {
            return Err(CodecError::Truncated);
        }
        Ok(Checkpoint {
            rank,
            iteration,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip() {
        let c = Checkpoint::new(7, 250)
            .with_section("config", Bytes::from_static(b"nx=512"))
            .with_section("grid", Bytes::from(vec![1u8, 2, 3, 4]));
        let enc = c.encode();
        let d = Checkpoint::decode(&enc).unwrap();
        assert_eq!(d, c);
        assert_eq!(d.section("config").unwrap(), &Bytes::from_static(b"nx=512"));
        assert!(d.section("missing").is_none());
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let c = Checkpoint::new(0, 0);
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let c = Checkpoint::new(3, 9)
            .with_section("a", Bytes::from(vec![9u8; 37]))
            .with_section("b", Bytes::from(vec![1u8; 5]));
        let enc = c.encode();
        for cut in 0..enc.len() {
            assert!(
                Checkpoint::decode(&enc[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    #[test]
    fn bit_damage_is_detected() {
        let c = Checkpoint::new(1, 2).with_section("grid", Bytes::from(vec![42u8; 64]));
        let enc = c.encode();
        for i in 0..enc.len() {
            let mut dmg = enc.to_vec();
            dmg[i] ^= 0x10;
            assert!(
                Checkpoint::decode(&dmg).is_err(),
                "bit damage at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let c = Checkpoint::new(1, 2).encode();
        let mut bad = c.to_vec();
        bad[0] = b'Y';
        assert_eq!(Checkpoint::decode(&bad), Err(CodecError::BadHeader));
        let mut bad = c.to_vec();
        bad[4] = 99;
        assert_eq!(Checkpoint::decode(&bad), Err(CodecError::BadHeader));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = Checkpoint::new(1, 2).encode().to_vec();
        enc.push(0);
        assert_eq!(Checkpoint::decode(&enc), Err(CodecError::Truncated));
    }
}
