//! # xsim-ckpt — application-level checkpoint/restart
//!
//! The paper's fault-handling technique of record: "Application state is
//! regularly written out to the parallel file system as a checkpoint. In
//! case of a failure, the application is restarted and the last written
//! out checkpoint is read back in … The progress between the time the
//! last checkpoint was written and the application failed is lost and
//! needs to be recomputed" (§III-B). This crate provides:
//!
//! * [`codec`] — a checksummed checkpoint format, so *corrupted*
//!   checkpoints (exist but incomplete, §V-B) are detectable.
//! * [`manager`] — naming, simulated-I/O write/load/delete, the
//!   barrier-then-delete protocol helpers, incomplete-set cleanup, and
//!   the exit-time persistence of paper §IV-E.
//! * [`daly`] — Young/Daly optimal checkpoint-interval estimates (the
//!   paper's reference model \[31\] for checkpoint optimization, §II-B),
//!   so simulated interval sweeps can be validated analytically.
//! * [`orchestrator`] — the run → abort → cleanup → restart loop with
//!   continuous virtual timing and per-run random failure injection,
//!   which is exactly the procedure behind Table II.
//! * [`protection`] — the schedule-driven generalization of that loop,
//!   scheme-agnostic so checkpoint/restart and replication compose in
//!   the FIT × protection-scheme ablation.

pub mod codec;
pub mod daly;
pub mod manager;
pub mod modes;
pub mod orchestrator;
pub mod protection;

pub use codec::{crc32, Checkpoint, CodecError};
pub use daly::{
    compare_overhead, daly_interval, expected_runtime, predicted_overhead_fraction, young_interval,
    OverheadComparison,
};
pub use manager::{read_exit_time, write_exit_time, CheckpointManager, EXIT_TIME_FILE};
pub use modes::{
    apply_diff, block_diff, decode_diff, encode_diff, member_section, resolve_latest, DiffFile,
    ModeWriter, ResolvedCheckpoint, CKPT_TAG, DIFF_BLOCK,
};
pub use orchestrator::{CampaignResult, Orchestrator};
pub use protection::ProtectionCampaign;
