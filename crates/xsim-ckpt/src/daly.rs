//! Optimal checkpoint-interval estimation (Daly's model).
//!
//! The paper positions its contribution against prior
//! checkpoint/restart modeling "such as by finding the optimal
//! checkpoint interval \[31\]" (§II-B, citing J. T. Daly, *A higher order
//! estimate of the optimum checkpoint interval for restart dumps*, FGCS
//! 2006). This module implements both the first-order (Young) and
//! higher-order (Daly) estimates, so simulated Table-II-style sweeps can
//! be compared against the analytic optimum — exactly the kind of
//! model-validation study the toolkit exists to support.

use xsim_core::SimTime;

/// First-order (Young) estimate: `t_opt = sqrt(2 δ M)` where `δ` is the
/// checkpoint commit cost and `M` the system MTTF. Valid for `δ ≪ M`.
///
/// ```
/// use xsim_ckpt::{young_interval, daly_interval};
/// use xsim_core::SimTime;
///
/// let delta = SimTime::from_secs(20);
/// let mttf = SimTime::from_secs(3000);
/// let young = young_interval(delta, mttf);
/// let daly = daly_interval(delta, mttf);
/// assert!((young.as_secs_f64() - 346.4).abs() < 0.1);
/// assert!(daly < young); // the higher-order correction shortens it
/// ```
pub fn young_interval(delta: SimTime, mttf: SimTime) -> SimTime {
    let d = delta.as_secs_f64();
    let m = mttf.as_secs_f64();
    if d <= 0.0 || m <= 0.0 {
        return SimTime::ZERO;
    }
    SimTime::from_secs_f64((2.0 * d * m).sqrt())
}

/// Daly's higher-order estimate:
///
/// `t_opt = sqrt(2δM)·[1 + ⅓·sqrt(δ/2M) + (1/9)·(δ/2M)] − δ` for
/// `δ < 2M`, and `t_opt = M` otherwise.
pub fn daly_interval(delta: SimTime, mttf: SimTime) -> SimTime {
    let d = delta.as_secs_f64();
    let m = mttf.as_secs_f64();
    if d <= 0.0 || m <= 0.0 {
        return SimTime::ZERO;
    }
    if d >= 2.0 * m {
        return mttf;
    }
    let x = d / (2.0 * m);
    let t = (2.0 * d * m).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - d;
    SimTime::from_secs_f64(t.max(0.0))
}

/// Daly's expected total wall time for a run of `solve` useful compute,
/// checkpointing every `tau` with per-checkpoint cost `delta`, restart
/// cost `restart`, under exponential failures with MTTF `mttf`:
///
/// `T = M · e^{R/M} · (e^{(τ+δ)/M} − 1) · T_s / τ`
///
/// (the standard renewal-reward form). Useful to predict the E2 column
/// of Table II for a given interval.
pub fn expected_runtime(
    solve: SimTime,
    tau: SimTime,
    delta: SimTime,
    restart: SimTime,
    mttf: SimTime,
) -> SimTime {
    let ts = solve.as_secs_f64();
    let t = tau.as_secs_f64();
    let d = delta.as_secs_f64();
    let r = restart.as_secs_f64();
    let m = mttf.as_secs_f64();
    if t <= 0.0 || m <= 0.0 {
        return SimTime::MAX;
    }
    let total = m * (r / m).exp() * (((t + d) / m).exp() - 1.0) * ts / t;
    SimTime::from_secs_f64(total)
}

/// Predicted vs measured checkpoint overhead for one run. Build with
/// [`compare_overhead`] from the observability layer's totals (the
/// `ckpt.commit_ns` histogram sum and the run's exit time) and the
/// configured interval/commit cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadComparison {
    /// Model-predicted overhead fraction in the failure-free limit:
    /// `δ / (τ + δ)` — of every interval-plus-commit cycle, the commit
    /// share is pure overhead.
    pub predicted_fraction: f64,
    /// Measured overhead fraction: virtual time spent committing
    /// checkpoints over total virtual run time.
    pub actual_fraction: f64,
}

impl OverheadComparison {
    /// Signed prediction error (`actual − predicted`); positive means
    /// checkpointing cost more than the model predicts (e.g. rework
    /// after failures, I/O contention).
    pub fn error(&self) -> f64 {
        self.actual_fraction - self.predicted_fraction
    }
}

/// Failure-free predicted checkpoint-overhead fraction for checkpoint
/// interval `tau` and per-checkpoint commit cost `delta`.
pub fn predicted_overhead_fraction(tau: SimTime, delta: SimTime) -> f64 {
    let t = tau.as_secs_f64();
    let d = delta.as_secs_f64();
    if d <= 0.0 || t + d <= 0.0 {
        return 0.0;
    }
    d / (t + d)
}

/// Compare the Daly-model prediction against a run's measured totals:
/// `ckpt_ns` is the total virtual time spent committing checkpoints
/// (the observability layer's `ckpt.commit_ns` histogram sum) and
/// `run_ns` the total virtual run time.
pub fn compare_overhead(
    tau: SimTime,
    delta: SimTime,
    ckpt_ns: u64,
    run_ns: u64,
) -> OverheadComparison {
    OverheadComparison {
        predicted_fraction: predicted_overhead_fraction(tau, delta),
        actual_fraction: if run_ns == 0 {
            0.0
        } else {
            ckpt_ns as f64 / run_ns as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> SimTime {
        SimTime::from_secs_f64(v)
    }

    #[test]
    fn young_matches_textbook_example() {
        // δ = 10 min, M = 24 h: sqrt(2 * 600 * 86400) ≈ 10182 s.
        let t = young_interval(s(600.0), s(86_400.0));
        assert!((t.as_secs_f64() - 10_182.3).abs() < 1.0, "{t}");
    }

    #[test]
    fn daly_is_close_to_young_for_small_delta_and_below_it() {
        let (d, m) = (s(10.0), s(10_000.0));
        let y = young_interval(d, m).as_secs_f64();
        let dl = daly_interval(d, m).as_secs_f64();
        // Higher-order correction is small and reduces the interval by
        // about δ.
        assert!((dl - y).abs() < 0.2 * y);
        assert!(dl < y, "daly {dl} vs young {y}");
    }

    #[test]
    fn daly_clamps_to_mttf_for_huge_delta() {
        assert_eq!(daly_interval(s(100.0), s(10.0)), s(10.0));
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(young_interval(SimTime::ZERO, s(10.0)), SimTime::ZERO);
        assert_eq!(daly_interval(s(1.0), SimTime::ZERO), SimTime::ZERO);
        assert_eq!(
            expected_runtime(s(1.0), SimTime::ZERO, s(1.0), s(1.0), s(1.0)),
            SimTime::MAX
        );
    }

    #[test]
    fn expected_runtime_is_minimized_near_daly_interval() {
        // Numerically verify that Daly's interval sits at (or near) the
        // minimum of the expected-runtime curve.
        let (solve, delta, restart, mttf) = (s(5000.0), s(20.0), s(60.0), s(3000.0));
        let t_opt = daly_interval(delta, mttf);
        let at = |tau: SimTime| expected_runtime(solve, tau, delta, restart, mttf).as_secs_f64();
        let best = at(t_opt);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            let other = at(t_opt.scale(factor));
            assert!(
                best <= other * 1.005,
                "tau = {factor}·t_opt beats the optimum: {other} < {best}"
            );
        }
    }

    #[test]
    fn overhead_comparison_matches_hand_math() {
        // τ = 90 s, δ = 10 s: 10/(90+10) = 10% predicted overhead.
        let c = compare_overhead(s(90.0), s(10.0), 30_000_000_000, 200_000_000_000);
        assert!((c.predicted_fraction - 0.10).abs() < 1e-12);
        assert!((c.actual_fraction - 0.15).abs() < 1e-12);
        assert!((c.error() - 0.05).abs() < 1e-12);
        // Degenerate inputs stay finite.
        let z = compare_overhead(SimTime::ZERO, SimTime::ZERO, 0, 0);
        assert_eq!(z.predicted_fraction, 0.0);
        assert_eq!(z.actual_fraction, 0.0);
    }

    #[test]
    fn expected_runtime_exceeds_solve_time() {
        let t = expected_runtime(s(5000.0), s(500.0), s(10.0), s(0.0), s(6000.0));
        assert!(t > s(5000.0));
        // And grows as MTTF shrinks.
        let worse = expected_runtime(s(5000.0), s(500.0), s(10.0), s(0.0), s(1500.0));
        assert!(worse > t);
    }
}
