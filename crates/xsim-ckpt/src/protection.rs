//! Protection-scheme orchestration: the restart loop generalized so
//! checkpoint/restart and replication compose (the FIT × scheme
//! ablation's outer loop).
//!
//! Differences from [`crate::orchestrator::Orchestrator`]:
//!
//! * **Schedule-driven injection.** Instead of drawing one random
//!   failure per run, the campaign takes a whole absolute-time
//!   [`FailureSchedule`] up front (e.g. from
//!   `SystemReliability::generate_schedule`). Every scheme under an
//!   ablation is fed the *same* schedule for a given seed, so their
//!   completion times are comparable apples-to-apples; each run injects
//!   the entries still in its future.
//! * **Replication-aware success.** A replicated run that absorbed
//!   replica deaths ends with [`ExitKind::FailedOnly`] — the dead
//!   replicas are real process failures — even though the *application*
//!   finished. The campaign therefore accepts a run as complete when the
//!   application's completion marker (see
//!   `heat3d_rep`'s `done_marker`) exists in the store, not only on a
//!   clean [`ExitKind::Completed`].

use crate::manager::{read_exit_time, write_exit_time, CheckpointManager};
use crate::orchestrator::CampaignResult;
use std::collections::BTreeMap;
use std::sync::Arc;
use xsim_core::vp::VpProgram;
use xsim_core::{ExitKind, SimError, SimTime};
use xsim_fault::FailureSchedule;
use xsim_fs::FsStore;
use xsim_mpi::{CkptMode, SimBuilder};

/// Schedule-driven, scheme-agnostic restart campaign.
pub struct ProtectionCampaign {
    /// Absolute-time failure schedule over *physical* ranks, shared by
    /// every scheme of an ablation cell.
    pub schedule: FailureSchedule,
    /// Maximum restarts before giving up.
    pub max_restarts: usize,
    /// Checkpoint manager for between-run cleanup (harmless when the
    /// scheme writes no checkpoints).
    pub manager: CheckpointManager,
    /// Number of checkpointing ranks (logical ranks for replicated
    /// schemes) — the completeness unit for cleanup.
    pub ckpt_ranks: u32,
    /// Checkpoint mode the application writes with (selects the
    /// between-runs cleanup layout).
    pub mode: CkptMode,
    /// Store name of the application's completion marker, if the
    /// application writes one (replicated runs); `None` = only
    /// `ExitKind::Completed` counts as success.
    pub done_marker: Option<String>,
}

/// The earliest post-`start` failure of each rank in `schedule`.
fn earliest_per_rank(schedule: &FailureSchedule, start: SimTime) -> BTreeMap<usize, SimTime> {
    let mut next = BTreeMap::new();
    for (rank, at) in schedule.iter().filter(|(_, at)| *at > start) {
        next.entry(rank)
            .and_modify(|t: &mut SimTime| *t = (*t).min(at))
            .or_insert(at);
    }
    next
}

/// Whether a finished run means the application completed.
fn run_succeeded(exit: ExitKind, marker_present: bool) -> bool {
    match exit {
        ExitKind::Completed => true,
        // Survivor replicas finished while dead teammates count as
        // process failures.
        ExitKind::FailedOnly => marker_present,
        ExitKind::Aborted => false,
    }
}

impl ProtectionCampaign {
    /// Run the application to completion across failure/restart cycles,
    /// injecting the schedule's future entries into every run.
    ///
    /// `make_builder` produces a fresh, fully configured [`SimBuilder`]
    /// per run; the campaign overrides the store, start time and failure
    /// injection.
    pub fn run_to_completion(
        &self,
        store: Arc<FsStore>,
        program: Arc<dyn VpProgram>,
        make_builder: impl Fn() -> SimBuilder,
    ) -> Result<CampaignResult, SimError> {
        let mut runs = Vec::new();
        let mut failures = 0u64;
        for _ in 0..=self.max_restarts {
            // Continuous virtual timeline across restarts (paper §IV-E).
            let start = read_exit_time(&store).unwrap_or(SimTime::ZERO);
            let mut builder = make_builder().fs_store(store.clone()).start_time(start);
            // A rank dies once per run, so only its *earliest* future
            // entry applies now; the later ones hit the runs after the
            // node's repair/replacement. (The kernel keeps one pending
            // failure time per rank — feeding it a node's whole future
            // would leave only the last entry standing.)
            for (rank, at) in earliest_per_rank(&self.schedule, start) {
                builder = builder.inject_failure(rank, at);
            }
            let report = builder.run(program.clone())?;
            failures += report.sim.failures.len() as u64;
            let exit_kind = report.sim.exit;
            let exit_time = report.exit_time();
            let failed: Vec<u32> = report.sim.failures.iter().map(|f| f.rank.0).collect();
            runs.push(report);

            let marker_present = self
                .done_marker
                .as_ref()
                .is_some_and(|name| store.exists(name));
            if run_succeeded(exit_kind, marker_present) {
                return Ok(CampaignResult {
                    runs,
                    completed: true,
                    finish_time: exit_time,
                    failures,
                });
            }
            write_exit_time(&store, exit_time);
            self.manager
                .cleanup_between_runs(&store, self.ckpt_ranks, self.mode, &failed);
        }
        let finish_time = runs.last().map(|r| r.exit_time()).unwrap_or(SimTime::ZERO);
        Ok(CampaignResult {
            runs,
            completed: false,
            finish_time,
            failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_per_rank_takes_first_future_entry() {
        let s = FailureSchedule::new()
            .with(3, SimTime::from_secs(10))
            .with(3, SimTime::from_secs(500))
            .with(3, SimTime::from_secs(900))
            .with(7, SimTime::from_secs(40));
        let next = earliest_per_rank(&s, SimTime::ZERO);
        assert_eq!(next[&3], SimTime::from_secs(10));
        assert_eq!(next[&7], SimTime::from_secs(40));
        // Past entries (≤ the run's start) drop out.
        let next = earliest_per_rank(&s, SimTime::from_secs(40));
        assert_eq!(next[&3], SimTime::from_secs(500));
        assert!(!next.contains_key(&7));
    }

    #[test]
    fn success_requires_marker_only_for_failed_only_exits() {
        assert!(run_succeeded(ExitKind::Completed, false));
        assert!(run_succeeded(ExitKind::Completed, true));
        assert!(run_succeeded(ExitKind::FailedOnly, true));
        assert!(!run_succeeded(ExitKind::FailedOnly, false));
        assert!(!run_succeeded(ExitKind::Aborted, true));
        assert!(!run_succeeded(ExitKind::Aborted, false));
    }
}
