//! Scalable checkpointing modes over the PFS model (Kohl et al.,
//! "A Scalable and Extensible Checkpointing Scheme for Massively
//! Parallel Simulations").
//!
//! Four write strategies share the [`CheckpointManager`] naming scheme:
//!
//! * **Full** — every rank writes its whole state to the PFS every
//!   generation (the paper's §V-B protocol; byte-identical to the
//!   pre-mode behavior).
//! * **Aggregated** — ranks are split into groups of `G`; the lowest
//!   rank of each group is the elected aggregator. Members ship their
//!   encoded checkpoint to the aggregator over the simulated network;
//!   the aggregator writes one coalesced container file per group, so
//!   the PFS sees `P/G` large requests instead of `P` small ones.
//! * **Buddy** — partner ranks (`r ^ 1`) exchange their encoded state
//!   over the network and keep both copies in the free node-local
//!   memory tier; the PFS is touched only when a rank has no partner
//!   (odd world size) and must spill. A node failure loses that node's
//!   memory, but the partner's copy survives the restart.
//! * **Incremental** — every `K`-th generation is a full PFS write; the
//!   generations in between store a block diff against the previous
//!   generation's reconstructed bytes. Restore walks the `ibase` chain
//!   back to the last full checkpoint and replays the diffs forward.
//!
//! All mode protocols are deterministic: message sources and tags are
//! explicit (no wildcards), node-local memory operations touch only
//! rank-private keys during a run, and every PFS transfer goes through
//! the striped-I/O event protocol of `xsim-fs`.

use crate::codec::Checkpoint;
use crate::manager::CheckpointManager;
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;
use xsim_core::ctx;
use xsim_fs::{self as fs, FileState, FsService, FsStore};
use xsim_mpi::{CkptMode, MpiCtx, MpiError};
use xsim_obs::ids;
use xsim_obs::service as obs;

/// Reserved tag for checkpoint-mode traffic (below the replication
/// layer's `REP_TAG_BASE = 1 << 28`, above the applications' small
/// tags).
pub const CKPT_TAG: u32 = 0x0C4A_0000;

/// Block granularity of incremental diffs, in bytes.
pub const DIFF_BLOCK: usize = 256;

/// Section names of an incremental diff file (itself a valid
/// [`Checkpoint`], so the manager's completeness checks keep working).
pub mod diff_sections {
    /// Base generation number the diff applies to (8 bytes LE).
    pub const BASE: &str = "ibase";
    /// Changed block indices (u32 LE each).
    pub const BLOCKS: &str = "iblocks";
    /// Concatenated changed blocks (the last one may be short).
    pub const DATA: &str = "idata";
    /// Total length of the reconstructed bytes (8 bytes LE).
    pub const LEN: &str = "ilen";
}

/// Container-section name of one member's checkpoint inside an
/// aggregated group file.
pub fn member_section(rank: u32) -> String {
    format!("m{rank:07}")
}

// ----------------------------------------------------------------------
// Pure diff math (proptested in `tests/incremental_prop.rs`)
// ----------------------------------------------------------------------

/// Block-diff `cur` against `base`: changed block indices plus their
/// concatenated contents. A block is changed when its bytes differ from
/// the same range of `base` (ranges absent from `base` always differ).
pub fn block_diff(base: &[u8], cur: &[u8], block: usize) -> (Vec<u32>, Bytes) {
    assert!(block > 0, "diff block size must be positive");
    let mut indices = Vec::new();
    let mut data = BytesMut::new();
    let n_blocks = cur.len().div_ceil(block);
    for i in 0..n_blocks {
        let lo = i * block;
        let hi = (lo + block).min(cur.len());
        let cur_b = &cur[lo..hi];
        let base_b = if lo < base.len() {
            &base[lo..hi.min(base.len())]
        } else {
            &[][..]
        };
        if cur_b != base_b {
            indices.push(i as u32);
            data.put_slice(cur_b);
        }
    }
    (indices, data.freeze())
}

/// Apply a block diff to `base`, producing the `new_len`-byte result.
/// Inverse of [`block_diff`] for the same block size.
pub fn apply_diff(
    base: &[u8],
    indices: &[u32],
    data: &[u8],
    new_len: usize,
    block: usize,
) -> Vec<u8> {
    assert!(block > 0, "diff block size must be positive");
    let mut out = base.to_vec();
    out.resize(new_len, 0);
    let mut off = 0usize;
    for &i in indices {
        let lo = (i as usize) * block;
        let hi = (lo + block).min(new_len);
        let n = hi.saturating_sub(lo);
        out[lo..hi].copy_from_slice(&data[off..off + n]);
        off += n;
    }
    out
}

/// Encode a diff of `cur` against `(base_gen, base)` as a standalone
/// checkpoint file.
pub fn encode_diff(
    rank: u32,
    generation: u64,
    base_gen: u64,
    base: &[u8],
    cur: &[u8],
) -> Checkpoint {
    let (indices, data) = block_diff(base, cur, DIFF_BLOCK);
    let mut idx = BytesMut::with_capacity(indices.len() * 4);
    for i in &indices {
        idx.put_u32_le(*i);
    }
    Checkpoint::new(rank, generation)
        .with_section(
            diff_sections::BASE,
            Bytes::from(base_gen.to_le_bytes().to_vec()),
        )
        .with_section(diff_sections::BLOCKS, idx.freeze())
        .with_section(diff_sections::DATA, data)
        .with_section(
            diff_sections::LEN,
            Bytes::from((cur.len() as u64).to_le_bytes().to_vec()),
        )
}

/// A decoded diff file.
pub struct DiffFile {
    /// Generation the diff applies to.
    pub base_gen: u64,
    /// Changed block indices.
    pub indices: Vec<u32>,
    /// Concatenated changed blocks.
    pub data: Bytes,
    /// Reconstructed total length.
    pub new_len: usize,
}

/// Decode a diff file; `None` when `ckpt` is a regular (full)
/// checkpoint.
pub fn decode_diff(ckpt: &Checkpoint) -> Option<DiffFile> {
    let base = ckpt.section(diff_sections::BASE)?;
    let blocks = ckpt.section(diff_sections::BLOCKS)?;
    let data = ckpt.section(diff_sections::DATA)?.clone();
    let len = ckpt.section(diff_sections::LEN)?;
    if base.len() != 8 || len.len() != 8 || !blocks.len().is_multiple_of(4) {
        return None;
    }
    let indices = blocks
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Some(DiffFile {
        base_gen: u64::from_le_bytes(base[..8].try_into().expect("8 bytes")),
        indices,
        data,
        new_len: u64::from_le_bytes(len[..8].try_into().expect("8 bytes")) as usize,
    })
}

// ----------------------------------------------------------------------
// Message framing (aggregated/buddy network copies)
// ----------------------------------------------------------------------

/// Frame an encoded checkpoint for the wire: an 8-byte LE length prefix,
/// the bytes, then zero padding up to `model_bytes` (so modeled-compute
/// runs whose surrogate checkpoints are tiny still charge the network
/// for the state volume a real run would ship).
fn frame(enc: &Bytes, model_bytes: Option<u64>) -> Bytes {
    let body = 8 + enc.len();
    let total = body.max(model_bytes.unwrap_or(0) as usize);
    let mut out = BytesMut::with_capacity(total);
    out.put_u64_le(enc.len() as u64);
    out.put_slice(enc);
    out.put_slice(&vec![0u8; total - body]);
    out.freeze()
}

/// Strip the framing; errors on malformed payloads.
fn unframe(data: &[u8]) -> Result<Bytes, MpiError> {
    if data.len() < 8 {
        return Err(MpiError::Io("short checkpoint frame".into()));
    }
    let len = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
    data.get(8..8 + len)
        .map(|s| Bytes::from(s.to_vec()))
        .ok_or_else(|| MpiError::Io("truncated checkpoint frame".into()))
}

fn io_err(e: impl std::fmt::Display) -> MpiError {
    MpiError::Io(e.to_string())
}

fn vp_store() -> Arc<FsStore> {
    ctx::with_kernel(|k, _| k.service::<FsService>().store.clone())
}

// ----------------------------------------------------------------------
// Mode-aware naming and between-run cleanup
// ----------------------------------------------------------------------

impl CheckpointManager {
    /// Path of one group's aggregated container within a generation.
    pub fn agg_file_name(&self, iteration: u64, group: u32) -> String {
        format!("{}agg{group:07}", self.generation_prefix(iteration))
    }

    /// Node-local memory-tier prefix (buddy copies).
    pub fn mem_prefix(&self) -> String {
        format!("{}/mem/", self.prefix)
    }

    /// Key of `owner`'s state held in `holder`'s node memory.
    pub fn mem_file_name(&self, iteration: u64, owner: u32, holder: u32) -> String {
        format!(
            "{}{iteration:020}/r{owner:07}@h{holder:07}",
            self.mem_prefix()
        )
    }

    /// Memory-tier generations present, newest first.
    pub fn mem_generations(&self, store: &FsStore) -> Vec<u64> {
        let prefix = self.mem_prefix();
        let mut gens = Vec::new();
        let mut cursor = prefix.clone();
        while let Some(key) = store.first_key_at_or_after(&cursor) {
            let Some(rest) = key.strip_prefix(&prefix) else {
                break;
            };
            let Some((gen_s, _)) = rest.split_once('/') else {
                break;
            };
            let Ok(g) = gen_s.parse::<u64>() else { break };
            gens.push(g);
            cursor = format!("{prefix}{gen_s}/\u{7f}");
        }
        gens.reverse();
        gens
    }

    /// Mode-aware between-run cleanup (the generalization of
    /// [`CheckpointManager::cleanup_incomplete`]): removes generations a
    /// restart could not restore from, accounting for the mode's file
    /// layout, for diff chains, and — for buddy — for the node memories
    /// lost with `failed` ranks. Returns the generations removed.
    pub fn cleanup_between_runs(
        &self,
        store: &FsStore,
        n_ranks: u32,
        mode: CkptMode,
        failed: &[u32],
    ) -> Vec<u64> {
        match mode {
            CkptMode::Full => self.cleanup_incomplete(store, n_ranks),
            CkptMode::Aggregated { group } => self.cleanup_agg(store, n_ranks, group as u32),
            CkptMode::Buddy => self.cleanup_buddy(store, n_ranks, failed),
            CkptMode::Incremental { .. } => self.cleanup_incremental(store, n_ranks),
        }
    }

    fn cleanup_agg(&self, store: &FsStore, n_ranks: u32, group: u32) -> Vec<u64> {
        let n_groups = n_ranks.div_ceil(group.max(1));
        let mut removed = Vec::new();
        for generation in self.generations(store) {
            let complete = (0..n_groups).all(|g| {
                let Some(FileState::Complete(data)) = store.get(&self.agg_file_name(generation, g))
                else {
                    return false;
                };
                let Ok(container) = Checkpoint::decode(&data) else {
                    return false;
                };
                let lo = g * group;
                let hi = (lo + group).min(n_ranks);
                (lo..hi).all(|r| {
                    container
                        .section(&member_section(r))
                        .is_some_and(|d| Checkpoint::decode(d).is_ok())
                })
            });
            if !complete {
                store.delete_prefix(&self.generation_prefix(generation));
                removed.push(generation);
            }
        }
        removed.sort_unstable();
        removed
    }

    fn cleanup_buddy(&self, store: &FsStore, n_ranks: u32, failed: &[u32]) -> Vec<u64> {
        // The failed ranks' node memories died with their nodes.
        for key in store.list_prefix(&self.mem_prefix()) {
            let lost = failed.iter().any(|f| key.ends_with(&format!("@h{f:07}")));
            if lost {
                store.delete(&key);
            }
        }
        // A generation is restorable when every rank still has a memory
        // copy (own or partner's) or, for a partnerless rank, a valid
        // spill file on the PFS.
        let mut gens: Vec<u64> = self.mem_generations(store);
        for g in self.generations(store) {
            if !gens.contains(&g) {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        let valid_mem = |g: u64, owner: u32, holder: u32| {
            matches!(store.get(&self.mem_file_name(g, owner, holder)),
                Some(FileState::Complete(d)) if Checkpoint::decode(&d).is_ok())
        };
        let mut removed = Vec::new();
        for generation in gens {
            let complete = (0..n_ranks).all(|r| {
                let partner = r ^ 1;
                if partner >= n_ranks {
                    matches!(store.get(&self.file_name(generation, r)),
                        Some(FileState::Complete(d)) if Checkpoint::decode(&d).is_ok())
                } else {
                    valid_mem(generation, r, r) || valid_mem(generation, r, partner)
                }
            });
            if !complete {
                store.delete_prefix(&self.generation_prefix(generation));
                store.delete_prefix(&format!("{}{generation:020}/", self.mem_prefix()));
                removed.push(generation);
            }
        }
        removed
    }

    fn cleanup_incremental(&self, store: &FsStore, n_ranks: u32) -> Vec<u64> {
        // First pass: drop generations with missing/corrupt rank files.
        let mut removed = self.cleanup_incomplete(store, n_ranks);
        // Second pass: drop generations whose diff chain is broken. All
        // ranks write the same generation kinds, so rank 0's file
        // determines the structure.
        let mut gens = self.generations(store);
        gens.sort_unstable();
        let mut valid: Vec<u64> = Vec::new();
        for generation in gens {
            let ok = match store.get(&self.file_name(generation, 0)) {
                Some(FileState::Complete(d)) => match Checkpoint::decode(&d) {
                    Ok(c) => match decode_diff(&c) {
                        Some(diff) => valid.contains(&diff.base_gen),
                        None => true,
                    },
                    Err(_) => false,
                },
                _ => false,
            };
            if ok {
                valid.push(generation);
            } else {
                store.delete_prefix(&self.generation_prefix(generation));
                removed.push(generation);
            }
        }
        removed.sort_unstable();
        removed.dedup();
        removed
    }
}

// ----------------------------------------------------------------------
// The mode writer
// ----------------------------------------------------------------------

/// Per-rank checkpoint writer implementing the selected [`CkptMode`]
/// over a [`CheckpointManager`]. Call from within the owning VP.
pub struct ModeWriter {
    /// Naming and PFS persistence.
    pub mgr: CheckpointManager,
    /// Selected mode.
    pub mode: CkptMode,
    /// Incremental chain state: previous generation's reconstructed
    /// encoded bytes.
    prev: Option<(u64, Bytes)>,
    /// Chain position of the next write (`0` = full).
    pos: u64,
    /// Whether the most recent write was a full checkpoint.
    last_was_full: bool,
    /// Retired-but-chained generations awaiting the next full write.
    retained: Vec<u64>,
}

impl ModeWriter {
    /// Writer for a job prefix and mode.
    pub fn new(mgr: CheckpointManager, mode: CkptMode) -> Self {
        ModeWriter {
            mgr,
            mode,
            prev: None,
            pos: 0,
            last_was_full: true,
            retained: Vec::new(),
        }
    }

    /// Write one checkpoint generation under the configured mode.
    ///
    /// `model_bytes` is the per-rank state volume a modeled-compute run
    /// stands in for (`None` in real-compute runs, where the checkpoint
    /// itself carries the state): it sizes the surrogate network frames
    /// and PFS charges.
    pub async fn write(
        &mut self,
        mpi: &MpiCtx,
        ckpt: &Checkpoint,
        model_bytes: Option<u64>,
    ) -> Result<(), MpiError> {
        match self.mode {
            CkptMode::Full => self.write_full(ckpt, model_bytes).await,
            CkptMode::Aggregated { group } => self.write_agg(mpi, ckpt, model_bytes, group).await,
            CkptMode::Buddy => self.write_buddy(mpi, ckpt, model_bytes).await,
            CkptMode::Incremental { full_every } => {
                self.write_incr(mpi, ckpt, model_bytes, full_every).await
            }
        }
    }

    async fn write_full(
        &self,
        ckpt: &Checkpoint,
        model_bytes: Option<u64>,
    ) -> Result<(), MpiError> {
        if let Some(b) = model_bytes {
            fs::charge_write(b as usize).await;
        }
        self.mgr.write(ckpt).await.map_err(io_err)
    }

    async fn write_agg(
        &self,
        mpi: &MpiCtx,
        ckpt: &Checkpoint,
        model_bytes: Option<u64>,
        group: usize,
    ) -> Result<(), MpiError> {
        let w = mpi.world();
        let g0 = (mpi.rank / group) * group;
        let hi = (g0 + group).min(mpi.size);
        let enc = ckpt.encode();
        if mpi.rank != g0 {
            let framed = frame(&enc, model_bytes);
            let nbytes = framed.len() as u64;
            let _ = mpi.isend(w, g0, CKPT_TAG, framed).await?;
            ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_AGG_FORWARD_BYTES, nbytes));
            return Ok(());
        }
        // Aggregator: gather the group's checkpoints (explicit sources,
        // deterministic order), coalesce into one container file.
        let mut parts: Vec<(u32, Bytes)> = vec![(mpi.rank as u32, enc)];
        let mut reqs = Vec::new();
        for m in (g0 + 1)..hi {
            reqs.push(mpi.irecv(w, Some(m), Some(CKPT_TAG))?);
        }
        let outs = mpi.waitall(w, &reqs).await?;
        for (m, out) in ((g0 + 1)..hi).zip(outs) {
            let msg = out.ok_or_else(|| MpiError::Io("aggregation gather lost".into()))?;
            parts.push((m as u32, unframe(&msg.data)?));
            ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_AGG_GATHERS, 1));
        }
        let mut container = Checkpoint::new(mpi.rank as u32, ckpt.iteration);
        for (r, data) in &parts {
            container = container.with_section(&member_section(*r), data.clone());
        }
        if let Some(b) = model_bytes {
            // One coalesced charge for the whole group's state volume.
            fs::charge_write(b as usize * parts.len()).await;
        }
        let name = self
            .mgr
            .agg_file_name(ckpt.iteration, (mpi.rank / group) as u32);
        self.mgr.write_at(&name, &container).await.map_err(io_err)
    }

    async fn write_buddy(
        &self,
        mpi: &MpiCtx,
        ckpt: &Checkpoint,
        model_bytes: Option<u64>,
    ) -> Result<(), MpiError> {
        let partner = mpi.rank ^ 1;
        if partner >= mpi.size {
            // Partnerless rank: spill to the PFS on demand.
            ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_BUDDY_SPILLS, 1));
            return self.write_full(ckpt, model_bytes).await;
        }
        let w = mpi.world();
        let enc = ckpt.encode();
        let framed = frame(&enc, model_bytes);
        let out = mpi
            .sendrecv(w, partner, CKPT_TAG, framed, Some(partner), Some(CKPT_TAG))
            .await?;
        let theirs = unframe(&out.data)?;
        // Node-local memory tier: free direct puts of both copies.
        let store = vp_store();
        store.put(
            &self.mgr.mem_file_name(ckpt.iteration, ckpt.rank, ckpt.rank),
            enc,
        );
        store.put(
            &self
                .mgr
                .mem_file_name(ckpt.iteration, partner as u32, ckpt.rank),
            theirs,
        );
        ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_BUDDY_COPIES, 1));
        Ok(())
    }

    async fn write_incr(
        &mut self,
        mpi: &MpiCtx,
        ckpt: &Checkpoint,
        model_bytes: Option<u64>,
        full_every: u64,
    ) -> Result<(), MpiError> {
        let enc = ckpt.encode();
        let gen = ckpt.iteration;
        let full = self.prev.is_none() || self.pos == 0;
        if full {
            self.write_full(ckpt, model_bytes).await?;
        } else {
            let (base_gen, base) = self.prev.as_ref().expect("diff requires a base");
            let diff = encode_diff(mpi.rank as u32, gen, *base_gen, base, &enc);
            let n_blocks = diff
                .section(diff_sections::BLOCKS)
                .map(|b| (b.len() / 4) as u64)
                .unwrap_or(0);
            ctx::with_kernel(|k, _| {
                obs::record(k, ids::CKPT_DIFF_BLOCKS, n_blocks);
                obs::record(k, ids::CKPT_DIFF_WRITES, 1);
            });
            if let Some(b) = model_bytes {
                // Modeled dirty fraction: ~25% of the state per interval.
                fs::charge_write((b as usize / 4).max(1)).await;
            }
            let name = self.mgr.file_name(gen, mpi.rank as u32);
            self.mgr.write_at(&name, &diff).await.map_err(io_err)?;
        }
        self.prev = Some((gen, enc));
        self.last_was_full = full;
        self.pos = (self.pos + 1) % full_every.max(1);
        Ok(())
    }

    /// Retire a superseded generation after the post-write barrier (the
    /// paper's delete-previous step). Incremental mode defers deletions
    /// of generations the live diff chain still needs.
    pub async fn retire(&mut self, mpi: &MpiCtx, prev_gen: u64) -> Result<(), MpiError> {
        match self.mode {
            CkptMode::Full | CkptMode::Aggregated { .. } => {
                // Aggregated: the aggregator deletes the group container;
                // members have nothing on the PFS.
                match self.mode {
                    CkptMode::Aggregated { group } if !mpi.rank.is_multiple_of(group) => Ok(()),
                    CkptMode::Aggregated { group } => {
                        let name = self.mgr.agg_file_name(prev_gen, (mpi.rank / group) as u32);
                        fs::delete(&name).await.map_err(io_err)?;
                        ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_DELETES, 1));
                        Ok(())
                    }
                    _ => self
                        .mgr
                        .delete_generation(prev_gen, mpi.rank as u32)
                        .await
                        .map(|_| ())
                        .map_err(io_err),
                }
            }
            CkptMode::Buddy => {
                let partner = mpi.rank ^ 1;
                if partner >= mpi.size {
                    return self
                        .mgr
                        .delete_generation(prev_gen, mpi.rank as u32)
                        .await
                        .map(|_| ())
                        .map_err(io_err);
                }
                // Node-local memory: free direct deletes of the two
                // copies this rank holds.
                let store = vp_store();
                store.delete(
                    &self
                        .mgr
                        .mem_file_name(prev_gen, mpi.rank as u32, mpi.rank as u32),
                );
                store.delete(
                    &self
                        .mgr
                        .mem_file_name(prev_gen, partner as u32, mpi.rank as u32),
                );
                Ok(())
            }
            CkptMode::Incremental { .. } => {
                if self.last_was_full {
                    // A new full checkpoint obsoletes the whole previous
                    // chain.
                    let mut gens = std::mem::take(&mut self.retained);
                    gens.push(prev_gen);
                    for g in gens {
                        self.mgr
                            .delete_generation(g, mpi.rank as u32)
                            .await
                            .map_err(io_err)?;
                    }
                } else {
                    // The live chain still replays through prev_gen.
                    self.retained.push(prev_gen);
                }
                Ok(())
            }
        }
    }

    /// Load the newest restorable checkpoint under the configured mode,
    /// priming the writer's chain state. Call from within the VP before
    /// the first write of a run.
    pub async fn load_latest(&mut self, mpi: &MpiCtx, store: &Arc<FsStore>) -> Option<Checkpoint> {
        match self.mode {
            CkptMode::Full => {
                let c = self.mgr.load_latest(store, mpi.rank as u32).await?;
                record_restore_chain(1);
                Some(c)
            }
            CkptMode::Aggregated { group } => self.load_agg(mpi, store, group).await,
            CkptMode::Buddy => self.load_buddy(mpi, store).await,
            CkptMode::Incremental { full_every } => self.load_incr(mpi, store, full_every).await,
        }
    }

    async fn load_agg(
        &self,
        mpi: &MpiCtx,
        store: &Arc<FsStore>,
        group: usize,
    ) -> Option<Checkpoint> {
        let g = (mpi.rank / group) as u32;
        for generation in self.mgr.generations(store) {
            let name = self.mgr.agg_file_name(generation, g);
            match fs::read(&name).await {
                Ok(FileState::Complete(data)) => {
                    let inner = Checkpoint::decode(&data).ok().and_then(|container| {
                        container
                            .section(&member_section(mpi.rank as u32))
                            .and_then(|d| Checkpoint::decode(d).ok())
                    });
                    match inner {
                        Some(c) => {
                            ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_LOADS, 1));
                            record_restore_chain(1);
                            return Some(c);
                        }
                        None => {
                            ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_CORRUPT_DISCARDED, 1));
                            let _ = fs::delete(&name).await;
                        }
                    }
                }
                Ok(FileState::Partial(_)) => {
                    ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_CORRUPT_DISCARDED, 1));
                    let _ = fs::delete(&name).await;
                }
                Err(_) => {}
            }
        }
        None
    }

    async fn load_buddy(&self, mpi: &MpiCtx, store: &Arc<FsStore>) -> Option<Checkpoint> {
        let rank = mpi.rank as u32;
        let partner = mpi.rank ^ 1;
        if partner >= mpi.size {
            let c = self.mgr.load_latest(store, rank).await?;
            record_restore_chain(1);
            return Some(c);
        }
        for generation in self.mgr.mem_generations(store) {
            // Node-local memory reads are free: own copy first, then the
            // partner's surviving copy.
            for holder in [rank, partner as u32] {
                let name = self.mgr.mem_file_name(generation, rank, holder);
                if let Some(FileState::Complete(data)) = store.get(&name) {
                    if let Ok(c) = Checkpoint::decode(&data) {
                        ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_LOADS, 1));
                        record_restore_chain(1);
                        return Some(c);
                    }
                }
            }
        }
        None
    }

    async fn load_incr(
        &mut self,
        mpi: &MpiCtx,
        store: &Arc<FsStore>,
        full_every: u64,
    ) -> Option<Checkpoint> {
        let rank = mpi.rank as u32;
        'candidates: for generation in self.mgr.generations_for(store, rank) {
            // Walk the ibase chain down to the full checkpoint.
            let mut frames: Vec<DiffFile> = Vec::new();
            let mut chain = vec![generation];
            let mut cur_gen = generation;
            let base = loop {
                let raw = match fs::read(&self.mgr.file_name(cur_gen, rank)).await {
                    Ok(FileState::Complete(d)) => d,
                    _ => continue 'candidates,
                };
                let Ok(c) = Checkpoint::decode(&raw) else {
                    continue 'candidates;
                };
                match decode_diff(&c) {
                    Some(diff) => {
                        cur_gen = diff.base_gen;
                        frames.push(diff);
                        chain.push(cur_gen);
                    }
                    None => break raw,
                }
            };
            // Replay the diffs forward, oldest first.
            let mut bytes = base.to_vec();
            for diff in frames.iter().rev() {
                bytes = apply_diff(&bytes, &diff.indices, &diff.data, diff.new_len, DIFF_BLOCK);
            }
            let Ok(c) = Checkpoint::decode(&bytes) else {
                continue 'candidates;
            };
            ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_LOADS, 1));
            record_restore_chain(chain.len() as u64);
            // Prime the chain state so the next writes continue it.
            self.prev = Some((generation, Bytes::from(bytes)));
            self.pos = chain.len() as u64 % full_every.max(1);
            self.last_was_full = chain.len() == 1;
            self.retained = chain[1..].to_vec();
            return Some(c);
        }
        None
    }
}

fn record_restore_chain(len: u64) {
    ctx::with_kernel(|k, _| obs::record(k, ids::CKPT_RESTORE_CHAIN, len));
}

// ----------------------------------------------------------------------
// Offline resolution (tests/benches, outside the simulation)
// ----------------------------------------------------------------------

/// A checkpoint resolved from the store without simulated I/O.
pub struct ResolvedCheckpoint {
    /// The reconstructed checkpoint.
    pub ckpt: Checkpoint,
    /// Generation it captures.
    pub generation: u64,
    /// Restore-chain length (1 except for incremental diffs).
    pub chain_len: usize,
}

/// Resolve `rank`'s newest restorable checkpoint directly from the
/// store, mirroring the in-simulation loaders — usable from tests and
/// benches to inspect final state regardless of mode.
pub fn resolve_latest(
    store: &FsStore,
    mgr: &CheckpointManager,
    mode: CkptMode,
    rank: u32,
    n_ranks: u32,
) -> Option<ResolvedCheckpoint> {
    let read_valid = |name: &str| match store.get(name) {
        Some(FileState::Complete(d)) => Some(d),
        _ => None,
    };
    match mode {
        CkptMode::Full => {
            for generation in mgr.generations_for(store, rank) {
                if let Some(d) = read_valid(&mgr.file_name(generation, rank)) {
                    if let Ok(ckpt) = Checkpoint::decode(&d) {
                        return Some(ResolvedCheckpoint {
                            ckpt,
                            generation,
                            chain_len: 1,
                        });
                    }
                }
            }
            None
        }
        CkptMode::Aggregated { group } => {
            let g = rank / group as u32;
            for generation in mgr.generations(store) {
                let Some(d) = read_valid(&mgr.agg_file_name(generation, g)) else {
                    continue;
                };
                let inner = Checkpoint::decode(&d).ok().and_then(|container| {
                    container
                        .section(&member_section(rank))
                        .and_then(|b| Checkpoint::decode(b).ok())
                });
                if let Some(ckpt) = inner {
                    return Some(ResolvedCheckpoint {
                        ckpt,
                        generation,
                        chain_len: 1,
                    });
                }
            }
            None
        }
        CkptMode::Buddy => {
            let partner = rank ^ 1;
            if partner >= n_ranks {
                return resolve_latest(store, mgr, CkptMode::Full, rank, n_ranks);
            }
            for generation in mgr.mem_generations(store) {
                for holder in [rank, partner] {
                    if let Some(d) = read_valid(&mgr.mem_file_name(generation, rank, holder)) {
                        if let Ok(ckpt) = Checkpoint::decode(&d) {
                            return Some(ResolvedCheckpoint {
                                ckpt,
                                generation,
                                chain_len: 1,
                            });
                        }
                    }
                }
            }
            None
        }
        CkptMode::Incremental { .. } => {
            'candidates: for generation in mgr.generations_for(store, rank) {
                let mut frames: Vec<DiffFile> = Vec::new();
                let mut chain_len = 1usize;
                let mut cur_gen = generation;
                let base = loop {
                    let Some(raw) = read_valid(&mgr.file_name(cur_gen, rank)) else {
                        continue 'candidates;
                    };
                    let Ok(c) = Checkpoint::decode(&raw) else {
                        continue 'candidates;
                    };
                    match decode_diff(&c) {
                        Some(diff) => {
                            cur_gen = diff.base_gen;
                            chain_len += 1;
                            frames.push(diff);
                        }
                        None => break raw,
                    }
                };
                let mut bytes = base.to_vec();
                for diff in frames.iter().rev() {
                    bytes = apply_diff(&bytes, &diff.indices, &diff.data, diff.new_len, DIFF_BLOCK);
                }
                let Ok(ckpt) = Checkpoint::decode(&bytes) else {
                    continue 'candidates;
                };
                return Some(ResolvedCheckpoint {
                    ckpt,
                    generation,
                    chain_len,
                });
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_diff_round_trips() {
        let base = vec![7u8; 1000];
        let mut cur = base.clone();
        cur[0] = 1;
        cur[511] = 2;
        cur.extend_from_slice(&[9u8; 100]);
        let (idx, data) = block_diff(&base, &cur, DIFF_BLOCK);
        // Blocks 0 (byte 0), 1 (byte 511), 3 (tail shrink + growth) and 4
        // (extension) change; block 2 is untouched.
        assert!(idx.contains(&0) && idx.contains(&1) && !idx.contains(&2));
        let out = apply_diff(&base, &idx, &data, cur.len(), DIFF_BLOCK);
        assert_eq!(out, cur);
    }

    #[test]
    fn block_diff_handles_shrink() {
        let base = vec![3u8; 700];
        let cur = vec![3u8; 300];
        let (idx, data) = block_diff(&base, &cur, DIFF_BLOCK);
        // A pure shrink needs no changed blocks: `new_len` truncates.
        assert!(idx.is_empty());
        let out = apply_diff(&base, &idx, &data, cur.len(), DIFF_BLOCK);
        assert_eq!(out, cur);
        // Shrink plus a tail edit still round-trips.
        let mut cur2 = cur.clone();
        cur2[299] = 9;
        let (idx, data) = block_diff(&base, &cur2, DIFF_BLOCK);
        assert_eq!(idx, vec![1]);
        assert_eq!(apply_diff(&base, &idx, &data, cur2.len(), DIFF_BLOCK), cur2);
    }

    #[test]
    fn identical_bytes_produce_empty_diff() {
        let b = vec![5u8; 4096];
        let (idx, data) = block_diff(&b, &b, DIFF_BLOCK);
        assert!(idx.is_empty() && data.is_empty());
        assert_eq!(apply_diff(&b, &idx, &data, b.len(), DIFF_BLOCK), b);
    }

    #[test]
    fn diff_files_are_valid_checkpoints() {
        let base = Checkpoint::new(3, 10)
            .with_section("grid", Bytes::from(vec![1u8; 900]))
            .encode();
        let cur = Checkpoint::new(3, 20)
            .with_section("grid", Bytes::from(vec![2u8; 900]))
            .encode();
        let diff = encode_diff(3, 20, 10, &base, &cur);
        let enc = diff.encode();
        let back = Checkpoint::decode(&enc).unwrap();
        let d = decode_diff(&back).expect("diff sections");
        assert_eq!(d.base_gen, 10);
        assert_eq!(d.new_len, cur.len());
        let out = apply_diff(&base, &d.indices, &d.data, d.new_len, DIFF_BLOCK);
        assert_eq!(Bytes::from(out), cur);
        // Regular checkpoints are not diffs.
        assert!(decode_diff(&Checkpoint::decode(&base).unwrap()).is_none());
    }

    #[test]
    fn framing_round_trips_and_pads() {
        let enc = Bytes::from(vec![9u8; 40]);
        let f = frame(&enc, Some(4096));
        assert_eq!(f.len(), 4096, "padded to the modeled volume");
        assert_eq!(unframe(&f).unwrap(), enc);
        let f = frame(&enc, None);
        assert_eq!(f.len(), 48, "unpadded in real-compute runs");
        assert_eq!(unframe(&f).unwrap(), enc);
        assert!(unframe(&f[..7]).is_err());
    }

    #[test]
    fn agg_cleanup_requires_all_group_containers() {
        let store = FsStore::new();
        let mgr = CheckpointManager::new("job");
        let member = |r: u32| Checkpoint::new(r, 5).encode();
        // Generation 5: group 0 present, group 1 missing (4 ranks, G=2).
        let c0 = Checkpoint::new(0, 5)
            .with_section(&member_section(0), member(0))
            .with_section(&member_section(1), member(1));
        store.put(&mgr.agg_file_name(5, 0), c0.encode());
        let removed = mgr.cleanup_between_runs(&store, 4, CkptMode::Aggregated { group: 2 }, &[]);
        assert_eq!(removed, vec![5]);
        assert!(!store.exists(&mgr.agg_file_name(5, 0)));
    }

    #[test]
    fn buddy_cleanup_purges_failed_holders_but_keeps_partner_copies() {
        let store = FsStore::new();
        let mgr = CheckpointManager::new("job");
        let enc = |r: u32| Checkpoint::new(r, 3).encode();
        // 2 ranks, both hold both copies.
        for holder in 0..2u32 {
            for owner in 0..2u32 {
                store.put(&mgr.mem_file_name(3, owner, holder), enc(owner));
            }
        }
        // Rank 1's node died: its held copies vanish, but rank 0 still
        // holds rank 1's state, so the generation survives.
        let removed = mgr.cleanup_between_runs(&store, 2, CkptMode::Buddy, &[1]);
        assert!(removed.is_empty());
        assert!(!store.exists(&mgr.mem_file_name(3, 1, 1)));
        assert!(store.exists(&mgr.mem_file_name(3, 1, 0)));
        // Rank 0's node dies too: every copy is gone, nothing restorable.
        let removed = mgr.cleanup_between_runs(&store, 2, CkptMode::Buddy, &[0, 1]);
        assert!(removed.is_empty(), "fully-lost generations just vanish");
        assert!(store.list_prefix(&mgr.mem_prefix()).is_empty());
        assert!(resolve_latest(&store, &mgr, CkptMode::Buddy, 0, 2).is_none());
        // A generation that is enumerable but missing one rank's copies
        // is torn down wholesale.
        store.put(&mgr.mem_file_name(4, 0, 0), enc(0));
        let removed = mgr.cleanup_between_runs(&store, 2, CkptMode::Buddy, &[]);
        assert_eq!(removed, vec![4]);
    }

    #[test]
    fn incremental_cleanup_drops_broken_chains() {
        let store = FsStore::new();
        let mgr = CheckpointManager::new("job");
        let full = Checkpoint::new(0, 10).with_section("s", Bytes::from_static(b"abc"));
        let full_enc = full.encode();
        store.put(&mgr.file_name(10, 0), full_enc.clone());
        let cur = Checkpoint::new(0, 20)
            .with_section("s", Bytes::from_static(b"xyz"))
            .encode();
        store.put(
            &mgr.file_name(20, 0),
            encode_diff(0, 20, 10, &full_enc, &cur).encode(),
        );
        // A diff whose base generation is gone.
        store.put(
            &mgr.file_name(30, 0),
            encode_diff(0, 30, 25, &full_enc, &cur).encode(),
        );
        let removed =
            mgr.cleanup_between_runs(&store, 1, CkptMode::Incremental { full_every: 4 }, &[]);
        assert_eq!(removed, vec![30]);
        let r = resolve_latest(&store, &mgr, CkptMode::Incremental { full_every: 4 }, 0, 1)
            .expect("chain resolves");
        assert_eq!(r.generation, 20);
        assert_eq!(r.chain_len, 2);
        assert_eq!(r.ckpt.section("s").unwrap(), &Bytes::from_static(b"xyz"));
    }
}
