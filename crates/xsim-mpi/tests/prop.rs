//! Model-based property tests: the indexed matching engine must behave
//! exactly like a naive reference implementation of the MPI matching
//! rules, for arbitrary interleavings of posts and deliveries.

use bytes::Bytes;
use proptest::prelude::*;
use xsim_core::{Rank, SimTime};
use xsim_mpi::msg::{Envelope, MatchQueues, PostedRecv, SrcSel, TagSel};
use xsim_mpi::CommId;

/// The operations exercised against both implementations.
#[derive(Debug, Clone)]
enum Op {
    Deliver { src: u32, tag: u32 },
    Post { src: Option<u32>, tag: Option<u32> },
    Cancel { nth_post: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 0u32..3).prop_map(|(src, tag)| Op::Deliver { src, tag }),
        (proptest::option::of(0u32..4), proptest::option::of(0u32..3))
            .prop_map(|(src, tag)| Op::Post { src, tag }),
        (0usize..20).prop_map(|nth_post| Op::Cancel { nth_post }),
    ]
}

/// Naive reference: linear scans in post/delivery order.
#[derive(Default)]
struct NaiveQueues {
    unexpected: Vec<Envelope>,
    posted: Vec<PostedRecv>,
}

impl NaiveQueues {
    fn deliver(&mut self, env: Envelope) -> Option<u64> {
        if let Some(i) = self
            .posted
            .iter()
            .position(|p| p.src.matches(env.src) && p.tag.matches(env.tag))
        {
            Some(self.posted.remove(i).req)
        } else {
            self.unexpected.push(env);
            None
        }
    }

    fn post(&mut self, recv: PostedRecv) -> Option<(Rank, u32, u64)> {
        if let Some(i) = self
            .unexpected
            .iter()
            .position(|e| recv.src.matches(e.src) && recv.tag.matches(e.tag))
        {
            let e = self.unexpected.remove(i);
            Some((e.src, e.tag, e.seq))
        } else {
            self.posted.push(recv);
            None
        }
    }

    fn cancel(&mut self, req: u64) -> bool {
        match self.posted.iter().position(|p| p.req == req) {
            Some(i) => {
                self.posted.remove(i);
                true
            }
            None => false,
        }
    }
}

fn env(src: u32, tag: u32, seq: u64) -> Envelope {
    Envelope {
        src: Rank(src),
        comm: CommId(0),
        tag,
        data: Bytes::new(),
        seq,
        header_arrival: SimTime(seq),
        payload_ready: Some(SimTime(seq)),
        send_req: None,
    }
}

fn recv(req: u64, src: Option<u32>, tag: Option<u32>) -> PostedRecv {
    PostedRecv {
        req,
        comm: CommId(0),
        src: src.map_or(SrcSel::Any, |s| SrcSel::Of(Rank(s))),
        tag: tag.map_or(TagSel::Any, TagSel::Of),
        posted_at: SimTime(0),
        post_seq: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_naive_reference(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut fast = MatchQueues::default();
        let mut naive = NaiveQueues::default();
        let mut seq = 0u64;
        let mut req = 0u64;
        let mut posted_reqs: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Deliver { src, tag } => {
                    seq += 1;
                    let fast_m = fast.deliver(env(src, tag, seq)).map(|(p, _)| p.req);
                    let naive_m = naive.deliver(env(src, tag, seq));
                    prop_assert_eq!(fast_m, naive_m, "deliver diverged");
                }
                Op::Post { src, tag } => {
                    req += 1;
                    let fast_m = fast
                        .post(recv(req, src, tag))
                        .map(|e| (e.src, e.tag, e.seq));
                    let naive_m = naive.post(recv(req, src, tag));
                    prop_assert_eq!(fast_m, naive_m, "post diverged");
                    if fast_m.is_none() {
                        posted_reqs.push(req);
                    }
                }
                Op::Cancel { nth_post } => {
                    if posted_reqs.is_empty() {
                        continue;
                    }
                    let id = posted_reqs[nth_post % posted_reqs.len()];
                    let a = fast.cancel_posted(id);
                    let b = naive.cancel(id);
                    prop_assert_eq!(a, b, "cancel diverged");
                }
            }
            prop_assert_eq!(fast.unexpected_len(), naive.unexpected.len());
            prop_assert_eq!(fast.posted_len(), naive.posted.len());
        }
    }
}
