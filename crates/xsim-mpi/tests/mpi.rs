//! End-to-end tests of the simulated MPI layer.

use bytes::Bytes;
use xsim_core::{ExitKind, SimTime};
use xsim_mpi::{ErrHandler, MpiError, ReduceOp, SimBuilder};
use xsim_net::NetModel;
use xsim_proc::ProcModel;

fn builder(n: usize) -> SimBuilder {
    SimBuilder::new(n).net(NetModel::small(n))
}

#[test]
fn ping_pong_transfers_data_and_time() {
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                mpi.send(w, 1, 7, Bytes::from_static(b"ping")).await?;
                let msg = mpi.recv(w, Some(1), Some(7)).await?;
                assert_eq!(&msg.data[..], b"pong");
                assert_eq!(msg.src.idx(), 1);
            } else {
                let msg = mpi.recv(w, Some(0), Some(7)).await?;
                assert_eq!(&msg.data[..], b"ping");
                mpi.send(w, 0, 7, Bytes::from_static(b"pong")).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert_eq!(report.mpi.sends, 2);
    assert_eq!(report.mpi.recvs, 2);
    assert_eq!(report.mpi.bytes_sent, 8);
    // Both ranks advanced beyond zero and rank 0 saw the round trip.
    assert!(report.sim.final_clocks[0] > report.sim.final_clocks[1]);
}

#[test]
fn eager_send_completes_locally_rendezvous_does_not() {
    // Eager: blocking send of a small message to a receiver that posts
    // its receive *much later* must complete quickly (buffered); the
    // paper's machine uses a 256 kB eager threshold (§V-C).
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                mpi.send(w, 1, 0, Bytes::from(vec![0u8; 1024])).await?;
                let t_small = mpi.now();
                assert!(
                    t_small < SimTime::from_millis(100),
                    "eager send blocked: {t_small}"
                );
                // Rendezvous: 1 MB > threshold; completes only once the
                // receiver posts (at ~1 s).
                mpi.send(w, 1, 1, Bytes::from(vec![0u8; 1 << 20])).await?;
                let t_big = mpi.now();
                assert!(
                    t_big >= SimTime::from_secs(1),
                    "rendezvous completed before receiver posted: {t_big}"
                );
            } else {
                mpi.sleep(SimTime::from_secs(1)).await;
                mpi.recv(w, Some(0), Some(0)).await?;
                mpi.recv(w, Some(0), Some(1)).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn any_source_any_tag_matching() {
    let report = builder(4)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let mut from = Vec::new();
                for _ in 0..3 {
                    let msg = mpi.recv(w, None, None).await?;
                    from.push(msg.src.idx());
                }
                from.sort();
                assert_eq!(from, vec![1, 2, 3]);
            } else {
                mpi.send(w, 0, mpi.rank as u32, Bytes::from_static(b"x"))
                    .await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn collectives_agree() {
    let n = 8;
    let report = builder(n)
        .run_app(move |mpi| async move {
            let w = mpi.world();
            // Barrier.
            mpi.barrier(w).await?;
            // Bcast.
            let data = if mpi.rank == 2 {
                Bytes::from_static(b"from-two")
            } else {
                Bytes::new()
            };
            let got = mpi.bcast(w, 2, data).await?;
            assert_eq!(&got[..], b"from-two");
            // Allreduce sum of rank.
            let s = mpi
                .allreduce_f64(w, &[mpi.rank as f64], ReduceOp::Sum)
                .await?;
            assert_eq!(s, vec![28.0]); // 0+..+7
            let mx = mpi
                .allreduce_u64(w, &[mpi.rank as u64, 7 - mpi.rank as u64], ReduceOp::Max)
                .await?;
            assert_eq!(mx, vec![7, 7]);
            // Gather/scatter round trip.
            let parts = mpi.gather(w, 0, Bytes::from(vec![mpi.rank as u8])).await?;
            let scattered = mpi.scatter(w, 0, parts).await?;
            assert_eq!(scattered[0], mpi.rank as u8);
            // Allgather.
            let all = mpi
                .allgather(w, Bytes::from(vec![mpi.rank as u8 * 3]))
                .await?;
            let vals: Vec<u8> = all.iter().map(|b| b[0]).collect();
            assert_eq!(vals, (0..8).map(|r| r * 3).collect::<Vec<u8>>());
            // Alltoall: rank r sends r*10+j to rank j.
            let outs: Vec<Bytes> = (0..8)
                .map(|j| Bytes::from(vec![(mpi.rank * 10 + j) as u8]))
                .collect();
            let ins = mpi.alltoall(w, outs).await?;
            for (j, b) in ins.iter().enumerate() {
                assert_eq!(b[0] as usize, j * 10 + mpi.rank);
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert!(report.mpi.collectives > 0);
}

#[test]
fn barrier_synchronizes_clocks() {
    // Rank 1 computes for 1 s before the barrier; everyone leaves the
    // barrier at >= 1 s.
    let report = builder(4)
        .run_app(|mpi| async move {
            if mpi.rank == 1 {
                mpi.sleep(SimTime::from_secs(1)).await;
            }
            mpi.barrier(mpi.world()).await?;
            assert!(mpi.now() >= SimTime::from_secs(1), "left barrier early");
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn injected_failure_aborts_job_via_detection() {
    // Rank 1 fails at 0.5 s during compute; rank 0 posts a receive from
    // it and must get the abort cascade: detection happens via the
    // simulated communication timeout, then MPI_ERRORS_ARE_FATAL
    // triggers MPI_Abort (paper §IV-C/D).
    let report = builder(4)
        .inject_failure(1, SimTime::from_millis(500))
        .run_app(|mpi| async move {
            let w = mpi.world();
            match mpi.rank {
                1 => {
                    // Computes past its time of failure; never sends.
                    mpi.sleep(SimTime::from_secs(10)).await;
                }
                0 => {
                    // Blocks on a receive from the failing rank.
                    mpi.recv(w, Some(1), None).await?;
                }
                _ => {
                    // Unrelated long compute; aborts at its end.
                    mpi.sleep(SimTime::from_secs(100)).await;
                }
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Aborted);
    assert_eq!(report.sim.failures.len(), 1);
    assert_eq!(report.sim.failures[0].rank.idx(), 1);
    // Failure activates at the end of the 10 s compute? No: the compute
    // is one long slice, so activation is at its end — but rank 0's
    // *detection* is timeout-based from the scheduled failure time.
    // Actually: rank 1's clock first updates at 10 s, so the actual
    // failure time is 10 s.
    assert_eq!(report.sim.failures[0].actual, SimTime::from_secs(10));
    let abort = report.sim.abort_time.expect("abort happened");
    // Rank 0 detects at max(post, tof) + timeout = 10 s + 1 s.
    assert_eq!(abort, SimTime::from_secs(11));
    // Rank 2/3 abort at the end of their 100 s compute (activation rule).
    assert_eq!(report.sim.final_clocks[2], SimTime::from_secs(100));
}

#[test]
fn failure_mid_compute_slices_activates_early() {
    // With sliced compute (like the heat app's iterations), activation
    // happens at the end of the slice containing the scheduled time.
    let report = builder(2)
        .inject_failure(1, SimTime::from_millis(450))
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let r = mpi.recv(w, Some(1), None).await;
                assert!(r.is_err());
                return r.map(|_| ());
            }
            for _ in 0..100 {
                mpi.sleep(SimTime::from_millis(100)).await;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures[0].actual, SimTime::from_millis(500));
    assert_eq!(
        report.sim.abort_time,
        Some(SimTime::from_millis(500) + SimTime::from_secs(1))
    );
}

#[test]
fn errors_return_lets_application_continue() {
    // With MPI_ERRORS_RETURN the application observes
    // MPI_ERR_PROC_FAILED and keeps running (the ULFM foundation).
    let report = builder(3)
        .errhandler(ErrHandler::Return)
        .inject_failure(2, SimTime::ZERO)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let err = mpi.recv(w, Some(2), None).await.unwrap_err();
                match err {
                    MpiError::ProcFailed { rank, .. } => assert_eq!(rank.idx(), 2),
                    other => panic!("expected ProcFailed, got {other}"),
                }
                // Communication with a live peer still works.
                mpi.send(w, 1, 0, Bytes::from_static(b"ok")).await?;
            } else if mpi.rank == 1 {
                let m = mpi.recv(w, Some(0), Some(0)).await?;
                assert_eq!(&m.data[..], b"ok");
            } else {
                mpi.sleep(SimTime::from_secs(999)).await;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    assert_eq!(report.mpi.proc_failed_errors, 1);
}

#[test]
fn send_to_known_failed_rank_errors() {
    let report = builder(3)
        .errhandler(ErrHandler::Return)
        .inject_failure(1, SimTime::ZERO)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                // Wait for the notification to arrive, then send.
                mpi.sleep(SimTime::from_secs(1)).await;
                assert_eq!(mpi.known_failures().len(), 1);
                let err = mpi
                    .send(w, 1, 0, Bytes::from_static(b"into the void"))
                    .await
                    .unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }));
            } else if mpi.rank == 2 {
                mpi.sleep(SimTime::from_millis(1)).await;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
}

#[test]
fn any_source_recv_fails_on_unacked_failure_and_ack_clears_it() {
    let report = builder(3)
        .errhandler(ErrHandler::Return)
        .inject_failure(2, SimTime::ZERO)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                mpi.sleep(SimTime::from_millis(10)).await; // notification lands
                let err = mpi.recv(w, None, None).await.unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }));
                // Acknowledge; wildcard receives work again.
                mpi.failure_ack()?;
                assert_eq!(mpi.failure_get_acked().len(), 1);
                let m = mpi.recv(w, None, None).await?;
                assert_eq!(m.src.idx(), 1);
            } else if mpi.rank == 1 {
                mpi.sleep(SimTime::from_secs(2)).await;
                mpi.send(w, 0, 9, Bytes::from_static(b"alive")).await?;
            } else {
                mpi.sleep(SimTime::from_secs(999)).await;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
}

#[test]
fn mpi_abort_cascades_to_everyone() {
    let report = builder(4)
        .run_app(|mpi| async move {
            if mpi.rank == 3 && mpi.now() < SimTime::from_secs(1) {
                mpi.sleep(SimTime::from_millis(100)).await;
                return Err(mpi.abort());
            }
            // Everyone else waits for a message that never comes; the
            // abort releases the waits.
            let r = mpi.recv(mpi.world(), Some(3), Some(42)).await;
            assert!(r.is_err());
            r.map(|_| ())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Aborted);
    assert_eq!(report.sim.abort_time, Some(SimTime::from_millis(100)));
    for r in 0..4 {
        assert!(
            report.sim.final_clocks[r] >= SimTime::from_millis(100),
            "rank {r} aborted before the abort time"
        );
    }
}

#[test]
fn return_without_finalize_is_a_process_failure() {
    let report = builder(2)
        .errhandler(ErrHandler::Return)
        .run_app(|mpi| async move {
            if mpi.rank == 0 {
                // "returning from main() ... without having called
                // MPI_Finalize()" (paper §IV-B).
                return Ok(());
            }
            mpi.sleep(SimTime::from_millis(1)).await;
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    assert_eq!(report.sim.failures.len(), 1);
    assert_eq!(report.sim.failures[0].rank.idx(), 0);
}

#[test]
fn comm_split_partitions_and_communicates() {
    let report = builder(6)
        .run_app(|mpi| async move {
            let w = mpi.world();
            let color = (mpi.rank % 2) as u32;
            let sub = mpi
                .comm_split(w, Some(color), mpi.rank as i64)
                .await?
                .expect("every rank has a color");
            let sub_rank = mpi.comm_rank(sub)?;
            let sub_size = mpi.comm_size(sub)?;
            assert_eq!(sub_size, 3);
            assert_eq!(sub_rank, mpi.rank / 2);
            // Sum of world ranks within each sub-communicator.
            let s = mpi
                .allreduce_f64(sub, &[mpi.rank as f64], ReduceOp::Sum)
                .await?;
            let expect = if color == 0 {
                0.0 + 2.0 + 4.0
            } else {
                1.0 + 3.0 + 5.0
            };
            assert_eq!(s, vec![expect]);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn comm_dup_isolates_traffic() {
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            let dup = mpi.comm_dup(w)?;
            if mpi.rank == 0 {
                // Same tag on both communicators; matching must respect
                // the communicator.
                mpi.send(w, 1, 5, Bytes::from_static(b"world")).await?;
                mpi.send(dup, 1, 5, Bytes::from_static(b"dup")).await?;
            } else {
                let on_dup = mpi.recv(dup, Some(0), Some(5)).await?;
                assert_eq!(&on_dup.data[..], b"dup");
                let on_world = mpi.recv(w, Some(0), Some(5)).await?;
                assert_eq!(&on_world.data[..], b"world");
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn ulfm_revoke_shrink_continue() {
    // The classic ULFM recovery pattern from the paper's future work
    // (§VI): detect failure → revoke → shrink → continue on survivors.
    let report = builder(4)
        .errhandler(ErrHandler::Return)
        .inject_failure(2, SimTime::from_millis(100))
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 2 {
                mpi.sleep(SimTime::from_secs(10)).await; // dies at the end
                mpi.finalize();
                return Ok(());
            }
            // Rank 0 tries to talk to rank 2 and detects the failure.
            if mpi.rank == 0 {
                let err = mpi.recv(w, Some(2), Some(0)).await.unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }));
                mpi.comm_revoke(w)?;
            } else {
                // Others learn about the revoke when their operations on
                // the world communicator fail.
                let r = mpi.recv(w, Some(0), Some(77)).await;
                assert!(matches!(r, Err(MpiError::Revoked)), "got {r:?}");
            }
            // Everyone (survivors) shrinks and continues.
            let new_comm = mpi.comm_shrink(w).await?;
            let size = mpi.comm_size(new_comm)?;
            assert_eq!(size, 3);
            let s = mpi.allreduce_f64(new_comm, &[1.0], ReduceOp::Sum).await?;
            assert_eq!(s, vec![3.0]);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
}

#[test]
fn deterministic_across_engines_and_repeats() {
    let run = |workers: usize| {
        SimBuilder::new(12)
            .net(NetModel::small(12))
            .proc(ProcModel::with_slowdown(10.0))
            .workers(workers)
            .inject_failure(7, SimTime::from_millis(40))
            .errhandler(ErrHandler::Return)
            .run_app(|mpi| async move {
                let w = mpi.world();
                // A little compute + neighbor ring exchange, repeated.
                for it in 0..5u32 {
                    mpi.sleep(SimTime::from_millis(10)).await;
                    let right = (mpi.rank + 1) % mpi.size;
                    let left = (mpi.rank + mpi.size - 1) % mpi.size;
                    let sreq = mpi
                        .isend(w, right, it, Bytes::from(vec![mpi.rank as u8]))
                        .await;
                    let rreq = mpi.irecv(w, Some(left), Some(it));
                    match (sreq, rreq) {
                        (Ok(s), Ok(r)) => {
                            let _ = mpi.wait(w, s).await;
                            let _ = mpi.wait(w, r).await;
                        }
                        _ => break,
                    }
                }
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a.sim.final_clocks, b.sim.final_clocks, "repeatability");
    for workers in [2, 4] {
        let c = run(workers);
        assert_eq!(
            a.sim.final_clocks, c.sim.final_clocks,
            "parallel engine with {workers} workers diverged"
        );
        assert_eq!(a.sim.failures, c.sim.failures);
    }
}

#[test]
fn waitany_returns_first_completion() {
    let report = builder(3)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let r1 = mpi.irecv(w, Some(1), Some(0))?;
                let r2 = mpi.irecv(w, Some(2), Some(0))?;
                let (i, out) = mpi.waitany(w, &[r1, r2]).await?;
                // Rank 2 sends sooner.
                assert_eq!(i, 1);
                assert_eq!(out.unwrap().src.idx(), 2);
                // A completed request is consumed (MPI_REQUEST_NULL);
                // wait on the remaining one.
                let out1 = mpi.wait(w, r1).await?;
                assert_eq!(out1.unwrap().src.idx(), 1);
            } else if mpi.rank == 1 {
                mpi.sleep(SimTime::from_secs(1)).await;
                mpi.send(w, 0, 0, Bytes::new()).await?;
            } else {
                mpi.send(w, 0, 0, Bytes::new()).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn test_reports_completion_without_blocking() {
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let r = mpi.irecv(w, Some(1), Some(0))?;
                assert!(mpi.test(w, r)?.is_none(), "nothing sent yet");
                mpi.sleep(SimTime::from_secs(1)).await;
                let done = mpi.test(w, r)?.expect("completed by now");
                assert_eq!(&done.unwrap().data[..], b"hi");
            } else {
                mpi.send(w, 0, 0, Bytes::from_static(b"hi")).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn ulfm_shrink_with_two_dead_ranks() {
    // Shrink must union failure knowledge across survivors: two ranks
    // die, rank 0 detects one of them, yet the shrunk communicator
    // excludes both.
    let report = builder(6)
        .errhandler(ErrHandler::Return)
        .inject_failure(2, SimTime::from_millis(100))
        .inject_failure(4, SimTime::from_millis(100))
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 2 || mpi.rank == 4 {
                mpi.sleep(SimTime::from_secs(5)).await; // dies at the end
                mpi.finalize();
                return Ok(());
            }
            if mpi.rank == 0 {
                let err = mpi.recv(w, Some(2), Some(0)).await.unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }));
                mpi.comm_revoke(w)?;
            } else {
                let r = mpi.recv(w, Some(0), Some(77)).await;
                assert!(matches!(r, Err(MpiError::Revoked)), "got {r:?}");
            }
            let shrunk = mpi.comm_shrink(w).await?;
            assert_eq!(mpi.comm_size(shrunk)?, 4);
            let s = mpi.allreduce_f64(shrunk, &[1.0], ReduceOp::Sum).await?;
            assert_eq!(s, vec![4.0]);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    assert_eq!(report.sim.failures.len(), 2);
}

#[test]
fn ulfm_shrink_survives_inflight_revoke() {
    // Ranks 1 and 2 enter comm_shrink before the revoke notice reaches
    // them: they are blocked in the shrink protocol's system traffic
    // when the revoke lands. Per ULFM, shrink must still complete —
    // recovery traffic is exempt from the revoke release.
    let report = builder(4)
        .errhandler(ErrHandler::Return)
        .inject_failure(3, SimTime::from_millis(100))
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 3 {
                mpi.sleep(SimTime::from_secs(5)).await; // dies at the end
                mpi.finalize();
                return Ok(());
            }
            // All survivors detect the failure independently (identical
            // timeout), so ranks 1 and 2 enter shrink right away and
            // block on the root's reply — the root (rank 0) stalls,
            // then revokes, so its notices land while they are blocked.
            let err = mpi.recv(w, Some(3), Some(0)).await.unwrap_err();
            assert!(matches!(err, MpiError::ProcFailed { .. }));
            if mpi.rank == 0 {
                mpi.sleep(SimTime::from_millis(1)).await;
                mpi.comm_revoke(w)?;
            }
            let shrunk = mpi
                .comm_shrink(w)
                .await
                .expect("shrink must survive an in-flight revoke");
            assert_eq!(mpi.comm_size(shrunk)?, 3);
            mpi.barrier(shrunk).await?;
            // The world communicator stays revoked for everyone.
            let r = mpi.recv(w, Some(0), Some(5)).await;
            assert!(matches!(r, Err(MpiError::Revoked)), "got {r:?}");
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    assert_eq!(report.sim.failures.len(), 1, "only the injected failure");
}

#[test]
fn ulfm_shrink_skips_dead_root() {
    // The lowest-ranked member — the default shrink root — is the dead
    // one; survivors must agree on rank 1 as the root instead.
    let report = builder(4)
        .errhandler(ErrHandler::Return)
        .inject_failure(0, SimTime::from_millis(50))
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                mpi.sleep(SimTime::from_secs(5)).await; // dies at the end
                mpi.finalize();
                return Ok(());
            }
            // Every survivor detects the root's failure first, so all
            // pick the same live root for the shrink protocol.
            let err = mpi.recv(w, Some(0), Some(0)).await.unwrap_err();
            assert!(matches!(err, MpiError::ProcFailed { .. }));
            let shrunk = mpi.comm_shrink(w).await?;
            assert_eq!(mpi.comm_size(shrunk)?, 3);
            // Rank order is preserved in the shrunk communicator.
            assert_eq!(mpi.comm_rank(shrunk)?, mpi.rank - 1);
            let s = mpi.allreduce_f64(shrunk, &[1.0], ReduceOp::Sum).await?;
            assert_eq!(s, vec![3.0]);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
}
