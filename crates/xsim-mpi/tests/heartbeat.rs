//! Property tests for the heartbeat failure detector: the virtual-time
//! protocol must never accuse a live replica (no false positives under
//! any jitter within the declared bound) and must always detect a real
//! death within its declared detection bound.

use proptest::prelude::*;
use xsim_core::SimTime;
use xsim_mpi::HeartbeatConfig;

/// Arbitrary-but-sane protocol parameters: periods from 1 ms to 10 s,
/// timeouts and jitter bounds scaled off the period, any seed.
fn arb_config() -> impl Strategy<Value = HeartbeatConfig> {
    (
        1_000_000u64..10_000_000_000, // period: 1 ms .. 10 s
        1u64..8,                      // timeout = period × this
        0u64..=100,                   // jitter bound: % of period
        0u64..1_000_000,              // one-way latency ns
        any::<u64>(),                 // seed
    )
        .prop_map(|(period, tmul, jpct, latency, seed)| HeartbeatConfig {
            period: SimTime(period),
            timeout: SimTime(period * tmul),
            jitter_bound: SimTime(period * jpct / 100),
            latency: SimTime(latency),
            seed,
        })
}

proptest! {
    /// No false positives: for any observer/target pair and any beat
    /// number, the k-th heartbeat's jittered arrival never lands after
    /// the deadline at which the observer would declare the target dead
    /// — a live replica is never accused, no matter how the per-pair
    /// deterministic jitter falls within its bound.
    #[test]
    fn live_replicas_are_never_accused(
        cfg in arb_config(),
        observer in 0usize..4096,
        target in 0usize..4096,
        k in 0u64..100_000,
    ) {
        let jitter = cfg.jitter(observer, target, k);
        prop_assert!(jitter <= cfg.jitter_bound, "jitter exceeds its declared bound");
        prop_assert!(
            cfg.arrival(observer, target, k) <= cfg.deadline(k),
            "live heartbeat {k} would miss its deadline"
        );
    }

    /// Real deaths are always detected, and within the declared window:
    /// detection happens after the death (plus the timeout — a detector
    /// cannot fire before its grace period ends) and no later than
    /// `detection_bound` past it.
    #[test]
    fn real_deaths_detected_within_bound(
        cfg in arb_config(),
        observer in 0usize..4096,
        target in 0usize..4096,
        tof_ns in 0u64..10_000_000_000_000,
    ) {
        let tof = SimTime(tof_ns);
        let detect = cfg.detection_time(observer, target, tof);
        prop_assert!(detect >= tof, "detection precedes the death");
        prop_assert!(
            detect >= tof + cfg.timeout,
            "detection fired inside the grace period"
        );
        prop_assert!(
            detect <= tof + cfg.detection_bound(),
            "detection exceeded the declared bound"
        );
    }

    /// Determinism: the protocol's jitter is a pure function of
    /// (seed, observer, target, beat) — same inputs, same draw — and
    /// distinct observers of the same target draw independent jitter
    /// streams (they do not march in lockstep).
    #[test]
    fn jitter_is_deterministic_per_edge(
        cfg in arb_config(),
        observer in 0usize..4096,
        target in 0usize..4096,
        k in 0u64..100_000,
    ) {
        prop_assert_eq!(cfg.jitter(observer, target, k), cfg.jitter(observer, target, k));
    }
}
