//! Edge-case tests of the simulated MPI layer: self-sends, rendezvous ×
//! failure interplay, custom error handlers, statistics, tag isolation.

use bytes::Bytes;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use xsim_core::{ExitKind, SimTime};
use xsim_mpi::{ErrHandler, MpiError, SimBuilder};
use xsim_net::NetModel;

fn builder(n: usize) -> SimBuilder {
    SimBuilder::new(n).net(NetModel::small(n))
}

#[test]
fn send_to_self_works_nonblocking() {
    let report = builder(1)
        .run_app(|mpi| async move {
            let w = mpi.world();
            let r = mpi.irecv(w, Some(0), Some(3))?;
            mpi.send(w, 0, 3, Bytes::from_static(b"self")).await?;
            let out = mpi.wait(w, r).await?.expect("payload");
            assert_eq!(&out.data[..], b"self");
            assert_eq!(out.src.idx(), 0);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn rendezvous_sender_released_when_receiver_dies_before_posting() {
    // A rendezvous send to a peer that fails before posting its receive
    // must error out (released by the notification), not hang.
    let report = builder(2)
        .errhandler(ErrHandler::Return)
        .inject_failure(1, SimTime::from_millis(10))
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                // 1 MiB > eager threshold: stays pending until matched.
                let err = mpi
                    .send(w, 1, 0, Bytes::from(vec![0u8; 1 << 20]))
                    .await
                    .unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }), "{err}");
            } else {
                // Dies during this compute, never posts the receive.
                mpi.sleep(SimTime::from_millis(50)).await;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
}

#[test]
fn rendezvous_completes_when_matched_before_failure() {
    // If the transfer was already matched and in flight, it completes
    // even though the receiver fails later.
    let report = builder(2)
        .errhandler(ErrHandler::Return)
        .inject_failure(1, SimTime::from_secs(2))
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                mpi.send(w, 1, 0, Bytes::from(vec![0u8; 1 << 20])).await?;
            } else {
                let m = mpi.recv(w, Some(0), Some(0)).await?;
                assert_eq!(m.data.len(), 1 << 20);
                mpi.sleep(SimTime::from_secs(10)).await; // dies here
                mpi.finalize();
                return Ok(());
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures.len(), 1);
    assert_eq!(report.sim.failures[0].rank.idx(), 1);
}

#[test]
fn custom_errhandler_is_invoked_then_error_returned() {
    let calls = Arc::new(AtomicU32::new(0));
    let calls2 = calls.clone();
    let report = builder(2)
        .errhandler(ErrHandler::Custom(Arc::new(move |e| {
            assert!(matches!(e, MpiError::ProcFailed { .. }));
            calls2.fetch_add(1, Ordering::Relaxed);
        })))
        .inject_failure(1, SimTime::ZERO)
        .run_app(|mpi| async move {
            if mpi.rank == 0 {
                let err = mpi.recv(mpi.world(), Some(1), None).await.unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }));
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        1,
        "handler called exactly once"
    );
}

#[test]
fn tags_isolate_messages_between_same_pair() {
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                // Send tag 2 first, then tag 1.
                mpi.send(w, 1, 2, Bytes::from_static(b"two")).await?;
                mpi.send(w, 1, 1, Bytes::from_static(b"one")).await?;
            } else {
                // Receive in the opposite tag order.
                let one = mpi.recv(w, Some(0), Some(1)).await?;
                assert_eq!(&one.data[..], b"one");
                let two = mpi.recv(w, Some(0), Some(2)).await?;
                assert_eq!(&two.data[..], b"two");
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn message_order_preserved_per_pair_and_tag() {
    // Non-overtaking: 50 same-tag messages arrive in send order even
    // with mixed sizes crossing the eager/rendezvous threshold.
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                for i in 0..50u32 {
                    let size = if i % 7 == 3 { 1 << 19 } else { 64 };
                    let mut payload = vec![0u8; size];
                    payload[0] = i as u8;
                    mpi.send(w, 1, 5, Bytes::from(payload)).await?;
                }
            } else {
                for i in 0..50u32 {
                    let m = mpi.recv(w, Some(0), Some(5)).await?;
                    assert_eq!(m.data[0], i as u8, "message {i} out of order");
                }
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn stats_count_operations() {
    let report = builder(3)
        .run_app(|mpi| async move {
            let w = mpi.world();
            mpi.barrier(w).await?;
            if mpi.rank == 0 {
                mpi.send(w, 1, 0, Bytes::from(vec![0u8; 100])).await?;
            } else if mpi.rank == 1 {
                mpi.recv(w, Some(0), Some(0)).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.mpi.collectives, 3, "one barrier per rank");
    // Barrier internally: 2 sends from non-roots + 2 sends from root,
    // plus the user send.
    assert_eq!(report.mpi.sends, 5);
    assert!(report.mpi.bytes_sent >= 100);
    assert_eq!(report.mpi.proc_failed_errors, 0);
}

#[test]
fn isend_then_never_wait_still_delivers() {
    // A fire-and-forget isend must still deliver (the request is simply
    // never collected).
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let _req = mpi.isend(w, 1, 0, Bytes::from_static(b"fire")).await?;
                // never waited
            } else {
                let m = mpi.recv(w, Some(0), Some(0)).await?;
                assert_eq!(&m.data[..], b"fire");
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn empty_messages_match_like_any_other() {
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                mpi.send(w, 1, 9, Bytes::new()).await?;
            } else {
                let m = mpi.recv(w, None, None).await?;
                assert!(m.data.is_empty());
                assert_eq!(m.tag, 9);
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn two_failures_accumulate_in_failed_list() {
    let report = builder(4)
        .errhandler(ErrHandler::Return)
        .inject_failure(2, SimTime::from_millis(10))
        .inject_failure(3, SimTime::from_millis(20))
        .run_app(|mpi| async move {
            match mpi.rank {
                0 | 1 => {
                    mpi.sleep(SimTime::from_secs(1)).await;
                    let failures = mpi.known_failures();
                    assert_eq!(failures.len(), 2);
                    assert_eq!(failures[0].0.idx(), 2);
                    assert_eq!(failures[1].0.idx(), 3);
                }
                _ => {
                    mpi.sleep(SimTime::from_millis(100)).await;
                }
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures.len(), 2);
}

#[test]
fn unknown_request_wait_is_an_error_not_a_hang() {
    let report = builder(1)
        .errhandler(ErrHandler::Return)
        .run_app(|mpi| async move {
            let w = mpi.world();
            let err = mpi.wait(w, xsim_mpi::ReqId(12345)).await.unwrap_err();
            assert!(matches!(err, MpiError::Invalid(_)));
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn drain_contention_serializes_completions() {
    // Two senders hit rank 0 simultaneously. Without contention both
    // receives complete one recv_overhead after arrival; with
    // serialize_recv they complete recv_overhead apart.
    let run = |serialize: bool| {
        let mut net = NetModel::small(3);
        net.serialize_recv = serialize;
        SimBuilder::new(3)
            .net(net)
            .run_app(|mpi| async move {
                let w = mpi.world();
                if mpi.rank == 0 {
                    let r1 = mpi.irecv(w, Some(1), Some(0))?;
                    let r2 = mpi.irecv(w, Some(2), Some(0))?;
                    mpi.waitall(w, &[r1, r2]).await?;
                } else {
                    mpi.send(w, 0, 0, Bytes::from(vec![0u8; 64])).await?;
                }
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let free = run(false);
    let contended = run(true);
    let d = contended.sim.final_clocks[0] - free.sim.final_clocks[0];
    // One extra recv_overhead (1 µs on the default model) of spacing.
    assert_eq!(d, SimTime::from_micros(1), "drain spacing, got {d}");
}

#[test]
fn drain_contention_preserves_engine_equivalence() {
    let run = |workers: usize| {
        let mut net = NetModel::small(8);
        net.serialize_recv = true;
        SimBuilder::new(8)
            .net(net)
            .workers(workers)
            .run_app(|mpi| async move {
                let w = mpi.world();
                if mpi.rank == 0 {
                    let reqs: Vec<_> = (1..8)
                        .map(|r| mpi.irecv(w, Some(r), Some(0)))
                        .collect::<Result<_, _>>()?;
                    mpi.waitall(w, &reqs).await?;
                } else {
                    mpi.send(w, 0, 0, Bytes::from(vec![mpi.rank as u8])).await?;
                }
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.sim.final_clocks, par.sim.final_clocks);
}

#[test]
fn probe_then_recv_consumes_once() {
    let report = builder(2)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                assert!(mpi.iprobe(w, None, None)?.is_none());
                // Blocking probe waits for the arrival without consuming.
                let (src, tag, len) = mpi.probe(w, None, None).await?;
                assert_eq!((src.idx(), tag, len), (1, 5, 3));
                // A second probe sees the same message.
                let again = mpi.iprobe(w, Some(1), Some(5))?.expect("still queued");
                assert_eq!(again.2, 3);
                // Receiving consumes it.
                let m = mpi.recv(w, Some(src.idx()), Some(tag)).await?;
                assert_eq!(&m.data[..], b"abc");
                assert!(mpi.iprobe(w, None, None)?.is_none());
            } else {
                mpi.sleep(SimTime::from_millis(5)).await;
                mpi.send(w, 0, 5, Bytes::from_static(b"abc")).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn probe_towards_failed_rank_errors() {
    let report = builder(2)
        .errhandler(ErrHandler::Return)
        .inject_failure(1, SimTime::ZERO)
        .run_app(|mpi| async move {
            if mpi.rank == 0 {
                // Wait until the notification lands, then probe.
                mpi.sleep(SimTime::from_millis(10)).await;
                let err = mpi.probe(mpi.world(), Some(1), None).await.unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }));
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures.len(), 1);
}

#[test]
fn sendrecv_symmetric_exchange_cannot_deadlock() {
    // Every rank sendrecvs with its ring neighbor using rendezvous-sized
    // payloads — plain blocking sends would deadlock here.
    let n = 6;
    let report = builder(n)
        .run_app(move |mpi| async move {
            let w = mpi.world();
            let right = (mpi.rank + 1) % mpi.size;
            let left = (mpi.rank + mpi.size - 1) % mpi.size;
            let payload = Bytes::from(vec![mpi.rank as u8; 512 * 1024]); // > eager
            let m = mpi
                .sendrecv(w, right, 1, payload, Some(left), Some(1))
                .await?;
            assert_eq!(m.data[0] as usize, left);
            assert_eq!(m.data.len(), 512 * 1024);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn tree_collectives_agree_with_linear_but_run_faster() {
    use xsim_mpi::CollAlgo;
    let run = |algo: CollAlgo| {
        let n = 64;
        SimBuilder::new(n)
            .net(NetModel::small(n))
            .collectives(algo)
            .run_app(|mpi| async move {
                let got = mpi
                    .bcast(mpi.world(), 0, Bytes::from_static(b"payload"))
                    .await?;
                assert_eq!(&got[..], b"payload");
                mpi.barrier(mpi.world()).await?;
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let linear = run(CollAlgo::Linear);
    let tree = run(CollAlgo::Tree);
    assert_eq!(linear.sim.exit, ExitKind::Completed);
    assert_eq!(tree.sim.exit, ExitKind::Completed);
    assert!(
        tree.sim.timing.max < linear.sim.timing.max,
        "tree {} should beat linear {}",
        tree.sim.timing.max,
        linear.sim.timing.max
    );
}

#[test]
fn racing_aborts_activate_at_earliest_time() {
    // Two ranks initiate MPI_Abort almost simultaneously — both before
    // either initiator's notices can arrive — so every other rank
    // receives two abort notices. Activation must use the *earliest*
    // abort time everywhere: the blocked receiver is released at it and
    // the computing rank aborts at the end of its compute phase.
    let t0 = SimTime::from_millis(10);
    let t1 = t0 + SimTime::from_nanos(500); // within the notify delay
    let report = builder(4)
        .run_app(move |mpi| async move {
            match mpi.rank {
                0 => {
                    mpi.sleep(t0).await;
                    return Err(mpi.abort());
                }
                1 => {
                    mpi.sleep(t1).await;
                    return Err(mpi.abort());
                }
                2 => {
                    // Blocked on a message that never comes.
                    let _ = mpi.recv(mpi.world(), Some(3), Some(0)).await;
                }
                _ => {
                    // Computes past both abort times.
                    mpi.sleep(SimTime::from_millis(50)).await;
                }
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Aborted);
    assert_eq!(report.sim.abort_time, Some(t0), "earliest abort wins");
    assert_eq!(
        report.sim.final_clocks[2], t0,
        "blocked rank released at the earliest abort time, not the later"
    );
    assert_eq!(
        report.sim.final_clocks[3],
        SimTime::from_millis(50),
        "computing rank aborts at the end of its phase"
    );
}
