//! Point-to-point communication.
//!
//! Timing model (see xsim-net):
//!
//! * **eager** (payload ≤ threshold): the sender is charged the send
//!   overhead and completes locally; the header+payload arrive after
//!   `hops·latency` (+ serialization).
//! * **rendezvous**: the header (RTS) arrives after `hops·latency`; when
//!   it matches a posted receive at `t_match`, a CTS/transfer phase of
//!   `2·latency + size/bw` follows; the send request completes when the
//!   transfer does.
//!
//! Failure semantics (paper §IV-C): operations towards a peer known to
//! have failed — and wildcard receives while an unacknowledged failure
//! exists — complete with `MPI_ERR_PROC_FAILED` at
//! `max(post time, time of failure) + network timeout`.
//!
//! Under link/switch faults, injection consults `NetModel::p2p_at`:
//! rerouted messages pay the inflated hop count, degraded links stretch
//! the transfer, and a partitioned destination is escalated into the
//! process-failure path. Under a [`LossyTransport`]
//! (`crate::state::LossyTransport`), each message's transmission
//! attempts are resolved deterministically at injection: the accumulated
//! retransmission backoff delays delivery, and an exhausted retry budget
//! likewise escalates the peer. Note that retransmission delays relax
//! MPI's non-overtaking guarantee between same-peer messages — matching
//! remains correct (the queues match on arrival order), but a later send
//! can arrive first.
//!
//! [`LossyTransport`]: crate::state::LossyTransport

use crate::comm::CommId;
use crate::error::MpiError;
use crate::msg::{Envelope, PostedRecv, SrcSel, TagSel};
use crate::request::{RecvOut, ReqId, ReqKind, ReqResult};
use crate::state::{
    escalate_unreachable, schedule_request_failure, MpiService, RankMpi, TxOutcome,
};
use bytes::Bytes;
use xsim_core::event::Action;
use xsim_core::vp::WaitClass;
use xsim_core::{ctx, Kernel, Rank, SimTime};
use xsim_net::NetClass;
use xsim_obs::ids;
use xsim_obs::service as obs;

/// Run `f` with the MPI service temporarily detached from the kernel, so
/// both can be borrowed mutably. Standard pattern for upper-layer code
/// that schedules events while mutating its own state.
pub(crate) fn with_mpi<R>(k: &mut Kernel, f: impl FnOnce(&mut Kernel, &mut MpiService) -> R) -> R {
    let mut svc = k.take_service::<MpiService>();
    let r = f(k, &mut svc);
    k.put_back_service(svc);
    r
}

/// Common operation entry checks: abort observed? communicator known and
/// (unless exempted, as for ULFM shrink traffic) not revoked?
pub(crate) fn entry_checks_ex(
    rm: &RankMpi,
    comm: CommId,
    allow_revoked: bool,
) -> Result<(), MpiError> {
    if let Some(t) = rm.aborted {
        return Err(MpiError::Aborted { time: t });
    }
    let view = rm
        .comms
        .view(comm)
        .ok_or(MpiError::Invalid("unknown communicator"))?;
    if !allow_revoked && view.revoked.is_some() {
        return Err(MpiError::Revoked);
    }
    Ok(())
}

/// Entry checks with the standard revoke semantics.
pub(crate) fn entry_checks(rm: &RankMpi, comm: CommId) -> Result<(), MpiError> {
    entry_checks_ex(rm, comm, false)
}

/// Post a nonblocking send of `data` to communicator rank `dst` with
/// `tag`. Charges the sender-side software overhead.
pub async fn isend_raw(comm: CommId, dst: usize, tag: u32, data: Bytes) -> Result<ReqId, MpiError> {
    isend_ex(comm, dst, tag, data, false).await
}

/// Like [`isend_raw`] but optionally exempt from the revoked-communicator
/// check (ULFM recovery traffic must flow on revoked communicators).
pub(crate) async fn isend_ex(
    comm: CommId,
    dst: usize,
    tag: u32,
    data: Bytes,
    allow_revoked: bool,
) -> Result<ReqId, MpiError> {
    let (req, overhead) = ctx::with_kernel(|k, me| {
        with_mpi(k, |k, svc| {
            let now = k.vp(me).clock();
            let rm = svc.rank(me);
            entry_checks_ex(rm, comm, allow_revoked)?;
            let view = rm.comms.view(comm).expect("checked");
            let dst_world = view
                .world_rank(dst)
                .ok_or(MpiError::Invalid("destination rank out of range"))?;

            let base = svc.world.net.p2p(me, dst_world, data.len());
            // Fault-aware route at injection time: None means the live
            // link faults partition the network between the two nodes.
            let route = svc.world.net.p2p_at(me, dst_world, data.len(), now);
            let send_overhead = svc.world.net.send_overhead;
            let world = svc.world.clone();

            // Hottest per-send metrics accumulate in the service-local
            // batch (plain field adds) instead of paying a registry
            // lookup each; the batch lands at engine shutdown.
            svc.net_batch
                .observe(base.eager, base.class, data.len() as u64);

            let rm = svc.rank_mut(me);
            rm.stats.sends += 1;
            rm.stats.bytes_sent += data.len() as u64;
            let seq = rm.next_send_seq(dst_world);
            let req = rm
                .reqs
                .create(ReqKind::Send, comm, SrcSel::Of(dst_world), tag, now);

            if let Some(&tof) = rm.failed.get(&dst_world) {
                // Known-failed destination: the send request fails per
                // the configured detector; nothing is transmitted (paper
                // §IV-B: messages to a failed process are deleted).
                let at = world.failure_error_time(me, dst_world, now, tof);
                schedule_request_failure(k, me, req, at, dst_world, tof);
                return Ok((req, send_overhead));
            }

            let Some(route) = route else {
                // Partition: no live path to the destination. Treat the
                // peer as unreachable — fail it one notification delay
                // out and let the regular detection/notification path
                // surface MPI_ERR_PROC_FAILED here and everywhere else.
                let tof = now + world.notify_delay;
                escalate_unreachable(k, dst_world, tof);
                let at = world.failure_error_time(me, dst_world, now, tof);
                schedule_request_failure(k, me, req, at, dst_world, tof);
                return Ok((req, send_overhead));
            };
            let timing = route.timing;

            // Lossy transport: resolve every transmission attempt now
            // (deterministic per (src, dst, seq, attempt)) and either
            // charge the accumulated backoff to the delivery time or
            // declare the peer unreachable on budget exhaustion.
            let mut backoff_total = SimTime::ZERO;
            let mut attempts_dropped = 0u64;
            let mut attempts_corrupt = 0u64;
            let mut delivered = true;
            // Only fabric (system-class) links are lossy; on-node shared
            // memory stays reliable.
            let lossy_here = world
                .lossy
                .filter(|l| base.class == NetClass::System && l.applies(me, dst_world));
            if let Some(lossy) = lossy_here {
                let mut attempt = 0u32;
                loop {
                    match lossy.tx_outcome(me, dst_world, seq, attempt) {
                        TxOutcome::Delivered => break,
                        out => {
                            if out == TxOutcome::Corrupted {
                                attempts_corrupt += 1;
                            } else {
                                attempts_dropped += 1;
                            }
                            if attempt >= lossy.max_retries {
                                delivered = false;
                                break;
                            }
                            backoff_total += lossy.backoff(attempt);
                            attempt += 1;
                        }
                    }
                }
            }

            if obs::enabled(k) {
                let failures = attempts_dropped + attempts_corrupt;
                if attempts_dropped > 0 {
                    obs::record(k, ids::NET_DROPS, attempts_dropped);
                }
                if attempts_corrupt > 0 {
                    obs::record(k, ids::NET_CORRUPT_DROPS, attempts_corrupt);
                }
                if failures > 0 {
                    // Retransmits = attempts beyond the first; the final
                    // failed attempt of an exhausted budget is not
                    // followed by another.
                    let retrans = if delivered { failures } else { failures - 1 };
                    obs::record(k, ids::NET_RETRANSMITS, retrans);
                    obs::record(k, ids::NET_BACKOFF_NS, backoff_total.as_nanos());
                }
                if route.extra_hops > 0 {
                    obs::record(k, ids::NET_REROUTED_HOPS, route.extra_hops as u64);
                }
                if timing.eager && route.degraded_extra > SimTime::ZERO {
                    obs::record(k, ids::NET_DEGRADED_NS, route.degraded_extra.as_nanos());
                }
            }

            if !delivered {
                // Retry budget exhausted: the destination is unreachable
                // as far as this NIC can tell. Escalate into the process
                // failure path at the moment the last retry gave up.
                let t_give_up = now + send_overhead + backoff_total;
                let tof = t_give_up.max(now + world.notify_delay);
                escalate_unreachable(k, dst_world, tof);
                let at = world.failure_error_time(me, dst_world, now, tof);
                schedule_request_failure(k, me, req, at, dst_world, tof);
                return Ok((req, send_overhead));
            }

            let header_arrival = now + send_overhead + backoff_total + timing.latency;
            // Boxed transport envelope: the delivery closure captures 16
            // bytes (rank + pointer) instead of the ~100-byte envelope,
            // and the box itself is drawn from / returned to the service
            // pool, so steady-state messaging allocates nothing here.
            let env = svc.env_box(Envelope {
                src: me,
                comm,
                tag,
                data,
                seq,
                header_arrival,
                payload_ready: timing.eager.then(|| header_arrival + timing.transfer),
                send_req: (!timing.eager).then_some((me, req.0)),
            });
            k.schedule_at(
                header_arrival,
                dst_world,
                Action::call(move |k: &mut Kernel| deliver(k, dst_world, env)),
            );
            if timing.eager {
                // Eager sends complete locally once injected.
                svc.rank_mut(me)
                    .reqs
                    .complete(req, now + send_overhead, Ok(None));
            }
            Ok((req, send_overhead))
        })
    })?;
    if overhead > SimTime::ZERO {
        ctx::sleep(overhead).await;
    }
    Ok(req)
}

/// Post a nonblocking receive. `src`/`tag` of `None` are the
/// `MPI_ANY_SOURCE`/`MPI_ANY_TAG` wildcards; `src` is a communicator
/// rank.
pub fn irecv_raw(comm: CommId, src: Option<usize>, tag: Option<u32>) -> Result<ReqId, MpiError> {
    irecv_ex(comm, src, tag, false)
}

/// Like [`irecv_raw`] but optionally exempt from the revoked check.
pub(crate) fn irecv_ex(
    comm: CommId,
    src: Option<usize>,
    tag: Option<u32>,
    allow_revoked: bool,
) -> Result<ReqId, MpiError> {
    ctx::with_kernel(|k, me| {
        with_mpi(k, |k, svc| {
            let now = k.vp(me).clock();
            let rm = svc.rank(me);
            entry_checks_ex(rm, comm, allow_revoked)?;
            let view = rm.comms.view(comm).expect("checked");
            let src_sel = match src {
                Some(cr) => SrcSel::Of(
                    view.world_rank(cr)
                        .ok_or(MpiError::Invalid("source rank out of range"))?,
                ),
                None => SrcSel::Any,
            };
            let tag_sel = match tag {
                Some(t) => TagSel::Of(t),
                None => TagSel::Any,
            };

            let world = svc.world.clone();
            let rm = svc.rank_mut(me);
            rm.stats.recvs += 1;
            let req = rm
                .reqs
                .create(ReqKind::Recv, comm, src_sel, tag.unwrap_or(0), now);

            // Failure interactions (paper §IV-C).
            if let SrcSel::Of(s) = src_sel {
                if let Some(&tof) = rm.failed.get(&s) {
                    let at = world.failure_error_time(me, s, now, tof);
                    schedule_request_failure(k, me, req, at, s, tof);
                    return Ok(req); // never posted; cannot match
                }
            } else if let Some((dead, tof)) = rm.first_unacked_failure() {
                // Wildcard receives fail while an unacknowledged failure
                // exists — unless a message matches first.
                let at = world.failure_error_time(me, dead, now, tof);
                schedule_request_failure(k, me, req, at, dead, tof);
            }

            let posted = PostedRecv {
                req: req.0,
                comm,
                src: src_sel,
                tag: tag_sel,
                posted_at: now,
                post_seq: 0,
            };
            if let Some(env) = svc.rank_mut(me).queues.post(posted) {
                complete_match(k, svc, me, req, env, now);
            }
            Ok(req)
        })
    })
}

/// Deliver an envelope at its destination (runs as a scheduled event at
/// header-arrival time).
fn deliver(k: &mut Kernel, dst: Rank, env: Box<Envelope>) {
    // "Once a simulated MPI process fails ... all messages directed to
    // this simulated MPI process are deleted" (paper §IV-B).
    if k.vp(dst).is_done() {
        return;
    }
    let queued_at = with_mpi(k, |k, svc| {
        // Recycle the transport box into this (destination) shard's
        // pool; the envelope continues by value.
        let env = svc.env_unbox(env);
        let t_match = env.header_arrival;
        match svc.rank_mut(dst).queues.deliver(env) {
            Some((posted, env)) => {
                complete_match(k, svc, dst, ReqId(posted.req), env, t_match);
                None
            }
            // Queued as unexpected: a blocked prober may be waiting for
            // exactly this arrival. Wake after the service is back in
            // place (the resumed VP reaches for it); waiters on other
            // requests treat the wake as spurious and re-block.
            None => {
                let hwm = svc.rank(dst).queues.unexpected_len() as u64;
                obs::record(k, ids::MPI_UNEXPECTED_HWM, hwm);
                Some(t_match)
            }
        }
    });
    if let Some(t) = queued_at {
        k.wake_if_message_blocked(dst, t);
    }
}

/// A receive matched an envelope at `t_match`: schedule the completion
/// of the receive (and, for rendezvous, of the sender's request).
fn complete_match(
    k: &mut Kernel,
    svc: &mut MpiService,
    dst: Rank,
    req: ReqId,
    env: Envelope,
    t_match: SimTime,
) {
    let recv_ov = svc.world.net.recv_overhead;
    let (base, send_finish) = match env.payload_ready {
        Some(ready) => (t_match.max(ready), None),
        None => {
            // Rendezvous: the transfer happens now, so route it over the
            // link state at match time — a link that degraded or healed
            // since injection changes the transfer, not the handshake.
            // If the network partitioned after the RTS arrived, fall
            // back to the fault-free timing: detection is the job of the
            // next injection, not of an already-matched handshake.
            let (timing, degraded) =
                match svc.world.net.p2p_at(env.src, dst, env.data.len(), t_match) {
                    Some(r) => (r.timing, r.degraded_extra),
                    None => (
                        svc.world.net.p2p(env.src, dst, env.data.len()),
                        SimTime::ZERO,
                    ),
                };
            if degraded > SimTime::ZERO {
                obs::record(k, ids::NET_DEGRADED_NS, degraded.as_nanos());
            }
            let xfer_done = t_match + timing.latency + timing.latency + timing.transfer;
            (xfer_done, env.send_req.map(|sr| (sr, xfer_done)))
        }
    };
    let recv_at = if svc.world.net.serialize_recv {
        // Drain contention: completions at this rank serialize at
        // recv_overhead spacing (receiver-local state, so both engines
        // order them identically).
        let rm = svc.rank_mut(dst);
        let at = base.max(rm.recv_free) + recv_ov;
        rm.recv_free = at;
        at
    } else {
        base + recv_ov
    };
    let out = RecvOut {
        data: env.data,
        src: env.src,
        tag: env.tag,
    };
    k.schedule_at(
        recv_at,
        dst,
        Action::call(move |k: &mut Kernel| {
            finish_request(k, dst, req, recv_at, Ok(Some(out)));
        }),
    );
    if let Some(((src, sreq), at)) = send_finish {
        k.schedule_at(
            at,
            src,
            Action::call(move |k: &mut Kernel| {
                finish_request(k, src, ReqId(sreq), at, Ok(None));
            }),
        );
    }
}

/// Complete a request at `at` and wake its owner if it is blocked on a
/// message wait.
fn finish_request(k: &mut Kernel, owner: Rank, req: ReqId, at: SimTime, result: ReqResult) {
    if k.vp(owner).is_done() {
        return;
    }
    let completed = {
        let svc = k.service_mut::<MpiService>();
        let rm = svc.rank_mut(owner);
        let done = rm.reqs.complete(req, at, result);
        if done {
            rm.push_completion(req.0);
        }
        done
    };
    if completed {
        k.wake_if_message_blocked(owner, at);
    }
}

enum WaitStep {
    Ready(ReqResult),
    Pending,
}

fn poll_request(req: ReqId) -> WaitStep {
    ctx::with_kernel(|k, me| {
        let now = k.vp(me).clock();
        let svc = k.service_mut::<MpiService>();
        let rm = svc.rank_mut(me);
        if let Some(t) = rm.aborted {
            return WaitStep::Ready(Err(MpiError::Aborted { time: t }));
        }
        match rm.reqs.try_take(req, now) {
            Some((_, result)) => WaitStep::Ready(result),
            None => {
                if rm.reqs.get(req).is_none() {
                    WaitStep::Ready(Err(MpiError::Invalid("unknown or consumed request")))
                } else {
                    WaitStep::Pending
                }
            }
        }
    })
}

/// Wait for one request (`MPI_Wait`). Returns the receive payload for
/// receives, `None` for sends.
pub async fn wait_raw(req: ReqId) -> ReqResult {
    loop {
        match poll_request(req) {
            WaitStep::Ready(r) => return r,
            WaitStep::Pending => {
                ctx::block(WaitClass::Message, "MPI wait").await;
            }
        }
    }
}

/// Nonblocking completion check (`MPI_Test`).
pub fn test_raw(req: ReqId) -> Option<ReqResult> {
    match poll_request(req) {
        WaitStep::Ready(r) => Some(r),
        WaitStep::Pending => None,
    }
}

/// Drain the completion feed and return the drained ids. Entries for
/// requests the caller does not hold are safe to drop: a fresh wait
/// always performs an initial full scan that catches pre-completed
/// requests.
fn drain_completion_feed() -> Vec<u64> {
    ctx::with_kernel(|k, me| {
        let svc = k.service_mut::<MpiService>();
        std::mem::take(&mut svc.rank_mut(me).completion_feed)
    })
}

/// Wait for all requests (`MPI_Waitall`). On error, the first failing
/// request's error (among those known complete) is returned.
///
/// After an initial scan, each wakeup re-checks only requests named in
/// the per-rank completion feed, keeping a P-receive wait (a linear
/// collective root) at O(P) total instead of O(P²).
pub async fn waitall_raw(reqs: &[ReqId]) -> Result<Vec<Option<RecvOut>>, MpiError> {
    use std::collections::HashMap;
    let mut out: Vec<Option<Option<RecvOut>>> = vec![None; reqs.len()];
    let mut index: HashMap<u64, usize> = HashMap::with_capacity(reqs.len());
    let mut remaining = 0usize;
    for (i, &req) in reqs.iter().enumerate() {
        match poll_request(req) {
            WaitStep::Ready(Ok(v)) => out[i] = Some(v),
            WaitStep::Ready(Err(e)) => return Err(e),
            WaitStep::Pending => {
                index.insert(req.0, i);
                remaining += 1;
            }
        }
    }
    while remaining > 0 {
        ctx::block(WaitClass::Message, "MPI waitall").await;
        for id in drain_completion_feed() {
            let Some(&i) = index.get(&id) else { continue };
            if out[i].is_some() {
                continue;
            }
            match poll_request(ReqId(id)) {
                WaitStep::Ready(Ok(v)) => {
                    out[i] = Some(v);
                    remaining -= 1;
                }
                WaitStep::Ready(Err(e)) => return Err(e),
                WaitStep::Pending => {}
            }
        }
    }
    Ok(out.into_iter().map(|v| v.expect("all done")).collect())
}

/// Wait for any one of the requests (`MPI_Waitany`): returns the index
/// of the completed request and its result.
pub async fn waitany_raw(reqs: &[ReqId]) -> (usize, ReqResult) {
    use std::collections::HashMap;
    let mut index: HashMap<u64, usize> = HashMap::with_capacity(reqs.len());
    for (i, &req) in reqs.iter().enumerate() {
        match poll_request(req) {
            WaitStep::Ready(r) => return (i, r),
            WaitStep::Pending => {
                index.insert(req.0, i);
            }
        }
    }
    loop {
        ctx::block(WaitClass::Message, "MPI waitany").await;
        for id in drain_completion_feed() {
            let Some(&i) = index.get(&id) else { continue };
            if let WaitStep::Ready(r) = poll_request(ReqId(id)) {
                return (i, r);
            }
        }
    }
}

/// Nonblocking probe (`MPI_Iprobe`): report the earliest matching
/// unexpected message without consuming it, as `(source world rank,
/// tag, payload bytes)`.
pub fn iprobe_raw(
    comm: CommId,
    src: Option<usize>,
    tag: Option<u32>,
) -> Result<Option<(Rank, u32, usize)>, MpiError> {
    ctx::with_kernel(|k, me| {
        let svc = k.service::<MpiService>();
        let rm = svc.rank(me);
        entry_checks(rm, comm)?;
        let view = rm.comms.view(comm).expect("checked");
        let src_sel = match src {
            Some(cr) => SrcSel::Of(
                view.world_rank(cr)
                    .ok_or(MpiError::Invalid("source rank out of range"))?,
            ),
            None => SrcSel::Any,
        };
        let tag_sel = match tag {
            Some(t) => TagSel::Of(t),
            None => TagSel::Any,
        };
        Ok(rm.queues.peek(comm, src_sel, tag_sel))
    })
}

/// Blocking probe (`MPI_Probe`): wait until a matching message is
/// available (or a failure releases the wait), then report it without
/// consuming it.
pub async fn probe_raw(
    comm: CommId,
    src: Option<usize>,
    tag: Option<u32>,
) -> Result<(Rank, u32, usize), MpiError> {
    loop {
        if let Some(found) = iprobe_raw(comm, src, tag)? {
            return Ok(found);
        }
        // A probe towards a failed peer must not hang: reuse the recv
        // failure interactions by checking the failed list directly.
        let failed: Option<MpiError> = ctx::with_kernel(|k, me| {
            let svc = k.service::<MpiService>();
            let rm = svc.rank(me);
            let view = rm.comms.view(comm)?;
            match src {
                Some(cr) => {
                    let s = view.world_rank(cr)?;
                    rm.failed.get(&s).map(|&tof| MpiError::ProcFailed {
                        rank: s,
                        time_of_failure: tof,
                    })
                }
                None => rm
                    .first_unacked_failure()
                    .map(|(r, tof)| MpiError::ProcFailed {
                        rank: r,
                        time_of_failure: tof,
                    }),
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        ctx::block(WaitClass::Message, "MPI probe").await;
    }
}

/// Combined send+receive (`MPI_Sendrecv`): posts both sides before
/// waiting, so symmetric neighbor exchanges cannot deadlock.
pub async fn sendrecv_raw(
    comm: CommId,
    dst: usize,
    send_tag: u32,
    data: Bytes,
    src: Option<usize>,
    recv_tag: Option<u32>,
) -> Result<RecvOut, MpiError> {
    let rreq = irecv_raw(comm, src, recv_tag)?;
    let sreq = isend_raw(comm, dst, send_tag, data).await?;
    let out = wait_raw(rreq).await?;
    wait_raw(sreq).await?;
    out.ok_or(MpiError::Invalid("receive completed without payload"))
}

/// Blocking send (`MPI_Send`): post and wait.
pub async fn send_raw(comm: CommId, dst: usize, tag: u32, data: Bytes) -> Result<(), MpiError> {
    let req = isend_raw(comm, dst, tag, data).await?;
    wait_raw(req).await.map(|_| ())
}

/// Blocking send that is exempt from the revoked-communicator check
/// (ULFM recovery traffic, e.g. shrink).
pub(crate) async fn send_system(
    comm: CommId,
    dst: usize,
    tag: u32,
    data: Bytes,
) -> Result<(), MpiError> {
    let req = isend_ex(comm, dst, tag, data, true).await?;
    wait_raw(req).await.map(|_| ())
}

/// Blocking receive that is exempt from the revoked-communicator check.
pub(crate) async fn recv_system(comm: CommId, src: usize, tag: u32) -> Result<RecvOut, MpiError> {
    let req = irecv_ex(comm, Some(src), Some(tag), true)?;
    match wait_raw(req).await? {
        Some(out) => Ok(out),
        None => Err(MpiError::Invalid("receive completed without payload")),
    }
}

/// Blocking receive (`MPI_Recv`): post and wait.
pub async fn recv_raw(
    comm: CommId,
    src: Option<usize>,
    tag: Option<u32>,
) -> Result<RecvOut, MpiError> {
    let req = irecv_raw(comm, src, tag)?;
    match wait_raw(req).await? {
        Some(out) => Ok(out),
        None => Err(MpiError::Invalid("receive completed without payload")),
    }
}
