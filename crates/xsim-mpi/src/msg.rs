//! Message envelopes and the matching engine.
//!
//! Simulated MPI matching follows the standard:
//!
//! * a delivered message matches the *earliest-posted* fitting receive;
//! * a posted receive matches the *earliest-delivered* fitting unexpected
//!   message;
//! * non-overtaking holds because message *headers* between a given pair
//!   share latency and therefore arrive (and are delivered) in send order.
//!
//! The queues are index-backed so matching stays O(1) for the dominant
//! specific-source/specific-tag case even with tens of thousands of
//! outstanding receives (a linear-algorithm collective at the root posts
//! P−1 of them, paper §V-C).

use crate::comm::CommId;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use xsim_core::{Rank, SimTime};

/// Wildcard-capable source selector (`MPI_ANY_SOURCE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match only this world rank.
    Of(Rank),
    /// `MPI_ANY_SOURCE`.
    Any,
}

impl SrcSel {
    /// Whether a concrete source fits this selector.
    #[inline]
    pub fn matches(self, src: Rank) -> bool {
        match self {
            SrcSel::Of(r) => r == src,
            SrcSel::Any => true,
        }
    }

    /// Whether this selector is the wildcard.
    pub fn is_any(self) -> bool {
        matches!(self, SrcSel::Any)
    }
}

/// Wildcard-capable tag selector (`MPI_ANY_TAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match only this tag.
    Of(u32),
    /// `MPI_ANY_TAG`.
    Any,
}

impl TagSel {
    /// Whether a concrete tag fits this selector.
    #[inline]
    pub fn matches(self, tag: u32) -> bool {
        match self {
            TagSel::Of(t) => t == tag,
            TagSel::Any => true,
        }
    }
}

/// An arrived message envelope.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending world rank.
    pub src: Rank,
    /// Communicator the message travels on.
    pub comm: CommId,
    /// Message tag.
    pub tag: u32,
    /// Payload.
    pub data: Bytes,
    /// Per-(src → dst) send sequence number (diagnostic).
    pub seq: u64,
    /// Virtual time the header arrived at the receiver.
    pub header_arrival: SimTime,
    /// Virtual time the payload is fully available (eager), or `None`
    /// for a rendezvous message whose transfer has not happened yet.
    pub payload_ready: Option<SimTime>,
    /// For rendezvous: the sender-side `(world rank, request id)` to
    /// complete when the transfer finishes.
    pub send_req: Option<(Rank, u64)>,
}

impl Envelope {
    /// A contentless placeholder left behind when a transport box is
    /// recycled. Allocation-free (the empty payload stores inline).
    pub(crate) fn blank() -> Self {
        Envelope {
            src: Rank(0),
            comm: CommId(0),
            tag: 0,
            data: Bytes::new(),
            seq: 0,
            header_arrival: SimTime::ZERO,
            payload_ready: None,
            send_req: None,
        }
    }
}

/// A posted receive awaiting a match.
#[derive(Debug, Clone)]
pub struct PostedRecv {
    /// Receive request id (receiver-local, unique).
    pub req: u64,
    /// Communicator.
    pub comm: CommId,
    /// Source selector.
    pub src: SrcSel,
    /// Tag selector.
    pub tag: TagSel,
    /// Virtual time the receive was posted.
    pub posted_at: SimTime,
    /// Post-order stamp, assigned by the queue (earlier = matched first).
    pub post_seq: u64,
}

#[derive(Debug)]
struct QueuedEnv {
    order: u64,
    env: Envelope,
}

/// The matching state of one receiver: unexpected messages and posted
/// (unmatched) receives.
#[derive(Debug, Default)]
pub struct MatchQueues {
    // Unexpected side: FIFO per (comm, src, tag) bucket, with a global
    // delivery-order stamp for wildcard competition.
    unexpected: HashMap<(CommId, Rank, u32), VecDeque<QueuedEnv>>,
    n_unexpected: usize,
    deliver_counter: u64,
    // Posted side: receives by request id plus four selector indexes
    // holding request ids in post order. Index entries are removed
    // lazily (skipped when the id is no longer in `posted`).
    posted: HashMap<u64, PostedRecv>,
    post_counter: u64,
    idx_exact: HashMap<(CommId, Rank, u32), VecDeque<u64>>,
    idx_any_src: HashMap<(CommId, u32), VecDeque<u64>>,
    idx_any_tag: HashMap<(CommId, Rank), VecDeque<u64>>,
    idx_any_any: HashMap<CommId, VecDeque<u64>>,
}

impl MatchQueues {
    /// Number of unexpected messages queued.
    pub fn unexpected_len(&self) -> usize {
        self.n_unexpected
    }

    /// Number of posted unmatched receives.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    fn front_live(&mut self, key: FrontKey) -> Option<u64> {
        let posted = &self.posted;
        let q = match key {
            FrontKey::Exact(k) => self.idx_exact.get_mut(&k),
            FrontKey::AnySrc(k) => self.idx_any_src.get_mut(&k),
            FrontKey::AnyTag(k) => self.idx_any_tag.get_mut(&k),
            FrontKey::AnyAny(k) => self.idx_any_any.get_mut(&k),
        }?;
        while let Some(&req) = q.front() {
            if posted.contains_key(&req) {
                return Some(req);
            }
            q.pop_front();
        }
        None
    }

    /// Deliver an arrived envelope: match it against the earliest-posted
    /// fitting receive, or queue it as unexpected. Returns the matched
    /// receive and the envelope when a match happened.
    pub fn deliver(&mut self, env: Envelope) -> Option<(PostedRecv, Envelope)> {
        let keys = [
            FrontKey::Exact((env.comm, env.src, env.tag)),
            FrontKey::AnySrc((env.comm, env.tag)),
            FrontKey::AnyTag((env.comm, env.src)),
            FrontKey::AnyAny(env.comm),
        ];
        let mut best: Option<u64> = None;
        for key in keys {
            if let Some(req) = self.front_live(key) {
                let seq = self.posted[&req].post_seq;
                best = match best {
                    Some(b) if self.posted[&b].post_seq <= seq => best,
                    _ => Some(req),
                };
            }
        }
        match best {
            Some(req) => {
                let posted = self.posted.remove(&req).expect("live front");
                Some((posted, env))
            }
            None => {
                self.deliver_counter += 1;
                let order = self.deliver_counter;
                self.n_unexpected += 1;
                self.unexpected
                    .entry((env.comm, env.src, env.tag))
                    .or_default()
                    .push_back(QueuedEnv { order, env });
                None
            }
        }
    }

    /// Post a receive: match it against the earliest-delivered fitting
    /// unexpected message, or queue it. Returns the matched envelope.
    pub fn post(&mut self, mut recv: PostedRecv) -> Option<Envelope> {
        // Locate the best unexpected bucket for this selector.
        let best_bucket: Option<(CommId, Rank, u32)> = match (recv.src, recv.tag) {
            (SrcSel::Of(s), TagSel::Of(t)) => {
                let k = (recv.comm, s, t);
                self.unexpected.get(&k).filter(|q| !q.is_empty()).map(|_| k)
            }
            _ => {
                // Wildcard: scan buckets of this communicator, pick the
                // one whose front has the lowest delivery order.
                let mut best: Option<((CommId, Rank, u32), u64)> = None;
                for (k, q) in &self.unexpected {
                    if k.0 != recv.comm {
                        continue;
                    }
                    if !recv.src.matches(k.1) || !recv.tag.matches(k.2) {
                        continue;
                    }
                    if let Some(front) = q.front() {
                        best = match best {
                            Some((_, o)) if o <= front.order => best,
                            _ => Some((*k, front.order)),
                        };
                    }
                }
                best.map(|(k, _)| k)
            }
        };
        match best_bucket {
            Some(k) => {
                let q = self.unexpected.get_mut(&k).expect("bucket exists");
                let qe = q.pop_front().expect("non-empty bucket");
                if q.is_empty() {
                    self.unexpected.remove(&k);
                }
                self.n_unexpected -= 1;
                Some(qe.env)
            }
            None => {
                self.post_counter += 1;
                recv.post_seq = self.post_counter;
                let req = recv.req;
                match (recv.src, recv.tag) {
                    (SrcSel::Of(s), TagSel::Of(t)) => self
                        .idx_exact
                        .entry((recv.comm, s, t))
                        .or_default()
                        .push_back(req),
                    (SrcSel::Any, TagSel::Of(t)) => self
                        .idx_any_src
                        .entry((recv.comm, t))
                        .or_default()
                        .push_back(req),
                    (SrcSel::Of(s), TagSel::Any) => self
                        .idx_any_tag
                        .entry((recv.comm, s))
                        .or_default()
                        .push_back(req),
                    (SrcSel::Any, TagSel::Any) => self
                        .idx_any_any
                        .entry(recv.comm)
                        .or_default()
                        .push_back(req),
                }
                self.posted.insert(req, recv);
                None
            }
        }
    }

    /// Non-destructively find the earliest-delivered unexpected message
    /// matching the selectors (`MPI_Probe`/`MPI_Iprobe`): returns
    /// `(src, tag, payload bytes)`.
    pub fn peek(&self, comm: CommId, src: SrcSel, tag: TagSel) -> Option<(Rank, u32, usize)> {
        let mut best: Option<(&QueuedEnv, u64)> = None;
        for (k, q) in &self.unexpected {
            if k.0 != comm || !src.matches(k.1) || !tag.matches(k.2) {
                continue;
            }
            if let Some(front) = q.front() {
                best = match best {
                    Some((_, o)) if o <= front.order => best,
                    _ => Some((front, front.order)),
                };
            }
        }
        best.map(|(qe, _)| (qe.env.src, qe.env.tag, qe.env.data.len()))
    }

    /// Remove and return every posted receive whose source selector can
    /// only be satisfied by `failed_src` — plus, if `include_any_source`
    /// is set, every wildcard-source receive. Used by the failure/abort
    /// release machinery (paper §IV-C).
    pub fn take_recvs_involving(
        &mut self,
        failed_src: Rank,
        include_any_source: bool,
    ) -> Vec<PostedRecv> {
        let ids: Vec<u64> = self
            .posted
            .values()
            .filter(|p| match p.src {
                SrcSel::Of(r) => r == failed_src,
                SrcSel::Any => include_any_source,
            })
            .map(|p| p.req)
            .collect();
        let mut out: Vec<PostedRecv> = ids
            .into_iter()
            .map(|id| self.posted.remove(&id).expect("listed"))
            .collect();
        out.sort_by_key(|p| p.post_seq);
        out
    }

    /// Remove a posted receive by request id. Returns whether it was
    /// present (index entries are cleaned lazily).
    pub fn cancel_posted(&mut self, req: u64) -> bool {
        self.posted.remove(&req).is_some()
    }

    /// Drop every unexpected message originating from `src`. (xSim keeps
    /// already-arrived messages from failed peers, so the failure path
    /// does *not* call this; communicator teardown may.)
    pub fn purge_unexpected_from(&mut self, src: Rank) -> usize {
        let keys: Vec<_> = self
            .unexpected
            .keys()
            .filter(|k| k.1 == src)
            .cloned()
            .collect();
        let mut purged = 0;
        for k in keys {
            if let Some(q) = self.unexpected.remove(&k) {
                purged += q.len();
            }
        }
        self.n_unexpected -= purged;
        purged
    }
}

#[derive(Clone, Copy)]
enum FrontKey {
    Exact((CommId, Rank, u32)),
    AnySrc((CommId, u32)),
    AnyTag((CommId, Rank)),
    AnyAny(CommId),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: u32, seq: u64, arrival_ns: u64) -> Envelope {
        Envelope {
            src: Rank(src),
            comm: CommId(0),
            tag,
            data: Bytes::new(),
            seq,
            header_arrival: SimTime(arrival_ns),
            payload_ready: Some(SimTime(arrival_ns)),
            send_req: None,
        }
    }

    fn recv(req: u64, src: SrcSel, tag: TagSel) -> PostedRecv {
        PostedRecv {
            req,
            comm: CommId(0),
            src,
            tag,
            posted_at: SimTime(0),
            post_seq: 0,
        }
    }

    #[test]
    fn unexpected_then_post_matches() {
        let mut q = MatchQueues::default();
        assert!(q.deliver(env(1, 7, 0, 10)).is_none());
        assert_eq!(q.unexpected_len(), 1);
        let m = q.post(recv(0, SrcSel::Of(Rank(1)), TagSel::Of(7))).unwrap();
        assert_eq!(m.src, Rank(1));
        assert_eq!(q.unexpected_len(), 0);
    }

    #[test]
    fn post_then_deliver_matches() {
        let mut q = MatchQueues::default();
        assert!(q.post(recv(0, SrcSel::Any, TagSel::Any)).is_none());
        let (r, e) = q.deliver(env(3, 9, 0, 5)).unwrap();
        assert_eq!(r.req, 0);
        assert_eq!(e.src, Rank(3));
        assert_eq!(q.posted_len(), 0);
    }

    #[test]
    fn non_overtaking_same_sender() {
        let mut q = MatchQueues::default();
        // Headers arrive in send order (same pair, same latency).
        q.deliver(env(1, 7, 0, 10));
        q.deliver(env(1, 7, 1, 11));
        let m = q.post(recv(0, SrcSel::Of(Rank(1)), TagSel::Of(7))).unwrap();
        assert_eq!(m.seq, 0, "first-sent must match first");
        let m2 = q.post(recv(1, SrcSel::Of(Rank(1)), TagSel::Of(7))).unwrap();
        assert_eq!(m2.seq, 1);
    }

    #[test]
    fn wildcard_prefers_earliest_delivery() {
        let mut q = MatchQueues::default();
        q.deliver(env(1, 7, 0, 10));
        q.deliver(env(2, 7, 0, 20));
        let m = q.post(recv(0, SrcSel::Any, TagSel::Of(7))).unwrap();
        assert_eq!(m.src, Rank(1), "earliest delivered wins");
        let m2 = q.post(recv(1, SrcSel::Any, TagSel::Of(7))).unwrap();
        assert_eq!(m2.src, Rank(2));
    }

    #[test]
    fn tag_and_comm_must_fit() {
        let mut q = MatchQueues::default();
        q.deliver(env(1, 7, 0, 10));
        assert!(q
            .post(recv(0, SrcSel::Of(Rank(1)), TagSel::Of(8)))
            .is_none());
        assert_eq!(q.posted_len(), 1);
        assert!(q.deliver(env(1, 9, 1, 12)).is_none());
        let (r, _) = q.deliver(env(1, 8, 2, 13)).unwrap();
        assert_eq!(r.req, 0);
    }

    #[test]
    fn different_comms_do_not_match() {
        let mut q = MatchQueues::default();
        let mut e = env(1, 7, 0, 10);
        e.comm = CommId(5);
        q.deliver(e);
        assert!(q.post(recv(0, SrcSel::Any, TagSel::Any)).is_none());
        assert_eq!(q.posted_len(), 1);
        assert_eq!(q.unexpected_len(), 1);
    }

    #[test]
    fn fifo_among_posted_recvs() {
        let mut q = MatchQueues::default();
        q.post(recv(0, SrcSel::Any, TagSel::Any));
        q.post(recv(1, SrcSel::Any, TagSel::Any));
        let (r, _) = q.deliver(env(5, 1, 0, 3)).unwrap();
        assert_eq!(r.req, 0, "oldest posted recv matches first");
    }

    #[test]
    fn earlier_wildcard_beats_later_specific() {
        let mut q = MatchQueues::default();
        q.post(recv(0, SrcSel::Any, TagSel::Any));
        q.post(recv(1, SrcSel::Of(Rank(5)), TagSel::Of(1)));
        let (r, _) = q.deliver(env(5, 1, 0, 3)).unwrap();
        assert_eq!(r.req, 0, "posting order decides, not specificity");
        let (r2, _) = q.deliver(env(5, 1, 1, 4)).unwrap();
        assert_eq!(r2.req, 1);
    }

    #[test]
    fn take_recvs_involving_failed_rank() {
        let mut q = MatchQueues::default();
        q.post(recv(0, SrcSel::Of(Rank(1)), TagSel::Any));
        q.post(recv(1, SrcSel::Of(Rank(2)), TagSel::Any));
        q.post(recv(2, SrcSel::Any, TagSel::Any));
        let released = q.take_recvs_involving(Rank(1), false);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].req, 0);
        let released = q.take_recvs_involving(Rank(1), true);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].req, 2, "wildcard released when requested");
        assert_eq!(q.posted_len(), 1);
    }

    #[test]
    fn cancel_posted_removes_lazily() {
        let mut q = MatchQueues::default();
        q.post(recv(7, SrcSel::Any, TagSel::Any));
        q.post(recv(8, SrcSel::Any, TagSel::Any));
        assert!(q.cancel_posted(7));
        assert!(!q.cancel_posted(7));
        // The stale index entry must be skipped: the delivery matches 8.
        let (r, _) = q.deliver(env(1, 1, 0, 1)).unwrap();
        assert_eq!(r.req, 8);
    }

    #[test]
    fn peek_is_nondestructive_and_ordered() {
        let mut q = MatchQueues::default();
        assert!(q.peek(CommId(0), SrcSel::Any, TagSel::Any).is_none());
        q.deliver(env(2, 7, 0, 10));
        q.deliver(env(1, 9, 0, 11));
        let (src, tag, len) = q.peek(CommId(0), SrcSel::Any, TagSel::Any).unwrap();
        assert_eq!((src, tag, len), (Rank(2), 7, 0), "earliest delivery");
        assert_eq!(
            q.peek(CommId(0), SrcSel::Of(Rank(1)), TagSel::Any)
                .unwrap()
                .1,
            9
        );
        assert!(q
            .peek(CommId(0), SrcSel::Of(Rank(3)), TagSel::Any)
            .is_none());
        assert_eq!(q.unexpected_len(), 2, "peek must not consume");
    }

    #[test]
    fn purge_unexpected() {
        let mut q = MatchQueues::default();
        q.deliver(env(1, 0, 0, 1));
        q.deliver(env(1, 3, 1, 2));
        q.deliver(env(2, 0, 0, 3));
        assert_eq!(q.purge_unexpected_from(Rank(1)), 2);
        assert_eq!(q.unexpected_len(), 1);
    }

    #[test]
    fn many_specific_recvs_match_quickly() {
        // Smoke-check the indexed path: P-1 posted specific receives, as
        // a linear collective root would create.
        let mut q = MatchQueues::default();
        let n = 10_000u32;
        for i in 0..n {
            q.post(recv(i as u64, SrcSel::Of(Rank(i)), TagSel::Of(42)));
        }
        for i in (0..n).rev() {
            let (r, _) = q.deliver(env(i, 42, 0, i as u64)).unwrap();
            assert_eq!(r.req, i as u64);
        }
        assert_eq!(q.posted_len(), 0);
    }
}
