//! Crash-tolerant rank replication (TeaMPI / PartRePer-MPI lineage,
//! paper §II-C and §VI).
//!
//! Where [`crate::redundancy`] reproduces RedMPI's *soft-error* voting,
//! this module makes replicas survive *crashes*: every logical rank is
//! backed by a team of physical replicas, replica deaths are detected by
//! a deterministic virtual-time heartbeat protocol, and a surviving
//! replica transparently assumes the dead leader's logical rank — the
//! application never sees an error as long as one replica per logical
//! rank survives. A PartRePer-style *partial* mode replicates only a
//! configurable critical subset of logical ranks; an unprotected rank's
//! death surfaces as `MPI_ERR_PROC_FAILED` and falls back to the
//! ULFM-shrink + checkpoint/restart path.
//!
//! ## Protocol
//!
//! All replicas of a logical rank execute the same application code in
//! virtual-time lockstep (active replication), so their outgoing
//! payloads and per-channel sequence numbers are identical. A logical
//! message from `S` to `D` is realized as one physical copy from every
//! *believed-live* replica of `S` to every *believed-live* replica of
//! `D` (the rMPI "mirror" discipline; the r² amplification is part of
//! the measured replication overhead). A receiver consumes all copies it
//! posted for and uses the one from the lowest-indexed replica — the
//! channel's *leader*. When the leader dies, the next copy is already in
//! flight from a surviving replica: failover is a local re-selection, no
//! resend protocol and no application-visible error. Copies from
//! replicas that die mid-flight complete with `MPI_ERR_PROC_FAILED` at
//! the detector-bounded failure-error time; the replication layer
//! swallows those instead of escalating them to the communicator's error
//! handler — the team-traffic exemption that keeps `MPI_ERRORS_ARE_FATAL`
//! applications alive through replica deaths. Only when *every* replica
//! of a logical rank is dead does the layer surface `ProcFailed`.
//!
//! Liveness beliefs come from the simulator's failure notifications
//! gated by the heartbeat detector's per-pair detection time, so a
//! replica is routed around only once its death would actually have been
//! detected. Every quantity involved (time of failure, detection time,
//! jitter draw) is a pure function of virtual time and the master seed,
//! preserving byte-identical determinism across engines.
//!
//! Messages never match across sequence numbers: each logical channel
//! carries a monotonically increasing sequence encoded in the physical
//! tag, and a framed header carries the application tag for validation.
//! The layer therefore requires per-channel FIFO receive order and
//! explicit sources (no wildcards) — the restriction replication
//! libraries in the TeaMPI family also impose.

use crate::comm::Comm;
use crate::error::MpiError;
use crate::mpi_ctx::MpiCtx;
use crate::p2p;
use crate::request::ReqId;
use crate::state::Detector;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;
use xsim_core::{ctx, DetRng, Rank, SimTime};
use xsim_obs::{ids, service as obs};
use xsim_proc::Work;

/// Tag space reserved for replication-layer traffic: below
/// `COLL_TAG_BASE` (1 << 30), disjoint from plain application tags by
/// convention (applications running under replication send through this
/// layer, never raw tags in this range).
pub const REP_TAG_BASE: u32 = 1 << 28;
const REP_SEQ_MASK: u32 = (1 << 28) - 1;

/// Internal application-tag used by the logical collectives.
const REP_COLL_TAG: u32 = 0x0C01_1EC7;

#[inline]
fn rep_tag(seq: u64) -> u32 {
    REP_TAG_BASE | (seq as u32 & REP_SEQ_MASK)
}

// ---------------------------------------------------------------------
// Protection schemes
// ---------------------------------------------------------------------

/// How checkpoint/restart writes its generations (Kohl et al.'s
/// scalable-checkpointing modes, layered on the striped PFS model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptMode {
    /// Every rank writes its own full checkpoint file each generation.
    #[default]
    Full,
    /// Rank-group coalescing: members forward their state to an elected
    /// aggregator (the lowest rank of each `group`-sized block), which
    /// writes one container file per group — trading intra-group
    /// messages for far fewer PFS requests.
    Aggregated {
        /// Ranks per aggregation group (≥ 2).
        group: usize,
    },
    /// In-memory buddy checkpointing: each rank keeps its checkpoint in
    /// a node-local tier on itself *and* its partner (`rank ^ 1`);
    /// nothing touches the PFS unless a rank has no partner (odd world
    /// sizes spill to a full PFS checkpoint). Node-local copies survive
    /// restarts but die with the rank's node.
    Buddy,
    /// Incremental checkpointing: every `full_every`-th generation is a
    /// full checkpoint, the ones between are block diffs against the
    /// immediately preceding generation; restore replays full + diffs.
    Incremental {
        /// Cadence of full checkpoints (≥ 1; 1 degenerates to `Full`).
        full_every: u64,
    },
}

impl CkptMode {
    /// Default aggregation group size for `cr:agg`.
    pub const DEFAULT_GROUP: usize = 8;
    /// Default full-checkpoint cadence for `cr:incr`.
    pub const DEFAULT_FULL_EVERY: u64 = 4;
}

impl fmt::Display for CkptMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptMode::Full => write!(f, "full"),
            CkptMode::Aggregated { group } => write!(f, "agg:{group}"),
            CkptMode::Buddy => write!(f, "buddy"),
            CkptMode::Incremental { full_every } => write!(f, "incr:{full_every}"),
        }
    }
}

/// The resilience scheme protecting a run — the `--protection` /
/// `XSIM_PROTECTION` axis of the FIT × scheme ablation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtectionScheme {
    /// No protection: a failure aborts the run; restart from scratch.
    None,
    /// Checkpoint/restart only (the paper's technique of record).
    CheckpointRestart {
        /// How checkpoint generations are written.
        mode: CkptMode,
    },
    /// Full replication: every logical rank backed by `degree` replicas.
    Replication {
        /// Replication degree (≥ 2).
        degree: usize,
    },
    /// Partial replication: only `critical` logical ranks get `degree`
    /// replicas; the rest stay singletons protected by C/R + ULFM shrink.
    Partial {
        /// Replication degree for the critical set (≥ 2).
        degree: usize,
        /// The protected logical ranks.
        critical: BTreeSet<usize>,
    },
}

/// Error parsing a protection-scheme string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectionParseError(pub String);

impl fmt::Display for ProtectionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid protection scheme: {}", self.0)
    }
}

impl std::error::Error for ProtectionParseError {}

impl ProtectionScheme {
    /// Whether the scheme replicates any rank.
    pub fn is_replicated(&self) -> bool {
        matches!(
            self,
            ProtectionScheme::Replication { .. } | ProtectionScheme::Partial { .. }
        )
    }

    /// The replication degree (1 for unreplicated schemes).
    pub fn degree(&self) -> usize {
        match self {
            ProtectionScheme::Replication { degree } | ProtectionScheme::Partial { degree, .. } => {
                *degree
            }
            _ => 1,
        }
    }

    /// The checkpoint mode the scheme's C/R component uses
    /// ([`CkptMode::Full`] for every non-`cr` scheme — replication's
    /// fallback checkpoints stay plain full files).
    pub fn ckpt_mode(&self) -> CkptMode {
        match self {
            ProtectionScheme::CheckpointRestart { mode } => *mode,
            _ => CkptMode::Full,
        }
    }

    /// Read the scheme from the `XSIM_PROTECTION` environment variable,
    /// if set (parsed alongside `XSIM_FAILURES`/`XSIM_NET_FAULTS` by the
    /// bench harnesses).
    pub fn from_env() -> Result<Option<Self>, ProtectionParseError> {
        match std::env::var("XSIM_PROTECTION") {
            Ok(s) if !s.trim().is_empty() => s.parse().map(Some),
            _ => Ok(None),
        }
    }
}

/// Parse a critical-set expression: comma-free list of `N` and `A-B`
/// ranges separated by `+` (the scheme string itself is `:`-separated
/// and typically lives inside a comma-separated environment).
fn parse_critical(s: &str) -> Result<BTreeSet<usize>, ProtectionParseError> {
    let mut out = BTreeSet::new();
    for part in s.split('+') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((a, b)) = part.split_once('-') {
            let a: usize = a
                .trim()
                .parse()
                .map_err(|_| ProtectionParseError(format!("bad range start in '{part}'")))?;
            let b: usize = b
                .trim()
                .parse()
                .map_err(|_| ProtectionParseError(format!("bad range end in '{part}'")))?;
            if b < a {
                return Err(ProtectionParseError(format!("empty range '{part}'")));
            }
            out.extend(a..=b);
        } else {
            out.insert(
                part.parse()
                    .map_err(|_| ProtectionParseError(format!("bad rank in '{part}'")))?,
            );
        }
    }
    if out.is_empty() {
        return Err(ProtectionParseError("empty critical set".into()));
    }
    Ok(out)
}

impl FromStr for ProtectionScheme {
    type Err = ProtectionParseError;

    /// Parse `none` | `cr[:MODE[:PARAM]]` | `replication[:DEGREE]` |
    /// `partial[:DEGREE[:SET]]`.
    ///
    /// `MODE` selects the checkpoint mode: `full` (default),
    /// `agg[:GROUP]` (aggregated writes, default group 8),
    /// `buddy` (in-memory partner copies), `incr[:K]` (incremental with
    /// a full checkpoint every `K` generations, default 4) — e.g.
    /// `cr:buddy`, `cr:incr:4`, `cr:agg:16`.
    ///
    /// `SET` is `+`-separated ranks and `A-B` ranges (e.g.
    /// `partial:2:0-3+8`). A partial scheme without a set defaults to
    /// logical rank 0 (callers usually override).
    fn from_str(s: &str) -> Result<Self, ProtectionParseError> {
        let mut parts = s.trim().split(':');
        let kind = parts.next().unwrap_or("").trim().to_ascii_lowercase();
        let scheme = match kind.as_str() {
            "none" => ProtectionScheme::None,
            "cr" | "checkpoint" | "checkpoint-restart" => {
                let mode = match parts.next().map(|m| m.trim().to_ascii_lowercase()) {
                    None => CkptMode::Full,
                    Some(m) => {
                        let param = parts.next();
                        let parse_param = |default: u64| -> Result<u64, ProtectionParseError> {
                            match param {
                                Some(p) => p.trim().parse::<u64>().map_err(|_| {
                                    ProtectionParseError(format!("bad mode parameter in '{s}'"))
                                }),
                                None => Ok(default),
                            }
                        };
                        match m.as_str() {
                            "full" => {
                                if param.is_some() {
                                    return Err(ProtectionParseError(format!(
                                        "cr:full takes no parameter in '{s}'"
                                    )));
                                }
                                CkptMode::Full
                            }
                            "agg" | "aggregated" => {
                                let group = parse_param(CkptMode::DEFAULT_GROUP as u64)? as usize;
                                if group < 2 {
                                    return Err(ProtectionParseError(
                                        "aggregation group must be >= 2".into(),
                                    ));
                                }
                                CkptMode::Aggregated { group }
                            }
                            "buddy" => {
                                if param.is_some() {
                                    return Err(ProtectionParseError(format!(
                                        "cr:buddy takes no parameter in '{s}'"
                                    )));
                                }
                                CkptMode::Buddy
                            }
                            "incr" | "incremental" => {
                                let full_every = parse_param(CkptMode::DEFAULT_FULL_EVERY)?;
                                if full_every == 0 {
                                    return Err(ProtectionParseError(
                                        "incremental cadence must be >= 1".into(),
                                    ));
                                }
                                CkptMode::Incremental { full_every }
                            }
                            other => {
                                return Err(ProtectionParseError(format!(
                                "unknown checkpoint mode '{other}' (expected full|agg|buddy|incr)"
                            )))
                            }
                        }
                    }
                };
                ProtectionScheme::CheckpointRestart { mode }
            }
            "replication" | "rep" | "full" => {
                let degree = match parts.next() {
                    Some(d) => d
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| ProtectionParseError(format!("bad degree in '{s}'")))?,
                    None => 2,
                };
                if degree < 2 {
                    return Err(ProtectionParseError("degree must be >= 2".into()));
                }
                ProtectionScheme::Replication { degree }
            }
            "partial" => {
                let degree = match parts.next() {
                    Some(d) => d
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| ProtectionParseError(format!("bad degree in '{s}'")))?,
                    None => 2,
                };
                if degree < 2 {
                    return Err(ProtectionParseError("degree must be >= 2".into()));
                }
                let critical = match parts.next() {
                    Some(set) => parse_critical(set)?,
                    None => BTreeSet::from([0]),
                };
                ProtectionScheme::Partial { degree, critical }
            }
            other => {
                return Err(ProtectionParseError(format!(
                    "unknown scheme '{other}' (expected none|cr|replication|partial)"
                )))
            }
        };
        if parts.next().is_some() {
            return Err(ProtectionParseError(format!("trailing fields in '{s}'")));
        }
        Ok(scheme)
    }
}

impl fmt::Display for ProtectionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionScheme::None => write!(f, "none"),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Full,
            } => write!(f, "cr"),
            ProtectionScheme::CheckpointRestart { mode } => write!(f, "cr:{mode}"),
            ProtectionScheme::Replication { degree } => write!(f, "replication:{degree}"),
            ProtectionScheme::Partial { degree, critical } => {
                write!(f, "partial:{degree}:")?;
                for (i, r) in critical.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Heartbeat failure detection
// ---------------------------------------------------------------------

/// The simulated heartbeat protocol: every replica emits a heartbeat to
/// its observers each `period`; a heartbeat's one-way delivery takes
/// `latency` plus a deterministic per-(observer, target, beat) jitter in
/// `[0, jitter_bound]`. An observer declares a target dead when a
/// heartbeat has not arrived `timeout` past its worst-case arrival.
///
/// Everything is a pure function of virtual time and `seed` — no
/// messages are exchanged; the protocol's timing *is* its simulation
/// (the same modeling style as [`crate::state::LossyTransport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Heartbeat emission period.
    pub period: SimTime,
    /// Grace period past the worst-case arrival before declaring death.
    pub timeout: SimTime,
    /// Declared bound on per-heartbeat delivery jitter.
    pub jitter_bound: SimTime,
    /// Base one-way heartbeat latency.
    pub latency: SimTime,
    /// Seed for the jitter draws.
    pub seed: u64,
}

/// Domain separator for heartbeat jitter draws.
const HB_STREAM: u64 = 0x48EA_7B3A_7000_0000;

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: SimTime::from_millis(50),
            timeout: SimTime::from_millis(200),
            jitter_bound: SimTime::from_millis(10),
            latency: SimTime::from_micros(10),
            seed: 0x5EED_BEA7,
        }
    }
}

impl HeartbeatConfig {
    /// The deterministic delivery jitter of heartbeat `k` from `target`
    /// to `observer`, in `[0, jitter_bound]`.
    pub fn jitter(&self, observer: usize, target: usize, k: u64) -> SimTime {
        let tag = HB_STREAM
            ^ (observer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (target as u64).rotate_left(23)
            ^ k.rotate_left(44);
        let mut rng = DetRng::stream(self.seed, tag);
        SimTime(rng.gen_range_u64(self.jitter_bound.as_nanos() + 1))
    }

    /// When heartbeat `k` (emitted at `k · period`) from a live `target`
    /// arrives at `observer`.
    pub fn arrival(&self, observer: usize, target: usize, k: u64) -> SimTime {
        SimTime(k * self.period.as_nanos()) + self.latency + self.jitter(observer, target, k)
    }

    /// The deadline by which heartbeat `k` must have arrived before the
    /// observer declares the target dead. By construction
    /// `arrival(k) ≤ deadline(k)` for a live target — no false positives
    /// as long as the jitter honors its declared bound.
    pub fn deadline(&self, k: u64) -> SimTime {
        SimTime(k * self.period.as_nanos()) + self.latency + self.jitter_bound + self.timeout
    }

    /// When `observer` detects that `target` died at `tof`: the deadline
    /// of the first heartbeat the dead target failed to emit.
    pub fn detection_time(&self, _observer: usize, _target: usize, tof: SimTime) -> SimTime {
        let k_miss = tof.as_nanos().div_ceil(self.period.as_nanos().max(1));
        self.deadline(k_miss)
    }

    /// Worst-case detection latency: `detection_time(tof) - tof` never
    /// exceeds this bound (and is at least `timeout`).
    pub fn detection_bound(&self) -> SimTime {
        self.period + self.latency + self.jitter_bound + self.timeout
    }

    /// The MPI-layer failure detector matching this protocol: pending
    /// operations toward a dead peer error out exactly when the
    /// heartbeat detector would have declared the death, so failover
    /// latency is bounded by [`Self::detection_bound`].
    pub fn detector(&self) -> Detector {
        Detector::Monitor {
            latency: self.detection_bound(),
        }
    }
}

// ---------------------------------------------------------------------
// Logical ↔ physical rank map
// ---------------------------------------------------------------------

/// The deterministic logical↔physical layout of a replicated world.
///
/// Primaries occupy physical ranks `0..logical_size` (identity mapping,
/// so the application's topology placement is undisturbed); shadow
/// replicas are appended after. Under full replication, replica `t > 0`
/// of logical `L` is physical `t · logical_size + L`; under partial
/// replication the shadows of the critical set pack densely after the
/// primaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMap {
    /// Number of logical ranks (the application's world size).
    pub logical_size: usize,
    /// Replication degree of protected ranks.
    pub degree: usize,
    /// Protected logical ranks; `None` = all (full replication).
    pub critical: Option<BTreeSet<usize>>,
    /// Critical set in ascending order for shadow-slot arithmetic.
    crit_order: Vec<usize>,
}

impl ReplicaMap {
    /// Full replication: every logical rank gets `degree` replicas.
    pub fn full(logical_size: usize, degree: usize) -> Result<Self, MpiError> {
        if degree < 2 || logical_size == 0 {
            return Err(MpiError::Invalid("replication needs degree >= 2 and ranks"));
        }
        Ok(ReplicaMap {
            logical_size,
            degree,
            critical: None,
            crit_order: Vec::new(),
        })
    }

    /// Partial replication of `critical` logical ranks only.
    pub fn partial(
        logical_size: usize,
        degree: usize,
        critical: BTreeSet<usize>,
    ) -> Result<Self, MpiError> {
        if degree < 2 || logical_size == 0 {
            return Err(MpiError::Invalid("replication needs degree >= 2 and ranks"));
        }
        if critical.is_empty() || critical.iter().any(|&r| r >= logical_size) {
            return Err(MpiError::Invalid("critical set empty or out of range"));
        }
        let crit_order: Vec<usize> = critical.iter().copied().collect();
        Ok(ReplicaMap {
            logical_size,
            degree,
            critical: Some(critical),
            crit_order,
        })
    }

    /// Build the map a scheme implies; `None` for unreplicated schemes.
    pub fn from_scheme(scheme: &ProtectionScheme, logical_size: usize) -> Option<Self> {
        match scheme {
            ProtectionScheme::Replication { degree } => {
                Some(ReplicaMap::full(logical_size, *degree).expect("valid scheme"))
            }
            ProtectionScheme::Partial { degree, critical } => Some(
                ReplicaMap::partial(logical_size, *degree, critical.clone()).expect("valid scheme"),
            ),
            _ => None,
        }
    }

    /// Number of protected logical ranks.
    fn crit_count(&self) -> usize {
        match &self.critical {
            Some(c) => c.len(),
            None => self.logical_size,
        }
    }

    /// Total physical world size.
    pub fn physical_size(&self) -> usize {
        self.logical_size + (self.degree - 1) * self.crit_count()
    }

    /// Whether a logical rank is replicated.
    pub fn is_protected(&self, logical: usize) -> bool {
        match &self.critical {
            Some(c) => c.contains(&logical),
            None => true,
        }
    }

    /// Replication degree of one logical rank (1 if unprotected).
    pub fn degree_of(&self, logical: usize) -> usize {
        if self.is_protected(logical) {
            self.degree
        } else {
            1
        }
    }

    /// Physical ranks of a logical rank's replicas, in replica order
    /// (index 0 = the primary).
    pub fn replicas(&self, logical: usize) -> Vec<usize> {
        assert!(logical < self.logical_size, "logical rank out of range");
        let mut out = vec![logical];
        if self.is_protected(logical) {
            for t in 1..self.degree {
                out.push(self.shadow_phys(logical, t));
            }
        }
        out
    }

    fn shadow_phys(&self, logical: usize, t: usize) -> usize {
        match &self.critical {
            None => t * self.logical_size + logical,
            Some(_) => {
                let idx = self
                    .crit_order
                    .binary_search(&logical)
                    .expect("protected rank is in the critical set");
                self.logical_size + (t - 1) * self.crit_order.len() + idx
            }
        }
    }

    /// `(logical rank, replica index)` of a physical rank.
    pub fn replica_of(&self, phys: usize) -> (usize, usize) {
        assert!(phys < self.physical_size(), "physical rank out of range");
        if phys < self.logical_size {
            return (phys, 0);
        }
        let s = phys - self.logical_size;
        match &self.critical {
            None => (s % self.logical_size, 1 + s / self.logical_size),
            Some(_) => {
                let n = self.crit_order.len();
                (self.crit_order[s % n], 1 + s / n)
            }
        }
    }
}

// ---------------------------------------------------------------------
// The replicated runtime
// ---------------------------------------------------------------------

/// One posted logical receive: the physical copies awaited (the replicas
/// believed dead at post time were already routed around).
#[derive(Debug)]
pub struct PendingRecv {
    app_tag: u32,
    seq: u64,
    /// `(replica physical rank, posted request)` in replica order.
    parts: Vec<(usize, ReqId)>,
}

/// A logical (replicated) request handle, returned by
/// [`Replicated::isend_logical`]/[`Replicated::irecv_logical`].
#[derive(Debug)]
pub enum RepReq {
    /// Outstanding physical send copies.
    Send(Vec<ReqId>),
    /// Outstanding logical receive.
    Recv(PendingRecv),
}

/// The application-facing replicated context: logical-rank communication
/// with transparent failover, layered over the raw world-communicator
/// message path.
pub struct Replicated {
    /// The physical MPI context.
    pub mpi: MpiCtx,
    /// The logical↔physical layout.
    pub map: ReplicaMap,
    /// The heartbeat detector model.
    pub hb: HeartbeatConfig,
    /// This process's logical rank.
    pub logical_rank: usize,
    /// This process's replica index within its team (0 = primary).
    pub replica: usize,
    /// Per-destination-logical send sequence numbers.
    send_seq: BTreeMap<usize, u64>,
    /// Per-source-logical receive sequence numbers.
    recv_seq: BTreeMap<usize, u64>,
    /// Physical replicas already counted as detections.
    detected: BTreeSet<usize>,
    /// Physical replicas already counted as failovers.
    failed_over: BTreeSet<usize>,
}

impl Replicated {
    /// Attach to the current VP. The builder's world size must equal the
    /// map's physical size.
    pub fn attach(mpi: MpiCtx, map: ReplicaMap, hb: HeartbeatConfig) -> Result<Self, MpiError> {
        if mpi.size != map.physical_size() {
            return Err(MpiError::Invalid(
                "world size does not match the replica map's physical size",
            ));
        }
        let (logical_rank, replica) = map.replica_of(mpi.rank);
        Ok(Replicated {
            mpi,
            map,
            hb,
            logical_rank,
            replica,
            send_seq: BTreeMap::new(),
            recv_seq: BTreeMap::new(),
            detected: BTreeSet::new(),
            failed_over: BTreeSet::new(),
        })
    }

    /// The application's (logical) world size.
    pub fn logical_size(&self) -> usize {
        self.map.logical_size
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.mpi.now()
    }

    /// Compute-phase passthrough.
    pub async fn compute(&self, work: Work) {
        self.mpi.compute(work).await;
    }

    /// The world communicator (for escalation paths: revoke/shrink).
    pub fn world(&self) -> Comm {
        self.mpi.world()
    }

    /// Whether a dead physical rank is *believed* dead here: its failure
    /// notification has arrived and the heartbeat detector's per-pair
    /// detection time has passed.
    fn believed_failed(&self, phys: usize) -> Option<SimTime> {
        let now = self.now();
        self.mpi
            .known_failures()
            .into_iter()
            .find(|(r, _)| r.idx() == phys)
            .map(|(_, tof)| tof)
            .filter(|&tof| now >= self.hb.detection_time(self.mpi.rank, phys, tof))
    }

    /// Whether this replica currently leads its team (lowest believed-
    /// live replica index). Leaders perform team-external side effects
    /// (checkpoint writes, completion markers).
    pub fn is_leader(&self) -> bool {
        for phys in self.map.replicas(self.logical_rank) {
            if phys == self.mpi.rank {
                return true;
            }
            if self.believed_failed(phys).is_none() {
                return false;
            }
        }
        false
    }

    /// Record a detection and (if the dead replica was a copy source we
    /// routed around) a failover, with the failover latency histogram
    /// sample. Deduplicated per dead physical rank.
    fn note_routed_around(&mut self, phys: usize, tof: SimTime) {
        let now = self.now();
        let fresh_detect = self.detected.insert(phys);
        let fresh_failover = self.failed_over.insert(phys);
        if !(fresh_detect || fresh_failover) {
            return;
        }
        ctx::with_kernel(|k, _me| {
            if !obs::enabled(k) {
                return;
            }
            if fresh_detect {
                obs::record(k, ids::REP_DETECTIONS, 1);
            }
            if fresh_failover {
                obs::record(k, ids::REP_FAILOVERS, 1);
                obs::record(k, ids::REP_FAILOVER_NS, (now - tof).as_nanos());
            }
        });
    }

    fn record_copies(&self, logical_msgs: u64, copies: u64) {
        ctx::with_kernel(|k, _me| {
            if obs::enabled(k) {
                obs::record(k, ids::REP_MSGS, logical_msgs);
                obs::record(k, ids::REP_COPIES, copies);
            }
        });
    }

    fn frame(app_tag: u32, seq: u64, data: &Bytes) -> Bytes {
        let mut buf = BytesMut::with_capacity(12 + data.len());
        buf.put_u32_le(app_tag);
        buf.put_u64_le(seq);
        buf.put_slice(data);
        buf.freeze()
    }

    fn unframe(app_tag: u32, seq: u64, data: &Bytes) -> Result<Bytes, MpiError> {
        if data.len() < 12 {
            return Err(MpiError::Invalid("truncated replication frame"));
        }
        let got_tag = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
        let got_seq = u64::from_le_bytes(data[4..12].try_into().expect("8 bytes"));
        if got_tag != app_tag || got_seq != seq {
            return Err(MpiError::Invalid("replication channel order violation"));
        }
        Ok(data.slice(12..))
    }

    // -----------------------------------------------------------------
    // Logical point-to-point
    // -----------------------------------------------------------------

    /// Post a logical send: one physical copy to every believed-live
    /// replica of `dst_logical`.
    pub async fn isend_logical(
        &mut self,
        dst_logical: usize,
        tag: u32,
        data: Bytes,
    ) -> Result<RepReq, MpiError> {
        if dst_logical >= self.map.logical_size {
            return Err(MpiError::Invalid("logical destination out of range"));
        }
        if tag >= REP_TAG_BASE {
            return Err(MpiError::Invalid("application tag in reserved range"));
        }
        let seq = {
            let c = self.send_seq.entry(dst_logical).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let framed = Self::frame(tag, seq, &data);
        let world = self.mpi.world().id;
        let mut reqs = Vec::new();
        for phys in self.map.replicas(dst_logical) {
            if let Some(tof) = self.believed_failed(phys) {
                self.note_routed_around(phys, tof);
                continue;
            }
            reqs.push(p2p::isend_raw(world, phys, rep_tag(seq), framed.clone()).await?);
        }
        self.record_copies(1, reqs.len() as u64);
        Ok(RepReq::Send(reqs))
    }

    /// Post a logical receive for the next message on the
    /// `src_logical → self` channel.
    pub fn irecv_logical(&mut self, src_logical: usize, tag: u32) -> Result<RepReq, MpiError> {
        if src_logical >= self.map.logical_size {
            return Err(MpiError::Invalid("logical source out of range"));
        }
        let seq = {
            let c = self.recv_seq.entry(src_logical).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let world = self.mpi.world().id;
        let mut parts = Vec::new();
        for phys in self.map.replicas(src_logical) {
            if let Some(tof) = self.believed_failed(phys) {
                self.note_routed_around(phys, tof);
                continue;
            }
            parts.push((phys, p2p::irecv_raw(world, Some(phys), Some(rep_tag(seq)))?));
        }
        if parts.is_empty() {
            // Every replica of the source is dead: the logical rank is
            // unrecoverable — surface the process failure (partial-mode
            // fallback to ULFM shrink + C/R).
            let (dead, tof) = self.dead_team_witness(src_logical);
            return Err(MpiError::ProcFailed {
                rank: Rank::new(dead),
                time_of_failure: tof,
            });
        }
        Ok(RepReq::Recv(PendingRecv {
            app_tag: tag,
            seq,
            parts,
        }))
    }

    /// The highest-`tof` dead replica of a fully-dead logical rank (for
    /// error reporting).
    fn dead_team_witness(&self, logical: usize) -> (usize, SimTime) {
        let failures = self.mpi.known_failures();
        let mut best = (self.map.replicas(logical)[0], SimTime::ZERO);
        for phys in self.map.replicas(logical) {
            if let Some((_, tof)) = failures.iter().find(|(r, _)| r.idx() == phys) {
                if *tof >= best.1 {
                    best = (phys, *tof);
                }
            }
        }
        best
    }

    /// Wait for one logical request. Sends complete when every copy is
    /// delivered (copies to replicas that died in flight are forgiven);
    /// receives complete with the lowest-replica-index surviving copy.
    pub async fn wait_logical(&mut self, req: RepReq) -> Result<Option<Bytes>, MpiError> {
        match req {
            RepReq::Send(reqs) => {
                for r in reqs {
                    match p2p::wait_raw(r).await {
                        Ok(_) => {}
                        // The copy's target died: its loss is harmless —
                        // the team-traffic exemption from the error-
                        // handler escalation path.
                        Err(MpiError::ProcFailed {
                            rank,
                            time_of_failure,
                        }) => {
                            self.note_routed_around(rank.idx(), time_of_failure);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(None)
            }
            RepReq::Recv(pending) => {
                let mut winner: Option<Bytes> = None;
                let mut last_err: Option<MpiError> = None;
                for (phys, r) in pending.parts {
                    match p2p::wait_raw(r).await {
                        Ok(out) => {
                            if winner.is_none() {
                                let msg = out.ok_or(MpiError::Invalid("recv without payload"))?;
                                winner =
                                    Some(Self::unframe(pending.app_tag, pending.seq, &msg.data)?);
                            }
                        }
                        Err(MpiError::ProcFailed {
                            rank: _,
                            time_of_failure,
                        }) => {
                            self.note_routed_around(phys, time_of_failure);
                            last_err = Some(MpiError::ProcFailed {
                                rank: Rank::new(phys),
                                time_of_failure,
                            });
                        }
                        Err(e) => return Err(e),
                    }
                }
                match winner {
                    Some(data) => Ok(Some(data)),
                    // All posted copies failed: the source team died
                    // after post — surface the logical failure.
                    None => Err(last_err.unwrap_or(MpiError::Invalid("empty logical recv"))),
                }
            }
        }
    }

    /// Wait for a batch of logical requests, in order. Returns the
    /// received payloads (None for sends).
    pub async fn waitall_logical(
        &mut self,
        reqs: Vec<RepReq>,
    ) -> Result<Vec<Option<Bytes>>, MpiError> {
        let mut out = Vec::with_capacity(reqs.len());
        for r in reqs {
            out.push(self.wait_logical(r).await?);
        }
        Ok(out)
    }

    /// Blocking logical send.
    pub async fn send(
        &mut self,
        dst_logical: usize,
        tag: u32,
        data: Bytes,
    ) -> Result<(), MpiError> {
        let req = self.isend_logical(dst_logical, tag, data).await?;
        self.wait_logical(req).await.map(|_| ())
    }

    /// Blocking logical receive (channel-FIFO, explicit source).
    pub async fn recv(&mut self, src_logical: usize, tag: u32) -> Result<Bytes, MpiError> {
        let req = self.irecv_logical(src_logical, tag)?;
        self.wait_logical(req)
            .await?
            .ok_or(MpiError::Invalid("logical recv returned no payload"))
    }

    // -----------------------------------------------------------------
    // Logical collectives (linear algorithms over logical ranks)
    // -----------------------------------------------------------------

    /// Logical barrier: gather-to-0 then release, linear.
    pub async fn barrier(&mut self) -> Result<(), MpiError> {
        let n = self.logical_size();
        if self.logical_rank == 0 {
            for src in 1..n {
                let _ = self.recv(src, REP_COLL_TAG).await?;
            }
            for dst in 1..n {
                self.send(dst, REP_COLL_TAG, Bytes::new()).await?;
            }
        } else {
            self.send(0, REP_COLL_TAG, Bytes::new()).await?;
            let _ = self.recv(0, REP_COLL_TAG).await?;
        }
        Ok(())
    }

    /// Logical broadcast from logical `root`, linear.
    pub async fn bcast(&mut self, root: usize, data: Bytes) -> Result<Bytes, MpiError> {
        let n = self.logical_size();
        if self.logical_rank == root {
            for dst in (0..n).filter(|&d| d != root) {
                self.send(dst, REP_COLL_TAG, data.clone()).await?;
            }
            Ok(data)
        } else {
            self.recv(root, REP_COLL_TAG).await
        }
    }

    /// Logical all-reduce of a `u64` vector with element-wise `max`
    /// (the agreement collective the replicated heat solver needs).
    pub async fn allreduce_u64_max(&mut self, vals: &[u64]) -> Result<Vec<u64>, MpiError> {
        let n = self.logical_size();
        let encode = |v: &[u64]| {
            let mut b = BytesMut::with_capacity(v.len() * 8);
            for x in v {
                b.put_u64_le(*x);
            }
            b.freeze()
        };
        let decode = |d: &Bytes| -> Result<Vec<u64>, MpiError> {
            if !d.len().is_multiple_of(8) {
                return Err(MpiError::Invalid("corrupt u64 reduce payload"));
            }
            Ok(d.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect())
        };
        let reduced = if self.logical_rank == 0 {
            let mut acc = vals.to_vec();
            for src in 1..n {
                let part = decode(&self.recv(src, REP_COLL_TAG).await?)?;
                if part.len() != acc.len() {
                    return Err(MpiError::Invalid("reduce length mismatch"));
                }
                for (a, p) in acc.iter_mut().zip(part) {
                    *a = (*a).max(p);
                }
            }
            acc
        } else {
            self.send(0, REP_COLL_TAG, encode(vals)).await?;
            Vec::new()
        };
        let out = self.bcast(0, encode(&reduced)).await?;
        decode(&out)
    }

    // -----------------------------------------------------------------
    // Lifecycle
    // -----------------------------------------------------------------

    /// Mark a clean exit and account the heartbeats this replica emitted
    /// over the run (team-internal, `floor(now / period)` beats to each
    /// of its `degree − 1` teammates).
    pub fn finalize(&self) {
        let beats = self.now().as_nanos() / self.hb.period.as_nanos().max(1);
        let teammates = (self.map.degree_of(self.logical_rank) - 1) as u64;
        ctx::with_kernel(|k, _me| {
            if obs::enabled(k) && beats * teammates > 0 {
                obs::record(k, ids::REP_HEARTBEATS, beats * teammates);
            }
        });
        self.mpi.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing_round_trips() {
        assert_eq!(
            "none".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::None
        );
        assert_eq!(
            "cr".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Full
            }
        );
        assert_eq!(
            "cr:full".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Full
            }
        );
        assert_eq!(
            "cr:agg".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Aggregated { group: 8 }
            }
        );
        assert_eq!(
            "cr:agg:16".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Aggregated { group: 16 }
            }
        );
        assert_eq!(
            "cr:buddy".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Buddy
            }
        );
        assert_eq!(
            "cr:incr".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Incremental { full_every: 4 }
            }
        );
        assert_eq!(
            "cr:incr:6".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::CheckpointRestart {
                mode: CkptMode::Incremental { full_every: 6 }
            }
        );
        assert_eq!(
            "replication".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::Replication { degree: 2 }
        );
        assert_eq!(
            "replication:3".parse::<ProtectionScheme>().unwrap(),
            ProtectionScheme::Replication { degree: 3 }
        );
        let p: ProtectionScheme = "partial:2:0-2+5".parse().unwrap();
        assert_eq!(
            p,
            ProtectionScheme::Partial {
                degree: 2,
                critical: BTreeSet::from([0, 1, 2, 5])
            }
        );
        // Display round-trips.
        for s in [
            "none",
            "cr",
            "cr:agg:8",
            "cr:buddy",
            "cr:incr:4",
            "replication:2",
            "partial:2:0-2+5",
        ] {
            let parsed: ProtectionScheme = s.parse().unwrap();
            assert_eq!(
                parsed.to_string().parse::<ProtectionScheme>().unwrap(),
                parsed
            );
        }
        assert!("replication:1".parse::<ProtectionScheme>().is_err());
        assert!("bogus".parse::<ProtectionScheme>().is_err());
        assert!("partial:2:".parse::<ProtectionScheme>().is_err());
        assert!("partial:2:3-1".parse::<ProtectionScheme>().is_err());
        assert!("replication:2:extra".parse::<ProtectionScheme>().is_err());
        assert!("cr:bogus".parse::<ProtectionScheme>().is_err());
        assert!("cr:agg:1".parse::<ProtectionScheme>().is_err());
        assert!("cr:incr:0".parse::<ProtectionScheme>().is_err());
        assert!("cr:full:3".parse::<ProtectionScheme>().is_err());
        assert!("cr:buddy:2".parse::<ProtectionScheme>().is_err());
        assert!("cr:incr:4:extra".parse::<ProtectionScheme>().is_err());
    }

    #[test]
    fn full_map_layout() {
        let m = ReplicaMap::full(4, 2).unwrap();
        assert_eq!(m.physical_size(), 8);
        assert_eq!(m.replicas(0), vec![0, 4]);
        assert_eq!(m.replicas(3), vec![3, 7]);
        for phys in 0..8 {
            let (l, t) = m.replica_of(phys);
            assert_eq!(m.replicas(l)[t], phys);
        }
        assert!(m.is_protected(2));
        assert_eq!(m.degree_of(2), 2);
    }

    #[test]
    fn partial_map_layout() {
        let m = ReplicaMap::partial(4, 2, BTreeSet::from([1, 3])).unwrap();
        assert_eq!(m.physical_size(), 6);
        assert_eq!(m.replicas(0), vec![0]);
        assert_eq!(m.replicas(1), vec![1, 4]);
        assert_eq!(m.replicas(3), vec![3, 5]);
        assert_eq!(m.replica_of(4), (1, 1));
        assert_eq!(m.replica_of(5), (3, 1));
        assert!(!m.is_protected(0));
        assert_eq!(m.degree_of(0), 1);
        assert_eq!(m.degree_of(3), 2);
        assert!(ReplicaMap::partial(4, 2, BTreeSet::from([9])).is_err());
    }

    #[test]
    fn triple_partial_shadow_slots_are_disjoint() {
        let m = ReplicaMap::partial(6, 3, BTreeSet::from([0, 2, 5])).unwrap();
        assert_eq!(m.physical_size(), 12);
        let mut seen = BTreeSet::new();
        for l in 0..6 {
            for p in m.replicas(l) {
                assert!(seen.insert(p), "physical rank {p} assigned twice");
                assert_eq!(m.replica_of(p).0, l);
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn heartbeat_detection_is_bounded_and_sound() {
        let hb = HeartbeatConfig::default();
        // Live-target arrivals never cross their deadlines.
        for k in 0..64 {
            assert!(hb.arrival(3, 7, k) <= hb.deadline(k), "beat {k}");
        }
        // Detection happens after death, within the bound.
        for tof_ms in [1u64, 49, 50, 51, 499, 1000] {
            let tof = SimTime::from_millis(tof_ms);
            let d = hb.detection_time(0, 1, tof);
            assert!(d >= tof + hb.timeout, "tof {tof_ms} ms: detected too early");
            assert!(d <= tof + hb.detection_bound(), "tof {tof_ms} ms: too late");
        }
    }

    #[test]
    fn rep_tags_stay_in_user_space() {
        assert!(rep_tag(u64::MAX) < crate::collective::COLL_TAG_BASE);
        assert!(rep_tag(0) >= REP_TAG_BASE);
    }
}
