//! Collective operations.
//!
//! The paper's simulated system configures **linear algorithms** for MPI
//! collectives (§V-C): the root communicates with every other member one
//! by one. Binomial-tree variants are provided as well, as the ablation
//! axis DESIGN.md §4.3 calls out.
//!
//! All collectives are built on the simulated point-to-point layer, so
//! they inherit its failure-detection semantics — this is what produces
//! the paper's observation that "a failure during the checkpoint phase is
//! detected in the following barrier" (§V-D).

use crate::comm::CommId;
use crate::error::MpiError;
use crate::p2p;
use crate::state::MpiService;
use bytes::{BufMut, Bytes, BytesMut};
use xsim_core::ctx;
use xsim_obs::ids as metric_ids;
use xsim_obs::service as obs;

/// Account payload movement on the collective message path: `clones`
/// cheap reference-count bumps (fan-outs sharing one buffer) and
/// `copied` bytes physically copied host-side (packing). Both counts are
/// program-order deterministic, so they are part of the `to_json(None)`
/// snapshot.
fn note_payload(clones: u64, copied: u64) {
    ctx::with_kernel(|k, _| {
        if obs::enabled(k) {
            if clones > 0 {
                obs::record(k, metric_ids::MPI_PAYLOAD_CLONES, clones);
            }
            if copied > 0 {
                obs::record(k, metric_ids::MPI_PAYLOAD_COPY_BYTES, copied);
            }
        }
    });
}

/// Tag space reserved for collective-internal messages; user tags must
/// stay below this value.
pub const COLL_TAG_BASE: u32 = 1 << 30;

/// Reduction operators for the typed reduce/allreduce helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Elementwise product.
    Prod,
}

impl ReduceOp {
    fn fold_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Prod => a * b,
        }
    }

    fn fold_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Prod => a.wrapping_mul(b),
        }
    }
}

/// `(my communicator rank, communicator size, next collective tag)`.
fn coll_begin(comm: CommId) -> Result<(usize, usize, u32), MpiError> {
    coll_begin_counted(comm, true)
}

/// `coll_begin` for the inner phase of a composite collective (the tree
/// barrier's release broadcast): takes a fresh tag but does not count an
/// extra user-facing operation.
fn coll_begin_nested(comm: CommId) -> Result<(usize, usize, u32), MpiError> {
    coll_begin_counted(comm, false)
}

fn coll_begin_counted(comm: CommId, count: bool) -> Result<(usize, usize, u32), MpiError> {
    ctx::with_kernel(|k, me| {
        let svc = k.service_mut::<MpiService>();
        let rm = svc.rank_mut(me);
        p2p::entry_checks(rm, comm)?;
        if count {
            rm.stats.collectives += 1;
        }
        let view = rm.comms.view_mut(comm).expect("checked");
        view.coll_seq += 1;
        let tag = COLL_TAG_BASE + (view.coll_seq as u32 & (COLL_TAG_BASE - 1));
        Ok((view.my_rank, view.size(), tag))
    })
}

/// Linear barrier: gather-to-root of empty messages, then a linear
/// release fan-out.
pub async fn barrier(comm: CommId) -> Result<(), MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if size <= 1 {
        return Ok(());
    }
    if me == 0 {
        let mut reqs = Vec::with_capacity(size - 1);
        for r in 1..size {
            reqs.push(p2p::irecv_raw(comm, Some(r), Some(tag))?);
        }
        p2p::waitall_raw(&reqs).await?;
        for r in 1..size {
            p2p::send_raw(comm, r, tag, Bytes::new()).await?;
        }
    } else {
        p2p::send_raw(comm, 0, tag, Bytes::new()).await?;
        p2p::recv_raw(comm, Some(0), Some(tag)).await?;
    }
    Ok(())
}

/// Linear broadcast from `root`: the root sends to every other member in
/// rank order; members receive. Returns the broadcast payload on every
/// member (the root passes it in; others pass anything).
pub async fn bcast(comm: CommId, root: usize, data: Bytes) -> Result<Bytes, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if size <= 1 {
        return Ok(data);
    }
    if me == root {
        note_payload(size as u64 - 1, 0);
        for r in 0..size {
            if r != root {
                p2p::send_raw(comm, r, tag, data.clone()).await?;
            }
        }
        Ok(data)
    } else {
        Ok(p2p::recv_raw(comm, Some(root), Some(tag)).await?.data)
    }
}

/// Linear gather to `root`: returns `Some(parts)` (in communicator rank
/// order) at the root, `None` elsewhere.
pub async fn gather(
    comm: CommId,
    root: usize,
    data: Bytes,
) -> Result<Option<Vec<Bytes>>, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if me == root {
        let mut parts: Vec<Bytes> = vec![Bytes::new(); size];
        let mut reqs = Vec::with_capacity(size - 1);
        let mut idxs = Vec::with_capacity(size - 1);
        for r in 0..size {
            if r != root {
                reqs.push(p2p::irecv_raw(comm, Some(r), Some(tag))?);
                idxs.push(r);
            }
        }
        parts[root] = data; // the root's own contribution moves in
        let outs = p2p::waitall_raw(&reqs).await?;
        for (i, out) in idxs.into_iter().zip(outs) {
            parts[i] = out.expect("gather receives carry payloads").data;
        }
        Ok(Some(parts))
    } else {
        p2p::send_raw(comm, root, tag, data).await?;
        Ok(None)
    }
}

/// Linear scatter from `root`: the root provides one payload per member
/// (in communicator rank order) and each member receives its own.
pub async fn scatter(
    comm: CommId,
    root: usize,
    parts: Option<Vec<Bytes>>,
) -> Result<Bytes, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if me == root {
        let mut parts = parts.ok_or(MpiError::Invalid("scatter root must provide parts"))?;
        if parts.len() != size {
            return Err(MpiError::Invalid("scatter parts must match comm size"));
        }
        note_payload(size as u64 - 1, 0);
        for (r, part) in parts.iter().enumerate() {
            if r != root {
                p2p::send_raw(comm, r, tag, part.clone()).await?;
            }
        }
        // The root's own part moves out — no residual clone.
        Ok(parts.swap_remove(root))
    } else {
        Ok(p2p::recv_raw(comm, Some(root), Some(tag)).await?.data)
    }
}

/// Allgather: linear gather to rank 0, then broadcast of the packed
/// parts. Returns the parts in communicator rank order everywhere.
pub async fn allgather(comm: CommId, data: Bytes) -> Result<Vec<Bytes>, MpiError> {
    let gathered = gather(comm, 0, data).await?;
    let packed = match gathered {
        Some(parts) => {
            let packed = encode_multi(&parts);
            note_payload(0, packed.len() as u64); // pack = the one real copy
            packed
        }
        None => Bytes::new(),
    };
    let packed = bcast(comm, 0, packed).await?;
    decode_multi(&packed).ok_or(MpiError::Invalid("corrupt allgather payload"))
}

/// All-to-all personalized exchange: member `i` sends `parts[j]` to
/// member `j`; returns the payloads received from each member in rank
/// order.
pub async fn alltoall(comm: CommId, parts: Vec<Bytes>) -> Result<Vec<Bytes>, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if parts.len() != size {
        return Err(MpiError::Invalid("alltoall parts must match comm size"));
    }
    let mut recv_reqs = Vec::with_capacity(size);
    for r in 0..size {
        if r != me {
            recv_reqs.push((r, p2p::irecv_raw(comm, Some(r), Some(tag))?));
        }
    }
    note_payload(size as u64, 0); // size-1 sends + the local self-part, all shared
    for (r, part) in parts.iter().enumerate() {
        if r != me {
            // Sends drain on their own: eager sends complete locally,
            // rendezvous sends complete with the matching receives.
            let _ = p2p::isend_raw(comm, r, tag, part.clone()).await?;
        }
    }
    let mut out: Vec<Bytes> = vec![Bytes::new(); size];
    out[me] = parts[me].clone();
    let reqs: Vec<_> = recv_reqs.iter().map(|(_, q)| *q).collect();
    let outs = p2p::waitall_raw(&reqs).await?;
    for ((r, _), o) in recv_reqs.into_iter().zip(outs) {
        out[r] = o.expect("alltoall receives carry payloads").data;
    }
    Ok(out)
}

/// Linear reduce of `f64` vectors to `root` (elementwise). Returns
/// `Some(result)` at the root.
pub async fn reduce_f64(
    comm: CommId,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Result<Option<Vec<f64>>, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if me == root {
        // The accumulator reuses the first received decode in place of a
        // `data.to_vec()` copy; the combine order is the same linear
        // rank order 0..size as before (fold(acc, next)), so the f64
        // result is bit-identical to the copying implementation.
        let mut acc: Option<Vec<f64>> = None;
        for r in 0..size {
            if r == root {
                continue;
            }
            let msg = p2p::recv_raw(comm, Some(r), Some(tag)).await?;
            let mut other =
                bytes_to_f64(&msg.data).ok_or(MpiError::Invalid("reduce payload size mismatch"))?;
            if other.len() != data.len() {
                return Err(MpiError::Invalid("reduce payload length mismatch"));
            }
            match acc.as_mut() {
                None => {
                    for (o, d) in other.iter_mut().zip(data) {
                        *o = op.fold_f64(*d, *o);
                    }
                    acc = Some(other);
                }
                Some(a) => {
                    for (x, o) in a.iter_mut().zip(other) {
                        *x = op.fold_f64(*x, o);
                    }
                }
            }
        }
        Ok(Some(acc.unwrap_or_else(|| data.to_vec())))
    } else {
        p2p::send_raw(comm, root, tag, f64_to_bytes(data)).await?;
        Ok(None)
    }
}

/// Allreduce of `f64` vectors: linear reduce to rank 0, then broadcast.
pub async fn allreduce_f64(comm: CommId, data: &[f64], op: ReduceOp) -> Result<Vec<f64>, MpiError> {
    let reduced = reduce_f64(comm, 0, data, op).await?;
    let packed = match reduced {
        Some(v) => f64_to_bytes(&v),
        None => Bytes::new(),
    };
    let packed = bcast(comm, 0, packed).await?;
    bytes_to_f64(&packed).ok_or(MpiError::Invalid("corrupt allreduce payload"))
}

/// Linear reduce of `u64` vectors to `root` (elementwise).
pub async fn reduce_u64(
    comm: CommId,
    root: usize,
    data: &[u64],
    op: ReduceOp,
) -> Result<Option<Vec<u64>>, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if me == root {
        // Same copy-free accumulator as `reduce_f64`.
        let mut acc: Option<Vec<u64>> = None;
        for r in 0..size {
            if r == root {
                continue;
            }
            let msg = p2p::recv_raw(comm, Some(r), Some(tag)).await?;
            let mut other =
                bytes_to_u64(&msg.data).ok_or(MpiError::Invalid("reduce payload size mismatch"))?;
            if other.len() != data.len() {
                return Err(MpiError::Invalid("reduce payload length mismatch"));
            }
            match acc.as_mut() {
                None => {
                    for (o, d) in other.iter_mut().zip(data) {
                        *o = op.fold_u64(*d, *o);
                    }
                    acc = Some(other);
                }
                Some(a) => {
                    for (x, o) in a.iter_mut().zip(other) {
                        *x = op.fold_u64(*x, o);
                    }
                }
            }
        }
        Ok(Some(acc.unwrap_or_else(|| data.to_vec())))
    } else {
        p2p::send_raw(comm, root, tag, u64_to_bytes(data)).await?;
        Ok(None)
    }
}

/// Allreduce of `u64` vectors.
pub async fn allreduce_u64(comm: CommId, data: &[u64], op: ReduceOp) -> Result<Vec<u64>, MpiError> {
    let reduced = reduce_u64(comm, 0, data, op).await?;
    let packed = match reduced {
        Some(v) => u64_to_bytes(&v),
        None => Bytes::new(),
    };
    let packed = bcast(comm, 0, packed).await?;
    bytes_to_u64(&packed).ok_or(MpiError::Invalid("corrupt allreduce payload"))
}

// ----------------------------------------------------------------------
// Binomial-tree variants (ablation: linear vs. tree algorithms)
// ----------------------------------------------------------------------

/// Binomial-tree broadcast from `root`. O(log P) rounds instead of the
/// linear algorithm's O(P) serialized sends at the root.
pub async fn bcast_tree(comm: CommId, root: usize, data: Bytes) -> Result<Bytes, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    bcast_tree_rounds(comm, root, data, me, size, tag).await
}

async fn bcast_tree_rounds(
    comm: CommId,
    root: usize,
    data: Bytes,
    me: usize,
    size: usize,
    tag: u32,
) -> Result<Bytes, MpiError> {
    if size <= 1 {
        return Ok(data);
    }
    // Re-index so the root is virtual rank 0.
    let vrank = (me + size - root) % size;
    let mut data = data;
    if vrank != 0 {
        // Receive from parent: clear the lowest set bit of vrank.
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % size;
        data = p2p::recv_raw(comm, Some(parent), Some(tag)).await?.data;
    }
    // Forward to children: set bits above the lowest set bit.
    let lowbit = if vrank == 0 {
        size.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    note_payload(tree_children(vrank, size) as u64, 0);
    let mut bit = 1;
    while bit < lowbit && bit < size {
        let child_v = vrank | bit;
        if child_v != vrank && child_v < size {
            let child = (child_v + root) % size;
            p2p::send_raw(comm, child, tag, data.clone()).await?;
        }
        bit <<= 1;
    }
    Ok(data)
}

/// Binomial-tree barrier: tree-reduce of empty messages followed by a
/// tree broadcast.
pub async fn barrier_tree(comm: CommId) -> Result<(), MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    if size <= 1 {
        return Ok(());
    }
    // Reduce phase (children → parent).
    let mut bit = 1;
    while bit < size {
        if me & bit != 0 {
            let parent = me & !bit;
            p2p::send_raw(comm, parent, tag, Bytes::new()).await?;
            break;
        } else {
            let child = me | bit;
            if child < size {
                p2p::recv_raw(comm, Some(child), Some(tag)).await?;
            }
        }
        bit <<= 1;
    }
    // Release phase: reuse the tree bcast shape with a fresh tag. The
    // phase is internal to this barrier, so it does not count as a
    // second collective (a tree barrier must tally like a linear one).
    let (me, size, tag) = coll_begin_nested(comm)?;
    bcast_tree_rounds(comm, 0, Bytes::new(), me, size, tag).await?;
    Ok(())
}

/// Binomial-tree reduce of `f64` vectors to `root`. O(log P) rounds; the
/// combine order at every node is fixed (own data, then children in
/// increasing bit order), so for a given communicator the result is
/// deterministic regardless of message arrival order — each receive
/// blocks on its specific `(source, tag)` pair.
pub async fn reduce_f64_tree(
    comm: CommId,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Result<Option<Vec<f64>>, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    let vrank = (me + size - root) % size;
    let mut acc: Option<Vec<f64>> = None;
    let lowbit = if vrank == 0 {
        size.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut bit = 1;
    while bit < lowbit && bit < size {
        let child_v = vrank | bit;
        if child_v < size {
            let child = (child_v + root) % size;
            let msg = p2p::recv_raw(comm, Some(child), Some(tag)).await?;
            let mut other =
                bytes_to_f64(&msg.data).ok_or(MpiError::Invalid("reduce payload size mismatch"))?;
            if other.len() != data.len() {
                return Err(MpiError::Invalid("reduce payload length mismatch"));
            }
            match acc.as_mut() {
                None => {
                    for (o, d) in other.iter_mut().zip(data) {
                        *o = op.fold_f64(*d, *o);
                    }
                    acc = Some(other);
                }
                Some(a) => {
                    for (x, o) in a.iter_mut().zip(other) {
                        *x = op.fold_f64(*x, o);
                    }
                }
            }
        }
        bit <<= 1;
    }
    if vrank == 0 {
        Ok(Some(acc.unwrap_or_else(|| data.to_vec())))
    } else {
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % size;
        let packed = match &acc {
            Some(a) => f64_to_bytes(a),
            None => f64_to_bytes(data),
        };
        p2p::send_raw(comm, parent, tag, packed).await?;
        Ok(None)
    }
}

/// Binomial-tree reduce of `u64` vectors to `root`. See
/// [`reduce_f64_tree`] for the schedule and determinism notes.
pub async fn reduce_u64_tree(
    comm: CommId,
    root: usize,
    data: &[u64],
    op: ReduceOp,
) -> Result<Option<Vec<u64>>, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    let vrank = (me + size - root) % size;
    let mut acc: Option<Vec<u64>> = None;
    let lowbit = if vrank == 0 {
        size.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut bit = 1;
    while bit < lowbit && bit < size {
        let child_v = vrank | bit;
        if child_v < size {
            let child = (child_v + root) % size;
            let msg = p2p::recv_raw(comm, Some(child), Some(tag)).await?;
            let mut other =
                bytes_to_u64(&msg.data).ok_or(MpiError::Invalid("reduce payload size mismatch"))?;
            if other.len() != data.len() {
                return Err(MpiError::Invalid("reduce payload length mismatch"));
            }
            match acc.as_mut() {
                None => {
                    for (o, d) in other.iter_mut().zip(data) {
                        *o = op.fold_u64(*d, *o);
                    }
                    acc = Some(other);
                }
                Some(a) => {
                    for (x, o) in a.iter_mut().zip(other) {
                        *x = op.fold_u64(*x, o);
                    }
                }
            }
        }
        bit <<= 1;
    }
    if vrank == 0 {
        Ok(Some(acc.unwrap_or_else(|| data.to_vec())))
    } else {
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % size;
        let packed = match &acc {
            Some(a) => u64_to_bytes(a),
            None => u64_to_bytes(data),
        };
        p2p::send_raw(comm, parent, tag, packed).await?;
        Ok(None)
    }
}

/// Tree allreduce of `f64` vectors: binomial reduce to rank 0, then
/// binomial broadcast. 2·⌈log₂ P⌉ rounds.
pub async fn allreduce_f64_tree(
    comm: CommId,
    data: &[f64],
    op: ReduceOp,
) -> Result<Vec<f64>, MpiError> {
    let reduced = reduce_f64_tree(comm, 0, data, op).await?;
    let packed = match reduced {
        Some(v) => f64_to_bytes(&v),
        None => Bytes::new(),
    };
    let packed = bcast_tree(comm, 0, packed).await?;
    bytes_to_f64(&packed).ok_or(MpiError::Invalid("corrupt allreduce payload"))
}

/// Tree allreduce of `u64` vectors.
pub async fn allreduce_u64_tree(
    comm: CommId,
    data: &[u64],
    op: ReduceOp,
) -> Result<Vec<u64>, MpiError> {
    let reduced = reduce_u64_tree(comm, 0, data, op).await?;
    let packed = match reduced {
        Some(v) => u64_to_bytes(&v),
        None => Bytes::new(),
    };
    let packed = bcast_tree(comm, 0, packed).await?;
    bytes_to_u64(&packed).ok_or(MpiError::Invalid("corrupt allreduce payload"))
}

/// Ring allgather: P−1 rounds; in round `s` every member forwards the
/// block it received in round `s−1` to its right neighbour and receives
/// a new block from its left neighbour. No packing — every block travels
/// as a shared-buffer clone, and unlike the gather+bcast composition no
/// rank ever holds the O(P·bytes) packed payload.
///
/// Receives match FIFO by sequence number per `(source, tag)`, so
/// reusing one tag across all rounds cannot mis-order blocks.
pub async fn allgather_ring(comm: CommId, data: Bytes) -> Result<Vec<Bytes>, MpiError> {
    let (me, size, tag) = coll_begin(comm)?;
    let mut parts: Vec<Bytes> = vec![Bytes::new(); size];
    parts[me] = data;
    if size <= 1 {
        return Ok(parts);
    }
    let right = (me + 1) % size;
    let left = (me + size - 1) % size;
    note_payload(size as u64 - 1, 0);
    for step in 0..size - 1 {
        let send_idx = (me + size - step) % size;
        let recv_idx = (me + size - step - 1) % size;
        // The send drains on its own (eager locally, rendezvous with the
        // neighbour's matching receive) — same pattern as `alltoall`.
        let _ = p2p::isend_raw(comm, right, tag, parts[send_idx].clone()).await?;
        parts[recv_idx] = p2p::recv_raw(comm, Some(left), Some(tag)).await?.data;
    }
    Ok(parts)
}

// ----------------------------------------------------------------------
// Schedule arithmetic (shared by the implementations and the tests)
// ----------------------------------------------------------------------

/// Number of children of virtual rank `vrank` in a binomial tree over
/// `size` members rooted at virtual rank 0.
pub fn tree_children(vrank: usize, size: usize) -> usize {
    let lowbit = if vrank == 0 {
        size.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut n = 0;
    let mut bit = 1;
    while bit < lowbit && bit < size {
        if (vrank | bit) < size {
            n += 1;
        }
        bit <<= 1;
    }
    n
}

/// Depth of virtual rank `vrank` in the binomial tree (rounds before its
/// data can reach the root): the number of set bits, because each hop to
/// the parent clears exactly the lowest one.
pub fn tree_depth(vrank: usize) -> u32 {
    vrank.count_ones()
}

/// Communication rounds for a binomial-tree collective over `size`
/// members: ⌈log₂ size⌉.
pub fn tree_rounds(size: usize) -> u32 {
    if size <= 1 {
        0
    } else {
        usize::BITS - (size - 1).leading_zeros()
    }
}

/// Rounds for a linear root fan-out: P−1 serialized messages.
pub fn linear_rounds(size: usize) -> u32 {
    size.saturating_sub(1) as u32
}

/// Rounds for the ring allgather: P−1, each moving one block per member.
pub fn ring_rounds(size: usize) -> u32 {
    size.saturating_sub(1) as u32
}

// ----------------------------------------------------------------------
// Payload packing helpers
// ----------------------------------------------------------------------

/// Pack multiple byte strings into one (length-prefixed).
pub fn encode_multi(parts: &[Bytes]) -> Bytes {
    let total: usize = 4 + parts.iter().map(|p| 4 + p.len()).sum::<usize>();
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u32_le(parts.len() as u32);
    for p in parts {
        buf.put_u32_le(p.len() as u32);
        buf.put_slice(p);
    }
    buf.freeze()
}

/// Unpack a [`encode_multi`] payload. Returns `None` on malformed input.
/// The returned parts are zero-copy sub-slices sharing the packed
/// buffer's allocation.
pub fn decode_multi(data: &Bytes) -> Option<Vec<Bytes>> {
    if data.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(data[0..4].try_into().ok()?) as usize;
    let mut out = Vec::with_capacity(n);
    let mut off = 4;
    for _ in 0..n {
        if data.len() < off + 4 {
            return None;
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().ok()?) as usize;
        off += 4;
        if data.len() < off + len {
            return None;
        }
        out.push(data.slice(off..off + len));
        off += len;
    }
    (off == data.len()).then_some(out)
}

/// Serialize an `f64` slice (little-endian).
pub fn f64_to_bytes(v: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(v.len() * 8);
    for x in v {
        buf.put_f64_le(*x);
    }
    buf.freeze()
}

/// Deserialize an `f64` slice; `None` if the length is not a multiple of 8.
pub fn bytes_to_f64(data: &[u8]) -> Option<Vec<f64>> {
    if !data.len().is_multiple_of(8) {
        return None;
    }
    Some(
        data.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

/// Serialize a `u64` slice (little-endian).
pub fn u64_to_bytes(v: &[u64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(v.len() * 8);
    for x in v {
        buf.put_u64_le(*x);
    }
    buf.freeze()
}

/// Deserialize a `u64` slice; `None` if the length is not a multiple of 8.
pub fn bytes_to_u64(data: &[u8]) -> Option<Vec<u64>> {
    if !data.len().is_multiple_of(8) {
        return None;
    }
    Some(
        data.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_round_trip() {
        let parts = vec![
            Bytes::from_static(b"alpha"),
            Bytes::new(),
            Bytes::from_static(b"z"),
        ];
        let packed = encode_multi(&parts);
        assert_eq!(decode_multi(&packed).unwrap(), parts);
    }

    #[test]
    fn multi_rejects_malformed() {
        assert!(decode_multi(&Bytes::new()).is_none());
        assert!(decode_multi(&Bytes::from(vec![9, 0, 0, 0])).is_none());
        let packed = encode_multi(&[Bytes::from_static(b"xy")]);
        assert!(decode_multi(&packed.slice(0..packed.len() - 1)).is_none());
        // Trailing garbage is also rejected.
        let mut longer = packed.to_vec();
        longer.push(0);
        assert!(decode_multi(&Bytes::from(longer)).is_none());
    }

    #[test]
    fn f64_round_trip() {
        let v = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64(&f64_to_bytes(&v)).unwrap(), v);
        assert!(bytes_to_f64(&[1, 2, 3]).is_none());
    }

    #[test]
    fn u64_round_trip() {
        let v = vec![0, 1, u64::MAX];
        assert_eq!(bytes_to_u64(&u64_to_bytes(&v)).unwrap(), v);
        assert!(bytes_to_u64(&[1]).is_none());
    }

    #[test]
    fn tree_schedules_are_logarithmic() {
        for exp in 1..=14u32 {
            let size = 1usize << exp;
            // O(log P): the binomial tree finishes in exactly log2(P)
            // rounds at powers of two, vs. P-1 for the linear fan-out.
            assert_eq!(tree_rounds(size), exp);
            assert_eq!(linear_rounds(size), size as u32 - 1);
            assert_eq!(ring_rounds(size), size as u32 - 1);
        }
        // Non-powers of two round up.
        assert_eq!(tree_rounds(1), 0);
        assert_eq!(tree_rounds(3), 2);
        assert_eq!(tree_rounds(5), 3);
        assert_eq!(tree_rounds(1000), 10);

        // Structural check: the deepest member of the tree is exactly
        // tree_rounds levels from the root, and every member's depth is
        // bounded by it — the whole reduce drains in O(log P) rounds.
        for &size in &[2usize, 3, 5, 8, 17, 64, 1000, 4096] {
            let max_depth = (0..size).map(tree_depth).max().unwrap();
            assert!(
                max_depth <= tree_rounds(size),
                "size {size}: depth {max_depth} > rounds {}",
                tree_rounds(size)
            );
            if size.is_power_of_two() {
                assert_eq!(max_depth, tree_rounds(size), "size {size}");
            }
        }

        // The child lists tile the membership: every non-root member is
        // the child of exactly one parent.
        for &size in &[2usize, 3, 7, 8, 33, 100] {
            let total: usize = (0..size).map(|v| tree_children(v, size)).sum();
            assert_eq!(total, size - 1, "size {size}");
        }
    }

    #[test]
    fn reduce_op_folds() {
        assert_eq!(ReduceOp::Sum.fold_f64(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.fold_f64(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.fold_f64(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Prod.fold_f64(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Sum.fold_u64(u64::MAX, 1), 0, "wrapping");
    }
}
