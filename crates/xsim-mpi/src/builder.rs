//! The simulation builder: composes the engine, machine models, file
//! system, MPI layer and failure injections into one runnable
//! configuration — the equivalent of xSim's command-line/environment
//! configuration surface (paper §IV-B).

use crate::error::ErrHandler;
use crate::mpi_ctx::{mpi_program, MpiCtx};
use crate::state::{
    install_failure_hook, CollAlgo, Detector, LossyTransport, MpiService, MpiStats, MpiWorld,
    PowerService,
};
use crate::trace::{Trace, TraceEvent, TraceService};
use parking_lot::Mutex;
use std::future::Future;
use std::sync::Arc;
use xsim_core::vp::VpProgram;
use xsim_core::{
    engine, CoreConfig, EngineKind, Kernel, LookaheadProvider, Rank, SimError, SimReport, SimTime,
};
use xsim_fs::{FsModel, FsService, FsStore};
use xsim_net::{LinkStateTable, NetFault, NetModel};
use xsim_obs::{ids as metric_ids, ChromeTraceWriter, ObsReport, ObsService, ObsSink};
use xsim_proc::{PowerModel, PowerReport, ProcModel};

/// A per-shard setup hook registered via [`SimBuilder::setup_hook`].
type SetupHook = Arc<dyn Fn(&mut Kernel) + Send + Sync>;

/// Result of one simulated run: the core engine report plus MPI-layer
/// statistics.
#[derive(Debug)]
pub struct RunReport {
    /// Engine-level report (exit kind, clocks, failures, abort time…).
    pub sim: SimReport,
    /// Aggregated MPI statistics.
    pub mpi: MpiStats,
    /// Energy accounting, when a power model was configured (paper
    /// §III-A item (4)).
    pub power: Option<PowerReport>,
    /// Execution trace, when tracing was enabled.
    pub trace: Option<Trace>,
    /// Observability data (metrics registry + subsystem spans), when
    /// metrics were enabled.
    pub metrics: Option<ObsReport>,
}

impl RunReport {
    /// The maximum simulated MPI process time — the value xSim persists
    /// at application exit for restart continuation (paper §IV-E).
    pub fn exit_time(&self) -> SimTime {
        self.sim.exit_time()
    }

    /// Stream the merged Chrome trace-event JSON (Perfetto-viewable):
    /// MPI phases on each rank's lane 0, subsystem spans (file I/O,
    /// checkpoint commits) on lane 1. Emits an empty-but-valid document
    /// when neither tracing nor metrics were enabled.
    pub fn write_chrome_trace<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        let mut out = ChromeTraceWriter::new(w)?;
        if let Some(trace) = &self.trace {
            for e in &trace.events {
                let name = e.kind.to_string();
                let mut args: Vec<(&str, u64)> = Vec::with_capacity(2);
                if e.bytes != 0 {
                    args.push(("bytes", e.bytes));
                }
                if let Some(p) = e.peer {
                    args.push(("peer", p.0 as u64));
                }
                out.complete(
                    &name,
                    "mpi",
                    e.rank.0,
                    0,
                    e.start.as_nanos(),
                    e.end.as_nanos(),
                    &args,
                )?;
            }
        }
        if let Some(obs) = &self.metrics {
            for s in &obs.spans {
                out.span(s)?;
            }
        }
        out.finish()?;
        Ok(())
    }

    /// The merged Chrome trace as an in-memory JSON string; `None` when
    /// neither tracing nor metrics were enabled.
    pub fn chrome_trace_json(&self) -> Option<String> {
        if self.trace.is_none() && self.metrics.is_none() {
            return None;
        }
        let mut buf = Vec::new();
        self.write_chrome_trace(&mut buf)
            .expect("writing to a Vec cannot fail");
        Some(String::from_utf8(buf).expect("trace JSON is UTF-8"))
    }

    /// The machine-readable metrics snapshot (includes the engine
    /// section); `None` when metrics were not enabled.
    pub fn metrics_json(&self) -> Option<String> {
        self.metrics.as_ref().map(|m| m.to_json(Some(&self.sim)))
    }

    /// One-line human summary: the engine summary plus headline MPI
    /// counters.
    pub fn summary(&self) -> String {
        format!(
            "{}; mpi: {} sends / {} collectives / {} bytes",
            self.sim.summary(),
            self.mpi.sends,
            self.mpi.collectives,
            self.mpi.bytes_sent
        )
    }
}

/// Builder for a simulated MPI run.
pub struct SimBuilder {
    n_ranks: usize,
    workers: usize,
    engine: EngineKind,
    batch_hint: usize,
    adaptive_lookahead: bool,
    seed: u64,
    start_time: SimTime,
    verbose: bool,
    fail_blocked: bool,
    max_events: u64,
    net: NetModel,
    proc: ProcModel,
    fs_model: FsModel,
    fs_store: Arc<FsStore>,
    errhandler: ErrHandler,
    failures: Vec<(Rank, SimTime)>,
    net_faults: Vec<NetFault>,
    lossy: Option<LossyTransport>,
    notify_delay: Option<SimTime>,
    detector: Detector,
    coll_algo: CollAlgo,
    power: Option<PowerModel>,
    trace: bool,
    metrics: bool,
    setup_hooks: Vec<SetupHook>,
}

impl SimBuilder {
    /// A builder for `n_ranks` simulated MPI processes on a small
    /// fully-connected default machine. Use [`net`](Self::net) to select
    /// the paper's torus machine or any other model.
    pub fn new(n_ranks: usize) -> Self {
        SimBuilder {
            n_ranks,
            workers: 1,
            engine: EngineKind::Auto,
            batch_hint: 0,
            adaptive_lookahead: true,
            seed: 0xD5_1A_B0_75,
            start_time: SimTime::ZERO,
            verbose: false,
            fail_blocked: false,
            max_events: u64::MAX,
            net: NetModel::small(n_ranks.max(1)),
            proc: ProcModel::default(),
            fs_model: FsModel::free(),
            fs_store: FsStore::new(),
            errhandler: ErrHandler::Fatal,
            failures: Vec::new(),
            net_faults: Vec::new(),
            lossy: None,
            notify_delay: None,
            detector: Detector::Timeout,
            coll_algo: CollAlgo::Tree,
            power: None,
            trace: false,
            metrics: false,
            setup_hooks: Vec::new(),
        }
    }

    /// Set the network model (machine topology, link classes, protocol
    /// thresholds, failure-detection timeouts).
    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Set the processor model.
    pub fn proc(mut self, proc: ProcModel) -> Self {
        self.proc = proc;
        self
    }

    /// Set the file system cost model (default: free, the paper's
    /// Table II configuration).
    pub fn fs_model(mut self, m: FsModel) -> Self {
        self.fs_model = m;
        self
    }

    /// Use an existing file system store (so checkpoints survive across
    /// runs). Defaults to a fresh store.
    pub fn fs_store(mut self, store: Arc<FsStore>) -> Self {
        self.fs_store = store;
        self
    }

    /// Handle to the file system store this run will use.
    pub fn store(&self) -> Arc<FsStore> {
        self.fs_store.clone()
    }

    /// Number of native worker threads (with the default
    /// [`EngineKind::Auto`], 1 selects the sequential reference engine).
    pub fn workers(mut self, w: usize) -> Self {
        self.workers = w;
        self
    }

    /// Force an engine kind. [`EngineKind::Parallel`] with `workers(1)`
    /// runs the parallel code path without concurrency — the middle leg
    /// of the sequential/parallel differential tests.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Capacity hint (events) for the parallel engine's per-(src,dst)
    /// cross-shard exchange buffers. Purely a performance knob — the
    /// buffers grow as needed and are recycled between windows.
    pub fn batch_hint(mut self, events: usize) -> Self {
        self.batch_hint = events;
        self
    }

    /// Let the parallel engine widen synchronization windows using the
    /// network model's cross-shard lookahead (on by default). When shard
    /// blocks align with compute nodes, cross-shard traffic is
    /// system-class and the window can grow from the global minimum
    /// latency to the system link latency — fewer barriers, identical
    /// results. Disable to pin windows to the static minimum.
    pub fn adaptive_lookahead(mut self, enabled: bool) -> Self {
        self.adaptive_lookahead = enabled;
        self
    }

    /// Master seed for all deterministic randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Initial virtual clock of every VP (restart continuation, paper
    /// §IV-E).
    pub fn start_time(mut self, t: SimTime) -> Self {
        self.start_time = t;
        self
    }

    /// Print simulator-internal informational messages (failure/abort
    /// times and locations, shutdown statistics).
    pub fn verbose(mut self, v: bool) -> Self {
        self.verbose = v;
        self
    }

    /// Activate scheduled failures even while the target is blocked on
    /// communication (eager extension; the paper's strict activation
    /// rule is the default — see `CoreConfig::fail_blocked`).
    pub fn fail_blocked(mut self, v: bool) -> Self {
        self.fail_blocked = v;
        self
    }

    /// Event budget safety valve.
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Default error handler for `MPI_COMM_WORLD` (default:
    /// `MPI_ERRORS_ARE_FATAL`).
    pub fn errhandler(mut self, h: ErrHandler) -> Self {
        self.errhandler = h;
        self
    }

    /// Schedule a process failure: "xSim additionally offers to pass a
    /// simulated MPI process failure schedule in the form of rank/time
    /// pairs" (paper §IV-B). The time is the *earliest* failure time.
    pub fn inject_failure(mut self, rank: usize, at: SimTime) -> Self {
        self.failures.push((Rank::new(rank), at));
        self
    }

    /// Schedule several failures at once.
    pub fn inject_failures(mut self, schedule: impl IntoIterator<Item = (usize, SimTime)>) -> Self {
        self.failures
            .extend(schedule.into_iter().map(|(r, t)| (Rank::new(r), t)));
        self
    }

    /// Schedule link/switch faults on the interconnect (permanent,
    /// transient, or degraded — see `xsim_net::NetFault`). At `run()`
    /// time the faults are compiled into a `LinkStateTable` over the
    /// machine topology and attached to the network model: system-class
    /// messages then route around dead links (hop-count inflation),
    /// pay degraded-link bandwidth, and detect partitions.
    pub fn net_faults(mut self, faults: impl IntoIterator<Item = NetFault>) -> Self {
        self.net_faults.extend(faults);
        self
    }

    /// Make the transport lossy: transmission attempts drop/corrupt per
    /// the configured probabilities and are retransmitted with
    /// exponential backoff; an exhausted retry budget escalates the peer
    /// into the process-failure path. A `LossyTransport` seed of 0 is
    /// replaced by the run's master seed.
    pub fn lossy(mut self, l: LossyTransport) -> Self {
        self.lossy = Some(l);
        self
    }

    /// Override the simulator-internal notification delay (default: the
    /// network model's minimum latency).
    pub fn notify_delay(mut self, d: SimTime) -> Self {
        self.notify_delay = Some(d);
        self
    }

    /// Select the failure detector (default: the paper's timeout-based
    /// detection, §IV-C).
    pub fn detector(mut self, d: Detector) -> Self {
        self.detector = d;
        self
    }

    /// Enable the node power model: the run report will carry an energy
    /// accounting (busy/idle/network joules) for the whole simulated
    /// machine.
    pub fn power(mut self, model: PowerModel) -> Self {
        self.power = Some(model);
        self
    }

    /// Select the collective algorithms. The default is
    /// `CollAlgo::Tree` (binomial barrier/bcast/reduce + ring
    /// allgather); pass `CollAlgo::Linear` to reproduce the paper's
    /// simulated system, which configures linear algorithms (§V-C) —
    /// the paper-fidelity benchmarks pin that explicitly.
    pub fn collectives(mut self, algo: CollAlgo) -> Self {
        self.coll_algo = algo;
        self
    }

    /// Record an execution trace (per-rank compute/communication phase
    /// intervals); retrieve it from `RunReport::trace`.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Collect subsystem metrics (network, file system, checkpoint,
    /// fault counters and histograms) and subsystem spans; retrieve them
    /// from `RunReport::metrics`. Off by default: with metrics disabled
    /// no registry exists and every instrumentation site is a no-op.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Register an extra per-shard setup hook, run after the standard
    /// services are installed. Extension layers (e.g. the soft-error
    /// injector in xsim-fault) use this to attach their own services and
    /// scheduled events.
    pub fn setup_hook(mut self, f: impl Fn(&mut Kernel) + Send + Sync + 'static) -> Self {
        self.setup_hooks.push(Arc::new(f));
        self
    }

    /// Run an application function on every rank.
    pub fn run_app<F, Fut>(self, f: F) -> Result<RunReport, SimError>
    where
        F: Fn(MpiCtx) -> Fut + Send + Sync + 'static,
        Fut: Future<Output = Result<(), crate::error::MpiError>> + Send + 'static,
    {
        self.run(mpi_program(f))
    }

    /// Run an arbitrary [`VpProgram`].
    pub fn run(mut self, program: Arc<dyn VpProgram>) -> Result<RunReport, SimError> {
        self.net.validate(self.n_ranks).map_err(SimError::Config)?;
        let mut net = if self.net_faults.is_empty() {
            self.net
        } else {
            // Rerouting only lengthens routes and degradation only lowers
            // bandwidth, so the fault-free min_latency() below stays a
            // valid conservative lookahead.
            let mut table = LinkStateTable::new(self.net.topology.clone());
            for f in &self.net_faults {
                table.add(*f);
            }
            self.net.with_faults(table)
        };
        // The topology is final here: materialize the dense healthy hop
        // table (small tori/meshes only) so the no-fault message path is
        // a pure lookup.
        net.precompute_hops();
        let lossy = self.lossy.map(|mut l| {
            if l.seed == 0 {
                l.seed = self.seed;
            }
            l
        });
        let lookahead = net.min_latency();
        let notify_delay = self.notify_delay.unwrap_or(lookahead).max(lookahead);
        let start_time = self.start_time;

        // Striped-PFS transit rides the interconnect: derive it from the
        // network model when unset, and reject anything below the engine
        // lookahead — PFS arrival/completion events cross shards, so
        // they must clear the conservative window bound.
        if let Some(mut pfs) = self.fs_model.pfs {
            if pfs.transit == SimTime::ZERO {
                pfs.transit = lookahead;
                self.fs_model.pfs = Some(pfs);
            }
            if pfs.transit < lookahead {
                return Err(SimError::Config(format!(
                    "PFS transit {:?} is below the network lookahead {:?}",
                    pfs.transit, lookahead
                )));
            }
        }

        let mut cfg = CoreConfig {
            n_ranks: self.n_ranks,
            workers: self.workers,
            engine: self.engine,
            batch_hint: self.batch_hint,
            start_time: self.start_time,
            seed: self.seed,
            lookahead,
            fail_blocked: self.fail_blocked,
            max_events: self.max_events,
            verbose: self.verbose,
            ..CoreConfig::default()
        };

        let world = Arc::new(MpiWorld {
            n_ranks: self.n_ranks,
            net,
            proc: self.proc,
            notify_delay,
            default_errhandler: self.errhandler,
            detector: self.detector,
            coll_algo: self.coll_algo,
            lossy,
            verbose: self.verbose,
        });

        if self.adaptive_lookahead && cfg.use_parallel() {
            // Everything crossing a shard boundary is either application
            // traffic (delayed by at least the network's cross-shard
            // latency for this partition) or a simulator-internal
            // notification (delayed by notify_delay), so their minimum
            // bounds the delay of *any* cross-shard event. Only install
            // the provider when that beats the static floor; the engine
            // takes max(lookahead, provider) per window either way.
            let rps = cfg.ranks_per_shard();
            // PFS server traffic is only delayed by the transit time, so
            // it clamps the adaptive bound alongside notify_delay.
            let pfs_transit = self.fs_model.pfs.map(|p| p.transit).unwrap_or(SimTime::MAX);
            let cross = world
                .net
                .cross_shard_lookahead(rps)
                .min(notify_delay)
                .min(pfs_transit);
            if cross > lookahead {
                let world = world.clone();
                cfg.lookahead_fn = Some(LookaheadProvider::new(move |_lbts| {
                    // Queried each window against the live model: faults
                    // only lengthen routes, so this stays conservative.
                    world
                        .net
                        .cross_shard_lookahead(rps)
                        .min(world.notify_delay)
                        .min(pfs_transit)
                }));
            }
        }
        let stats_sink = Arc::new(Mutex::new(MpiStats::default()));
        let fs_store = self.fs_store;
        let fs_model = self.fs_model;
        // One I/O-server state per run, shared by every shard's service.
        let pfs_state = FsService::shared_pfs(&fs_model);
        let failures = self.failures;
        let setup_hooks = self.setup_hooks;
        let power_model = self.power;
        let busy_sink: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));
        let trace_enabled = self.trace;
        let trace_sink: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let metrics_enabled = self.metrics;
        let obs_sink: Arc<Mutex<ObsSink>> = Arc::new(Mutex::new(ObsSink::default()));

        let setup = {
            let world = world.clone();
            let stats_sink = stats_sink.clone();
            let busy_sink = busy_sink.clone();
            let trace_sink = trace_sink.clone();
            let obs_sink = obs_sink.clone();
            move |k: &mut Kernel| {
                let owned = k.owned_ranks();
                k.install_service(MpiService::new(
                    world.clone(),
                    owned.clone(),
                    stats_sink.clone(),
                ));
                k.install_service(FsService::with_pfs(
                    fs_store.clone(),
                    fs_model,
                    pfs_state.clone(),
                ));
                if power_model.is_some() {
                    k.install_service(PowerService::new(world.n_ranks, busy_sink.clone()));
                }
                if trace_enabled {
                    k.install_service(TraceService::new(trace_sink.clone()));
                }
                if metrics_enabled {
                    k.install_service(ObsService::new(obs_sink.clone()));
                }
                // Flush trace/metric buffers deterministically at engine
                // shutdown instead of relying on service Drop order.
                k.add_shutdown_hook(Arc::new(|k: &mut Kernel| {
                    if let Some(tr) = k.try_service_mut::<TraceService>() {
                        tr.flush();
                    }
                    // Land the MPI layer's batched hot-path counters
                    // before the metric set is flushed into the sink.
                    let batch = k
                        .try_service_mut::<MpiService>()
                        .map(|svc| std::mem::take(&mut svc.net_batch));
                    if let Some(obs) = k.try_service_mut::<ObsService>() {
                        if let Some(batch) = batch {
                            batch.flush_into(&mut obs.set);
                        }
                        obs.flush();
                    }
                }));
                install_failure_hook(k);
                for (rank, at) in &failures {
                    if owned.contains(&rank.idx()) {
                        k.set_time_of_failure(*rank, *at);
                    }
                }
                for hook in &setup_hooks {
                    hook(k);
                }
            }
        };

        let sim = engine::run(cfg, program, &setup)?;
        // The setup closure (and the services it captured) is dropped by
        // now, so the busy sink holds every shard's accounting.
        drop(setup);
        let mpi = *stats_sink.lock();
        let power = power_model.map(|model| {
            let busy = busy_sink.lock();
            PowerReport::assemble(
                &model,
                &busy,
                &sim.final_clocks,
                start_time,
                mpi.sends,
                mpi.bytes_sent,
            )
        });
        let mut metrics = metrics_enabled.then(|| ObsReport::assemble(&obs_sink));
        if let Some(m) = metrics.as_mut() {
            // Surface the engine execution profile as (volatile) metrics
            // so perf investigations see windows/steals/batches next to
            // the subsystem counters.
            let p = sim.profile;
            m.set.add(metric_ids::ENGINE_WINDOWS, p.windows);
            m.set.add(metric_ids::ENGINE_STEALS, p.steals);
            m.set
                .add(metric_ids::ENGINE_BARRIER_WAIT_NS, p.barrier_wait_ns);
            m.set
                .add(metric_ids::ENGINE_BATCHED_EVENTS, p.batched_events);
            m.set.add(metric_ids::ENGINE_BATCH_MAX, p.batch_max_events);
            m.set.add(metric_ids::ENGINE_INGEST_SKIPS, p.ingest_skips);
            m.set.add(metric_ids::ENGINE_STEAL_HWM, p.window_steal_hwm);
            m.set
                .add(metric_ids::ENGINE_BARRIER_HWM_NS, p.window_barrier_hwm_ns);
            m.set.add(
                metric_ids::ENGINE_POOL_REUSE_RATIO,
                (p.pool_reuse_ratio() * 1000.0) as u64,
            );
            m.set
                .add(metric_ids::ENGINE_QUEUE_BUCKET_HWM, p.queue_bucket_hwm);
            // Route-cache effectiveness, read back from the shared fault
            // table. Volatile: shards can race to fill the same entry,
            // so the counts (not the routes) vary with scheduling.
            if let Some(table) = &world.net.faults {
                let s = table.route_cache_stats();
                m.set.add(metric_ids::NET_ROUTE_CACHE_HITS, s.hits);
                m.set.add(metric_ids::NET_ROUTE_CACHE_MISSES, s.misses);
                m.set
                    .add(metric_ids::NET_ROUTE_CACHE_EVICTIONS, s.evictions);
            }
        }
        let trace = trace_enabled.then(|| {
            let mut events: Vec<TraceEvent> = std::mem::take(&mut trace_sink.lock());
            // Surface file-system spans as FileIo phases so the MPI
            // trace covers I/O even though xsim-fs sits below this layer.
            if let Some(obs) = &metrics {
                events.extend(
                    obs.spans
                        .iter()
                        .filter(|s| s.cat == "fs")
                        .map(|s| TraceEvent {
                            rank: s.rank,
                            kind: crate::trace::PhaseKind::FileIo,
                            start: s.start,
                            end: s.end,
                            peer: None,
                            bytes: s.bytes,
                        }),
                );
            }
            Trace::assemble(events)
        });
        Ok(RunReport {
            sim,
            mpi,
            power,
            trace,
            metrics,
        })
    }
}
