//! ULFM (User-Level Failure Mitigation) support.
//!
//! The paper's conclusion reports "initial ULFM support according to the
//! pending MPI ULFM proposal": error notification via
//! `MPI_ERR_PROC_FAILED`, remote notification via `MPI_Comm_revoke()`,
//! and communicator reconfiguration via `MPI_Comm_shrink()` (§VI). This
//! module implements that subset plus `MPI_Comm_failure_ack` /
//! `MPI_Comm_failure_get_acked`.

use crate::collective::COLL_TAG_BASE;
use crate::comm::{Comm, CommId};
use crate::error::{ErrHandler, MpiError};
use crate::p2p::{self, with_mpi};
use crate::state::MpiService;
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;
use xsim_core::event::Action;
use xsim_core::{ctx, Kernel, Rank, SimTime};

/// Tag space for shrink recovery traffic (flows with the revoked-comm
/// exemption).
const SHRINK_TAG: u32 = COLL_TAG_BASE + (1 << 29);

/// Revoke a communicator (`MPI_Comm_revoke`): a simulator-internal
/// notification reaches every member, marks the communicator revoked and
/// releases pending operations on it with [`MpiError::Revoked`].
///
/// Like the real ULFM revoke, this is not collective — any member may
/// call it — and it returns immediately.
pub fn comm_revoke(comm: CommId) -> Result<(), MpiError> {
    ctx::with_kernel(|k, me| {
        with_mpi(k, |k, svc| {
            let now = k.vp(me).clock();
            let delay = svc.world.notify_delay;
            let rm = svc.rank_mut(me);
            if let Some(t) = rm.aborted {
                return Err(MpiError::Aborted { time: t });
            }
            let view = rm
                .comms
                .view(comm)
                .ok_or(MpiError::Invalid("unknown communicator"))?;
            let members: Vec<Rank> = view.members.as_ref().clone();
            // Mark locally at once (the caller is running, so no wake is
            // needed), remotely after the notification delay.
            apply_revoke(svc, me, comm, now);
            for m in members {
                if m == me {
                    continue;
                }
                k.schedule_at(
                    now + delay,
                    m,
                    Action::call(move |k: &mut Kernel| {
                        if k.vp(m).is_done() {
                            return;
                        }
                        let at = now + delay;
                        let wake = with_mpi(k, |_k, svc| apply_revoke(svc, m, comm, at));
                        if wake {
                            // Wake only after the service is re-installed:
                            // the resumed VP will reach for it.
                            k.wake_if_message_blocked(m, at);
                        }
                    }),
                );
            }
            Ok(())
        })
    })
}

/// Mark `comm` revoked at `rank` and release its pending operations.
/// Returns whether any request was released (the caller must then wake
/// the rank — after re-installing the service).
fn apply_revoke(svc: &mut MpiService, rank: Rank, comm: CommId, at: SimTime) -> bool {
    let rm = svc.rank_mut(rank);
    if rm.comms.view(comm).is_some_and(|v| v.revoked.is_some()) {
        return false;
    }
    rm.comms.revoke(comm, at);
    let pending = rm.reqs.pending_on_comm(comm);
    let mut any = false;
    for (id, _) in pending {
        // ULFM recovery traffic is exempt: a member already inside
        // comm_shrink when the revoke notice lands must not have its
        // report/survivor-list exchange released, or the shrink itself
        // would fail with Revoked.
        if rm.reqs.get(id).is_some_and(|r| r.tag >= SHRINK_TAG) {
            continue;
        }
        if rm.reqs.complete(id, at, Err(MpiError::Revoked)) {
            rm.queues.cancel_posted(id.0);
            rm.push_completion(id.0);
            any = true;
        }
    }
    any
}

/// Acknowledge all locally known failures (`MPI_Comm_failure_ack`):
/// subsequently, wildcard receives are not failed by these processes.
pub fn failure_ack() -> Result<(), MpiError> {
    ctx::with_kernel(|k, me| {
        let svc = k.service_mut::<MpiService>();
        let rm = svc.rank_mut(me);
        if let Some(t) = rm.aborted {
            return Err(MpiError::Aborted { time: t });
        }
        let known: Vec<Rank> = rm.failed.keys().copied().collect();
        rm.acked.extend(known);
        Ok(())
    })
}

/// The failures acknowledged so far (`MPI_Comm_failure_get_acked`), as
/// world ranks in ascending order.
pub fn failure_get_acked() -> Vec<Rank> {
    ctx::with_kernel(|k, me| {
        let svc = k.service::<MpiService>();
        svc.rank(me).acked.iter().copied().collect()
    })
}

/// This rank's current list of known-failed processes (world ranks with
/// times of failure) — the per-process list of paper §IV-B.
pub fn known_failures() -> Vec<(Rank, SimTime)> {
    ctx::with_kernel(|k, me| {
        let svc = k.service::<MpiService>();
        svc.rank(me).failed.iter().map(|(r, t)| (*r, *t)).collect()
    })
}

/// Shrink a (typically revoked) communicator (`MPI_Comm_shrink`):
/// surviving members agree on the failed set and derive a new
/// communicator containing only survivors, preserving rank order.
///
/// Protocol: every survivor reports its local failed-list to the lowest
///-ranked member it believes alive; that root unions the reports (adding
/// any member whose report times out as failed), broadcasts the final
/// survivor list, and everyone installs the new communicator. Survivors
/// must share enough failure knowledge to agree on the root — guaranteed
/// once the (global, equal-delay) failure notifications have been
/// delivered, which is the case for shrinks triggered by a detected
/// failure plus revoke.
pub async fn comm_shrink(comm: CommId) -> Result<Comm, MpiError> {
    let (me_world, members, my_failed): (Rank, Arc<Vec<Rank>>, Vec<Rank>) =
        ctx::with_kernel(|k, me| {
            let svc = k.service::<MpiService>();
            let rm = svc.rank(me);
            if let Some(t) = rm.aborted {
                return Err(MpiError::Aborted { time: t });
            }
            let view = rm
                .comms
                .view(comm)
                .ok_or(MpiError::Invalid("unknown communicator"))?;
            let failed: Vec<Rank> = view
                .members
                .iter()
                .filter(|m| rm.failed.contains_key(m))
                .copied()
                .collect();
            Ok((me, view.members.clone(), failed))
        })?;

    let root_world = *members
        .iter()
        .find(|m| !my_failed.contains(m))
        .ok_or(MpiError::Invalid("no surviving member to shrink around"))?;
    let root_cr = members
        .iter()
        .position(|m| *m == root_world)
        .expect("root is a member");

    let survivors: Vec<Rank> = if me_world == root_world {
        // Gather reports from everyone I believe alive; treat report
        // failures as additional dead members.
        let mut failed_union: Vec<Rank> = my_failed.clone();
        for (cr, m) in members.iter().enumerate() {
            if *m == me_world || failed_union.contains(m) {
                continue;
            }
            match p2p::recv_system(comm, cr, SHRINK_TAG).await {
                Ok(report) => {
                    if let Some(ranks) = decode_ranks(&report.data) {
                        for r in ranks {
                            if !failed_union.contains(&r) {
                                failed_union.push(r);
                            }
                        }
                    }
                }
                Err(MpiError::ProcFailed { rank, .. }) => {
                    if !failed_union.contains(&rank) {
                        failed_union.push(rank);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let survivors: Vec<Rank> = members
            .iter()
            .filter(|m| !failed_union.contains(m))
            .copied()
            .collect();
        let payload = encode_ranks(&survivors);
        for m in &survivors {
            if *m == me_world {
                continue;
            }
            let cr = members.iter().position(|x| x == m).expect("member");
            p2p::send_system(comm, cr, SHRINK_TAG, payload.clone()).await?;
        }
        survivors
    } else {
        p2p::send_system(comm, root_cr, SHRINK_TAG, encode_ranks(&my_failed)).await?;
        let resp = p2p::recv_system(comm, root_cr, SHRINK_TAG).await?;
        decode_ranks(&resp.data).ok_or(MpiError::Invalid("corrupt shrink payload"))?
    };

    // Install the shrunken communicator (same deterministic id on every
    // survivor: each installs exactly once per shrink).
    ctx::with_kernel(|k, me| {
        let svc = k.service_mut::<MpiService>();
        let handler = svc.world.default_errhandler.clone();
        let rm = svc.rank_mut(me);
        let id = rm.comms.install(Arc::new(survivors.clone()), me, handler);
        Ok(Comm { id })
    })
}

/// Set the error handler of a communicator
/// (`MPI_Comm_set_errhandler`).
pub fn set_errhandler(comm: CommId, handler: ErrHandler) -> Result<(), MpiError> {
    ctx::with_kernel(|k, me| {
        let svc = k.service_mut::<MpiService>();
        let rm = svc.rank_mut(me);
        let view = rm
            .comms
            .view_mut(comm)
            .ok_or(MpiError::Invalid("unknown communicator"))?;
        view.errhandler = handler;
        Ok(())
    })
}

fn encode_ranks(v: &[Rank]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + v.len() * 4);
    buf.put_u32_le(v.len() as u32);
    for r in v {
        buf.put_u32_le(r.0);
    }
    buf.freeze()
}

fn decode_ranks(data: &[u8]) -> Option<Vec<Rank>> {
    if data.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(data[0..4].try_into().ok()?) as usize;
    if data.len() != 4 + n * 4 {
        return None;
    }
    Some(
        data[4..]
            .chunks_exact(4)
            .map(|c| Rank(u32::from_le_bytes(c.try_into().expect("chunk of 4"))))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_codec_round_trips() {
        let v = vec![Rank(0), Rank(42), Rank(u32::MAX)];
        assert_eq!(decode_ranks(&encode_ranks(&v)).unwrap(), v);
        assert_eq!(decode_ranks(&encode_ranks(&[])).unwrap(), vec![]);
        assert!(decode_ranks(&[1, 2]).is_none());
        assert!(decode_ranks(&encode_ranks(&v)[..7]).is_none());
    }

    #[test]
    fn multi_helpers_reexported() {
        use crate::collective::{decode_multi, encode_multi};
        let parts = vec![Bytes::from_static(b"a")];
        assert_eq!(decode_multi(&encode_multi(&parts)).unwrap(), parts);
    }
}
