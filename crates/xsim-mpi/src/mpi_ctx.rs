//! The application-facing MPI context.
//!
//! [`MpiCtx`] is the handle a simulated application uses for everything:
//! MPI operations (with per-communicator error-handler semantics),
//! compute phases (charged through the processor model), simulated file
//! I/O, virtual time, and failure injection hooks. It corresponds to the
//! MPI + simulator-internal API surface a native application sees under
//! xSim's PMPI interposition (paper §IV-A).

use crate::abort::initiate_abort_here;
use crate::collective::{self, ReduceOp};
use crate::comm::{split_groups, Comm};
use crate::error::{ErrHandler, MpiError};
use crate::p2p;
use crate::request::{RecvOut, ReqId};
use crate::state::MpiService;
use crate::trace;
use crate::ulfm;
use bytes::{BufMut, Bytes, BytesMut};
use std::future::Future;
use std::sync::Arc;
use xsim_core::vp::{VpExit, VpFuture, VpProgram};
use xsim_core::{ctx, Rank, SimTime};
use xsim_proc::Work;

/// Handle to the simulated MPI world for one application process.
#[derive(Debug, Clone, Copy)]
pub struct MpiCtx {
    /// This process's world rank.
    pub rank: usize,
    /// World size.
    pub size: usize,
    /// Whether tracing is enabled for this run.
    pub traced: bool,
}

impl MpiCtx {
    /// Attach to the current VP (callable only while it executes).
    pub fn attach() -> Self {
        ctx::with_kernel(|k, me| {
            let svc = k.service::<MpiService>();
            MpiCtx {
                rank: me.idx(),
                size: svc.world.n_ranks,
                traced: k.try_service::<trace::TraceService>().is_some(),
            }
        })
    }

    #[inline]
    fn t0(&self) -> Option<SimTime> {
        self.traced.then(ctx::now)
    }

    #[inline]
    fn rec(&self, kind: trace::PhaseKind, t0: Option<SimTime>, peer: Option<Rank>, bytes: u64) {
        if let Some(start) = t0 {
            trace::record(kind, start, ctx::now(), peer, bytes);
        }
    }

    /// `MPI_COMM_WORLD`.
    pub fn world(&self) -> Comm {
        Comm::WORLD
    }

    /// My rank within a communicator.
    pub fn comm_rank(&self, comm: Comm) -> Result<usize, MpiError> {
        ctx::with_kernel(|k, me| {
            let svc = k.service::<MpiService>();
            svc.rank(me)
                .comms
                .view(comm.id)
                .map(|v| v.my_rank)
                .ok_or(MpiError::Invalid("unknown communicator"))
        })
    }

    /// Size of a communicator.
    pub fn comm_size(&self, comm: Comm) -> Result<usize, MpiError> {
        ctx::with_kernel(|k, me| {
            let svc = k.service::<MpiService>();
            svc.rank(me)
                .comms
                .view(comm.id)
                .map(|v| v.size())
                .ok_or(MpiError::Invalid("unknown communicator"))
        })
    }

    /// Current virtual time (simulated `MPI_Wtime`/`gettimeofday`).
    pub fn now(&self) -> SimTime {
        ctx::now()
    }

    /// Run a compute phase: charges the processor model's virtual time
    /// for `work` on this rank's node. The clock update at the end is a
    /// failure/abort activation point (paper §IV-B).
    pub async fn compute(&self, work: Work) {
        let t0 = self.t0();
        let d = ctx::with_kernel(|k, me| {
            let svc = k.service::<MpiService>();
            let d = svc.world.proc.virtual_time(me, work);
            if let Some(power) = k.try_service_mut::<crate::state::PowerService>() {
                power.add_busy(me, d);
            }
            d
        });
        if d > SimTime::ZERO {
            ctx::sleep(d).await;
        }
        self.rec(trace::PhaseKind::Compute, t0, None, 0);
    }

    /// Advance virtual time without modeling work (testing/debug).
    pub async fn sleep(&self, d: SimTime) {
        ctx::sleep(d).await;
    }

    // ------------------------------------------------------------------
    // Error-handler plumbing
    // ------------------------------------------------------------------

    fn apply<T>(&self, comm: Comm, r: Result<T, MpiError>) -> Result<T, MpiError> {
        match r {
            Ok(v) => Ok(v),
            Err(e) if e.is_fatal() => Err(e),
            Err(e) => {
                let handler = ctx::with_kernel(|k, me| {
                    let svc = k.service::<MpiService>();
                    svc.rank(me)
                        .comms
                        .view(comm.id)
                        .map(|v| v.errhandler.clone())
                        .unwrap_or(ErrHandler::Fatal)
                });
                match handler {
                    ErrHandler::Fatal => Err(initiate_abort_here()),
                    ErrHandler::Return => Err(e),
                    ErrHandler::Custom(f) => {
                        f(&e);
                        Err(e)
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking send (`MPI_Send`).
    pub async fn send(
        &self,
        comm: Comm,
        dst: usize,
        tag: u32,
        data: Bytes,
    ) -> Result<(), MpiError> {
        let t0 = self.t0();
        let bytes = data.len() as u64;
        let r = p2p::send_raw(comm.id, dst, tag, data).await;
        self.rec(trace::PhaseKind::Send, t0, Some(Rank(dst as u32)), bytes);
        self.apply(comm, r)
    }

    /// Blocking receive (`MPI_Recv`). `src`/`tag` `None` = wildcard.
    pub async fn recv(
        &self,
        comm: Comm,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Result<RecvOut, MpiError> {
        let t0 = self.t0();
        let r = p2p::recv_raw(comm.id, src, tag).await;
        let (peer, bytes) = match &r {
            Ok(out) => (Some(out.src), out.data.len() as u64),
            Err(_) => (src.map(|s| Rank(s as u32)), 0),
        };
        self.rec(trace::PhaseKind::Recv, t0, peer, bytes);
        self.apply(comm, r)
    }

    /// Nonblocking send (`MPI_Isend`).
    pub async fn isend(
        &self,
        comm: Comm,
        dst: usize,
        tag: u32,
        data: Bytes,
    ) -> Result<ReqId, MpiError> {
        let r = p2p::isend_raw(comm.id, dst, tag, data).await;
        self.apply(comm, r)
    }

    /// Nonblocking receive (`MPI_Irecv`).
    pub fn irecv(
        &self,
        comm: Comm,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Result<ReqId, MpiError> {
        let r = p2p::irecv_raw(comm.id, src, tag);
        self.apply(comm, r)
    }

    /// Wait for a request (`MPI_Wait`); returns the payload for receives.
    pub async fn wait(&self, comm: Comm, req: ReqId) -> Result<Option<RecvOut>, MpiError> {
        let t0 = self.t0();
        let r = p2p::wait_raw(req).await;
        self.rec(trace::PhaseKind::Wait, t0, None, 0);
        self.apply(comm, r)
    }

    /// Wait for all requests (`MPI_Waitall`).
    pub async fn waitall(
        &self,
        comm: Comm,
        reqs: &[ReqId],
    ) -> Result<Vec<Option<RecvOut>>, MpiError> {
        let t0 = self.t0();
        let r = p2p::waitall_raw(reqs).await;
        self.rec(trace::PhaseKind::Wait, t0, None, 0);
        self.apply(comm, r)
    }

    /// Wait for any request (`MPI_Waitany`).
    pub async fn waitany(
        &self,
        comm: Comm,
        reqs: &[ReqId],
    ) -> Result<(usize, Option<RecvOut>), MpiError> {
        let (i, r) = p2p::waitany_raw(reqs).await;
        self.apply(comm, r).map(|v| (i, v))
    }

    /// Combined send+receive (`MPI_Sendrecv`) — deadlock-free symmetric
    /// exchange.
    pub async fn sendrecv(
        &self,
        comm: Comm,
        dst: usize,
        send_tag: u32,
        data: Bytes,
        src: Option<usize>,
        recv_tag: Option<u32>,
    ) -> Result<RecvOut, MpiError> {
        let t0 = self.t0();
        let bytes = data.len() as u64;
        let r = p2p::sendrecv_raw(comm.id, dst, send_tag, data, src, recv_tag).await;
        self.rec(trace::PhaseKind::Send, t0, Some(Rank(dst as u32)), bytes);
        self.apply(comm, r)
    }

    /// Blocking probe (`MPI_Probe`): wait for a matching message and
    /// report `(source world rank, tag, payload size)` without receiving
    /// it.
    pub async fn probe(
        &self,
        comm: Comm,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Result<(Rank, u32, usize), MpiError> {
        let r = p2p::probe_raw(comm.id, src, tag).await;
        self.apply(comm, r)
    }

    /// Nonblocking probe (`MPI_Iprobe`).
    pub fn iprobe(
        &self,
        comm: Comm,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Result<Option<(Rank, u32, usize)>, MpiError> {
        let r = p2p::iprobe_raw(comm.id, src, tag);
        self.apply(comm, r)
    }

    /// Nonblocking completion test (`MPI_Test`).
    pub fn test(&self, comm: Comm, req: ReqId) -> Result<Option<Option<RecvOut>>, MpiError> {
        match p2p::test_raw(req) {
            None => Ok(None),
            Some(r) => self.apply(comm, r).map(Some),
        }
    }

    // ------------------------------------------------------------------
    // Collectives (algorithm selected by `SimBuilder::collectives`; the
    // paper's simulated system uses the linear ones, §V-C)
    // ------------------------------------------------------------------

    fn coll_algo(&self) -> crate::state::CollAlgo {
        ctx::with_kernel(|k, _| k.service::<MpiService>().world.coll_algo)
    }

    /// Barrier (`MPI_Barrier`) using the configured algorithm (linear by
    /// default, per the paper's §V-C).
    pub async fn barrier(&self, comm: Comm) -> Result<(), MpiError> {
        let t0 = self.t0();
        let r = match self.coll_algo() {
            crate::state::CollAlgo::Linear => collective::barrier(comm.id).await,
            crate::state::CollAlgo::Tree => collective::barrier_tree(comm.id).await,
        };
        self.rec(trace::PhaseKind::Collective, t0, None, 0);
        self.apply(comm, r)
    }

    /// Broadcast (`MPI_Bcast`) using the configured algorithm.
    pub async fn bcast(&self, comm: Comm, root: usize, data: Bytes) -> Result<Bytes, MpiError> {
        let t0 = self.t0();
        let bytes = data.len() as u64;
        let r = match self.coll_algo() {
            crate::state::CollAlgo::Linear => collective::bcast(comm.id, root, data).await,
            crate::state::CollAlgo::Tree => collective::bcast_tree(comm.id, root, data).await,
        };
        self.rec(
            trace::PhaseKind::Collective,
            t0,
            Some(Rank(root as u32)),
            bytes,
        );
        self.apply(comm, r)
    }

    /// Gather to root (`MPI_Gather`, linear).
    pub async fn gather(
        &self,
        comm: Comm,
        root: usize,
        data: Bytes,
    ) -> Result<Option<Vec<Bytes>>, MpiError> {
        let r = collective::gather(comm.id, root, data).await;
        self.apply(comm, r)
    }

    /// Scatter from root (`MPI_Scatter`, linear).
    pub async fn scatter(
        &self,
        comm: Comm,
        root: usize,
        parts: Option<Vec<Bytes>>,
    ) -> Result<Bytes, MpiError> {
        let r = collective::scatter(comm.id, root, parts).await;
        self.apply(comm, r)
    }

    /// Allgather (`MPI_Allgather`) using the configured algorithm:
    /// linear gather + bcast, or the ring schedule under
    /// [`CollAlgo::Tree`](crate::state::CollAlgo).
    pub async fn allgather(&self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>, MpiError> {
        let r = match self.coll_algo() {
            crate::state::CollAlgo::Linear => collective::allgather(comm.id, data).await,
            crate::state::CollAlgo::Tree => collective::allgather_ring(comm.id, data).await,
        };
        self.apply(comm, r)
    }

    /// All-to-all personalized exchange (`MPI_Alltoall`).
    pub async fn alltoall(&self, comm: Comm, parts: Vec<Bytes>) -> Result<Vec<Bytes>, MpiError> {
        let r = collective::alltoall(comm.id, parts).await;
        self.apply(comm, r)
    }

    /// Elementwise reduce of `f64` vectors to root (`MPI_Reduce`) using
    /// the configured algorithm. Note the combine order (and so the
    /// floating-point result for non-associative ops) depends on the
    /// algorithm, but is deterministic within each.
    pub async fn reduce_f64(
        &self,
        comm: Comm,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>, MpiError> {
        let r = match self.coll_algo() {
            crate::state::CollAlgo::Linear => collective::reduce_f64(comm.id, root, data, op).await,
            crate::state::CollAlgo::Tree => {
                collective::reduce_f64_tree(comm.id, root, data, op).await
            }
        };
        self.apply(comm, r)
    }

    /// Elementwise allreduce of `f64` vectors (`MPI_Allreduce`) using
    /// the configured algorithm.
    pub async fn allreduce_f64(
        &self,
        comm: Comm,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Vec<f64>, MpiError> {
        let t0 = self.t0();
        let r = match self.coll_algo() {
            crate::state::CollAlgo::Linear => collective::allreduce_f64(comm.id, data, op).await,
            crate::state::CollAlgo::Tree => collective::allreduce_f64_tree(comm.id, data, op).await,
        };
        self.rec(
            trace::PhaseKind::Collective,
            t0,
            None,
            (data.len() * 8) as u64,
        );
        self.apply(comm, r)
    }

    /// Elementwise allreduce of `u64` vectors using the configured
    /// algorithm.
    pub async fn allreduce_u64(
        &self,
        comm: Comm,
        data: &[u64],
        op: ReduceOp,
    ) -> Result<Vec<u64>, MpiError> {
        let r = match self.coll_algo() {
            crate::state::CollAlgo::Linear => collective::allreduce_u64(comm.id, data, op).await,
            crate::state::CollAlgo::Tree => collective::allreduce_u64_tree(comm.id, data, op).await,
        };
        self.apply(comm, r)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Duplicate a communicator (`MPI_Comm_dup`). Collective: every
    /// member must call it in the same order.
    pub fn comm_dup(&self, comm: Comm) -> Result<Comm, MpiError> {
        ctx::with_kernel(|k, me| {
            let svc = k.service_mut::<MpiService>();
            let rm = svc.rank_mut(me);
            p2p::entry_checks(rm, comm.id)?;
            let (members, handler) = {
                let v = rm.comms.view(comm.id).expect("checked");
                (v.members.clone(), v.errhandler.clone())
            };
            let id = rm.comms.install(members, me, handler);
            Ok(Comm { id })
        })
    }

    /// Split a communicator (`MPI_Comm_split`). Members with the same
    /// `color` form a new communicator ordered by `(key, parent rank)`;
    /// `color = None` (MPI_UNDEFINED) yields `Ok(None)`.
    pub async fn comm_split(
        &self,
        comm: Comm,
        color: Option<u32>,
        key: i64,
    ) -> Result<Option<Comm>, MpiError> {
        // Exchange (color, key) among members via allgather.
        let mut enc = BytesMut::with_capacity(13);
        enc.put_u8(color.is_some() as u8);
        enc.put_u32_le(color.unwrap_or(0));
        enc.put_i64_le(key);
        let entries = self.allgather(comm, enc.freeze()).await?;

        let members = ctx::with_kernel(|k, me| {
            let svc = k.service::<MpiService>();
            let view = svc
                .rank(me)
                .comms
                .view(comm.id)
                .ok_or(MpiError::Invalid("unknown communicator"))?;
            let _ = me;
            Ok::<_, MpiError>(view.members.clone())
        })?;

        let mut parsed: Vec<(Rank, Option<u32>, i64)> = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            if e.len() != 13 {
                return Err(MpiError::Invalid("corrupt split payload"));
            }
            let has = e[0] != 0;
            let c = u32::from_le_bytes(e[1..5].try_into().expect("4 bytes"));
            let k = i64::from_le_bytes(e[5..13].try_into().expect("8 bytes"));
            parsed.push((members[i], has.then_some(c), k));
        }
        let groups = split_groups(&parsed);
        let mine = color.and_then(|c| groups.iter().find(|(gc, _)| *gc == c).cloned());

        ctx::with_kernel(|k, me| {
            let svc = k.service_mut::<MpiService>();
            let handler = svc.world.default_errhandler.clone();
            let rm = svc.rank_mut(me);
            match mine {
                Some((_, group)) => {
                    let id = rm.comms.install(Arc::new(group), me, handler);
                    Ok(Some(Comm { id }))
                }
                None => {
                    rm.comms.skip_id();
                    Ok(None)
                }
            }
        })
    }

    /// Set a communicator's error handler (`MPI_Comm_set_errhandler`).
    pub fn set_errhandler(&self, comm: Comm, handler: ErrHandler) -> Result<(), MpiError> {
        ulfm::set_errhandler(comm.id, handler)
    }

    // ------------------------------------------------------------------
    // ULFM (paper §VI future work (3))
    // ------------------------------------------------------------------

    /// Revoke a communicator (`MPI_Comm_revoke`).
    pub fn comm_revoke(&self, comm: Comm) -> Result<(), MpiError> {
        ulfm::comm_revoke(comm.id)
    }

    /// Shrink a communicator to its survivors (`MPI_Comm_shrink`).
    pub async fn comm_shrink(&self, comm: Comm) -> Result<Comm, MpiError> {
        ulfm::comm_shrink(comm.id).await
    }

    /// Acknowledge locally known failures (`MPI_Comm_failure_ack`).
    pub fn failure_ack(&self) -> Result<(), MpiError> {
        ulfm::failure_ack()
    }

    /// Acknowledged failures (`MPI_Comm_failure_get_acked`).
    pub fn failure_get_acked(&self) -> Vec<Rank> {
        ulfm::failure_get_acked()
    }

    /// This rank's known-failed list (simulator-internal view).
    pub fn known_failures(&self) -> Vec<(Rank, SimTime)> {
        ulfm::known_failures()
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Mark a clean MPI exit (`MPI_Finalize`). An application returning
    /// without having called this is treated as a process failure (one of
    /// the paper's injection methods, §IV-B).
    pub fn finalize(&self) {
        ctx::with_kernel(|k, me| {
            let svc = k.service_mut::<MpiService>();
            svc.rank_mut(me).finalized = true;
        });
    }

    /// `MPI_Abort`: broadcast an abort and return the error to propagate
    /// out of the application.
    pub fn abort(&self) -> MpiError {
        initiate_abort_here()
    }

    /// Inject an immediate process failure into this process (simulator-
    /// internal function, paper §IV-B). Never returns.
    pub async fn fail_now(&self) -> ! {
        ctx::fail_now().await
    }
}

struct MpiProgram<F> {
    f: Arc<F>,
}

impl<F, Fut> VpProgram for MpiProgram<F>
where
    F: Fn(MpiCtx) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = Result<(), MpiError>> + Send + 'static,
{
    fn spawn(&self, _rank: Rank) -> VpFuture {
        let f = self.f.clone();
        Box::pin(async move {
            let mctx = MpiCtx::attach();
            let result = f(mctx).await;
            let finalized = ctx::with_kernel(|k, me| {
                let svc = k.service::<MpiService>();
                svc.rank(me).finalized
            });
            match result {
                Ok(()) if finalized => VpExit::Finished,
                // "returning from main() or calling exit() without having
                // called MPI_Finalize()" injects a process failure
                // (paper §IV-B).
                Ok(()) => VpExit::Failed,
                Err(e) if e.is_fatal() => VpExit::Aborted,
                Err(_) => VpExit::Failed,
            }
        })
    }
}

/// Wrap an async application function into a [`VpProgram`]. The function
/// runs once per simulated rank.
pub fn mpi_program<F, Fut>(f: F) -> Arc<dyn VpProgram>
where
    F: Fn(MpiCtx) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = Result<(), MpiError>> + Send + 'static,
{
    Arc::new(MpiProgram { f: Arc::new(f) })
}
