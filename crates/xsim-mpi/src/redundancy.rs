//! Process-level redundancy (the RedMPI approach, paper §II-C).
//!
//! "RedMPI is capable of online detection and correction of soft errors
//! (bit flips) without requiring any modifications to the application
//! using double or triple redundancy. It can be also used as a fault
//! injection tool by disabling the online correction and keeping
//! replicas isolated."
//!
//! [`Redundant::split`] partitions `MPI_COMM_WORLD` into `r` replica
//! spheres: each sphere gets its own *work* communicator on which the
//! application runs unmodified, and each logical rank gets a *team*
//! communicator linking its `r` replicas. Teams compare (and with
//! `r ≥ 3` majority-correct) application data at verification points —
//! the message-comparison discipline of RedMPI reduced to its essence.

use crate::collective;
use crate::comm::Comm;
use crate::error::MpiError;
use crate::mpi_ctx::MpiCtx;
use bytes::Bytes;

/// Outcome of a redundant verification point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All replicas agree.
    Consistent,
    /// Replicas diverged and a majority value existed; the returned data
    /// is the corrected (majority) value. Carries the number of
    /// out-voted replicas.
    Corrected {
        /// Replicas whose value disagreed with the majority.
        outvoted: u32,
    },
    /// Replicas diverged with no majority (or only two replicas):
    /// detection without correction.
    Uncorrectable,
}

/// The replica structure of one process.
#[derive(Debug, Clone, Copy)]
pub struct Redundant {
    /// Degree of redundancy (2 = double, 3 = triple).
    pub r: usize,
    /// This process's replica index in `0..r`.
    pub replica: usize,
    /// Logical rank of this process (shared by its replicas).
    pub logical_rank: usize,
    /// Number of logical ranks.
    pub logical_size: usize,
    /// Communicator of this process's replica sphere: run the
    /// application on it, unmodified.
    pub work: Comm,
    /// Communicator of this logical rank's replica team (size `r`):
    /// verification traffic.
    pub team: Comm,
}

impl Redundant {
    /// Split the world into `r` replica spheres. World size must be an
    /// exact multiple of `r`; replicas are interleaved (world rank =
    /// `logical · r + replica`), so consecutive logical ranks land on
    /// distinct nodes under block placement — RedMPI's layout.
    pub async fn split(mpi: &MpiCtx, r: usize) -> Result<Redundant, MpiError> {
        if r < 2 {
            return Err(MpiError::Invalid("redundancy degree must be >= 2"));
        }
        if !mpi.size.is_multiple_of(r) {
            return Err(MpiError::Invalid("world size must be a multiple of r"));
        }
        let replica = mpi.rank % r;
        let logical_rank = mpi.rank / r;
        let logical_size = mpi.size / r;
        let world = mpi.world();
        let work = mpi
            .comm_split(world, Some(replica as u32), logical_rank as i64)
            .await?
            .expect("every rank has a replica color");
        let team = mpi
            .comm_split(world, Some(logical_rank as u32), replica as i64)
            .await?
            .expect("every rank has a team color");
        Ok(Redundant {
            r,
            replica,
            logical_rank,
            logical_size,
            work,
            team,
        })
    }

    /// Verify (and with `r ≥ 3`, correct) a datum across the replica
    /// team. Every replica passes its local value; the returned bytes
    /// are the majority value (or the caller's own on full agreement).
    ///
    /// An [`Verdict::Uncorrectable`] divergence (no majority — the only
    /// possible divergence outcome for `r = 2`) **escalates into the
    /// process-failure path**: the team cannot tell which replica is
    /// corrupt, so proceeding would propagate silent data corruption.
    /// Every team member fail-stops, which the simulator then handles
    /// exactly like a crash (detection, notification, abort or ULFM
    /// recovery by the rest of the job). Use [`Redundant::verify_detect`]
    /// for RedMPI's detection-only mode (correction disabled, replicas
    /// kept isolated).
    ///
    /// This is the verification point a RedMPI-protected application
    /// hits on every message; here the application chooses where to
    /// place it (e.g. once per iteration on its state checksum).
    pub async fn verify(&self, mpi: &MpiCtx, data: Bytes) -> Result<(Bytes, Verdict), MpiError> {
        let (winner, verdict) = self.verify_detect(mpi, data).await?;
        if verdict == Verdict::Uncorrectable {
            // All replicas of this logical rank observe the same gathered
            // values, so all reach this branch: the whole team fail-stops
            // deterministically and the failure machinery takes over.
            mpi.fail_now().await;
        }
        Ok((winner, verdict))
    }

    /// Detection-only verification (RedMPI with "online correction
    /// disabled"): identical voting, but an uncorrectable divergence is
    /// reported to the caller instead of escalating to a process
    /// failure.
    pub async fn verify_detect(
        &self,
        _mpi: &MpiCtx,
        data: Bytes,
    ) -> Result<(Bytes, Verdict), MpiError> {
        // Gather all replicas' values on every team member (team sizes
        // are tiny: r).
        let all = collective::allgather(self.team.id, data.clone()).await;
        let all = match all {
            Ok(v) => v,
            Err(e) => return Err(e),
        };
        // Majority vote.
        let mut best: Option<(&Bytes, u32)> = None;
        for candidate in &all {
            let votes = all.iter().filter(|d| *d == candidate).count() as u32;
            best = match best {
                Some((_, b)) if b >= votes => best,
                _ => Some((candidate, votes)),
            };
        }
        let (winner, votes) = best.expect("team is non-empty");
        let verdict = if votes as usize == self.r {
            Verdict::Consistent
        } else if votes as usize * 2 > self.r {
            Verdict::Corrected {
                outvoted: self.r as u32 - votes,
            }
        } else {
            Verdict::Uncorrectable
        };
        Ok((winner.clone(), verdict))
    }

    /// Verify a `u64` state checksum (convenience over
    /// [`Redundant::verify`] — escalates uncorrectable divergence).
    pub async fn verify_u64(&self, mpi: &MpiCtx, value: u64) -> Result<(u64, Verdict), MpiError> {
        let (bytes, verdict) = self
            .verify(mpi, Bytes::copy_from_slice(&value.to_le_bytes()))
            .await?;
        Self::decode_u64(&bytes).map(|v| (v, verdict))
    }

    /// Detection-only `u64` verification (convenience over
    /// [`Redundant::verify_detect`]).
    pub async fn verify_u64_detect(
        &self,
        mpi: &MpiCtx,
        value: u64,
    ) -> Result<(u64, Verdict), MpiError> {
        let (bytes, verdict) = self
            .verify_detect(mpi, Bytes::copy_from_slice(&value.to_le_bytes()))
            .await?;
        Self::decode_u64(&bytes).map(|v| (v, verdict))
    }

    fn decode_u64(bytes: &Bytes) -> Result<u64, MpiError> {
        bytes
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or(MpiError::Invalid("corrupt verification payload"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_for(r: usize, votes: usize) -> Verdict {
        if votes == r {
            Verdict::Consistent
        } else if votes * 2 > r {
            Verdict::Corrected {
                outvoted: (r - votes) as u32,
            }
        } else {
            Verdict::Uncorrectable
        }
    }

    #[test]
    fn verdict_boundaries() {
        // Same arithmetic as `verify`; the full path is exercised by the
        // integration tests in tests/redundancy.rs.
        assert_eq!(verdict_for(3, 3), Verdict::Consistent);
        assert_eq!(verdict_for(3, 2), Verdict::Corrected { outvoted: 1 });
        assert_eq!(verdict_for(3, 1), Verdict::Uncorrectable);
        assert_eq!(verdict_for(2, 2), Verdict::Consistent);
        assert_eq!(verdict_for(2, 1), Verdict::Uncorrectable);
        assert_eq!(verdict_for(5, 3), Verdict::Corrected { outvoted: 2 });
    }
}
