//! Per-rank MPI state, the kernel service holding it, and the
//! failure-notification machinery (paper §IV-B/C).

use crate::comm::CommTable;
use crate::error::{ErrHandler, MpiError};
use crate::msg::{Envelope, MatchQueues};
use crate::request::{ReqId, RequestTable};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::Arc;
use xsim_core::event::Action;
use xsim_core::{DetRng, Kernel, Rank, SimTime};
use xsim_net::{NetClass, NetModel};
use xsim_obs::ids;
use xsim_obs::metrics::{MetricSet, SIZE_BUCKETS};
use xsim_proc::ProcModel;

/// How simulated MPI process failures are detected (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// "The currently implemented simulated MPI process failure detection
    /// is purely based on simulated network communication timeouts":
    /// pending operations towards a failed peer error at
    /// `max(post, tof) + timeout(network class)`.
    Timeout,
    /// A simulated HPC monitoring system "that notifies the MPI layer
    /// about process failures" (the capability the paper reports as
    /// under development): every rank learns of the failure after
    /// `latency` and pending operations error as soon as the
    /// notification arrives.
    Monitor {
        /// Failure-report latency of the monitoring system.
        latency: SimTime,
    },
}

/// Which collective algorithms the MPI layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollAlgo {
    /// Linear algorithms — the paper's simulated system configuration
    /// ("MPI collectives utilize linear algorithms", §V-C).
    Linear,
    /// Log-P schedules: binomial-tree barrier/bcast/reduce/allreduce
    /// and ring allgather — O(log P) (resp. O(P) pipelined) rounds
    /// instead of a serialized root fan-out.
    Tree,
}

/// Outcome of one transmission attempt over a lossy transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The attempt reached the destination NIC intact.
    Delivered,
    /// The attempt was lost on the wire (no payload arrives).
    Dropped,
    /// The attempt arrived but failed the receiver's integrity check
    /// (CRC/checksum) and was discarded — indistinguishable from a drop
    /// to the protocol, but counted separately.
    Corrupted,
}

/// A lossy simulated transport: every transmission attempt may be
/// dropped or corrupted, and the simulated NIC retransmits with
/// exponential backoff up to a bounded retry budget. When the budget is
/// exhausted (or the network is partitioned) the peer is escalated into
/// the regular process-failure path, so ULFM/abort/checkpoint recovery
/// compose unchanged.
///
/// All loss decisions are drawn from counter-based deterministic
/// streams keyed by `(src, dst, seq, attempt)`: the same seed produces
/// the same drops regardless of worker count or event interleaving.
#[derive(Debug, Clone, Copy)]
pub struct LossyTransport {
    /// Probability that one attempt is dropped in transit.
    pub drop_prob: f64,
    /// Probability that one attempt arrives corrupted (discarded at the
    /// receiver after the integrity check).
    pub corrupt_prob: f64,
    /// Retransmission budget: after `1 + max_retries` failed attempts
    /// the destination is declared unreachable.
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base << k` (exponential).
    pub backoff_base: SimTime,
    /// Restrict loss to messages to or from this world rank (`None` =
    /// every system-class message is lossy). Tests use this to keep
    /// recovery traffic between survivors reliable.
    pub victim: Option<Rank>,
    /// Seed of the loss streams; `0` means "use the run's master seed"
    /// (filled in by the builder).
    pub seed: u64,
}

impl Default for LossyTransport {
    fn default() -> Self {
        LossyTransport {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            max_retries: 8,
            backoff_base: SimTime::from_micros(10),
            victim: None,
            seed: 0,
        }
    }
}

/// Stream-tag domain separator for loss draws (see `DetRng::stream`).
const LOSSY_STREAM: u64 = 0x10_55_1E_57;

impl LossyTransport {
    /// A transport dropping each attempt with probability `drop_prob`.
    pub fn with_drop_prob(drop_prob: f64) -> Self {
        LossyTransport {
            drop_prob,
            ..Self::default()
        }
    }

    /// Whether loss applies to a message between `src` and `dst`.
    pub fn applies(&self, src: Rank, dst: Rank) -> bool {
        self.victim.is_none_or(|v| v == src || v == dst)
    }

    /// The fate of transmission attempt `attempt` of message `seq` from
    /// `src` to `dst` — a pure function of the seed and the identifying
    /// tuple, so both engines and any shard layout agree on it.
    pub fn tx_outcome(&self, src: Rank, dst: Rank, seq: u64, attempt: u32) -> TxOutcome {
        if self.drop_prob <= 0.0 && self.corrupt_prob <= 0.0 {
            return TxOutcome::Delivered;
        }
        let tag = (src.idx() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((dst.idx() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(seq.wrapping_mul(0x1656_67B1_9E37_79F9))
            .wrapping_add(attempt as u64)
            ^ LOSSY_STREAM;
        let u = DetRng::stream(self.seed, tag).gen_f64();
        if u < self.drop_prob {
            TxOutcome::Dropped
        } else if u < self.drop_prob + self.corrupt_prob {
            TxOutcome::Corrupted
        } else {
            TxOutcome::Delivered
        }
    }

    /// Backoff delay preceding retransmission attempt `attempt + 1`.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        SimTime(
            self.backoff_base
                .as_nanos()
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX)),
        )
    }
}

/// Immutable, shared configuration of the simulated MPI world.
pub struct MpiWorld {
    /// Number of ranks in `MPI_COMM_WORLD`.
    pub n_ranks: usize,
    /// The network model.
    pub net: NetModel,
    /// The processor model.
    pub proc: ProcModel,
    /// Virtual delay of simulator-internal broadcast notifications
    /// (failure/abort/revoke). At least the engine lookahead.
    pub notify_delay: SimTime,
    /// Default error handler for `MPI_COMM_WORLD` — the MPI default is
    /// `MPI_ERRORS_ARE_FATAL` (paper §IV-D).
    pub default_errhandler: ErrHandler,
    /// The failure detector in effect.
    pub detector: Detector,
    /// Collective algorithm selection.
    pub coll_algo: CollAlgo,
    /// Lossy-transport configuration; `None` (the default) keeps the
    /// reliable transport with no retransmission machinery.
    pub lossy: Option<LossyTransport>,
    /// Print simulator-internal informational messages.
    pub verbose: bool,
}

impl MpiWorld {
    /// When ranks learn of a failure that occurred at `tof`.
    pub fn notification_time(&self, tof: SimTime) -> SimTime {
        match self.detector {
            Detector::Timeout => tof + self.notify_delay,
            Detector::Monitor { latency } => tof + latency.max(self.notify_delay),
        }
    }

    /// When a pending operation between `me` and the failed `dead`
    /// (posted at `post`) completes with `MPI_ERR_PROC_FAILED`.
    pub fn failure_error_time(&self, me: Rank, dead: Rank, post: SimTime, tof: SimTime) -> SimTime {
        match self.detector {
            Detector::Timeout => post.max(tof) + self.net.timeout(me, dead),
            Detector::Monitor { .. } => post.max(self.notification_time(tof)),
        }
    }
}

/// Counters aggregated across ranks and shards, surfaced in
/// [`crate::builder::RunReport`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MpiStats {
    /// Point-to-point sends posted.
    pub sends: u64,
    /// Point-to-point receives posted.
    pub recvs: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Collective operations started.
    pub collectives: u64,
    /// Requests that completed with `MPI_ERR_PROC_FAILED`.
    pub proc_failed_errors: u64,
}

impl MpiStats {
    fn merge(&mut self, o: &MpiStats) {
        self.sends += o.sends;
        self.recvs += o.recvs;
        self.bytes_sent += o.bytes_sent;
        self.collectives += o.collectives;
        self.proc_failed_errors += o.proc_failed_errors;
    }
}

/// The MPI state of one simulated rank.
pub struct RankMpi {
    /// This rank.
    pub me: Rank,
    /// Matching queues (posted receives / unexpected messages).
    pub queues: MatchQueues,
    /// Outstanding requests.
    pub reqs: RequestTable,
    /// Communicator table.
    pub comms: CommTable,
    /// This rank's list of known-failed processes and their times of
    /// failure — "each simulated MPI process maintains its own list of
    /// failed simulated MPI processes" (paper §IV-B).
    pub failed: BTreeMap<Rank, SimTime>,
    /// ULFM: failures acknowledged via `MPI_Comm_failure_ack`.
    pub acked: BTreeSet<Rank>,
    /// Set when this rank has observed (or initiated) an abort.
    pub aborted: Option<SimTime>,
    /// Whether `finalize` was called.
    pub finalized: bool,
    /// Per-destination send sequence numbers (non-overtaking bookkeeping).
    pub send_seq: HashMap<Rank, u64>,
    /// Receiver-NIC drain horizon for the optional contention model
    /// (`NetModel::serialize_recv`): no message completion at this rank
    /// may precede it.
    pub recv_free: SimTime,
    /// Request ids completed since the owning VP last drained the feed.
    /// Lets `waitall`/`waitany` re-check only fresh completions instead
    /// of rescanning every outstanding request (O(P²) at a linear
    /// collective root otherwise).
    pub completion_feed: Vec<u64>,
    /// Local statistics.
    pub stats: MpiStats,
}

impl RankMpi {
    fn new(me: Rank, world_members: Arc<Vec<Rank>>, default_handler: ErrHandler) -> Self {
        RankMpi {
            me,
            queues: MatchQueues::default(),
            reqs: RequestTable::default(),
            comms: CommTable::new_world_shared(world_members, me, default_handler),
            failed: BTreeMap::new(),
            acked: BTreeSet::new(),
            aborted: None,
            finalized: false,
            send_seq: HashMap::new(),
            recv_free: SimTime::ZERO,
            completion_feed: Vec::new(),
            stats: MpiStats::default(),
        }
    }

    /// Next send sequence number towards `dst`.
    pub fn next_send_seq(&mut self, dst: Rank) -> u64 {
        let c = self.send_seq.entry(dst).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Record a completed request id in the feed, compacting the feed
    /// when stale entries (already-consumed requests) accumulate.
    pub fn push_completion(&mut self, id: u64) {
        self.completion_feed.push(id);
        if self.completion_feed.len() > 2 * self.reqs.len() + 64 {
            let reqs = &self.reqs;
            self.completion_feed
                .retain(|i| reqs.get(crate::request::ReqId(*i)).is_some());
        }
    }

    /// The earliest-failed rank not yet acknowledged (drives wildcard
    /// receive failures, paper §IV-C / ULFM semantics).
    pub fn first_unacked_failure(&self) -> Option<(Rank, SimTime)> {
        self.failed
            .iter()
            .filter(|(r, _)| !self.acked.contains(r))
            .map(|(r, t)| (*r, *t))
            .next()
    }
}

/// Per-shard busy-time accounting for the power model (paper §III-A
/// item (4)). Installed by the builder when a power model is configured;
/// `MpiCtx::compute` adds each compute phase's duration. Flushes into a
/// shared sink on drop so the builder can assemble the energy report.
#[derive(Debug)]
pub struct PowerService {
    /// Busy virtual time per rank (indexed by world rank; only owned
    /// ranks are written).
    pub busy: Vec<SimTime>,
    sink: Arc<Mutex<Vec<SimTime>>>,
}

impl PowerService {
    /// Service sized for the world, flushing into `sink` on drop.
    pub fn new(n_ranks: usize, sink: Arc<Mutex<Vec<SimTime>>>) -> Self {
        PowerService {
            busy: vec![SimTime::ZERO; n_ranks],
            sink,
        }
    }

    /// Add busy time to a rank.
    pub fn add_busy(&mut self, rank: Rank, d: SimTime) {
        self.busy[rank.idx()] += d;
    }
}

impl Drop for PowerService {
    fn drop(&mut self) {
        let mut sink = self.sink.lock();
        if sink.len() < self.busy.len() {
            sink.resize(self.busy.len(), SimTime::ZERO);
        }
        for (slot, b) in sink.iter_mut().zip(&self.busy) {
            *slot += *b;
        }
    }
}

/// Batched hot-path network counters. Every send previously paid one
/// service (`TypeId`) lookup per metric — five per message. The batch
/// accumulates them as plain field adds inside the `MpiService` the send
/// path already holds, and lands the totals in the metric registry once
/// per shard at engine shutdown. All batched metrics are additive
/// (counters plus one histogram), so the merged totals — and with them
/// the deterministic snapshot surface — are unchanged.
#[derive(Debug, Default, Clone)]
pub struct NetBatch {
    /// Eager-protocol messages injected (`ids::NET_MSGS_EAGER`).
    pub msgs_eager: u64,
    /// Rendezvous-protocol messages injected (`ids::NET_MSGS_RENDEZVOUS`).
    pub msgs_rendezvous: u64,
    /// Payload bytes per network class: `[on-chip, on-node, system]`.
    pub bytes_class: [u64; 3],
    /// Local parts of the `net.msg_bytes` histogram (`SIZE_BUCKETS` plus
    /// the overflow bucket).
    pub msg_bytes_counts: Vec<u64>,
    /// Sum of all observed payload sizes.
    pub msg_bytes_sum: u64,
}

impl NetBatch {
    /// Account one injected message.
    #[inline]
    pub fn observe(&mut self, eager: bool, class: NetClass, nbytes: u64) {
        if eager {
            self.msgs_eager += 1;
        } else {
            self.msgs_rendezvous += 1;
        }
        let ci = match class {
            NetClass::OnChip => 0,
            NetClass::OnNode => 1,
            NetClass::System => 2,
        };
        self.bytes_class[ci] += nbytes;
        if self.msg_bytes_counts.is_empty() {
            self.msg_bytes_counts = vec![0; SIZE_BUCKETS.len() + 1];
        }
        self.msg_bytes_counts[SIZE_BUCKETS.partition_point(|&b| b < nbytes)] += 1;
        self.msg_bytes_sum += nbytes;
    }

    /// Land the batch in a metric set.
    pub fn flush_into(&self, set: &mut MetricSet) {
        if self.msgs_eager > 0 {
            set.add(ids::NET_MSGS_EAGER, self.msgs_eager);
        }
        if self.msgs_rendezvous > 0 {
            set.add(ids::NET_MSGS_RENDEZVOUS, self.msgs_rendezvous);
        }
        for (ci, id) in [
            ids::NET_BYTES_ONCHIP,
            ids::NET_BYTES_ONNODE,
            ids::NET_BYTES_SYSTEM,
        ]
        .into_iter()
        .enumerate()
        {
            if self.bytes_class[ci] > 0 {
                set.add(id, self.bytes_class[ci]);
            }
        }
        if !self.msg_bytes_counts.is_empty() {
            set.add_hist_parts(
                ids::NET_MSG_BYTES,
                &self.msg_bytes_counts,
                self.msg_bytes_sum,
            );
        }
    }
}

/// Recycled-envelope pool bound: enough to cover the in-flight messages
/// of a busy shard while keeping an idle pool small.
const ENV_POOL_CAP: usize = 1024;

/// The kernel service owning the MPI state of this shard's ranks.
pub struct MpiService {
    /// Shared world configuration.
    pub world: Arc<MpiWorld>,
    ranks: Vec<Option<RankMpi>>,
    owned: Range<usize>,
    /// Cross-shard statistics sink, flushed on drop.
    stats_sink: Arc<Mutex<MpiStats>>,
    /// Recycled transport boxes: injection draws here, delivery returns
    /// here, so steady-state messaging performs no envelope allocation.
    /// The boxes themselves are the pooled resource (delivery closures
    /// capture `Box<Envelope>` to stay pointer-sized), hence `Vec<Box<_>>`.
    #[allow(clippy::vec_box)]
    env_pool: Vec<Box<Envelope>>,
    /// Batched hot-path counters, flushed at engine shutdown.
    pub net_batch: NetBatch,
}

impl MpiService {
    /// Create the service for one shard.
    pub fn new(
        world: Arc<MpiWorld>,
        owned: Range<usize>,
        stats_sink: Arc<Mutex<MpiStats>>,
    ) -> Self {
        let mut ranks: Vec<Option<RankMpi>> = (0..world.n_ranks).map(|_| None).collect();
        let members: Arc<Vec<Rank>> = Arc::new((0..world.n_ranks).map(Rank::new).collect());
        for r in owned.clone() {
            ranks[r] = Some(RankMpi::new(
                Rank::new(r),
                members.clone(),
                world.default_errhandler.clone(),
            ));
        }
        MpiService {
            world,
            ranks,
            owned,
            stats_sink,
            env_pool: Vec::new(),
            net_batch: NetBatch::default(),
        }
    }

    /// Box an envelope for transport, reusing a recycled allocation when
    /// one is pooled.
    pub(crate) fn env_box(&mut self, env: Envelope) -> Box<Envelope> {
        match self.env_pool.pop() {
            Some(mut b) => {
                *b = env;
                b
            }
            None => Box::new(env),
        }
    }

    /// Take the envelope out of a transport box and return the emptied
    /// box to the pool (dropped instead once the pool is full).
    pub(crate) fn env_unbox(&mut self, mut b: Box<Envelope>) -> Envelope {
        let env = std::mem::replace(&mut *b, Envelope::blank());
        if self.env_pool.len() < ENV_POOL_CAP {
            self.env_pool.push(b);
        }
        env
    }

    /// The MPI state of an owned rank.
    pub fn rank(&self, r: Rank) -> &RankMpi {
        self.ranks[r.idx()]
            .as_ref()
            .expect("rank not on this shard")
    }

    /// The MPI state of an owned rank, mutably.
    pub fn rank_mut(&mut self, r: Rank) -> &mut RankMpi {
        self.ranks[r.idx()]
            .as_mut()
            .expect("rank not on this shard")
    }

    /// Ranks owned by this shard.
    pub fn owned(&self) -> Range<usize> {
        self.owned.clone()
    }
}

impl Drop for MpiService {
    fn drop(&mut self) {
        let mut agg = MpiStats::default();
        for rm in self.ranks.iter().flatten() {
            agg.merge(&rm.stats);
        }
        self.stats_sink.lock().merge(&agg);
    }
}

/// Install the failure hook on a kernel shard: when any VP fails, a
/// simulator-internal message is broadcast to notify all simulated MPI
/// processes of the failure and the time of failure (paper §IV-B).
pub fn install_failure_hook(k: &mut Kernel) {
    k.add_fail_hook(Arc::new(|k: &mut Kernel, dead: Rank, tof: SimTime| {
        let (n, when, verbose) = {
            let svc = k.service::<MpiService>();
            (
                svc.world.n_ranks,
                svc.world.notification_time(tof),
                svc.world.verbose,
            )
        };
        if verbose {
            eprintln!("xsim-mpi: broadcasting failure of rank {dead} (tof {tof})");
        }
        xsim_obs::service::record(k, xsim_obs::ids::FAULT_ACTIVATIONS, 1);
        for r in 0..n {
            let target = Rank::new(r);
            if target == dead {
                continue;
            }
            k.schedule_at(
                when,
                target,
                Action::call(move |k: &mut Kernel| {
                    on_failure_notice(k, target, dead, tof);
                }),
            );
        }
    }));
}

/// Process a failure notification at `me`: record the failure and
/// release (fail) pending requests involving the dead peer with the
/// timeout-adjusted completion times of the paper (§IV-C).
fn on_failure_notice(k: &mut Kernel, me: Rank, dead: Rank, tof: SimTime) {
    if k.vp(me).is_done() {
        return;
    }
    let releases: Vec<(ReqId, SimTime)> = {
        let svc = k.service_mut::<MpiService>();
        let world = svc.world.clone();
        let rm = svc.rank_mut(me);
        if rm.failed.contains_key(&dead) {
            return;
        }
        rm.failed.insert(dead, tof);
        // Release unmatched receives from the dead peer and — per the
        // paper — unmatched MPI_ANY_SOURCE receives, plus pending send
        // requests towards the dead peer.
        let ids = rm.reqs.pending_involving(dead, true);
        ids.into_iter()
            .map(|(id, posted_at)| (id, world.failure_error_time(me, dead, posted_at, tof)))
            .collect()
    };
    for (id, at) in releases {
        schedule_request_failure(k, me, id, at, dead, tof);
    }
}

/// Escalate an unreachable peer into the process-failure path: at `tof`
/// the peer's VP is failed (if still alive), which fires the regular
/// failure hook — broadcast notification, `MPI_ERR_PROC_FAILED` on
/// pending operations, and whatever recovery the application configured
/// (abort under `MPI_ERRORS_ARE_FATAL`, ULFM revoke/shrink, restart).
///
/// Called by the lossy transport when the retransmission budget towards
/// `peer` is exhausted, and on partition detection. `tof` must be at
/// least one notification delay in the future (lookahead safety).
pub fn escalate_unreachable(k: &mut Kernel, peer: Rank, tof: SimTime) {
    k.schedule_at(
        tof,
        peer,
        Action::call(move |k: &mut Kernel| {
            if !k.vp(peer).is_done() {
                k.kill_failed(peer, tof, tof);
            }
        }),
    );
}

/// Schedule the error completion of a request at `at` (unless something
/// else completes it first — e.g. a message that matches a wildcard
/// receive before the timeout expires).
pub fn schedule_request_failure(
    k: &mut Kernel,
    me: Rank,
    id: ReqId,
    at: SimTime,
    dead: Rank,
    tof: SimTime,
) {
    k.schedule_at(
        at,
        me,
        Action::call(move |k: &mut Kernel| {
            if k.vp(me).is_done() {
                return;
            }
            let completed = {
                let svc = k.service_mut::<MpiService>();
                let rm = svc.rank_mut(me);
                let done = rm.reqs.complete(
                    id,
                    at,
                    Err(MpiError::ProcFailed {
                        rank: dead,
                        time_of_failure: tof,
                    }),
                );
                if done {
                    rm.queues.cancel_posted(id.0);
                    rm.stats.proc_failed_errors += 1;
                    rm.push_completion(id.0);
                }
                done
            };
            if completed {
                // A detector timeout fired and surfaced the failure to
                // this rank as MPI_ERR_PROC_FAILED.
                xsim_obs::service::record(k, xsim_obs::ids::NET_TIMEOUT_DETECTIONS, 1);
                k.wake_if_message_blocked(me, at);
            }
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize) -> Arc<MpiWorld> {
        Arc::new(MpiWorld {
            n_ranks: n,
            net: NetModel::small(n),
            proc: ProcModel::default(),
            notify_delay: SimTime::from_micros(1),
            default_errhandler: ErrHandler::Fatal,
            detector: Detector::Timeout,
            coll_algo: CollAlgo::Linear,
            lossy: None,
            verbose: false,
        })
    }

    #[test]
    fn service_owns_only_its_ranks() {
        let sink = Arc::new(Mutex::new(MpiStats::default()));
        let svc = MpiService::new(world(8), 2..5, sink);
        assert_eq!(svc.rank(Rank(3)).me, Rank(3));
        assert_eq!(svc.owned(), 2..5);
    }

    #[test]
    #[should_panic(expected = "rank not on this shard")]
    fn foreign_rank_access_panics() {
        let sink = Arc::new(Mutex::new(MpiStats::default()));
        let svc = MpiService::new(world(8), 2..5, sink);
        let _ = svc.rank(Rank(7));
    }

    #[test]
    fn stats_flush_on_drop() {
        let sink = Arc::new(Mutex::new(MpiStats::default()));
        {
            let mut svc = MpiService::new(world(4), 0..4, sink.clone());
            svc.rank_mut(Rank(0)).stats.sends = 3;
            svc.rank_mut(Rank(2)).stats.sends = 4;
            svc.rank_mut(Rank(2)).stats.bytes_sent = 100;
        }
        let agg = *sink.lock();
        assert_eq!(agg.sends, 7);
        assert_eq!(agg.bytes_sent, 100);
    }

    #[test]
    fn send_seq_increments_per_destination() {
        let sink = Arc::new(Mutex::new(MpiStats::default()));
        let mut svc = MpiService::new(world(4), 0..4, sink);
        let rm = svc.rank_mut(Rank(0));
        assert_eq!(rm.next_send_seq(Rank(1)), 0);
        assert_eq!(rm.next_send_seq(Rank(1)), 1);
        assert_eq!(rm.next_send_seq(Rank(2)), 0);
    }

    #[test]
    fn first_unacked_failure_respects_acks() {
        let sink = Arc::new(Mutex::new(MpiStats::default()));
        let mut svc = MpiService::new(world(4), 0..4, sink);
        let rm = svc.rank_mut(Rank(0));
        assert!(rm.first_unacked_failure().is_none());
        rm.failed.insert(Rank(2), SimTime(10));
        rm.failed.insert(Rank(1), SimTime(20));
        assert_eq!(rm.first_unacked_failure(), Some((Rank(1), SimTime(20))));
        rm.acked.insert(Rank(1));
        assert_eq!(rm.first_unacked_failure(), Some((Rank(2), SimTime(10))));
        rm.acked.insert(Rank(2));
        assert!(rm.first_unacked_failure().is_none());
    }

    #[test]
    fn net_batch_flush_matches_direct_records() {
        let mut batch = NetBatch::default();
        let sends: [(bool, NetClass, u64); 5] = [
            (true, NetClass::OnChip, 16),
            (true, NetClass::OnNode, 64),
            (false, NetClass::System, 1 << 20),
            (true, NetClass::System, 300),
            (false, NetClass::OnNode, 1 << 25),
        ];
        let mut direct = MetricSet::new();
        for &(eager, class, nbytes) in &sends {
            batch.observe(eager, class, nbytes);
            direct.add(
                if eager {
                    ids::NET_MSGS_EAGER
                } else {
                    ids::NET_MSGS_RENDEZVOUS
                },
                1,
            );
            let cid = match class {
                NetClass::OnChip => ids::NET_BYTES_ONCHIP,
                NetClass::OnNode => ids::NET_BYTES_ONNODE,
                NetClass::System => ids::NET_BYTES_SYSTEM,
            };
            direct.add(cid, nbytes);
            direct.add(ids::NET_MSG_BYTES, nbytes);
        }
        let mut batched = MetricSet::new();
        batch.flush_into(&mut batched);
        assert_eq!(direct, batched);
    }

    #[test]
    fn envelope_pool_recycles_boxes() {
        let sink = Arc::new(Mutex::new(MpiStats::default()));
        let mut svc = MpiService::new(world(2), 0..2, sink);
        let b = svc.env_box(Envelope::blank());
        let addr = &*b as *const Envelope;
        let _ = svc.env_unbox(b);
        let b2 = svc.env_box(Envelope::blank());
        assert_eq!(addr, &*b2 as *const Envelope, "allocation is reused");
        let _ = svc.env_unbox(b2);
    }

    #[test]
    fn lossy_outcomes_are_deterministic() {
        let l = LossyTransport {
            drop_prob: 0.4,
            corrupt_prob: 0.1,
            seed: 42,
            ..LossyTransport::default()
        };
        let mut seen = [0usize; 3];
        for seq in 0..400u64 {
            let a = l.tx_outcome(Rank(1), Rank(2), seq, 0);
            assert_eq!(a, l.tx_outcome(Rank(1), Rank(2), seq, 0));
            seen[match a {
                TxOutcome::Delivered => 0,
                TxOutcome::Dropped => 1,
                TxOutcome::Corrupted => 2,
            }] += 1;
        }
        // 400 draws at 50%/40%/10%: each bucket must be populated.
        assert!(seen.iter().all(|&c| c > 0), "outcome mix {seen:?}");
        // A different attempt number redraws independently.
        assert!((0..400u64).any(|s| {
            l.tx_outcome(Rank(1), Rank(2), s, 0) != l.tx_outcome(Rank(1), Rank(2), s, 1)
        }));
    }

    #[test]
    fn lossy_victim_scopes_loss() {
        let l = LossyTransport {
            victim: Some(Rank(3)),
            ..LossyTransport::default()
        };
        assert!(l.applies(Rank(3), Rank(0)));
        assert!(l.applies(Rank(0), Rank(3)));
        assert!(!l.applies(Rank(0), Rank(1)));
        assert!(LossyTransport::default().applies(Rank(0), Rank(1)));
    }

    #[test]
    fn lossy_backoff_doubles_and_saturates() {
        let l = LossyTransport {
            backoff_base: SimTime::from_micros(10),
            ..LossyTransport::default()
        };
        assert_eq!(l.backoff(0), SimTime::from_micros(10));
        assert_eq!(l.backoff(1), SimTime::from_micros(20));
        assert_eq!(l.backoff(3), SimTime::from_micros(80));
        assert_eq!(l.backoff(200), SimTime(u64::MAX));
    }
}
