//! MPI-level errors and error handlers.

use std::fmt;
use std::sync::Arc;
use xsim_core::{Rank, SimTime};

/// Errors returned by simulated MPI operations.
#[derive(Debug, Clone)]
pub enum MpiError {
    /// A peer process the operation depends on has failed. This is the
    /// simulated analogue of ULFM's `MPI_ERR_PROC_FAILED` and the error
    /// the timeout-based failure detector raises (paper §IV-C).
    ProcFailed {
        /// The failed peer (world rank).
        rank: Rank,
        /// Its (actual) time of failure.
        time_of_failure: SimTime,
    },
    /// The job aborted (simulated `MPI_Abort`, paper §IV-D). Propagate
    /// this out of the application immediately.
    Aborted {
        /// Virtual time of the abort.
        time: SimTime,
    },
    /// The communicator was revoked (`MPI_Comm_revoke`, ULFM).
    Revoked,
    /// A parameter error: unknown communicator, rank out of range, …
    Invalid(&'static str),
    /// A simulated file-I/O error surfaced through MPI-IO-style helpers.
    Io(String),
}

impl MpiError {
    /// Whether this error means the whole job is going down and the
    /// application should unwind without further MPI calls.
    pub fn is_fatal(&self) -> bool {
        matches!(self, MpiError::Aborted { .. })
    }
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::ProcFailed {
                rank,
                time_of_failure,
            } => {
                write!(
                    f,
                    "MPI_ERR_PROC_FAILED: rank {rank} failed at {time_of_failure}"
                )
            }
            MpiError::Aborted { time } => write!(f, "MPI job aborted at {time}"),
            MpiError::Revoked => write!(f, "MPI_ERR_REVOKED: communicator revoked"),
            MpiError::Invalid(what) => write!(f, "invalid MPI argument: {what}"),
            MpiError::Io(e) => write!(f, "MPI I/O error: {e}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Per-communicator error handler (paper §IV-D: "xSim does support other
/// error handlers, such as `MPI_ERRORS_RETURN` and user-defined error
/// handlers").
#[derive(Clone)]
pub enum ErrHandler {
    /// Default: any detected process failure triggers `MPI_Abort`
    /// (`MPI_ERRORS_ARE_FATAL`).
    Fatal,
    /// Errors are returned to the caller (`MPI_ERRORS_RETURN`) — the
    /// foundation for application-level fault tolerance and ULFM.
    Return,
    /// User-defined: the callback observes the error, then the error is
    /// returned to the caller.
    Custom(Arc<dyn Fn(&MpiError) + Send + Sync>),
}

impl fmt::Debug for ErrHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrHandler::Fatal => write!(f, "ErrorsAreFatal"),
            ErrHandler::Return => write!(f, "ErrorsReturn"),
            ErrHandler::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality() {
        assert!(MpiError::Aborted {
            time: SimTime::ZERO
        }
        .is_fatal());
        assert!(!MpiError::ProcFailed {
            rank: Rank(1),
            time_of_failure: SimTime::ZERO
        }
        .is_fatal());
        assert!(!MpiError::Revoked.is_fatal());
    }

    #[test]
    fn display_is_informative() {
        let e = MpiError::ProcFailed {
            rank: Rank(7),
            time_of_failure: SimTime::from_secs(3),
        };
        assert!(format!("{e}").contains("rank 7"));
    }
}
