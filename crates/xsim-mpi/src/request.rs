//! Nonblocking-communication request bookkeeping.

use crate::comm::CommId;
use crate::error::MpiError;
use crate::msg::SrcSel;
use bytes::Bytes;
use std::collections::HashMap;
use xsim_core::{Rank, SimTime};

/// Handle to a nonblocking operation, analogous to `MPI_Request`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub u64);

/// What a completed receive yields.
#[derive(Debug, Clone)]
pub struct RecvOut {
    /// Payload.
    pub data: Bytes,
    /// Source world rank.
    pub src: Rank,
    /// Message tag.
    pub tag: u32,
}

/// Send or receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A send request.
    Send,
    /// A receive request.
    Recv,
}

/// Completion payload: `None` for sends, `Some` for receives.
pub type ReqResult = Result<Option<RecvOut>, MpiError>;

#[derive(Debug)]
enum ReqState {
    Pending,
    Done { at: SimTime, result: ReqResult },
}

/// One outstanding request.
#[derive(Debug)]
pub struct Request {
    /// Kind (send/recv).
    pub kind: ReqKind,
    /// Communicator.
    pub comm: CommId,
    /// Peer: destination for sends; source selector for receives.
    pub peer: SrcSel,
    /// Tag (sends) — receives keep their selector in the match queue.
    pub tag: u32,
    /// Virtual time the request was posted.
    pub posted_at: SimTime,
    state: ReqState,
}

impl Request {
    /// Whether the request has not completed yet.
    pub fn is_pending(&self) -> bool {
        matches!(self.state, ReqState::Pending)
    }
}

/// The per-rank request table.
#[derive(Debug, Default)]
pub struct RequestTable {
    map: HashMap<u64, Request>,
    next: u64,
}

impl RequestTable {
    /// Register a new pending request; returns its id.
    pub fn create(
        &mut self,
        kind: ReqKind,
        comm: CommId,
        peer: SrcSel,
        tag: u32,
        posted_at: SimTime,
    ) -> ReqId {
        let id = self.next;
        self.next += 1;
        self.map.insert(
            id,
            Request {
                kind,
                comm,
                peer,
                tag,
                posted_at,
                state: ReqState::Pending,
            },
        );
        ReqId(id)
    }

    /// Number of live (pending or uncollected) requests.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no requests are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a request.
    pub fn get(&self, id: ReqId) -> Option<&Request> {
        self.map.get(&id.0)
    }

    /// Complete a pending request at virtual time `at`. Returns `false`
    /// (and changes nothing) if the request is unknown or already done —
    /// completion races (message arrival vs. failure timeout) resolve to
    /// whichever event fires first.
    pub fn complete(&mut self, id: ReqId, at: SimTime, result: ReqResult) -> bool {
        match self.map.get_mut(&id.0) {
            Some(r) if r.is_pending() => {
                r.state = ReqState::Done { at, result };
                true
            }
            _ => false,
        }
    }

    /// If `id` is done and its completion time has been reached by the
    /// caller's clock, remove it and return `(completion time, result)`.
    pub fn try_take(&mut self, id: ReqId, now: SimTime) -> Option<(SimTime, ReqResult)> {
        match self.map.get(&id.0) {
            Some(Request {
                state: ReqState::Done { at, .. },
                ..
            }) if *at <= now => {
                let r = self.map.remove(&id.0).expect("checked above");
                match r.state {
                    ReqState::Done { at, result } => Some((at, result)),
                    ReqState::Pending => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Whether `id` is complete from the perspective of a caller at
    /// `now` (used by `MPI_Test`).
    pub fn is_done(&self, id: ReqId, now: SimTime) -> bool {
        matches!(
            self.map.get(&id.0),
            Some(Request {
                state: ReqState::Done { at, .. },
                ..
            }) if *at <= now
        )
    }

    /// Ids of pending requests whose peer is `dead` (specific), plus —
    /// when `include_any_source` — pending receives with a wildcard
    /// source. Returned with their post times so the caller can compute
    /// the paper's timeout-adjusted error completion times (§IV-C).
    pub fn pending_involving(&self, dead: Rank, include_any_source: bool) -> Vec<(ReqId, SimTime)> {
        let mut v: Vec<(ReqId, SimTime, u64)> = self
            .map
            .iter()
            .filter(|(_, r)| {
                r.is_pending()
                    && match r.peer {
                        SrcSel::Of(p) => p == dead,
                        SrcSel::Any => include_any_source && r.kind == ReqKind::Recv,
                    }
            })
            .map(|(id, r)| (ReqId(*id), r.posted_at, *id))
            .collect();
        v.sort_by_key(|(_, _, id)| *id);
        v.into_iter().map(|(id, t, _)| (id, t)).collect()
    }

    /// Ids and post times of pending requests on a communicator, in id
    /// order. Used by `MPI_Comm_revoke` to release in-flight operations.
    pub fn pending_on_comm(&self, comm: CommId) -> Vec<(ReqId, SimTime)> {
        let mut v: Vec<(u64, SimTime)> = self
            .map
            .iter()
            .filter(|(_, r)| r.is_pending() && r.comm == comm)
            .map(|(id, r)| (*id, r.posted_at))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v.into_iter().map(|(id, t)| (ReqId(id), t)).collect()
    }

    /// Drop a request outright (used on communicator teardown).
    pub fn remove(&mut self, id: ReqId) -> bool {
        self.map.remove(&id.0).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RequestTable {
        RequestTable::default()
    }

    #[test]
    fn create_complete_take() {
        let mut t = table();
        let id = t.create(
            ReqKind::Recv,
            CommId(0),
            SrcSel::Of(Rank(1)),
            5,
            SimTime(10),
        );
        assert!(t.get(id).unwrap().is_pending());
        assert!(t.complete(id, SimTime(20), Ok(None)));
        // Not observable before its completion time.
        assert!(t.try_take(id, SimTime(15)).is_none());
        assert!(!t.is_done(id, SimTime(15)));
        assert!(t.is_done(id, SimTime(20)));
        let (at, res) = t.try_take(id, SimTime(20)).unwrap();
        assert_eq!(at, SimTime(20));
        assert!(res.is_ok());
        assert!(t.is_empty());
    }

    #[test]
    fn double_complete_is_ignored() {
        let mut t = table();
        let id = t.create(ReqKind::Send, CommId(0), SrcSel::Of(Rank(2)), 0, SimTime(0));
        assert!(t.complete(id, SimTime(5), Ok(None)));
        assert!(!t.complete(
            id,
            SimTime(9),
            Err(MpiError::Invalid("should not overwrite"))
        ));
        let (_, res) = t.try_take(id, SimTime(100)).unwrap();
        assert!(res.is_ok(), "first completion wins");
    }

    #[test]
    fn unknown_request_is_inert() {
        let mut t = table();
        assert!(!t.complete(ReqId(99), SimTime(0), Ok(None)));
        assert!(t.try_take(ReqId(99), SimTime(0)).is_none());
        assert!(!t.remove(ReqId(99)));
    }

    #[test]
    fn pending_involving_filters() {
        let mut t = table();
        let a = t.create(ReqKind::Recv, CommId(0), SrcSel::Of(Rank(1)), 0, SimTime(1));
        let _b = t.create(ReqKind::Recv, CommId(0), SrcSel::Of(Rank(2)), 0, SimTime(2));
        let c = t.create(ReqKind::Recv, CommId(0), SrcSel::Any, 0, SimTime(3));
        let d = t.create(ReqKind::Send, CommId(0), SrcSel::Of(Rank(1)), 0, SimTime(4));
        let e = t.create(ReqKind::Send, CommId(0), SrcSel::Any, 0, SimTime(5)); // odd but inert

        let hits = t.pending_involving(Rank(1), false);
        assert_eq!(
            hits.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, d]
        );
        let hits = t.pending_involving(Rank(1), true);
        assert_eq!(
            hits.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, c, d]
        );
        let _ = e;

        // Completed requests are not "pending".
        t.complete(a, SimTime(9), Ok(None));
        let hits = t.pending_involving(Rank(1), false);
        assert_eq!(hits.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![d]);
    }
}
