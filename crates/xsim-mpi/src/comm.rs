//! Communicators.
//!
//! Each simulated rank keeps its own communicator table; because
//! communicator construction is collective and deterministic, all member
//! ranks derive identical ids and groups without shared mutable state —
//! the property that keeps the parallel engine equivalent to the
//! sequential one.

use crate::error::ErrHandler;
use std::collections::HashMap;
use std::sync::Arc;
use xsim_core::{Rank, SimTime};

/// Identifier of a communicator (context id in MPI terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u32);

impl CommId {
    /// `MPI_COMM_WORLD`.
    pub const WORLD: CommId = CommId(0);
}

/// A communicator handle as seen by applications. Cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comm {
    /// The communicator id.
    pub id: CommId,
}

impl Comm {
    /// The world communicator handle.
    pub const WORLD: Comm = Comm { id: CommId::WORLD };
}

/// One rank's view of a communicator.
#[derive(Debug, Clone)]
pub struct CommView {
    /// Members, as world ranks, in communicator rank order.
    pub members: Arc<Vec<Rank>>,
    /// This process's rank within the communicator.
    pub my_rank: usize,
    /// Error handler attached to the communicator.
    pub errhandler: ErrHandler,
    /// Set when `MPI_Comm_revoke` reached this rank, with the revoke time.
    pub revoked: Option<SimTime>,
    /// Count of collective operations started on this communicator; used
    /// to derive per-collective internal tags.
    pub coll_seq: u64,
}

impl CommView {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Translate a communicator rank to a world rank.
    pub fn world_rank(&self, comm_rank: usize) -> Option<Rank> {
        self.members.get(comm_rank).copied()
    }

    /// Translate a world rank to a communicator rank.
    pub fn comm_rank(&self, world: Rank) -> Option<usize> {
        self.members.iter().position(|r| *r == world)
    }
}

/// One rank's communicator table.
#[derive(Debug)]
pub struct CommTable {
    views: HashMap<CommId, CommView>,
    next_id: u32,
}

impl CommTable {
    /// A table containing `MPI_COMM_WORLD` over `n` ranks with this
    /// process at world rank `me`.
    pub fn new_world(n: usize, me: Rank, default_handler: ErrHandler) -> Self {
        Self::new_world_shared(
            Arc::new((0..n).map(Rank::new).collect()),
            me,
            default_handler,
        )
    }

    /// Like [`new_world`](Self::new_world) but with a shared member
    /// list, so a million co-located ranks don't each materialize the
    /// world group.
    pub fn new_world_shared(
        members: Arc<Vec<Rank>>,
        me: Rank,
        default_handler: ErrHandler,
    ) -> Self {
        let mut views = HashMap::new();
        views.insert(
            CommId::WORLD,
            CommView {
                members,
                my_rank: me.idx(),
                errhandler: default_handler,
                revoked: None,
                coll_seq: 0,
            },
        );
        CommTable { views, next_id: 1 }
    }

    /// Look up a communicator view.
    pub fn view(&self, id: CommId) -> Option<&CommView> {
        self.views.get(&id)
    }

    /// Look up a communicator view mutably.
    pub fn view_mut(&mut self, id: CommId) -> Option<&mut CommView> {
        self.views.get_mut(&id)
    }

    /// Install a derived communicator with the next deterministic id.
    /// Every member must perform the same installation sequence, so ids
    /// agree across ranks (MPI's collective-order requirement).
    pub fn install(&mut self, members: Arc<Vec<Rank>>, me: Rank, handler: ErrHandler) -> CommId {
        let id = CommId(self.next_id);
        self.next_id += 1;
        let my_rank = members
            .iter()
            .position(|r| *r == me)
            .expect("installing a communicator this rank is not a member of");
        self.views.insert(
            id,
            CommView {
                members,
                my_rank,
                errhandler: handler,
                revoked: None,
                coll_seq: 0,
            },
        );
        id
    }

    /// Advance the id counter without installing a view — used by ranks
    /// that participate in a `comm_split` but receive `color = None`
    /// (undefined), so their next derived communicator id stays in sync
    /// with members'.
    pub fn skip_id(&mut self) -> CommId {
        let id = CommId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Mark a communicator revoked at `time` (idempotent, keeps the
    /// earliest time).
    pub fn revoke(&mut self, id: CommId, time: SimTime) {
        if let Some(v) = self.views.get_mut(&id) {
            v.revoked = Some(match v.revoked {
                Some(t) => t.min(time),
                None => time,
            });
        }
    }
}

/// Compute the deterministic groups of a `comm_split`: one group per
/// color, members ordered by `(key, parent rank)`. Input is
/// `(parent_rank, color, key)` per member, parent-rank-ordered. `None`
/// colors (MPI_UNDEFINED) join no group.
pub fn split_groups(entries: &[(Rank, Option<u32>, i64)]) -> Vec<(u32, Vec<Rank>)> {
    let mut by_color: HashMap<u32, Vec<(i64, Rank)>> = HashMap::new();
    for (rank, color, key) in entries {
        if let Some(c) = color {
            by_color.entry(*c).or_default().push((*key, *rank));
        }
    }
    let mut out: Vec<(u32, Vec<Rank>)> = by_color
        .into_iter()
        .map(|(c, mut v)| {
            v.sort(); // by key, then parent (world) rank
            (c, v.into_iter().map(|(_, r)| r).collect())
        })
        .collect();
    out.sort_by_key(|(c, _)| *c);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_table_basics() {
        let t = CommTable::new_world(4, Rank(2), ErrHandler::Fatal);
        let w = t.view(CommId::WORLD).unwrap();
        assert_eq!(w.size(), 4);
        assert_eq!(w.my_rank, 2);
        assert_eq!(w.world_rank(3), Some(Rank(3)));
        assert_eq!(w.comm_rank(Rank(1)), Some(1));
    }

    #[test]
    fn install_assigns_sequential_ids() {
        let mut t = CommTable::new_world(4, Rank(1), ErrHandler::Fatal);
        let id1 = t.install(
            Arc::new(vec![Rank(0), Rank(1)]),
            Rank(1),
            ErrHandler::Return,
        );
        let id2 = t.install(Arc::new(vec![Rank(1), Rank(3)]), Rank(1), ErrHandler::Fatal);
        assert_eq!(id1, CommId(1));
        assert_eq!(id2, CommId(2));
        assert_eq!(t.view(id1).unwrap().my_rank, 1);
        assert_eq!(t.view(id2).unwrap().my_rank, 0);
    }

    #[test]
    fn skip_id_keeps_counters_aligned() {
        let mut t = CommTable::new_world(2, Rank(0), ErrHandler::Fatal);
        assert_eq!(t.skip_id(), CommId(1));
        let id = t.install(Arc::new(vec![Rank(0)]), Rank(0), ErrHandler::Fatal);
        assert_eq!(id, CommId(2));
        assert!(t.view(CommId(1)).is_none());
    }

    #[test]
    fn revoke_is_idempotent_min() {
        let mut t = CommTable::new_world(2, Rank(0), ErrHandler::Fatal);
        t.revoke(CommId::WORLD, SimTime(100));
        t.revoke(CommId::WORLD, SimTime(50));
        t.revoke(CommId::WORLD, SimTime(200));
        assert_eq!(t.view(CommId::WORLD).unwrap().revoked, Some(SimTime(50)));
    }

    #[test]
    fn split_groups_orders_by_key_then_rank() {
        let entries = vec![
            (Rank(0), Some(1), 5),
            (Rank(1), Some(0), 0),
            (Rank(2), Some(1), 5),
            (Rank(3), Some(1), 1),
            (Rank(4), None, 0),
        ];
        let groups = split_groups(&entries);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (0, vec![Rank(1)]));
        assert_eq!(groups[1], (1, vec![Rank(3), Rank(0), Rank(2)]));
    }

    #[test]
    fn split_groups_empty() {
        assert!(split_groups(&[]).is_empty());
        assert!(split_groups(&[(Rank(0), None, 0)]).is_empty());
    }
}
