//! Simulated `MPI_Abort` (paper §IV-D).
//!
//! When the simulated MPI layer detects a process failure under
//! `MPI_ERRORS_ARE_FATAL`, or the application calls abort directly, an
//! abort notification is broadcast. Each simulated MPI process observes
//! the abort when its clock reaches or passes the abort time — blocked
//! message waits are released at that time, computing processes abort at
//! the end of their compute phase — and the simulator terminates after
//! all simulated MPI processes aborted.

use crate::error::MpiError;
use crate::p2p::with_mpi;
use xsim_core::event::Action;
use xsim_core::{ctx, Kernel, Rank, SimTime};

/// Initiate an abort from the currently executing VP at its current
/// clock. Returns the `Aborted` error the caller must propagate out of
/// the application. Idempotent: a second initiation returns the original
/// abort time.
pub fn initiate_abort_here() -> MpiError {
    ctx::with_kernel(|k, me| {
        let now = k.vp(me).clock();
        with_mpi(k, |k, svc| {
            let n = svc.world.n_ranks;
            let delay = svc.world.notify_delay;
            let verbose = svc.world.verbose;
            let rm = svc.rank_mut(me);
            if let Some(t) = rm.aborted {
                return MpiError::Aborted { time: t };
            }
            rm.aborted = Some(now);
            if verbose {
                eprintln!("xsim-mpi: MPI_Abort invoked at rank {me} at time {now}");
            }
            k.set_abort_at(me, now);
            k.note_abort(now);
            for r in 0..n {
                let target = Rank::new(r);
                if target == me {
                    continue;
                }
                k.schedule_at(
                    now + delay,
                    target,
                    Action::call(move |k: &mut Kernel| {
                        abort_notice(k, target, now);
                    }),
                );
            }
            MpiError::Aborted { time: now }
        })
    })
}

/// Process an abort notification at `me`: record it, arm the clock
/// activation, and release a blocked message/file-I/O wait (compute
/// phases run to completion first, per the paper's activation rule).
fn abort_notice(k: &mut Kernel, me: Rank, t_abort: SimTime) {
    if k.vp(me).is_done() {
        return;
    }
    // Two racing aborts deliver two notices; `me` must activate at the
    // *earliest* abort time, not at whichever notice arrives last — so
    // arm the clock activation and the wakeup with the min.
    let t_min = with_mpi(k, |_k, svc| {
        let rm = svc.rank_mut(me);
        let t = match rm.aborted {
            Some(t) => t.min(t_abort),
            None => t_abort,
        };
        rm.aborted = Some(t);
        t
    });
    k.set_abort_at(me, t_min);
    k.wake_if_message_blocked(me, t_min);
}
