//! # xsim-mpi — the simulated MPI layer
//!
//! This crate implements the MPI semantics xSim exposes to simulated
//! applications (paper §IV):
//!
//! * **Simulated MPI process execution** (§IV-A): applications run as
//!   virtual processes over the xsim-core engine; every MPI call yields
//!   to the simulator and advances the caller's virtual clock according
//!   to the network/processor models.
//! * **Point-to-point and collectives**: send/recv/isend/irecv with
//!   `MPI_ANY_SOURCE`/`MPI_ANY_TAG`, wait/test/waitall/waitany, and
//!   linear-algorithm collectives (§V-C) plus binomial-tree ablation
//!   variants.
//! * **Failure injection/propagation/detection/notification** (§IV-B/C):
//!   scheduled process failures activate on clock updates; a
//!   simulator-internal notification is broadcast; pending operations
//!   towards failed peers complete with `MPI_ERR_PROC_FAILED` after the
//!   per-network communication timeout.
//! * **Simulated `MPI_Abort`** (§IV-D): with the default
//!   `MPI_ERRORS_ARE_FATAL` handler, a detected failure aborts the whole
//!   job; each process observes the abort when its clock reaches the
//!   abort time; the run terminates once all processes aborted.
//! * **ULFM** (§VI): `MPI_ERR_PROC_FAILED`, `MPI_Comm_revoke`,
//!   `MPI_Comm_shrink`, `MPI_Comm_failure_ack`/`get_acked`.
//!
//! Applications use [`MpiCtx`]; runs are configured through
//! [`SimBuilder`].

pub mod abort;
pub mod builder;
pub mod collective;
pub mod comm;
pub mod error;
pub mod mpi_ctx;
pub mod msg;
pub mod p2p;
pub mod redundancy;
pub mod replication;
pub mod request;
pub mod state;
pub mod trace;
pub mod ulfm;

pub use builder::{RunReport, SimBuilder};
pub use collective::ReduceOp;
pub use comm::{Comm, CommId};
pub use error::{ErrHandler, MpiError};
pub use mpi_ctx::{mpi_program, MpiCtx};
pub use redundancy::{Redundant, Verdict};
pub use replication::{
    CkptMode, HeartbeatConfig, ProtectionParseError, ProtectionScheme, RepReq, ReplicaMap,
    Replicated,
};
pub use request::{RecvOut, ReqId};
pub use state::{CollAlgo, Detector, LossyTransport, MpiStats, MpiWorld, TxOutcome};
pub use trace::{PhaseKind, Trace, TraceEvent};
pub use xsim_core::EngineKind;
