//! Execution tracing.
//!
//! xSim is "designed like a traditional performance tool" (§II-A) and
//! the paper situates it among trace-driven analyzers (DIMEMAS,
//! PARAVER, Vampir). This module records per-rank phase events —
//! compute, point-to-point, collectives, waits — with virtual-time
//! intervals, and summarizes them into the compute/communication
//! breakdown a performance investigation starts from. Enable with
//! `SimBuilder::trace(true)`.

use parking_lot::Mutex;
use std::fmt;
use std::io;
use std::sync::Arc;
use xsim_core::{Rank, SimTime};

/// What a trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// A compute phase (`MpiCtx::compute` / `sleep`).
    Compute,
    /// A blocking send (or the wait completing an isend).
    Send,
    /// A blocking receive (or the wait completing an irecv).
    Recv,
    /// A wait/waitall/waitany on outstanding requests.
    Wait,
    /// A collective operation.
    Collective,
    /// Simulated file I/O.
    FileIo,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhaseKind::Compute => "compute",
            PhaseKind::Send => "send",
            PhaseKind::Recv => "recv",
            PhaseKind::Wait => "wait",
            PhaseKind::Collective => "collective",
            PhaseKind::FileIo => "file-io",
        };
        f.pad(s)
    }
}

/// One traced interval on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The rank the event belongs to.
    pub rank: Rank,
    /// Phase kind.
    pub kind: PhaseKind,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
    /// Peer world rank for p2p events (`None` = no single peer:
    /// compute phases, waits, wildcard receives, collectives).
    pub peer: Option<Rank>,
    /// Payload bytes for p2p events.
    pub bytes: u64,
}

impl TraceEvent {
    /// Interval length.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Kernel service buffering events per shard; flushes into the shared
/// sink on drop.
pub struct TraceService {
    events: Vec<TraceEvent>,
    sink: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceService {
    /// New service flushing into `sink`.
    pub fn new(sink: Arc<Mutex<Vec<TraceEvent>>>) -> Self {
        TraceService {
            events: Vec::new(),
            sink,
        }
    }

    /// Append an event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Flush buffered events into the shared sink. Called explicitly by
    /// the engine-shutdown hook; idempotent (the buffer drains), with
    /// `Drop` as a backstop.
    pub fn flush(&mut self) {
        if !self.events.is_empty() {
            self.sink.lock().append(&mut self.events);
        }
    }
}

impl Drop for TraceService {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Record a phase on the current VP if tracing is enabled. Called by the
/// MpiCtx wrappers with the interval they just completed.
pub(crate) fn record(
    kind: PhaseKind,
    start: SimTime,
    end: SimTime,
    peer: Option<Rank>,
    bytes: u64,
) {
    xsim_core::ctx::with_kernel(|k, me| {
        if let Some(tr) = k.try_service_mut::<TraceService>() {
            tr.record(TraceEvent {
                rank: me,
                kind,
                start,
                end,
                peer,
                bytes,
            });
        }
    });
}

/// A finished trace: every event of the run in deterministic
/// `(start, rank)` order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The events.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Assemble from the builder's sink (sorts deterministically).
    pub fn assemble(mut events: Vec<TraceEvent>) -> Trace {
        events.sort_by_key(|e| (e.start, e.rank, e.end));
        Trace { events }
    }

    /// Events of one rank, in time order.
    pub fn for_rank(&self, rank: Rank) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// Per-kind total time across all ranks.
    pub fn totals(&self) -> Vec<(PhaseKind, SimTime)> {
        let kinds = [
            PhaseKind::Compute,
            PhaseKind::Send,
            PhaseKind::Recv,
            PhaseKind::Wait,
            PhaseKind::Collective,
            PhaseKind::FileIo,
        ];
        kinds
            .into_iter()
            .map(|k| {
                let total = self
                    .events
                    .iter()
                    .filter(|e| e.kind == k)
                    .fold(SimTime::ZERO, |acc, e| acc + e.duration());
                (k, total)
            })
            .collect()
    }

    /// Machine-wide compute fraction: Σ compute / Σ all phases.
    pub fn compute_fraction(&self) -> f64 {
        let mut compute = 0u128;
        let mut total = 0u128;
        for e in &self.events {
            let d = e.duration().as_nanos() as u128;
            total += d;
            if e.kind == PhaseKind::Compute {
                compute += d;
            }
        }
        if total == 0 {
            0.0
        } else {
            compute as f64 / total as f64
        }
    }

    /// Stream as CSV (`rank,kind,start_ns,end_ns,peer,bytes`), suitable
    /// for external timeline viewers. `peer` is empty when the event has
    /// no single peer. Streaming keeps million-event traces off the heap.
    pub fn write_csv<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"rank,kind,start_ns,end_ns,peer,bytes\n")?;
        for e in &self.events {
            match e.peer {
                Some(p) => writeln!(
                    w,
                    "{},{},{},{},{},{}",
                    e.rank,
                    e.kind,
                    e.start.as_nanos(),
                    e.end.as_nanos(),
                    p,
                    e.bytes
                )?,
                None => writeln!(
                    w,
                    "{},{},{},{},,{}",
                    e.rank,
                    e.kind,
                    e.start.as_nanos(),
                    e.end.as_nanos(),
                    e.bytes
                )?,
            }
        }
        Ok(())
    }

    /// Render as CSV in memory (see [`Trace::write_csv`]).
    pub fn to_csv(&self) -> String {
        let mut buf = Vec::with_capacity(64 + self.events.len() * 32);
        self.write_csv(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("CSV is UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, kind: PhaseKind, s: u64, e: u64) -> TraceEvent {
        TraceEvent {
            rank: Rank(rank),
            kind,
            start: SimTime(s),
            end: SimTime(e),
            peer: None,
            bytes: 0,
        }
    }

    #[test]
    fn assemble_sorts_deterministically() {
        let t = Trace::assemble(vec![
            ev(1, PhaseKind::Send, 10, 20),
            ev(0, PhaseKind::Compute, 0, 10),
            ev(0, PhaseKind::Send, 10, 12),
        ]);
        assert_eq!(t.events[0].rank, Rank(0));
        assert_eq!(t.events[0].kind, PhaseKind::Compute);
        assert_eq!(t.events[1].rank, Rank(0));
        assert_eq!(t.events[2].rank, Rank(1));
    }

    #[test]
    fn totals_and_fraction() {
        let t = Trace::assemble(vec![
            ev(0, PhaseKind::Compute, 0, 30),
            ev(0, PhaseKind::Recv, 30, 40),
            ev(1, PhaseKind::Compute, 0, 10),
        ]);
        let totals = t.totals();
        let compute = totals
            .iter()
            .find(|(k, _)| *k == PhaseKind::Compute)
            .unwrap()
            .1;
        assert_eq!(compute, SimTime(40));
        assert!((t.compute_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn csv_shape() {
        let mut with_peer = ev(3, PhaseKind::Send, 2, 5);
        with_peer.peer = Some(Rank(7));
        with_peer.bytes = 64;
        let t = Trace::assemble(vec![ev(3, PhaseKind::Wait, 5, 9), with_peer]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "rank,kind,start_ns,end_ns,peer,bytes"
        );
        assert_eq!(lines.next().unwrap(), "3,send,2,5,7,64");
        assert_eq!(lines.next().unwrap(), "3,wait,5,9,,0");
    }

    #[test]
    fn streaming_csv_matches_in_memory() {
        let t = Trace::assemble(vec![ev(0, PhaseKind::Compute, 0, 5)]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), t.to_csv());
    }

    #[test]
    fn flush_is_explicit_and_idempotent() {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let mut svc = TraceService::new(sink.clone());
        svc.record(ev(0, PhaseKind::Compute, 0, 5));
        svc.flush();
        assert_eq!(sink.lock().len(), 1);
        svc.flush();
        drop(svc); // Drop backstop must not duplicate
        assert_eq!(sink.lock().len(), 1);
    }

    #[test]
    fn empty_trace_fraction_is_zero() {
        assert_eq!(Trace::default().compute_fraction(), 0.0);
    }
}
