//! Application-level integration tests: Jacobi convergence, heat
//! determinism across engines and modes, kernel apps.

use std::sync::{Arc, Mutex};
use xsim_apps::heat3d::{self, HeatConfig};
use xsim_apps::jacobi2d::{self, JacobiConfig, JacobiOutcome};
use xsim_apps::kernels;
use xsim_apps::ComputeMode;
use xsim_core::{ExitKind, SimTime};
use xsim_mpi::SimBuilder;
use xsim_net::NetModel;

#[test]
fn jacobi_converges_and_agrees_across_rank_counts() {
    let run = |ranks: usize| {
        let out: Arc<Mutex<Option<JacobiOutcome>>> = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        let cfg = JacobiConfig {
            nx: 16,
            ny: 16,
            max_iters: 2000,
            tolerance: 1e-7,
            residual_interval: 1, // residual checked every iteration →
            // identical stopping point for every decomposition
            per_point: SimTime::from_nanos(10),
        };
        let report = SimBuilder::new(ranks)
            .net(NetModel::small(ranks))
            .run(jacobi2d::program(
                cfg,
                Some(Arc::new(move |o| {
                    *out2.lock().unwrap() = Some(o);
                })),
            ))
            .unwrap();
        assert_eq!(report.sim.exit, ExitKind::Completed);
        let result = out.lock().unwrap().expect("rank 0 reported");
        result
    };
    let single = run(1);
    assert!(
        single.residual <= 1e-7,
        "did not converge: {}",
        single.residual
    );
    assert!(single.iters < 2000, "hit the iteration cap");
    let multi = run(4);
    assert_eq!(
        multi.iters, single.iters,
        "decomposition changed convergence"
    );
    assert!((multi.residual - single.residual).abs() < 1e-12);
}

#[test]
fn jacobi_rejects_indivisible_rank_counts() {
    let cfg = JacobiConfig::small(); // ny = 32
    let report = SimBuilder::new(3)
        .net(NetModel::small(3))
        .run(jacobi2d::program(cfg, None))
        .unwrap();
    // Every rank errors out with Invalid → treated as process failures.
    assert_ne!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn heat_modeled_and_real_have_identical_timing() {
    // The modeled compute mode must charge exactly the time the real
    // mode does — that is what justifies using it at paper scale.
    let mut real = HeatConfig::small();
    real.iterations = 10;
    let mut modeled = real.clone();
    modeled.mode = ComputeMode::Modeled;

    let t_real = SimBuilder::new(real.n_ranks())
        .net(NetModel::small(real.n_ranks()))
        .run(heat3d::program(real))
        .unwrap()
        .exit_time();
    let t_modeled = SimBuilder::new(modeled.n_ranks())
        .net(NetModel::small(modeled.n_ranks()))
        .run(heat3d::program(modeled.clone()))
        .unwrap()
        .exit_time();
    // Checkpoint sizes differ (grid vs token), but with the default free
    // FS model and equal message sizes the times must match exactly.
    assert_eq!(t_real, t_modeled);
}

#[test]
fn heat_timing_scales_linearly_with_iterations() {
    let time_for = |iters: u64| {
        let mut cfg = HeatConfig::small();
        cfg.mode = ComputeMode::Modeled;
        cfg.iterations = iters;
        cfg.halo_interval = iters; // single round → pure compute scaling
        cfg.ckpt_interval = iters;
        SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .run(heat3d::program(cfg))
            .unwrap()
            .exit_time()
    };
    let t10 = time_for(10);
    let t20 = time_for(20);
    let t40 = time_for(40);
    // Communication/checkpoint overhead is a constant per run (one round
    // each); compare differences to isolate the compute term.
    let d1 = (t20 - t10).as_nanos() as f64;
    let d2 = (t40 - t20).as_nanos() as f64;
    let ratio = d2 / d1;
    assert!(
        (ratio - 2.0).abs() < 0.01,
        "compute term should scale linearly: {ratio}"
    );
}

#[test]
fn ring_token_visits_every_rank() {
    let n = 32;
    let report = SimBuilder::new(n)
        .net(NetModel::small(n))
        .run(kernels::ring(2, 8))
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert_eq!(report.mpi.sends as usize, 2 * n);
    assert_eq!(report.mpi.recvs as usize, 2 * n);
}

#[test]
fn ring_single_rank_degenerates_gracefully() {
    let report = SimBuilder::new(1)
        .net(NetModel::small(1))
        .run(kernels::ring(5, 64))
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert_eq!(report.mpi.sends, 0);
}

#[test]
fn compute_allreduce_validates_results() {
    let report = SimBuilder::new(16)
        .net(NetModel::small(16))
        .run(kernels::compute_allreduce(4, 8, SimTime::from_millis(2)))
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    // 4 allreduces per rank; each allreduce = reduce + bcast internally,
    // counted once per rank per call at the API level... the collective
    // counter counts coll_begin calls: allreduce → reduce + bcast = 2,
    // per rank per round.
    assert!(report.mpi.collectives >= 16 * 4);
}

#[test]
fn pingpong_round_trip_time_is_symmetric() {
    let report = SimBuilder::new(2)
        .net(NetModel::small(2))
        .run(kernels::pingpong(10, 512))
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    let d = report.sim.final_clocks[0] - report.sim.final_clocks[1];
    // Rank 0 finishes after receiving the last pong; rank 1 after
    // sending it — their clocks differ by at most one message time.
    assert!(d < SimTime::from_millis(1), "clock gap {d}");
}

mod sweep_tests {
    use super::*;
    use xsim_apps::sweep::{self, SweepConfig};

    #[test]
    fn wavefront_finish_time_matches_pipeline_model() {
        // With negligible communication, one sweep finishes at the
        // far corner at T ≈ (pipeline_fill + planes) · per_plane.
        let cfg = SweepConfig {
            grid: [4, 4],
            planes: 8,
            sweeps: 1,
            per_plane: SimTime::from_millis(10),
            face_bytes: 64,
        };
        let report = SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .run(sweep::program(cfg.clone()))
            .unwrap();
        assert_eq!(report.sim.exit, ExitKind::Completed);
        let last = report.sim.final_clocks[cfg.n_ranks() - 1];
        let per = SimTime::from_millis(10);
        let ideal = SimTime(per.as_nanos() * (cfg.pipeline_fill() as u64 + cfg.planes as u64));
        // Within 5% of the analytic pipeline model (communication adds
        // a little).
        let slack = ideal.scale(1.05);
        assert!(
            last >= ideal && last <= slack,
            "far corner at {last}, pipeline model {ideal}"
        );
        // Corner rank 0 finishes first (it only computes + forwards).
        assert!(report.sim.final_clocks[0] < last);
    }

    #[test]
    fn one_slow_rank_stalls_the_wavefront() {
        let cfg = SweepConfig {
            grid: [4, 4],
            planes: 4,
            sweeps: 1,
            per_plane: SimTime::from_millis(10),
            face_bytes: 64,
        };
        let fast = SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .run(sweep::program(cfg.clone()))
            .unwrap()
            .exit_time();
        // Slow down rank 5 (interior) by 4x via the processor model.
        let slow = SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .proc(xsim_proc::ProcModel::default().override_speed(xsim_core::Rank(5), 0.25))
            .run(sweep::program(cfg.clone()))
            .unwrap()
            .exit_time();
        assert!(
            slow > fast.scale(1.5),
            "a slow interior rank must stall the pipeline: {slow} vs {fast}"
        );
    }

    #[test]
    fn wavefront_failure_aborts_downstream() {
        let cfg = SweepConfig::small();
        let report = SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .inject_failure(0, SimTime::from_micros(50))
            .run(sweep::program(cfg))
            .unwrap();
        // The corner rank dies; everyone downstream starves and the
        // detection timeout escalates into the abort cascade.
        assert_eq!(report.sim.exit, ExitKind::Aborted);
        assert_eq!(report.sim.failures.len(), 1);
    }
}
