//! The heat3d workload under replication-based protection.
//!
//! Same decomposition, compute/halo/checkpoint cadence and state-token
//! evolution as [`crate::heat3d`], but the application runs on *logical*
//! ranks served by replica teams ([`xsim_mpi::replication`]): halo
//! exchanges and the restart-agreement/barrier collectives go through
//! the replicated message layer, so replica deaths fail over without an
//! application-visible error. This is the workload behind the
//! FIT × protection-scheme ablation (crossover between checkpoint
//! overhead and replication overhead).
//!
//! Protection composition per scheme:
//!
//! * [`ProtectionScheme::Replication`] — replicas absorb individual
//!   deaths; a whole-team death surfaces as `MPI_ERR_PROC_FAILED`. With
//!   [`RepHeatConfig::ckpt`] the run additionally checkpoints, so a
//!   team death resumes from the last checkpoint instead of scratch
//!   (the composition the replication-viability literature assumes);
//!   without it, survival relies on the replicas alone.
//! * [`ProtectionScheme::Partial`] — replicas for the critical set,
//!   checkpoint/restart for everyone (mandatory: it is the fallback for
//!   the unprotected ranks): PartRePer-style composition. A non-critical
//!   (singleton) rank death surfaces the error and the campaign
//!   restarts from the last checkpoint.
//!
//! Checkpoints and the completion marker are written by **every live
//! replica** of a logical rank, not just its current leader: replicas of
//! a rank hold identical state, so the writes are byte-idempotent, and
//! this sidesteps the window where a dead leader has not yet crossed the
//! heartbeat detection bound on the surviving replica (a leader-only
//! discipline could silently skip a generation there, losing the only
//! complete checkpoint chain).
//!
//! Modeled compute only: replication targets the paper-scale ablation,
//! where real grids would be pointless weight.

use crate::heat3d::{config_fingerprint, mix_token, sections, ComputeMode, HeatConfig};
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;
use xsim_ckpt::{Checkpoint, CheckpointManager};
use xsim_core::vp::VpProgram;
use xsim_core::SimTime;
use xsim_fs::FsService;
use xsim_mpi::replication::{HeartbeatConfig, ProtectionScheme, ReplicaMap, Replicated};
use xsim_mpi::{mpi_program, MpiCtx, MpiError};
use xsim_proc::Work;

/// Replicated-heat configuration: the logical workload plus the
/// protection layout.
#[derive(Debug, Clone)]
pub struct RepHeatConfig {
    /// The logical heat problem (`heat.n_ranks()` = logical world size).
    pub heat: HeatConfig,
    /// Replication layout (`Replication` or `Partial`).
    pub scheme: ProtectionScheme,
    /// Heartbeat failure-detection protocol parameters.
    pub hb: HeartbeatConfig,
    /// Compose checkpoint/restart with the replication (required for
    /// `Partial` — the C/R path is what protects the non-critical
    /// ranks).
    pub ckpt: bool,
}

impl RepHeatConfig {
    /// Validate and derive the replica map.
    pub fn map(&self) -> Result<ReplicaMap, String> {
        self.heat.validate()?;
        if self.heat.mode != ComputeMode::Modeled {
            return Err("replicated heat supports modeled compute only".into());
        }
        if matches!(self.scheme, ProtectionScheme::Partial { .. }) && !self.ckpt {
            return Err("partial replication requires the checkpoint fallback".into());
        }
        ReplicaMap::from_scheme(&self.scheme, self.heat.n_ranks())
            .ok_or_else(|| format!("scheme '{}' does not replicate", self.scheme))
    }

    /// Physical world size the simulation must be built with.
    pub fn physical_size(&self) -> usize {
        self.map().expect("valid config").physical_size()
    }

    /// Whether the run writes checkpoints.
    pub fn checkpoints(&self) -> bool {
        self.ckpt
    }

    /// Store name of the completion marker — written by logical rank 0's
    /// replicas when the run finishes. A campaign driver uses it to tell
    /// a successfully completed replicated run (whose surviving-replica
    /// exit is still `FailedOnly` when teammates died) from a genuine
    /// failure.
    pub fn done_marker(&self) -> String {
        format!("{}/rep_done", self.heat.prefix)
    }
}

/// Byte length of the completion marker (two digest words).
const DONE_DIGEST_LEN: usize = 16;

async fn halo_exchange(rep: &mut Replicated, cfg: &HeatConfig) -> Result<(), MpiError> {
    let neighbors = cfg.neighbors(rep.logical_rank);
    let l = cfg.local();
    let face_bytes = [l[1] * l[2] * 8, l[0] * l[2] * 8, l[0] * l[1] * 8];
    // Post all receives, then all sends, then drain — the same schedule
    // as the unreplicated solver, one logical channel per neighbor.
    let mut reqs = Vec::new();
    for (dir, nb) in neighbors.iter().enumerate() {
        if let Some(nb) = nb {
            reqs.push(rep.irecv_logical(*nb, dir as u32 ^ 1)?);
        }
    }
    for (dir, nb) in neighbors.iter().enumerate() {
        if let Some(nb) = nb {
            let payload = Bytes::from(vec![0u8; face_bytes[dir / 2]]);
            reqs.push(rep.isend_logical(*nb, dir as u32, payload).await?);
        }
    }
    rep.waitall_logical(reqs).await?;
    Ok(())
}

async fn write_checkpoint(
    cfg: &HeatConfig,
    mgr: &CheckpointManager,
    logical: usize,
    token: u64,
    it: u64,
) -> Result<(), MpiError> {
    let ckpt = Checkpoint::new(logical as u32, it)
        .with_section(sections::CONFIG, config_fingerprint(cfg))
        .with_section(sections::TOKEN, Bytes::from(token.to_le_bytes().to_vec()));
    // Charge the I/O of the grid a real run would persist (cf. heat3d's
    // modeled mode); each replica persists its own copy.
    xsim_fs::charge_write(cfg.points_per_rank() as usize * 8).await;
    mgr.write(&ckpt)
        .await
        .map_err(|e| MpiError::Io(e.to_string()))
}

/// Build the replicated heat application as a [`VpProgram`]. Run it on a
/// world of [`RepHeatConfig::physical_size`] ranks.
pub fn program(cfg: RepHeatConfig) -> Arc<dyn VpProgram> {
    let map = cfg.map().expect("invalid replicated heat configuration");
    let cfg = Arc::new(cfg);
    mpi_program(move |mpi: MpiCtx| {
        let cfg = cfg.clone();
        let map = map.clone();
        async move {
            let mut rep = Replicated::attach(mpi, map, cfg.hb)?;
            let heat = &cfg.heat;
            let logical = rep.logical_rank;
            let with_ckpt = cfg.checkpoints();
            let mgr = CheckpointManager::new(&heat.prefix);
            let store = xsim_core::ctx::with_kernel(|k, _| k.service::<FsService>().store.clone());

            // Restart path (checkpointing schemes only): load the newest
            // valid checkpoint of the *logical* rank — every replica
            // loads the same file — then agree on the restart iteration.
            let mut it: u64 = 0;
            let mut token: u64 = 0;
            if with_ckpt {
                if let Some(ckpt) = mgr.load_latest(&store, logical as u32).await {
                    let valid = ckpt
                        .section(sections::CONFIG)
                        .is_some_and(|f| f == &config_fingerprint(heat));
                    let raw = ckpt.section(sections::TOKEN);
                    match (valid, raw) {
                        (true, Some(raw)) if raw.len() >= 8 => {
                            token = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
                            it = ckpt.iteration;
                        }
                        _ => return Err(MpiError::Io("incompatible checkpoint".into())),
                    }
                }
            }
            let agreed = rep.allreduce_u64_max(&[it, !it]).await?;
            let (max_it, min_it) = (agreed[0], !agreed[1]);
            if max_it != min_it {
                return Err(MpiError::Io(format!(
                    "inconsistent restart iterations: {min_it} vs {max_it}"
                )));
            }

            let mut last_ckpt: Option<u64> = (it > 0).then_some(it);
            while it < heat.iterations {
                let next_halo = ((it / heat.halo_interval) + 1) * heat.halo_interval;
                let next_ckpt = ((it / heat.ckpt_interval) + 1) * heat.ckpt_interval;
                let next = next_halo.min(next_ckpt).min(heat.iterations);
                let steps = next - it;

                for s in 1..=steps {
                    token = mix_token(token, it + s, logical as u64);
                }
                let work_ns = heat
                    .per_point
                    .as_nanos()
                    .saturating_mul(heat.points_per_rank())
                    .saturating_mul(steps);
                rep.compute(Work::native_time(SimTime(work_ns))).await;
                it = next;

                if it.is_multiple_of(heat.halo_interval) || it == heat.iterations {
                    halo_exchange(&mut rep, heat).await?;
                }

                if with_ckpt && (it.is_multiple_of(heat.ckpt_interval) || it == heat.iterations) {
                    write_checkpoint(heat, &mgr, logical, token, it).await?;
                    rep.barrier().await?;
                    if let Some(prev) = last_ckpt.take() {
                        if prev != it {
                            mgr.delete_generation(prev, logical as u32)
                                .await
                                .map_err(|e| MpiError::Io(e.to_string()))?;
                        }
                    }
                    last_ckpt = Some(it);
                }
            }

            // Cross-rank completion digest: fold every logical rank's
            // final token into one value all ranks agree on.
            let digest = rep.allreduce_u64_max(&[token, !token]).await?;
            if logical == 0 {
                // Every live replica of logical 0 writes the (identical)
                // marker: idempotent, and immune to leader-detection lag.
                let mut b = BytesMut::with_capacity(DONE_DIGEST_LEN);
                b.put_u64_le(digest[0]);
                b.put_u64_le(digest[1]);
                xsim_fs::write(&cfg.done_marker(), b.freeze())
                    .await
                    .map_err(|e| MpiError::Io(e.to_string()))?;
            }

            rep.finalize();
            Ok(())
        }
    })
}

/// Decode a completion marker written by [`program`] back into its two
/// digest words (diagnostics / campaign verification).
pub fn decode_done_marker(data: &[u8]) -> Option<(u64, u64)> {
    if data.len() != DONE_DIGEST_LEN {
        return None;
    }
    Some((
        u64::from_le_bytes(data[..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(data[8..].try_into().expect("8 bytes")),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rep() -> RepHeatConfig {
        RepHeatConfig {
            heat: HeatConfig {
                mode: ComputeMode::Modeled,
                ..HeatConfig::small()
            },
            scheme: ProtectionScheme::Replication { degree: 2 },
            hb: HeartbeatConfig::default(),
            ckpt: false,
        }
    }

    #[test]
    fn layout_follows_scheme() {
        let cfg = small_rep();
        assert_eq!(cfg.physical_size(), 16); // 8 logical × 2
        assert!(!cfg.checkpoints());

        let partial = RepHeatConfig {
            scheme: ProtectionScheme::Partial {
                degree: 2,
                critical: [0, 1].into_iter().collect(),
            },
            ckpt: true,
            ..small_rep()
        };
        assert_eq!(partial.physical_size(), 10); // 8 + 2 shadows
        assert!(partial.checkpoints());
    }

    #[test]
    fn rejects_real_mode_and_unreplicated_schemes() {
        let mut cfg = small_rep();
        cfg.heat.mode = ComputeMode::Real;
        assert!(cfg.map().is_err());

        let mut cfg = small_rep();
        cfg.scheme = ProtectionScheme::CheckpointRestart {
            mode: Default::default(),
        };
        assert!(cfg.map().is_err());

        // Partial without the checkpoint fallback is rejected.
        let mut cfg = small_rep();
        cfg.scheme = ProtectionScheme::Partial {
            degree: 2,
            critical: [0].into_iter().collect(),
        };
        assert!(cfg.map().is_err());
        cfg.ckpt = true;
        assert!(cfg.map().is_ok());
    }

    #[test]
    fn done_marker_round_trips() {
        let mut b = BytesMut::new();
        b.put_u64_le(7);
        b.put_u64_le(13);
        assert_eq!(decode_done_marker(&b.freeze()), Some((7, 13)));
        assert_eq!(decode_done_marker(&[0u8; 3]), None);
    }
}
