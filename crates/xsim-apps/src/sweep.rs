//! A Sweep3D-style pipelined wavefront proxy.
//!
//! The third canonical HPC communication pattern (after the heat app's
//! halo exchange and the Jacobi residual allreduce): ranks form a 2-D
//! grid; a sweep starts at one corner and each rank must receive its
//! upstream neighbours' boundary data before computing a plane and
//! forwarding downstream. Transport sweeps (Sn codes like Sweep3D /
//! Kripke) are dominated by this dependency chain, which makes them a
//! sharp test of the simulator's ordering: the virtual finish time is
//! governed by the pipeline fill `(Px + Py − 2)` plus the per-plane
//! cadence, and a single slow (or failed) rank stalls the whole
//! wavefront — co-design behaviour quite different from the heat app's.

use bytes::Bytes;
use std::sync::Arc;
use xsim_core::vp::VpProgram;
use xsim_core::SimTime;
use xsim_mpi::{mpi_program, MpiCtx, MpiError};
use xsim_proc::Work;

/// Wavefront configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Rank grid extent (Px, Py).
    pub grid: [usize; 2],
    /// Planes swept per sweep (the pipelined dimension).
    pub planes: u32,
    /// Number of full sweeps (each from the same corner).
    pub sweeps: u32,
    /// Native compute time per plane per rank.
    pub per_plane: SimTime,
    /// Boundary payload bytes per neighbour per plane.
    pub face_bytes: usize,
}

impl SweepConfig {
    /// Small test configuration: 4×4 ranks, 8 planes, 2 sweeps.
    pub fn small() -> Self {
        SweepConfig {
            grid: [4, 4],
            planes: 8,
            sweeps: 2,
            per_plane: SimTime::from_micros(100),
            face_bytes: 2048,
        }
    }

    /// Total rank count.
    pub fn n_ranks(&self) -> usize {
        self.grid[0] * self.grid[1]
    }

    /// Validate against a world size.
    pub fn validate(&self, n_ranks: usize) -> Result<(), String> {
        if self.n_ranks() != n_ranks {
            return Err(format!(
                "grid {}x{} needs {} ranks, world has {n_ranks}",
                self.grid[0],
                self.grid[1],
                self.n_ranks()
            ));
        }
        if self.planes == 0 || self.sweeps == 0 {
            return Err("planes and sweeps must be positive".into());
        }
        Ok(())
    }

    /// Pipeline depth: stages before the far corner starts computing.
    pub fn pipeline_fill(&self) -> u32 {
        (self.grid[0] + self.grid[1] - 2) as u32
    }
}

/// Build the wavefront application.
pub fn program(cfg: SweepConfig) -> Arc<dyn VpProgram> {
    let cfg = Arc::new(cfg);
    mpi_program(move |mpi: MpiCtx| {
        let cfg = cfg.clone();
        async move {
            cfg.validate(mpi.size)
                .map_err(|_| MpiError::Invalid("bad sweep config"))?;
            let w = mpi.world();
            let (px, py) = (cfg.grid[0], cfg.grid[1]);
            let (ix, iy) = (mpi.rank % px, mpi.rank / px);
            let west = (ix > 0).then(|| mpi.rank - 1);
            let north = (iy > 0).then(|| mpi.rank - px);
            let east = (ix + 1 < px).then(|| mpi.rank + 1);
            let south = (iy + 1 < py).then(|| mpi.rank + px);

            for sweep in 0..cfg.sweeps {
                for plane in 0..cfg.planes {
                    let tag = sweep * cfg.planes + plane;
                    // Upstream dependencies: both boundary faces must
                    // arrive before this rank's plane can be computed.
                    if let Some(west) = west {
                        mpi.recv(w, Some(west), Some(tag)).await?;
                    }
                    if let Some(north) = north {
                        mpi.recv(w, Some(north), Some(tag)).await?;
                    }
                    mpi.compute(Work::native_time(cfg.per_plane)).await;
                    // Forward downstream; nonblocking so the next plane's
                    // receives can overlap the neighbours' compute.
                    if let Some(east) = east {
                        let _ = mpi
                            .isend(w, east, tag, Bytes::from(vec![0u8; cfg.face_bytes]))
                            .await?;
                    }
                    if let Some(south) = south {
                        let _ = mpi
                            .isend(w, south, tag, Bytes::from(vec![0u8; cfg.face_bytes]))
                            .await?;
                    }
                }
            }
            mpi.finalize();
            Ok(())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shapes() {
        let c = SweepConfig::small();
        assert_eq!(c.n_ranks(), 16);
        assert_eq!(c.pipeline_fill(), 6);
        c.validate(16).unwrap();
        assert!(c.validate(8).is_err());
        let bad = SweepConfig {
            sweeps: 0,
            ..SweepConfig::small()
        };
        assert!(bad.validate(16).is_err());
    }
}
