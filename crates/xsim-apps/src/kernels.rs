//! Microbenchmark kernels: small applications used by tests, examples
//! and the scalability/ablation benches.

use bytes::Bytes;
use std::sync::Arc;
use xsim_core::vp::VpProgram;
use xsim_core::SimTime;
use xsim_mpi::{mpi_program, MpiCtx, MpiError, ReduceOp};

/// Token ring: rank 0 injects a token that visits every rank `laps`
/// times. Exercises sequential point-to-point dependencies across the
/// whole machine.
pub fn ring(laps: u32, payload: usize) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        let w = mpi.world();
        if mpi.size == 1 {
            mpi.finalize();
            return Ok(());
        }
        let right = (mpi.rank + 1) % mpi.size;
        let left = (mpi.rank + mpi.size - 1) % mpi.size;
        for lap in 0..laps {
            if mpi.rank == 0 {
                mpi.send(w, right, lap, Bytes::from(vec![0u8; payload]))
                    .await?;
                mpi.recv(w, Some(left), Some(lap)).await?;
            } else {
                let msg = mpi.recv(w, Some(left), Some(lap)).await?;
                mpi.send(w, right, lap, msg.data).await?;
            }
        }
        mpi.finalize();
        Ok(())
    })
}

/// Compute/allreduce phases: every rank computes for `compute` virtual
/// time then allreduces a vector of `elems` doubles, `rounds` times. The
/// canonical bulk-synchronous pattern.
pub fn compute_allreduce(rounds: u32, elems: usize, compute: SimTime) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        let w = mpi.world();
        let data = vec![mpi.rank as f64; elems];
        for _ in 0..rounds {
            mpi.sleep(compute).await;
            let out = mpi.allreduce_f64(w, &data, ReduceOp::Sum).await?;
            // Sum over ranks of `rank` is constant; sanity-check it.
            let expect = (mpi.size * (mpi.size - 1) / 2) as f64;
            if (out[0] - expect).abs() > 1e-9 {
                return Err(MpiError::Invalid("allreduce mismatch"));
            }
        }
        mpi.finalize();
        Ok(())
    })
}

/// Point-to-point ping-pong between ranks 0 and 1 with a payload sweep;
/// other ranks idle. Used by the eager/rendezvous ablation bench.
pub fn pingpong(rounds: u32, payload: usize) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        let w = mpi.world();
        match mpi.rank {
            0 => {
                for i in 0..rounds {
                    mpi.send(w, 1, i, Bytes::from(vec![0u8; payload])).await?;
                    mpi.recv(w, Some(1), Some(i)).await?;
                }
            }
            1 => {
                for i in 0..rounds {
                    let msg = mpi.recv(w, Some(0), Some(i)).await?;
                    mpi.send(w, 0, i, msg.data).await?;
                }
            }
            _ => {}
        }
        mpi.finalize();
        Ok(())
    })
}

/// Point-to-point storm: every rank exchanges `rounds` messages with
/// one partner per stride (`rank ± stride`, so the machine-wide pair
/// set covers many distinct routes). Each round every rank posts its
/// receives, sends, then waits — a dense traffic pattern whose
/// fault-window cost is dominated by per-message route computation,
/// which is exactly what the epoch-keyed route cache targets.
pub fn p2p_storm(rounds: u32, strides: Vec<usize>, payload: usize) -> Arc<dyn VpProgram> {
    let strides = Arc::new(strides);
    mpi_program(move |mpi: MpiCtx| {
        let strides = strides.clone();
        async move {
            let w = mpi.world();
            let strides: Vec<usize> = strides
                .iter()
                .map(|s| s % mpi.size)
                .filter(|&s| s != 0)
                .collect();
            // One shared payload for the whole storm: sends clone the
            // refcounted handle, never the bytes.
            let payload = Bytes::from(vec![0u8; payload]);
            for round in 0..rounds {
                for &s in &strides {
                    let to = (mpi.rank + s) % mpi.size;
                    let from = (mpi.rank + mpi.size - s) % mpi.size;
                    let rq = mpi.irecv(w, Some(from), Some(round))?;
                    mpi.send(w, to, round, payload.clone()).await?;
                    mpi.wait(w, rq).await?;
                }
            }
            mpi.finalize();
            Ok(())
        }
    })
}

/// A trivial program: every rank sleeps once and exits. Used by the
/// scalability bench to measure raw VP capacity (paper §II-A: xSim runs
/// up to 2^27 MPI tasks on 960 cores).
pub fn noop(sleep: SimTime) -> Arc<dyn VpProgram> {
    mpi_program(move |mpi: MpiCtx| async move {
        mpi.sleep(sleep).await;
        mpi.finalize();
        Ok(())
    })
}
