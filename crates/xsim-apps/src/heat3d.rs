//! The paper's target application (§V-B): an iterative 3-D heat-equation
//! solver with cube decomposition, periodic halo exchanges, and
//! application-level checkpoint/restart.
//!
//! "It decomposes the 3D problem by splitting it into cubes distributed
//! across the MPI ranks. Each rank performs the same total number of
//! iterations … A halo exchange between neighboring cubes is performed
//! at a certain iteration interval … A checkpoint is written to disk at
//! a certain iteration interval … After writing out a checkpoint, a
//! global barrier synchronizes all processes, such that the previous
//! checkpoint can be deleted safely. In case of a failure, the
//! application can be restarted using the same number of MPI ranks. It
//! automatically loads the last checkpoint and automatically deletes any
//! corrupted checkpoint."
//!
//! Two compute modes:
//!
//! * [`ComputeMode::Real`] — the stencil really runs on real data;
//!   checkpoints carry the grid. Used at small scale by tests that prove
//!   numerical equivalence between failure-free and failure+restart
//!   executions.
//! * [`ComputeMode::Modeled`] — virtual time is charged for the same
//!   work but only a deterministic state token is updated; checkpoints
//!   stay tiny ("the individual checkpoint files are extremely small",
//!   §V-C). Used at the paper's 32,768-rank scale.

use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;
use xsim_ckpt::{Checkpoint, CheckpointManager, ModeWriter};
use xsim_core::vp::VpProgram;
use xsim_core::SimTime;
use xsim_fs::FsService;
use xsim_mpi::{mpi_program, CkptMode, Comm, MpiCtx, MpiError, ReduceOp};
use xsim_proc::Work;

/// How the computation phase is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeMode {
    /// Execute the stencil on real data.
    Real,
    /// Charge the time, update a deterministic token only.
    Modeled,
}

/// Heat application configuration (the paper's four parameters, §V-B:
/// problem size, total iteration count, halo-exchange interval,
/// checkpoint interval — plus the decomposition and compute mode).
#[derive(Debug, Clone)]
pub struct HeatConfig {
    /// Global grid points per dimension (paper: 512×512×512).
    pub global: [usize; 3],
    /// Ranks per dimension (paper: 32×32×32 cubes).
    pub ranks: [usize; 3],
    /// Total iterations (paper: 1,000).
    pub iterations: u64,
    /// Halo-exchange interval in iterations (paper: equal to the
    /// checkpoint interval, "a halo exchange takes place right before a
    /// checkpoint").
    pub halo_interval: u64,
    /// Checkpoint interval in iterations (the paper's varied parameter).
    pub ckpt_interval: u64,
    /// Compute mode.
    pub mode: ComputeMode,
    /// Checkpoint write strategy (paper-fidelity default: `Full`).
    pub ckpt_mode: CkptMode,
    /// Native reference-core time to update one grid point (calibrated
    /// default reproduces the paper's E1 ≈ 5,248 s baseline at full
    /// scale under the 1000× slowdown model).
    pub per_point: SimTime,
    /// Checkpoint namespace on the simulated file system.
    pub prefix: String,
}

impl HeatConfig {
    /// The paper's full-scale configuration (§V-E): 512³ points over
    /// 32,768 ranks in 32³ cubes (16³ points each), 1,000 iterations,
    /// modeled compute. The per-point cost is calibrated so the
    /// failure-free baseline lands at the paper's E1 ≈ 5,248 s under the
    /// 1000× node slowdown: 1000 iters × 4096 points × 1.28 µs × 1000 ≈
    /// 5,243 s.
    pub fn paper(ckpt_interval: u64) -> Self {
        HeatConfig {
            global: [512, 512, 512],
            ranks: [32, 32, 32],
            iterations: 1000,
            halo_interval: ckpt_interval,
            ckpt_interval,
            mode: ComputeMode::Modeled,
            ckpt_mode: CkptMode::Full,
            per_point: SimTime::from_nanos(1280),
            prefix: "heat".into(),
        }
    }

    /// A small configuration for tests and examples.
    pub fn small() -> Self {
        HeatConfig {
            global: [8, 8, 8],
            ranks: [2, 2, 2],
            iterations: 20,
            halo_interval: 5,
            ckpt_interval: 5,
            mode: ComputeMode::Real,
            ckpt_mode: CkptMode::Full,
            per_point: SimTime::from_nanos(160),
            prefix: "heat".into(),
        }
    }

    /// Total rank count.
    pub fn n_ranks(&self) -> usize {
        self.ranks[0] * self.ranks[1] * self.ranks[2]
    }

    /// Local (per-rank) interior extent per dimension.
    pub fn local(&self) -> [usize; 3] {
        [
            self.global[0] / self.ranks[0],
            self.global[1] / self.ranks[1],
            self.global[2] / self.ranks[2],
        ]
    }

    /// Points per rank.
    pub fn points_per_rank(&self) -> u64 {
        let l = self.local();
        (l[0] * l[1] * l[2]) as u64
    }

    /// Validate divisibility and intervals.
    pub fn validate(&self) -> Result<(), String> {
        for d in 0..3 {
            if self.ranks[d] == 0 || self.global[d] == 0 {
                return Err("zero extent".into());
            }
            if !self.global[d].is_multiple_of(self.ranks[d]) {
                return Err(format!(
                    "global[{d}]={} not divisible by ranks[{d}]={}",
                    self.global[d], self.ranks[d]
                ));
            }
        }
        if self.iterations == 0 || self.halo_interval == 0 || self.ckpt_interval == 0 {
            return Err("iterations and intervals must be positive".into());
        }
        Ok(())
    }

    fn rank_coords(&self, rank: usize) -> [usize; 3] {
        [
            rank % self.ranks[0],
            (rank / self.ranks[0]) % self.ranks[1],
            rank / (self.ranks[0] * self.ranks[1]),
        ]
    }

    fn rank_at(&self, c: [usize; 3]) -> usize {
        c[0] + self.ranks[0] * (c[1] + self.ranks[1] * c[2])
    }

    /// The six mesh neighbours (±x, ±y, ±z) of a rank; `None` at the
    /// global boundary (the heat problem is not periodic).
    pub fn neighbors(&self, rank: usize) -> [Option<usize>; 6] {
        let c = self.rank_coords(rank);
        let mut out = [None; 6];
        for dim in 0..3 {
            if c[dim] + 1 < self.ranks[dim] {
                let mut cc = c;
                cc[dim] += 1;
                out[2 * dim] = Some(self.rank_at(cc));
            }
            if c[dim] > 0 {
                let mut cc = c;
                cc[dim] -= 1;
                out[2 * dim + 1] = Some(self.rank_at(cc));
            }
        }
        out
    }

    /// Face sizes (points) per direction pair (x, y, z).
    fn face_points(&self) -> [usize; 3] {
        let l = self.local();
        [l[1] * l[2], l[0] * l[2], l[0] * l[1]]
    }
}

/// Local solver state.
enum State {
    Real(Grid),
    Modeled { token: u64 },
}

/// A local grid block with one halo layer.
struct Grid {
    l: [usize; 3],
    data: Vec<f64>,
}

impl Grid {
    fn new(cfg: &HeatConfig, rank: usize) -> Self {
        let l = cfg.local();
        let dims = [l[0] + 2, l[1] + 2, l[2] + 2];
        let data = vec![0.0; dims[0] * dims[1] * dims[2]];
        // Initial/boundary condition: the global x=0 face is held hot.
        let rc = cfg.rank_coords(rank);
        if rc[0] == 0 {
            let mut g = Grid { l, data };
            for k in 0..dims[2] {
                for j in 0..dims[1] {
                    let idx = g.idx(0, j, k);
                    g.data[idx] = 100.0;
                }
            }
            return g;
        }
        Grid { l, data }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * (self.l[1] + 2) + j) * (self.l[0] + 2) + i
    }

    /// One 7-point relaxation sweep over the interior.
    fn step(&mut self) {
        let (lx, ly, lz) = (self.l[0], self.l[1], self.l[2]);
        let mut next = self.data.clone();
        for k in 1..=lz {
            for j in 1..=ly {
                for i in 1..=lx {
                    let c = self.idx(i, j, k);
                    let sum = self.data[self.idx(i - 1, j, k)]
                        + self.data[self.idx(i + 1, j, k)]
                        + self.data[self.idx(i, j - 1, k)]
                        + self.data[self.idx(i, j + 1, k)]
                        + self.data[self.idx(i, j, k - 1)]
                        + self.data[self.idx(i, j, k + 1)];
                    next[c] = (self.data[c] + sum) / 7.0;
                }
            }
        }
        self.data = next;
    }

    /// Pack the interior face adjacent to direction `dir`
    /// (0=+x, 1=−x, 2=+y, 3=−y, 4=+z, 5=−z).
    fn pack_face(&self, dir: usize) -> Bytes {
        let mut out = BytesMut::new();
        self.for_face(dir, false, |g, idx| {
            out.put_f64_le(g.data[idx]);
        });
        out.freeze()
    }

    /// Unpack received data into the halo layer of direction `dir`.
    fn unpack_halo(&mut self, dir: usize, data: &[u8]) {
        let mut vals = data
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")));
        // Collect indices first to avoid borrowing issues.
        let mut idxs = Vec::new();
        self.for_face(dir, true, |_, idx| idxs.push(idx));
        for idx in idxs {
            if let Some(v) = vals.next() {
                self.data[idx] = v;
            }
        }
    }

    /// Visit the face (interior boundary layer when `halo == false`, the
    /// halo layer when `halo == true`) for a direction.
    fn for_face(&self, dir: usize, halo: bool, mut f: impl FnMut(&Grid, usize)) {
        let (lx, ly, lz) = (self.l[0], self.l[1], self.l[2]);
        let dim = dir / 2;
        let positive = dir.is_multiple_of(2);
        let fixed = match (dim, positive, halo) {
            (d, true, false) => self.l[d],    // interior high layer
            (d, true, true) => self.l[d] + 1, // high halo
            (_, false, false) => 1,           // interior low layer
            (_, false, true) => 0,            // low halo
        };
        match dim {
            0 => {
                for k in 1..=lz {
                    for j in 1..=ly {
                        f(self, self.idx(fixed, j, k));
                    }
                }
            }
            1 => {
                for k in 1..=lz {
                    for i in 1..=lx {
                        f(self, self.idx(i, fixed, k));
                    }
                }
            }
            _ => {
                for j in 1..=ly {
                    for i in 1..=lx {
                        f(self, self.idx(i, j, fixed));
                    }
                }
            }
        }
    }

    /// Checksum-friendly digest of the interior (diagnostics).
    fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in &self.data {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub(crate) fn mix_token(token: u64, it: u64, rank: u64) -> u64 {
    let mut z = token ^ it.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ rank.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Section names used in heat checkpoints.
pub mod sections {
    /// Configuration fingerprint.
    pub const CONFIG: &str = "config";
    /// Real-mode grid payload.
    pub const GRID: &str = "grid";
    /// Modeled-mode state token.
    pub const TOKEN: &str = "token";
}

pub(crate) fn config_fingerprint(cfg: &HeatConfig) -> Bytes {
    let mut b = BytesMut::new();
    for d in 0..3 {
        b.put_u64_le(cfg.global[d] as u64);
        b.put_u64_le(cfg.ranks[d] as u64);
    }
    b.put_u64_le(cfg.iterations);
    b.put_u64_le(cfg.halo_interval);
    b.put_u64_le(cfg.ckpt_interval);
    b.freeze()
}

async fn halo_exchange(
    mpi: &MpiCtx,
    w: Comm,
    cfg: &HeatConfig,
    state: &mut State,
) -> Result<(), MpiError> {
    let neighbors = cfg.neighbors(mpi.rank);
    let faces = cfg.face_points();
    let mut recvs = Vec::new();
    for (dir, nb) in neighbors.iter().enumerate() {
        if let Some(nb) = nb {
            recvs.push((dir, *nb, mpi.irecv(w, Some(*nb), Some(dir as u32 ^ 1))?));
        }
    }
    for (dir, nb) in neighbors.iter().enumerate() {
        if let Some(nb) = nb {
            let payload = match state {
                State::Real(g) => g.pack_face(dir),
                State::Modeled { .. } => Bytes::from(vec![0u8; faces[dir / 2] * 8]),
            };
            let _ = mpi.isend(w, *nb, dir as u32, payload).await?;
        }
    }
    let reqs: Vec<_> = recvs.iter().map(|(_, _, r)| *r).collect();
    let outs = mpi.waitall(w, &reqs).await?;
    if let State::Real(g) = state {
        for ((dir, _, _), out) in recvs.iter().zip(outs) {
            let msg = out.expect("halo receives carry payloads");
            g.unpack_halo(*dir, &msg.data);
        }
    }
    Ok(())
}

async fn write_checkpoint(
    mpi: &MpiCtx,
    cfg: &HeatConfig,
    writer: &mut ModeWriter,
    state: &State,
    it: u64,
) -> Result<(), MpiError> {
    let mut ckpt = Checkpoint::new(mpi.rank as u32, it)
        .with_section(sections::CONFIG, config_fingerprint(cfg));
    ckpt = match state {
        State::Real(g) => {
            let mut b = BytesMut::with_capacity(g.data.len() * 8);
            for v in &g.data {
                b.put_f64_le(*v);
            }
            ckpt.with_section(sections::GRID, b.freeze())
        }
        State::Modeled { token } => {
            ckpt.with_section(sections::TOKEN, Bytes::from(token.to_le_bytes().to_vec()))
        }
    };
    // In modeled compute the checkpoint is a tiny surrogate; the writer
    // charges the I/O/network volume the real grid would have cost
    // (free under the paper's Table II file system model).
    let model_bytes = matches!(state, State::Modeled { .. }).then(|| cfg.points_per_rank() * 8);
    writer.write(mpi, &ckpt, model_bytes).await
}

fn restore_state(cfg: &HeatConfig, ckpt: &Checkpoint, rank: usize) -> Option<(State, u64)> {
    if ckpt.section(sections::CONFIG)? != &config_fingerprint(cfg) {
        return None;
    }
    let state = match cfg.mode {
        ComputeMode::Real => {
            let raw = ckpt.section(sections::GRID)?;
            let mut g = Grid::new(cfg, rank);
            if raw.len() != g.data.len() * 8 {
                return None;
            }
            for (slot, chunk) in g.data.iter_mut().zip(raw.chunks_exact(8)) {
                *slot = f64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            }
            State::Real(g)
        }
        ComputeMode::Modeled => {
            let raw = ckpt.section(sections::TOKEN)?;
            State::Modeled {
                token: u64::from_le_bytes(raw[..8].try_into().ok()?),
            }
        }
    };
    Some((state, ckpt.iteration))
}

/// Build the heat application as a [`VpProgram`].
pub fn program(cfg: HeatConfig) -> Arc<dyn VpProgram> {
    cfg.validate().expect("invalid heat configuration");
    let cfg = Arc::new(cfg);
    mpi_program(move |mpi: MpiCtx| {
        let cfg = cfg.clone();
        async move {
            let w = mpi.world();
            let mut writer = ModeWriter::new(CheckpointManager::new(&cfg.prefix), cfg.ckpt_mode);
            let store = xsim_core::ctx::with_kernel(|k, _| k.service::<FsService>().store.clone());

            // Restart path: load the newest valid checkpoint, deleting
            // corrupted ones (paper §V-B); agree on the restart
            // iteration (the orchestrator's cleanup guarantees a
            // consistent latest generation — this allreduce asserts it).
            let mut it: u64 = 0;
            let mut state = match writer.load_latest(&mpi, &store).await {
                Some(ckpt) => match restore_state(&cfg, &ckpt, mpi.rank) {
                    Some((s, iter)) => {
                        it = iter;
                        s
                    }
                    None => return Err(MpiError::Io("incompatible checkpoint".into())),
                },
                None => match cfg.mode {
                    ComputeMode::Real => State::Real(Grid::new(&cfg, mpi.rank)),
                    ComputeMode::Modeled => State::Modeled { token: 0 },
                },
            };
            // One collective: max(it) and max(!it) = !min(it) together.
            let agreed = mpi.allreduce_u64(w, &[it, !it], ReduceOp::Max).await?;
            let (max_it, min_it) = (agreed[0], !agreed[1]);
            if max_it != min_it {
                return Err(MpiError::Io(format!(
                    "inconsistent restart iterations: {min_it} vs {max_it}"
                )));
            }

            let mut last_ckpt: Option<u64> = (it > 0).then_some(it);
            while it < cfg.iterations {
                let next_halo = ((it / cfg.halo_interval) + 1) * cfg.halo_interval;
                let next_ckpt = ((it / cfg.ckpt_interval) + 1) * cfg.ckpt_interval;
                let next = next_halo.min(next_ckpt).min(cfg.iterations);
                let steps = next - it;

                // Computation phase: real sweeps and/or the modeled time
                // charge for the same work.
                match &mut state {
                    State::Real(g) => {
                        for _ in 0..steps {
                            g.step();
                        }
                    }
                    State::Modeled { token } => {
                        for s in 1..=steps {
                            *token = mix_token(*token, it + s, mpi.rank as u64);
                        }
                    }
                }
                let work_ns = cfg
                    .per_point
                    .as_nanos()
                    .saturating_mul(cfg.points_per_rank())
                    .saturating_mul(steps);
                mpi.compute(Work::native_time(SimTime(work_ns))).await;
                it = next;

                // Halo exchange phase ("right before a checkpoint").
                if it.is_multiple_of(cfg.halo_interval) || it == cfg.iterations {
                    halo_exchange(&mpi, w, &cfg, &mut state).await?;
                }

                // Checkpoint phase: write, barrier, delete previous.
                if it.is_multiple_of(cfg.ckpt_interval) || it == cfg.iterations {
                    write_checkpoint(&mpi, &cfg, &mut writer, &state, it).await?;
                    mpi.barrier(w).await?;
                    if let Some(prev) = last_ckpt.take() {
                        if prev != it {
                            writer.retire(&mpi, prev).await?;
                        }
                    }
                    last_ckpt = Some(it);
                }
            }

            if let State::Real(g) = &state {
                // Keep the digest computation alive in real mode; it is
                // also exposed through the final checkpoint for tests.
                let _ = g.digest();
            }
            mpi.finalize();
            Ok(())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let c = HeatConfig::paper(125);
        c.validate().unwrap();
        assert_eq!(c.n_ranks(), 32_768);
        assert_eq!(c.local(), [16, 16, 16]);
        assert_eq!(c.points_per_rank(), 4096);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = HeatConfig::small();
        c.global = [9, 8, 8];
        assert!(c.validate().is_err());
        let mut c = HeatConfig::small();
        c.ckpt_interval = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn neighbor_structure_is_mesh() {
        let c = HeatConfig::small(); // 2x2x2 ranks
        let n0 = c.neighbors(0);
        assert_eq!(n0[0], Some(1)); // +x
        assert_eq!(n0[1], None); // -x at boundary
        assert_eq!(n0[2], Some(2)); // +y
        assert_eq!(n0[4], Some(4)); // +z
        let n7 = c.neighbors(7);
        assert_eq!(n7[0], None);
        assert_eq!(n7[1], Some(6));
    }

    #[test]
    fn grid_init_heats_global_x0_face_only() {
        let c = HeatConfig::small();
        let g0 = Grid::new(&c, 0); // rank at x=0
        let g1 = Grid::new(&c, 1); // rank at x=1 (not global x=0)
        assert!(g0.data.contains(&100.0));
        assert!(g1.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stencil_diffuses_heat_inward() {
        let c = HeatConfig {
            ranks: [1, 1, 1],
            ..HeatConfig::small()
        };
        let mut g = Grid::new(&c, 0);
        let probe = g.idx(1, 4, 4);
        assert_eq!(g.data[probe], 0.0);
        for _ in 0..3 {
            g.step();
        }
        assert!(g.data[probe] > 0.0, "heat did not diffuse");
        // Conservation-ish sanity: values stay within [0, 100].
        assert!(g.data.iter().all(|&v| (0.0..=100.0).contains(&v)));
    }

    #[test]
    fn faces_pack_and_unpack_consistently() {
        let c = HeatConfig::small();
        let mut g = Grid::new(&c, 0);
        for (i, v) in g.data.iter_mut().enumerate() {
            *v = i as f64;
        }
        for dir in 0..6 {
            let face = g.pack_face(dir);
            let l = c.local();
            let expect = match dir / 2 {
                0 => l[1] * l[2],
                1 => l[0] * l[2],
                _ => l[0] * l[1],
            };
            assert_eq!(face.len(), expect * 8, "dir {dir}");
            // Unpacking into the opposite halo must not touch the
            // interior.
            let before = g.data.clone();
            let mut g2 = Grid::new(&c, 0);
            g2.data = before.clone();
            g2.unpack_halo(dir, &face);
            let interior_changed = (1..=c.local()[0]).any(|i| {
                (1..=c.local()[1]).any(|j| {
                    (1..=c.local()[2]).any(|k| g2.data[g2.idx(i, j, k)] != before[g2.idx(i, j, k)])
                })
            });
            assert!(!interior_changed, "dir {dir} wrote interior");
        }
    }

    #[test]
    fn token_mixing_is_deterministic_and_sensitive() {
        let a = mix_token(0, 1, 2);
        assert_eq!(a, mix_token(0, 1, 2));
        assert_ne!(a, mix_token(0, 2, 2));
        assert_ne!(a, mix_token(0, 1, 3));
        assert_ne!(a, mix_token(1, 1, 2));
    }
}
