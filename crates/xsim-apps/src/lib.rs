//! # xsim-apps — simulated applications
//!
//! The workloads of the reproduction:
//!
//! * [`heat3d`] — the paper's target application (§V-B): iterative 3-D
//!   heat equation, cube decomposition, halo exchanges, application-
//!   level checkpoint/restart. Drives Table II.
//! * [`jacobi2d`] — a 2-D Jacobi solver with residual allreduce
//!   (structurally different communication pattern).
//! * [`sweep`] — a Sweep3D-style pipelined wavefront (dependency-chain
//!   dominated, unlike the bulk-synchronous apps).
//! * [`kernels`] — ring / compute+allreduce / ping-pong / noop
//!   microbenchmark programs for tests, examples and ablations.

pub mod heat3d;
pub mod heat3d_rep;
pub mod jacobi2d;
pub mod kernels;
pub mod sweep;

pub use heat3d::{ComputeMode, HeatConfig};
pub use heat3d_rep::RepHeatConfig;
pub use jacobi2d::{JacobiConfig, JacobiOutcome};
pub use sweep::SweepConfig;
