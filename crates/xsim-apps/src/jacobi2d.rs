//! A 2-D Jacobi solver with row-block decomposition.
//!
//! A second, structurally different workload (1-D neighbor pattern +
//! global residual allreduce) of the kind the paper's introduction
//! motivates for co-design studies. Runs real numerics; used by tests
//! and examples at small scale.

use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;
use xsim_core::vp::VpProgram;
use xsim_core::SimTime;
use xsim_mpi::{mpi_program, MpiCtx, MpiError, ReduceOp};
use xsim_proc::Work;

/// Jacobi configuration.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Global grid (nx columns × ny rows). Rows are block-distributed.
    pub nx: usize,
    /// Global row count; must be divisible by the rank count.
    pub ny: usize,
    /// Maximum iterations.
    pub max_iters: u64,
    /// Convergence threshold on the global max update.
    pub tolerance: f64,
    /// Residual check (allreduce) interval.
    pub residual_interval: u64,
    /// Native per-point update cost for the processor model.
    pub per_point: SimTime,
}

impl JacobiConfig {
    /// Small test configuration.
    pub fn small() -> Self {
        JacobiConfig {
            nx: 32,
            ny: 32,
            max_iters: 500,
            tolerance: 1e-6,
            residual_interval: 10,
            per_point: SimTime::from_nanos(50),
        }
    }

    /// Validate against a rank count.
    pub fn validate(&self, n_ranks: usize) -> Result<(), String> {
        if !self.ny.is_multiple_of(n_ranks) {
            return Err(format!("ny={} not divisible by {} ranks", self.ny, n_ranks));
        }
        if self.nx < 3 || self.ny / n_ranks < 1 {
            return Err("grid too small".into());
        }
        Ok(())
    }
}

/// Result snapshot a rank reports (for tests): iterations executed and
/// the final local residual contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiOutcome {
    /// Iterations executed.
    pub iters: u64,
    /// Final global residual.
    pub residual: f64,
}

fn pack_row(row: &[f64]) -> Bytes {
    let mut b = BytesMut::with_capacity(row.len() * 8);
    for v in row {
        b.put_f64_le(*v);
    }
    b.freeze()
}

fn unpack_row(data: &[u8], row: &mut [f64]) {
    for (slot, chunk) in row.iter_mut().zip(data.chunks_exact(8)) {
        *slot = f64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
    }
}

/// Build the Jacobi application. `on_done` (rank 0 only) receives the
/// outcome, letting tests assert convergence.
pub fn program(
    cfg: JacobiConfig,
    on_done: Option<Arc<dyn Fn(JacobiOutcome) + Send + Sync>>,
) -> Arc<dyn VpProgram> {
    let cfg = Arc::new(cfg);
    mpi_program(move |mpi: MpiCtx| {
        let cfg = cfg.clone();
        let on_done = on_done.clone();
        async move {
            cfg.validate(mpi.size)
                .map_err(|_| MpiError::Invalid("bad jacobi config"))?;
            let w = mpi.world();
            let rows = cfg.ny / mpi.size;
            let nx = cfg.nx;
            // Local block with one halo row above and below. Boundary
            // condition: global top row = 1.0, global bottom = 0.0,
            // left/right columns fixed at 0.
            let mut u = vec![0.0f64; (rows + 2) * nx];
            let mut next = u.clone();
            if mpi.rank == 0 {
                for x in 0..nx {
                    u[x] = 1.0; // halo row doubles as the fixed boundary
                    next[x] = 1.0;
                }
            }

            let up = (mpi.rank > 0).then(|| mpi.rank - 1);
            let down = (mpi.rank + 1 < mpi.size).then(|| mpi.rank + 1);
            let mut it = 0u64;
            let mut residual = f64::INFINITY;
            while it < cfg.max_iters && residual > cfg.tolerance {
                // Halo exchange: first interior row up, last interior
                // row down.
                let mut reqs = Vec::new();
                if let Some(up) = up {
                    reqs.push((0usize, mpi.irecv(w, Some(up), Some(1))?));
                    let _ = mpi.isend(w, up, 0, pack_row(&u[nx..2 * nx])).await?;
                }
                if let Some(down) = down {
                    reqs.push((1usize, mpi.irecv(w, Some(down), Some(0))?));
                    let _ = mpi
                        .isend(w, down, 1, pack_row(&u[rows * nx..(rows + 1) * nx]))
                        .await?;
                }
                let ids: Vec<_> = reqs.iter().map(|(_, r)| *r).collect();
                let outs = mpi.waitall(w, &ids).await?;
                for ((which, _), out) in reqs.iter().zip(outs) {
                    let msg = out.expect("halo payload");
                    match which {
                        0 => unpack_row(&msg.data, &mut u[0..nx]),
                        _ => unpack_row(&msg.data, &mut u[(rows + 1) * nx..(rows + 2) * nx]),
                    }
                }

                // Sweep.
                let mut local_max = 0.0f64;
                for r in 1..=rows {
                    for x in 1..nx - 1 {
                        let c = r * nx + x;
                        let v = 0.25 * (u[c - 1] + u[c + 1] + u[c - nx] + u[c + nx]);
                        local_max = local_max.max((v - u[c]).abs());
                        next[c] = v;
                    }
                }
                std::mem::swap(&mut u, &mut next);
                mpi.compute(Work::native_time(SimTime(
                    cfg.per_point.as_nanos() * (rows * nx) as u64,
                )))
                .await;
                it += 1;

                if it.is_multiple_of(cfg.residual_interval) {
                    let g = mpi.allreduce_f64(w, &[local_max], ReduceOp::Max).await?;
                    residual = g[0];
                }
            }
            if mpi.rank == 0 {
                if let Some(cb) = &on_done {
                    cb(JacobiOutcome {
                        iters: it,
                        residual,
                    });
                }
            }
            mpi.finalize();
            Ok(())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let c = JacobiConfig::small();
        c.validate(4).unwrap();
        assert!(c.validate(5).is_err());
        let tiny = JacobiConfig {
            nx: 2,
            ..JacobiConfig::small()
        };
        assert!(tiny.validate(4).is_err());
    }

    #[test]
    fn row_codec_round_trips() {
        let row = [1.0, -2.5, 3.25];
        let packed = pack_row(&row);
        let mut out = [0.0; 3];
        unpack_row(&packed, &mut out);
        assert_eq!(out, row);
    }
}
