//! # xsim-proc — the processor model
//!
//! xSim extracts performance data "based on a processor and a network
//! model" (paper §II-A). Its processor model scales the natively measured
//! execution time of a simulated process by a configurable factor; the
//! paper's experiments run the simulated compute nodes "at a speed 1000×
//! slower than a single 1.7 GHz AMD Opteron 6164 HE core" (§V-C).
//!
//! In xsim-rs, applications *declare* their work (see DESIGN.md §1 for why
//! this substitution preserves the experiments), and this crate converts
//! declared work into virtual time:
//!
//! * [`Work::native_time`] — "this phase takes t seconds on the reference
//!   core" (the direct analogue of xSim's measured native time),
//! * [`Work::flops`] / [`Work::mem_bytes`] — convenience units converted
//!   through the reference-core parameters.
//!
//! The conversion multiplies by the node [`ProcModel::slowdown`] factor
//! and divides by per-node speed overrides, supporting heterogeneous
//! simulated machines.

pub mod power;

pub use power::{PowerModel, PowerReport};

use xsim_core::{Rank, SimTime};

/// A quantity of computational work declared by an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Work {
    /// Time the work takes on one reference core (native seconds).
    NativeTime(SimTime),
    /// Floating-point operations; converted via the reference core's
    /// sustained flop rate.
    Flops(u64),
    /// Bytes moved through the memory subsystem; converted via the
    /// reference core's sustained memory bandwidth.
    MemBytes(u64),
}

impl Work {
    /// Work expressed as native reference-core time.
    pub fn native_time(t: SimTime) -> Self {
        Work::NativeTime(t)
    }

    /// Work expressed in floating-point operations.
    pub fn flops(n: u64) -> Self {
        Work::Flops(n)
    }

    /// Work expressed in bytes of memory traffic.
    pub fn mem_bytes(n: u64) -> Self {
        Work::MemBytes(n)
    }
}

/// Reference-core characteristics used to convert work units into native
/// time. Defaults approximate one 1.7 GHz AMD Opteron 6164 HE core, the
/// paper's reference (§V-A).
#[derive(Debug, Clone, Copy)]
pub struct RefCore {
    /// Sustained floating-point rate, flop/s.
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth, bytes/s.
    pub mem_bytes_per_sec: f64,
}

impl Default for RefCore {
    fn default() -> Self {
        RefCore {
            // 1.7 GHz, ~2 flops/cycle sustained for stencil-like code.
            flops_per_sec: 3.4e9,
            // Per-core share of socket memory bandwidth.
            mem_bytes_per_sec: 4.0e9,
        }
    }
}

/// The processor model: maps `(rank, work)` to virtual time.
///
/// ```
/// use xsim_proc::{ProcModel, Work};
/// use xsim_core::{Rank, SimTime};
///
/// // The paper's configuration: nodes 1000x slower than the reference core.
/// let model = ProcModel::with_slowdown(1000.0);
/// let t = model.virtual_time(Rank(0), Work::native_time(SimTime::from_millis(1)));
/// assert_eq!(t, SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone)]
pub struct ProcModel {
    /// Reference-core parameters.
    pub ref_core: RefCore,
    /// Uniform slowdown of every simulated node relative to the reference
    /// core. The paper's experiments use 1000.0 (§V-C); 1.0 simulates
    /// nodes as fast as the reference core.
    pub slowdown: f64,
    /// Optional per-node relative speed overrides (`1.0` = nominal,
    /// `2.0` = twice as fast). Sparse: most co-design studies perturb only
    /// a few nodes. Entries are `(rank, speed)`.
    overrides: Vec<(Rank, f64)>,
}

impl Default for ProcModel {
    fn default() -> Self {
        ProcModel {
            ref_core: RefCore::default(),
            slowdown: 1.0,
            overrides: Vec::new(),
        }
    }
}

impl ProcModel {
    /// Model with a uniform slowdown factor (the paper's configuration
    /// style).
    pub fn with_slowdown(slowdown: f64) -> Self {
        assert!(
            slowdown.is_finite() && slowdown > 0.0,
            "slowdown must be positive"
        );
        ProcModel {
            slowdown,
            ..Default::default()
        }
    }

    /// Set the reference core parameters.
    pub fn ref_core(mut self, rc: RefCore) -> Self {
        self.ref_core = rc;
        self
    }

    /// Override the relative speed of one simulated node. Speeds compose
    /// with the global slowdown: effective factor = `slowdown / speed`.
    pub fn override_speed(mut self, rank: Rank, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        self.overrides.retain(|(r, _)| *r != rank);
        self.overrides.push((rank, speed));
        self
    }

    /// Relative speed of `rank` (1.0 unless overridden).
    pub fn speed_of(&self, rank: Rank) -> f64 {
        self.overrides
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, s)| *s)
            .unwrap_or(1.0)
    }

    /// Native reference-core time for a quantity of work.
    pub fn native_time(&self, work: Work) -> SimTime {
        match work {
            Work::NativeTime(t) => t,
            Work::Flops(n) => SimTime::from_secs_f64(n as f64 / self.ref_core.flops_per_sec),
            Work::MemBytes(n) => SimTime::from_secs_f64(n as f64 / self.ref_core.mem_bytes_per_sec),
        }
    }

    /// Virtual time `work` takes on the node hosting `rank`.
    pub fn virtual_time(&self, rank: Rank, work: Work) -> SimTime {
        self.native_time(work)
            .scale(self.slowdown / self.speed_of(rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_time_passthrough() {
        let m = ProcModel::default();
        let t = SimTime::from_millis(7);
        assert_eq!(m.virtual_time(Rank(0), Work::native_time(t)), t);
    }

    #[test]
    fn slowdown_scales_time() {
        let m = ProcModel::with_slowdown(1000.0);
        assert_eq!(
            m.virtual_time(Rank(0), Work::native_time(SimTime::from_millis(1))),
            SimTime::from_secs(1)
        );
    }

    #[test]
    fn flops_convert_via_ref_core() {
        let m = ProcModel::default().ref_core(RefCore {
            flops_per_sec: 1e9,
            mem_bytes_per_sec: 1e9,
        });
        assert_eq!(
            m.virtual_time(Rank(0), Work::flops(2_000_000_000)),
            SimTime::from_secs(2)
        );
        assert_eq!(
            m.virtual_time(Rank(0), Work::mem_bytes(500_000_000)),
            SimTime::from_millis(500)
        );
    }

    #[test]
    fn per_node_override_composes() {
        let m = ProcModel::with_slowdown(100.0).override_speed(Rank(3), 2.0);
        let w = Work::native_time(SimTime::from_millis(10));
        assert_eq!(m.virtual_time(Rank(0), w), SimTime::from_secs(1));
        assert_eq!(m.virtual_time(Rank(3), w), SimTime::from_millis(500));
    }

    #[test]
    fn override_replaces_previous() {
        let m = ProcModel::default()
            .override_speed(Rank(1), 2.0)
            .override_speed(Rank(1), 4.0);
        assert_eq!(m.speed_of(Rank(1)), 4.0);
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn rejects_nonpositive_slowdown() {
        let _ = ProcModel::with_slowdown(0.0);
    }

    #[test]
    fn zero_work_is_zero_time() {
        let m = ProcModel::with_slowdown(1000.0);
        assert_eq!(m.virtual_time(Rank(0), Work::flops(0)), SimTime::ZERO);
    }
}
