//! Node power model.
//!
//! The paper's overall approach includes "(4) model the power
//! consumption of the entire simulated system" and names the
//! performance/resilience/power trade-off as the co-design goal (§III-A,
//! §VI future work (5)). This module provides the per-node power model;
//! the MPI layer accounts busy time per rank and the builder integrates
//! both into an energy report, so experiments can weigh checkpoint
//! intervals and failure rates against energy.

use xsim_core::SimTime;

/// Per-node electrical model: a busy/idle two-state abstraction, the
/// standard first-order model for system-level energy studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power draw while the node computes, watts.
    pub active_watts: f64,
    /// Power draw while the node idles or waits on communication/I/O,
    /// watts.
    pub idle_watts: f64,
    /// Additional energy per MPI message sent (NIC + switch share),
    /// joules.
    pub joules_per_message: f64,
    /// Additional energy per byte moved across the network, joules.
    pub joules_per_byte: f64,
}

impl PowerModel {
    /// A 2010s-era HPC node in the paper's machine class: ~300 W busy,
    /// ~150 W idle, ~1 µJ per message, ~50 pJ/byte on the wire.
    pub fn typical_node() -> Self {
        PowerModel {
            active_watts: 300.0,
            idle_watts: 150.0,
            joules_per_message: 1.0e-6,
            joules_per_byte: 50.0e-12,
        }
    }

    /// Energy of one node that was busy for `busy` out of `total`
    /// virtual time, in joules.
    pub fn node_energy(&self, busy: SimTime, total: SimTime) -> f64 {
        let busy_s = busy.min(total).as_secs_f64();
        let idle_s = (total - busy.min(total)).as_secs_f64();
        self.active_watts * busy_s + self.idle_watts * idle_s
    }

    /// Network energy for a traffic volume.
    pub fn network_energy(&self, messages: u64, bytes: u64) -> f64 {
        self.joules_per_message * messages as f64 + self.joules_per_byte * bytes as f64
    }
}

/// Aggregate energy accounting of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Total energy across all simulated nodes, joules.
    pub total_joules: f64,
    /// Compute (busy) share of the node energy, joules.
    pub busy_joules: f64,
    /// Idle/wait share of the node energy, joules.
    pub idle_joules: f64,
    /// Network share, joules.
    pub network_joules: f64,
    /// Machine-wide busy fraction (Σ busy / Σ wall).
    pub busy_fraction: f64,
}

impl PowerReport {
    /// Assemble a report from per-rank busy times, final clocks and
    /// traffic volume. `clocks` and `busy` are indexed by rank and must
    /// have equal lengths; each rank is charged until its own final
    /// clock (a failed rank's node is presumed powered off afterwards).
    pub fn assemble(
        model: &PowerModel,
        busy: &[SimTime],
        clocks: &[SimTime],
        start: SimTime,
        messages: u64,
        bytes: u64,
    ) -> PowerReport {
        assert_eq!(busy.len(), clocks.len());
        let mut busy_j = 0.0;
        let mut idle_j = 0.0;
        let mut busy_total = 0u128;
        let mut wall_total = 0u128;
        for (b, c) in busy.iter().zip(clocks) {
            let wall = *c - start;
            let b = (*b).min(wall);
            busy_j += model.active_watts * b.as_secs_f64();
            idle_j += model.idle_watts * (wall - b).as_secs_f64();
            busy_total += b.as_nanos() as u128;
            wall_total += wall.as_nanos() as u128;
        }
        let network_joules = model.network_energy(messages, bytes);
        PowerReport {
            total_joules: busy_j + idle_j + network_joules,
            busy_joules: busy_j,
            idle_joules: idle_j,
            network_joules,
            busy_fraction: if wall_total == 0 {
                0.0
            } else {
                busy_total as f64 / wall_total as f64
            },
        }
    }

    /// Average power of the run given its duration, watts.
    pub fn average_watts(&self, duration: SimTime) -> f64 {
        let s = duration.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.total_joules / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel {
            active_watts: 200.0,
            idle_watts: 100.0,
            joules_per_message: 1e-6,
            joules_per_byte: 1e-9,
        }
    }

    #[test]
    fn node_energy_splits_busy_idle() {
        let m = model();
        // 10 s total, 4 s busy: 4*200 + 6*100 = 1400 J.
        assert_eq!(
            m.node_energy(SimTime::from_secs(4), SimTime::from_secs(10)),
            1400.0
        );
        // Busy clamped to total.
        assert_eq!(
            m.node_energy(SimTime::from_secs(20), SimTime::from_secs(10)),
            2000.0
        );
    }

    #[test]
    fn network_energy_scales() {
        let m = model();
        assert_eq!(m.network_energy(1_000_000, 1_000_000_000), 1.0 + 1.0);
    }

    #[test]
    fn report_assembles_per_rank() {
        let m = model();
        let busy = [SimTime::from_secs(4), SimTime::from_secs(10)];
        let clocks = [SimTime::from_secs(10), SimTime::from_secs(10)];
        let r = PowerReport::assemble(&m, &busy, &clocks, SimTime::ZERO, 0, 0);
        // Rank 0: 4*200 + 6*100 = 1400; rank 1: 10*200 = 2000.
        assert_eq!(r.busy_joules, 4.0 * 200.0 + 10.0 * 200.0);
        assert_eq!(r.idle_joules, 6.0 * 100.0);
        assert_eq!(r.total_joules, 3400.0);
        assert!((r.busy_fraction - 0.7).abs() < 1e-12);
        assert_eq!(r.average_watts(SimTime::from_secs(10)), 340.0);
    }

    #[test]
    fn report_respects_start_offset() {
        let m = model();
        let busy = [SimTime::from_secs(1)];
        let clocks = [SimTime::from_secs(11)];
        let r = PowerReport::assemble(&m, &busy, &clocks, SimTime::from_secs(1), 0, 0);
        // Wall = 10 s, busy 1 s.
        assert_eq!(r.total_joules, 200.0 + 9.0 * 100.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = PowerReport::assemble(&model(), &[], &[], SimTime::ZERO, 0, 0);
        assert_eq!(r.total_joules, 0.0);
        assert_eq!(r.busy_fraction, 0.0);
        assert_eq!(r.average_watts(SimTime::ZERO), 0.0);
    }
}
