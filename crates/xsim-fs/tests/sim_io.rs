//! File system behaviour inside simulations: virtual-time charging and
//! the two-phase write semantics that produce the paper's "corrupted
//! checkpoint (exists, but misses some information)" (§V-B).

use bytes::Bytes;
use xsim_core::{ExitKind, SimTime};
use xsim_fs::{FileState, FsModel};
use xsim_mpi::SimBuilder;
use xsim_net::NetModel;

#[test]
fn write_read_delete_charge_virtual_time() {
    let builder = SimBuilder::new(1)
        .net(NetModel::small(1))
        .fs_model(FsModel {
            meta_latency: SimTime::from_millis(1),
            write_bw: 1.0e6, // 1 MB/s
            read_bw: 2.0e6,
            pfs: None,
        });
    let store = builder.store();
    let report = builder
        .run_app(|mpi| async move {
            let t0 = mpi.now();
            // 1 MB write: 1 ms metadata + 1 s transfer.
            xsim_fs::write("data", Bytes::from(vec![7u8; 1_000_000]))
                .await
                .unwrap();
            let t1 = mpi.now();
            assert_eq!(t1 - t0, SimTime::from_secs(1) + SimTime::from_millis(1));

            // Read back: 1 ms metadata + 0.5 s transfer.
            let back = xsim_fs::read("data").await.unwrap();
            assert!(back.is_complete());
            assert_eq!(back.bytes().len(), 1_000_000);
            let t2 = mpi.now();
            assert_eq!(t2 - t1, SimTime::from_millis(500) + SimTime::from_millis(1));

            // Delete: metadata only.
            assert!(xsim_fs::delete("data").await.unwrap());
            assert_eq!(mpi.now() - t2, SimTime::from_millis(1));
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert!(store.is_empty());
}

#[test]
fn failure_mid_write_leaves_partial_file() {
    // The writer dies while its transfer is in flight: the file must
    // exist but be partial — the corrupted-checkpoint precondition.
    let builder = SimBuilder::new(2)
        .net(NetModel::small(2))
        .errhandler(xsim_mpi::ErrHandler::Return)
        .fs_model(FsModel {
            meta_latency: SimTime::from_millis(1),
            write_bw: 1.0e6, // 1 s for 1 MB → wide failure window
            read_bw: 1.0e9,
            pfs: None,
        })
        // Fails 200 ms into the 1 s transfer. File I/O waits are
        // clock-updating, so with the default strict semantics the
        // failure activates at the end of the I/O slice; fail_blocked
        // activates it inside the window.
        .fail_blocked(true)
        .inject_failure(0, SimTime::from_millis(200));
    let store = builder.store();
    let report = builder
        .run_app(|mpi| async move {
            if mpi.rank == 0 {
                let _ = xsim_fs::write("victim-file", Bytes::from(vec![1u8; 1_000_000])).await;
                unreachable!("rank 0 dies mid-write");
            }
            mpi.sleep(SimTime::from_secs(2)).await;
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures.len(), 1);
    match store.get("victim-file") {
        Some(FileState::Partial(_)) => {}
        other => panic!("expected a partial file, found {other:?}"),
    }
}

#[test]
fn free_model_writes_are_atomic_and_instant() {
    let builder = SimBuilder::new(1).net(NetModel::small(1)); // FsModel::free() default
    let store = builder.store();
    let report = builder
        .run_app(|mpi| async move {
            let t0 = mpi.now();
            xsim_fs::write("a", Bytes::from(vec![0u8; 10 << 20]))
                .await
                .unwrap();
            assert_eq!(mpi.now(), t0, "free model charges nothing");
            assert!(xsim_fs::exists("a").await);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert!(store.get("a").unwrap().is_complete());
}

#[test]
fn charge_write_costs_time_without_storing() {
    let builder = SimBuilder::new(1)
        .net(NetModel::small(1))
        .fs_model(FsModel {
            meta_latency: SimTime::ZERO,
            write_bw: 1.0e6,
            read_bw: 1.0e6,
            pfs: None,
        });
    let store = builder.store();
    let report = builder
        .run_app(|mpi| async move {
            let t0 = mpi.now();
            xsim_fs::charge_write(500_000).await;
            assert_eq!(mpi.now() - t0, SimTime::from_millis(500));
            xsim_fs::charge_read(250_000).await;
            assert_eq!(mpi.now() - t0, SimTime::from_millis(750));
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert!(store.is_empty(), "charge_write must not create files");
}
