//! # xsim-fs — the simulated parallel file system
//!
//! The paper treats checkpoint file/storage systems as a first-class
//! co-design axis ("the capabilities offered by different checkpoint
//! file/storage systems and by the I/O network infrastructure", §I) while
//! noting that "xSim's file system model is a work in progress" and that
//! Table II therefore does not charge file system overhead (§V-C). This
//! crate builds that substrate:
//!
//! * [`FsStore`] — a named object store **shared across simulated runs**,
//!   so checkpoints written before an abort are visible to the restarted
//!   application (paper §IV-E).
//! * [`FsModel`] — the I/O cost model: metadata latency plus per-rank
//!   bandwidth, or [`FsModel::free`] to reproduce the paper's Table II
//!   configuration exactly.
//! * Two-phase writes — a file is registered (partial) when the write
//!   starts and committed when the simulated transfer finishes, so a
//!   process failure mid-write leaves a *corrupted* file ("checkpoint
//!   file that exists, but misses some information", §V-B).
//! * I/O error injection — "an error or failure of another component,
//!   such as a file I/O error reported by the parallel file system" is
//!   one of the paper's causes of MPI process failure (§III-B).
//!
//! Determinism note: the store is shared mutable state. Simulated
//! applications must keep concurrently written names rank-distinct (the
//! checkpoint layer does), otherwise parallel-engine runs may order
//! same-name commits differently than sequential runs.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use xsim_core::vp::WaitClass;
use xsim_core::{ctx, Rank, SimTime};
use xsim_obs::service as obs;
use xsim_obs::{ids, ObsSpan};

pub mod pfs;

pub use pfs::{file_hash, PfsModel, PfsState};

/// Errors surfaced by simulated file system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The named file does not exist.
    NotFound,
    /// An injected I/O error fired for this operation.
    Injected,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "file not found"),
            FsError::Injected => write!(f, "injected I/O error"),
        }
    }
}

impl std::error::Error for FsError {}

/// State of one stored file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileState {
    /// Fully written.
    Complete(Bytes),
    /// A write began but never committed (writer failed mid-transfer):
    /// the carried bytes are the prefix that reached storage.
    Partial(Bytes),
}

impl FileState {
    /// The stored bytes regardless of completeness.
    pub fn bytes(&self) -> &Bytes {
        match self {
            FileState::Complete(b) | FileState::Partial(b) => b,
        }
    }

    /// Whether the file committed completely.
    pub fn is_complete(&self) -> bool {
        matches!(self, FileState::Complete(_))
    }
}

/// Which operations an injected fault rule hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Fail write operations.
    Write,
    /// Fail read operations.
    Read,
}

/// An injected I/O fault: operations of `kind` on names starting with
/// `prefix` (optionally restricted to one rank) return [`FsError::Injected`].
#[derive(Debug, Clone)]
pub struct IoFaultRule {
    /// Name prefix the rule applies to (empty = all files).
    pub prefix: String,
    /// Operation kind the rule applies to.
    pub kind: IoFaultKind,
    /// Restrict to a single rank, or `None` for all ranks.
    pub rank: Option<Rank>,
    /// Remaining number of operations to fail (decrements per hit;
    /// `u64::MAX` ≈ permanent).
    pub remaining: u64,
}

/// The shared object store. Clone the [`Arc`] and hand it to each run's
/// setup; contents survive simulated application aborts and restarts,
/// exactly like a real parallel file system outlives jobs.
#[derive(Default)]
pub struct FsStore {
    inner: Mutex<StoreInner>,
}

#[derive(Default)]
struct StoreInner {
    files: BTreeMap<String, FileState>,
    faults: Vec<IoFaultRule>,
    writes: u64,
    reads: u64,
    bytes_written: u64,
    bytes_read: u64,
}

/// Aggregate I/O statistics of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsStats {
    /// Completed write operations.
    pub writes: u64,
    /// Completed read operations.
    pub reads: u64,
    /// Total bytes committed by writes.
    pub bytes_written: u64,
    /// Total bytes returned by reads.
    pub bytes_read: u64,
}

impl FsStore {
    /// Fresh, empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(FsStore::default())
    }

    /// Install an I/O fault rule.
    pub fn inject_fault(&self, rule: IoFaultRule) {
        self.inner.lock().faults.push(rule);
    }

    /// Remove all fault rules.
    pub fn clear_faults(&self) {
        self.inner.lock().faults.clear();
    }

    fn check_fault(&self, name: &str, kind: IoFaultKind, rank: Rank) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        for rule in &mut inner.faults {
            if rule.kind == kind
                && rule.remaining > 0
                && name.starts_with(&rule.prefix)
                && rule.rank.is_none_or(|r| r == rank)
            {
                rule.remaining = rule.remaining.saturating_sub(1);
                return Err(FsError::Injected);
            }
        }
        Ok(())
    }

    /// Begin a two-phase write: the name becomes visible as a partial
    /// file (its contents are not durable until commit).
    pub fn begin_write(&self, name: &str) {
        let mut inner = self.inner.lock();
        inner
            .files
            .insert(name.to_string(), FileState::Partial(Bytes::new()));
    }

    /// Commit a write begun with [`begin_write`](Self::begin_write).
    pub fn commit_write(&self, name: &str, data: Bytes) {
        let mut inner = self.inner.lock();
        inner.writes += 1;
        inner.bytes_written += data.len() as u64;
        inner
            .files
            .insert(name.to_string(), FileState::Complete(data));
    }

    /// Atomically write a complete file (used by the free cost model,
    /// where there is no mid-transfer window).
    pub fn put(&self, name: &str, data: Bytes) {
        self.commit_write(name, data);
    }

    /// Read a file's state (complete or partial).
    pub fn get(&self, name: &str) -> Option<FileState> {
        let mut inner = self.inner.lock();
        let state = inner.files.get(name).cloned();
        if let Some(s) = &state {
            inner.reads += 1;
            inner.bytes_read += s.bytes().len() as u64;
        }
        state
    }

    /// Whether a file exists (complete or partial).
    pub fn exists(&self, name: &str) -> bool {
        self.inner.lock().files.contains_key(name)
    }

    /// Delete a file; returns whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        self.inner.lock().files.remove(name).is_some()
    }

    /// The first stored file name at or after `cursor` (lexicographic).
    /// Enables O(log n) directory-style iteration without cloning whole
    /// listings.
    pub fn first_key_at_or_after(&self, cursor: &str) -> Option<String> {
        self.inner
            .lock()
            .files
            .range(cursor.to_string()..)
            .next()
            .map(|(k, _)| k.clone())
    }

    /// All file names with the given prefix, sorted.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner
            .lock()
            .files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Delete every file with the given prefix; returns how many were
    /// removed. This is the simulated analogue of the paper's cleanup
    /// shell script ("incomplete checkpoints … are deleted using a shell
    /// script", §V-B).
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let names = self.list_prefix(prefix);
        let mut inner = self.inner.lock();
        for n in &names {
            inner.files.remove(n);
        }
        names.len()
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.inner.lock().files.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate I/O statistics.
    pub fn stats(&self) -> FsStats {
        let inner = self.inner.lock();
        FsStats {
            writes: inner.writes,
            reads: inner.reads,
            bytes_written: inner.bytes_written,
            bytes_read: inner.bytes_read,
        }
    }
}

/// The I/O cost model.
#[derive(Debug, Clone, Copy)]
pub struct FsModel {
    /// Fixed metadata cost per operation (open/create/stat/unlink),
    /// charged client-side.
    pub meta_latency: SimTime,
    /// Per-rank write bandwidth, bytes/s (aggregate contention is not
    /// modeled — see the crate docs on determinism). Ignored when a
    /// striped [`PfsModel`] is configured.
    pub write_bw: f64,
    /// Per-rank read bandwidth, bytes/s. Ignored when `pfs` is set.
    pub read_bw: f64,
    /// Striped PFS extension: when set, transfers are striped across
    /// simulated I/O nodes and contend FCFS per node (see [`pfs`]),
    /// instead of charging the flat per-rank bandwidths above.
    pub pfs: Option<PfsModel>,
}

impl FsModel {
    /// The paper's Table II configuration: checkpoint I/O is free
    /// ("the file system overhead for checkpoint/restart was not
    /// considered in the experiments", §V-C).
    pub fn free() -> Self {
        FsModel {
            meta_latency: SimTime::ZERO,
            write_bw: f64::INFINITY,
            read_bw: f64::INFINITY,
            pfs: None,
        }
    }

    /// A representative parallel file system share: 50 µs metadata
    /// latency, 1 GB/s per-rank write, 2 GB/s per-rank read, no
    /// cross-rank contention.
    pub fn typical_pfs() -> Self {
        FsModel {
            meta_latency: SimTime::from_micros(50),
            write_bw: 1.0e9,
            read_bw: 2.0e9,
            pfs: None,
        }
    }

    /// A contended, striped PFS: `io_nodes` simulated I/O servers with
    /// [`PfsModel::typical`] per-node parameters, 50 µs client-side
    /// metadata latency. Transit is derived from the network model by
    /// the builder.
    pub fn striped(io_nodes: u32) -> Self {
        FsModel {
            meta_latency: SimTime::from_micros(50),
            write_bw: f64::INFINITY,
            read_bw: f64::INFINITY,
            pfs: Some(PfsModel::typical(io_nodes)),
        }
    }

    /// Whether any operation costs virtual time.
    pub fn is_free(&self) -> bool {
        self.meta_latency == SimTime::ZERO
            && self.write_bw.is_infinite()
            && self.read_bw.is_infinite()
            && self.pfs.is_none()
    }

    fn xfer(bytes: usize, bw: f64) -> SimTime {
        if bw.is_infinite() || bytes == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_secs_f64(bytes as f64 / bw)
        }
    }

    /// Virtual time to write `bytes`.
    pub fn write_time(&self, bytes: usize) -> SimTime {
        self.meta_latency + Self::xfer(bytes, self.write_bw)
    }

    /// Virtual time to read `bytes`.
    pub fn read_time(&self, bytes: usize) -> SimTime {
        self.meta_latency + Self::xfer(bytes, self.read_bw)
    }
}

/// Kernel service giving VPs access to the store and cost model. Install
/// one per shard (they share the same `Arc<FsStore>`, and — when a
/// striped PFS is configured — the same `Arc<PfsState>`).
pub struct FsService {
    /// The shared store.
    pub store: Arc<FsStore>,
    /// The cost model.
    pub model: FsModel,
    /// Shared I/O-server state; `Some` iff `model.pfs` is. Every shard
    /// of one run must hold the *same* instance (see
    /// [`FsService::shared_pfs`]).
    pub pfs: Option<Arc<PfsState>>,
}

impl FsService {
    /// Create a service over a shared store. Creates its own PFS server
    /// state when the model calls for one — fine for single-shard runs;
    /// multi-shard builders must share state via
    /// [`with_pfs`](Self::with_pfs).
    pub fn new(store: Arc<FsStore>, model: FsModel) -> Self {
        let pfs = Self::shared_pfs(&model);
        FsService { store, model, pfs }
    }

    /// Create a service sharing pre-built PFS server state (one
    /// instance per run, cloned into every shard).
    pub fn with_pfs(store: Arc<FsStore>, model: FsModel, pfs: Option<Arc<PfsState>>) -> Self {
        debug_assert_eq!(model.pfs.is_some(), pfs.is_some());
        FsService { store, model, pfs }
    }

    /// Build the per-run shared PFS server state for a model.
    pub fn shared_pfs(model: &FsModel) -> Option<Arc<PfsState>> {
        model.pfs.map(|p| Arc::new(PfsState::new(p)))
    }
}

/// Write a file from the current VP, charging the cost model. A process
/// failure during the transfer leaves the file in a partial (corrupted)
/// state.
pub async fn write(name: &str, data: Bytes) -> Result<(), FsError> {
    let nbytes = data.len() as u64;
    let (cost, striped, store, t0) = ctx::with_kernel(|k, rank| {
        let svc = k.service::<FsService>();
        let striped = svc.model.pfs;
        let cost = if striped.is_some() {
            svc.model.meta_latency
        } else {
            svc.model.write_time(data.len())
        };
        let store = svc.store.clone();
        let t0 = obs::enabled(k).then(|| k.vp(rank).clock());
        if let Err(e) = store.check_fault(name, IoFaultKind::Write, rank) {
            obs::record(k, ids::FS_FAULTS_INJECTED, 1);
            return Err(e);
        }
        if cost > SimTime::ZERO || striped.is_some() {
            store.begin_write(name);
        }
        Ok::<_, FsError>((cost, striped, store, t0))
    })?;
    if cost > SimTime::ZERO {
        fs_sleep(cost).await;
    }
    if let Some(p) = striped {
        pfs::transfer(p, nbytes, file_hash(name), true).await;
    }
    store.commit_write(name, data);
    note_io(
        t0,
        ids::FS_WRITES,
        ids::FS_WRITE_BYTES,
        ids::FS_WRITE_NS,
        "fs.write",
        nbytes,
    );
    Ok(())
}

/// Read a file from the current VP, charging the cost model. Partial
/// (corrupted) files are returned as [`FileState::Partial`] so callers
/// can implement corruption detection.
pub async fn read(name: &str) -> Result<FileState, FsError> {
    let (state, cost, striped, t0) = ctx::with_kernel(|k, rank| {
        let svc = k.service::<FsService>();
        let store = svc.store.clone();
        let model = svc.model;
        let t0 = obs::enabled(k).then(|| k.vp(rank).clock());
        if let Err(e) = store.check_fault(name, IoFaultKind::Read, rank) {
            obs::record(k, ids::FS_FAULTS_INJECTED, 1);
            return Err(e);
        }
        let state = store.get(name).ok_or(FsError::NotFound)?;
        let striped = model.pfs;
        let cost = if striped.is_some() {
            model.meta_latency
        } else {
            model.read_time(state.bytes().len())
        };
        Ok::<_, FsError>((state, cost, striped, t0))
    })?;
    if cost > SimTime::ZERO {
        fs_sleep(cost).await;
    }
    if let Some(p) = striped {
        pfs::transfer(p, state.bytes().len() as u64, file_hash(name), false).await;
    }
    let nbytes = state.bytes().len() as u64;
    note_io(
        t0,
        ids::FS_READS,
        ids::FS_READ_BYTES,
        ids::FS_READ_NS,
        "fs.read",
        nbytes,
    );
    Ok(state)
}

/// Delete a file from the current VP, charging metadata latency. Returns
/// whether the file existed.
pub async fn delete(name: &str) -> Result<bool, FsError> {
    let (cost, store) = ctx::with_kernel(|k, rank| {
        let svc = k.service::<FsService>();
        let store = svc.store.clone();
        let cost = svc.model.meta_latency;
        if let Err(e) = store.check_fault(name, IoFaultKind::Write, rank) {
            obs::record(k, ids::FS_FAULTS_INJECTED, 1);
            return Err(e);
        }
        obs::record(k, ids::FS_DELETES, 1);
        Ok::<_, FsError>((cost, store))
    })?;
    if cost > SimTime::ZERO {
        fs_sleep(cost).await;
    }
    Ok(store.delete(name))
}

/// Charge the I/O time of writing `bytes` without storing anything.
/// Used by modeled applications whose real state is not materialized
/// (e.g. the heat application in modeled-compute mode charges the cost
/// of its full grid checkpoint while persisting only a state token).
pub async fn charge_write(bytes: usize) {
    let (cost, striped, hash, t0) = ctx::with_kernel(|k, rank| {
        let model = k.service::<FsService>().model;
        let striped = model.pfs;
        let cost = if striped.is_some() {
            model.meta_latency
        } else {
            model.write_time(bytes)
        };
        (
            cost,
            striped,
            // Synthetic placement hash: spread the ranks' unnamed
            // transfers across home nodes like distinct files would.
            PfsModel::placement_hash(rank.idx() as u32),
            obs::enabled(k).then(|| k.vp(rank).clock()),
        )
    });
    if cost > SimTime::ZERO {
        fs_sleep(cost).await;
    }
    if let Some(p) = striped {
        pfs::transfer(p, bytes as u64, hash, true).await;
    }
    note_io(
        t0,
        ids::FS_WRITES,
        ids::FS_WRITE_BYTES,
        ids::FS_WRITE_NS,
        "fs.write",
        bytes as u64,
    );
}

/// Charge the I/O time of reading `bytes` without reading anything.
pub async fn charge_read(bytes: usize) {
    let (cost, striped, hash, t0) = ctx::with_kernel(|k, rank| {
        let model = k.service::<FsService>().model;
        let striped = model.pfs;
        let cost = if striped.is_some() {
            model.meta_latency
        } else {
            model.read_time(bytes)
        };
        (
            cost,
            striped,
            PfsModel::placement_hash(rank.idx() as u32),
            obs::enabled(k).then(|| k.vp(rank).clock()),
        )
    });
    if cost > SimTime::ZERO {
        fs_sleep(cost).await;
    }
    if let Some(p) = striped {
        pfs::transfer(p, bytes as u64, hash, false).await;
    }
    note_io(
        t0,
        ids::FS_READS,
        ids::FS_READ_BYTES,
        ids::FS_READ_NS,
        "fs.read",
        bytes as u64,
    );
}

/// Whether a file exists, charging metadata latency.
pub async fn exists(name: &str) -> bool {
    let (cost, store) = ctx::with_kernel(|k, _| {
        let svc = k.service::<FsService>();
        (svc.model.meta_latency, svc.store.clone())
    });
    if cost > SimTime::ZERO {
        fs_sleep(cost).await;
    }
    store.exists(name)
}

/// Account a finished I/O operation: counters, size/latency histograms
/// and a timeline span. `t0` is `None` when metrics are disabled, making
/// the whole function (including the kernel access) a no-op.
fn note_io(
    t0: Option<SimTime>,
    n_id: usize,
    bytes_id: usize,
    ns_id: usize,
    name: &'static str,
    nbytes: u64,
) {
    let Some(t0) = t0 else { return };
    ctx::with_kernel(|k, rank| {
        let t1 = k.vp(rank).clock();
        obs::record(k, n_id, 1);
        obs::record(k, bytes_id, nbytes);
        obs::record(k, ns_id, (t1 - t0).as_nanos());
        obs::span(
            k,
            ObsSpan {
                name,
                cat: "fs",
                rank,
                start: t0,
                end: t1,
                bytes: nbytes,
            },
        );
    });
}

/// Sleep with the FileIo wait class, so failure/abort releases can
/// distinguish I/O-blocked VPs from computing ones.
async fn fs_sleep(d: SimTime) {
    let (deadline, token) = ctx::with_kernel(|k, rank| {
        let deadline = k.vp(rank).clock() + d;
        let token = k.vp_mut(rank).begin_wait(WaitClass::FileIo, "file I/O");
        k.schedule_at(deadline, rank, xsim_core::event::Action::WakeToken(token));
        (deadline, token)
    });
    loop {
        let now = ctx::block_prearmed(token).await;
        if now >= deadline {
            return;
        }
        ctx::with_kernel(|k, rank| {
            // Re-block on the same token: the scheduled wake stays valid.
            k.vp_mut(rank)
                .rearm_wait(WaitClass::FileIo, "file I/O", token);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_put_get_delete() {
        let s = FsStore::new();
        assert!(s.is_empty());
        s.put("a", Bytes::from_static(b"hello"));
        assert!(s.exists("a"));
        assert_eq!(
            s.get("a").unwrap(),
            FileState::Complete(Bytes::from_static(b"hello"))
        );
        assert!(s.delete("a"));
        assert!(!s.delete("a"));
        assert!(s.get("a").is_none());
    }

    #[test]
    fn partial_writes_are_visible_and_incomplete() {
        let s = FsStore::new();
        let data = Bytes::from_static(b"checkpoint-data");
        s.begin_write("ckpt/5/rank3");
        let st = s.get("ckpt/5/rank3").unwrap();
        assert!(!st.is_complete());
        s.commit_write("ckpt/5/rank3", data.clone());
        assert!(s.get("ckpt/5/rank3").unwrap().is_complete());
    }

    #[test]
    fn list_and_delete_prefix() {
        let s = FsStore::new();
        s.put("ckpt/1/r0", Bytes::new());
        s.put("ckpt/1/r1", Bytes::new());
        s.put("ckpt/2/r0", Bytes::new());
        s.put("other", Bytes::new());
        assert_eq!(s.list_prefix("ckpt/1/"), vec!["ckpt/1/r0", "ckpt/1/r1"]);
        assert_eq!(s.delete_prefix("ckpt/"), 3);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fault_rules_fire_and_decrement() {
        let s = FsStore::new();
        s.inject_fault(IoFaultRule {
            prefix: "ckpt/".into(),
            kind: IoFaultKind::Write,
            rank: Some(Rank(3)),
            remaining: 1,
        });
        assert_eq!(
            s.check_fault("ckpt/x", IoFaultKind::Write, Rank(3)),
            Err(FsError::Injected)
        );
        // Rule exhausted.
        assert!(s.check_fault("ckpt/x", IoFaultKind::Write, Rank(3)).is_ok());
        // Wrong rank / kind / prefix never fire.
        s.inject_fault(IoFaultRule {
            prefix: "ckpt/".into(),
            kind: IoFaultKind::Write,
            rank: Some(Rank(3)),
            remaining: 5,
        });
        assert!(s.check_fault("ckpt/x", IoFaultKind::Write, Rank(4)).is_ok());
        assert!(s.check_fault("ckpt/x", IoFaultKind::Read, Rank(3)).is_ok());
        assert!(s.check_fault("data/x", IoFaultKind::Write, Rank(3)).is_ok());
    }

    #[test]
    fn model_costs() {
        let m = FsModel::typical_pfs();
        assert_eq!(
            m.write_time(1_000_000_000),
            SimTime::from_micros(50) + SimTime::from_secs(1)
        );
        assert_eq!(
            m.read_time(2_000_000_000),
            SimTime::from_micros(50) + SimTime::from_secs(1)
        );
        assert!(FsModel::free().is_free());
        assert_eq!(FsModel::free().write_time(1 << 30), SimTime::ZERO);
        assert!(!m.is_free());
    }

    #[test]
    fn stats_accumulate() {
        let s = FsStore::new();
        s.put("a", Bytes::from_static(b"12345"));
        let _ = s.get("a");
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 1);
        assert_eq!(st.bytes_written, 5);
        assert_eq!(st.bytes_read, 5);
    }

    #[test]
    fn clear_faults_removes_rules() {
        let s = FsStore::new();
        s.inject_fault(IoFaultRule {
            prefix: String::new(),
            kind: IoFaultKind::Read,
            rank: None,
            remaining: u64::MAX,
        });
        assert!(s.check_fault("x", IoFaultKind::Read, Rank(0)).is_err());
        s.clear_faults();
        assert!(s.check_fault("x", IoFaultKind::Read, Rank(0)).is_ok());
    }
}
